//! Binary wire codec for the durable curation log.
//!
//! `cdb-storage` persists the transaction log as length-prefixed,
//! checksummed frames (see its `frame` module); this module owns the
//! *payload* encoding — a compact, versionless little-endian format for
//! every [`CurationOp`], full [`Transaction`]s, and the checkpoint
//! snapshot of a [`TreeDb`] + [`ProvStore`] pair. The codec lives here
//! (not in the storage crate) because it needs raw arena access: node
//! ids are arena indices, so a checkpoint must round-trip tombstoned
//! nodes and arena order exactly for tail replay to re-allocate the
//! original ids.
//!
//! Framing, checksums, and corruption handling are deliberately *not*
//! here: this codec assumes its input bytes are exactly one valid
//! payload (the storage layer's CRC gate guarantees that), and any
//! decode error therefore means a frame that passed its checksum is
//! structurally invalid — corruption the CRC missed, or a foreign file.

use std::collections::BTreeMap;

use cdb_model::atom::Decimal;
use cdb_model::Atom;

use crate::ops::{ClipNode, CurationOp, Transaction, TxnId};
use crate::provstore::{Origin, ProvEvent, ProvRecord, ProvStore, StoreMode};
use crate::tree::{NodeId, RawNode, TreeDb};

/// Errors while decoding a wire payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the value was complete.
    UnexpectedEof,
    /// An enum tag byte was out of range.
    BadTag(&'static str, u8),
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// The payload had bytes left over after the value.
    TrailingBytes(usize),
    /// A count field claims more elements than the remaining bytes
    /// could possibly encode — corruption caught *before* any
    /// allocation or element loop runs.
    BadLength {
        /// Elements the count field claims.
        claimed: u64,
        /// Bytes actually left in the payload.
        remaining: usize,
    },
    /// A `u64` identifier field does not fit the platform's `usize`
    /// (only reachable on 32-bit targets; a silent `as` truncation
    /// here would alias two distinct node ids).
    Overflow(&'static str),
    /// A recursive value (clip tree, origin chain) nests deeper than
    /// [`MAX_NESTING`] — decoding it would risk stack exhaustion.
    TooDeep(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "payload truncated"),
            WireError::BadTag(what, t) => write!(f, "bad {what} tag {t:#04x}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in payload"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            WireError::BadLength { claimed, remaining } => {
                write!(
                    f,
                    "count field claims {claimed} elements but only {remaining} bytes remain"
                )
            }
            WireError::Overflow(what) => write!(f, "{what} does not fit this platform's usize"),
            WireError::TooDeep(what) => {
                write!(f, "{what} nests deeper than {MAX_NESTING} levels")
            }
        }
    }
}

/// Maximum nesting depth accepted for recursive wire values (clip
/// subtrees, origin chains). Decoding is recursive, so an adversarial
/// payload claiming a million-deep chain must be rejected by a typed
/// error, not by blowing the stack. Real curated trees are a handful
/// of levels deep; 256 is far past anything the engine produces.
pub const MAX_NESTING: usize = 256;

impl std::error::Error for WireError {}

/// A checkpoint snapshot: the materialized state as of `last_txn`, so
/// recovery can skip re-applying the log prefix it covers.
///
/// The v2 fields make a checkpoint *load-bearing* for segmented logs:
/// `covered_len` anchors the snapshot to a logical WAL offset so
/// recovery can skip (and retention can retire) every frame before it,
/// and the carried log / publish / aux / snapshot payloads preserve
/// what those skipped frames would have contributed. A v1 payload
/// decodes with all of these at their defaults, which reproduces the
/// old semantics exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The last transaction whose effects the snapshot includes
    /// (`None` = a snapshot of the empty database).
    pub last_txn: Option<TxnId>,
    /// The tree, arena order and tombstones preserved.
    pub tree: TreeDb,
    /// The provenance store.
    pub prov: ProvStore,
    /// Logical WAL byte offset this snapshot durably covers: recovery
    /// skips frames ending at or before it, and retention may retire
    /// segments wholly below it. `None` = a legacy snapshot with no
    /// coverage claim (recovery matches `last_txn` against the log).
    pub covered_len: Option<u64>,
    /// Wall-clock time of the last covered transaction, so time-based
    /// features (publish timestamps) survive history truncation.
    pub last_time: u64,
    /// The covered transaction log. Full under `Retention::KeepAll`
    /// (paper semantics: the curation log is forever); empty under
    /// `Retention::Reclaim`, where the tree + provenance snapshot is
    /// the only record of covered history.
    pub log: Vec<Transaction>,
    /// Encoded publish records (`cdb-storage` `PublishRecord` wire
    /// form) for every publish point in the covered prefix.
    pub publishes: Vec<Vec<u8>>,
    /// Raw aux payloads (lifecycle events, notes) from the covered
    /// prefix, in replay order.
    pub aux: Vec<Vec<u8>>,
    /// One encoded snapshot `Value` per covered publish point
    /// (`cdb-archive` value codec), populated under
    /// `Retention::Reclaim` so the published-version archive can be
    /// rebuilt without the covered log. Opaque bytes at this layer.
    pub snapshots: Vec<Vec<u8>>,
    /// Present when the snapshot's tree / provenance / archive bodies
    /// live in a paged heap instead of this payload (the v3 *anchor*
    /// form): the checkpoint then carries only the small metadata
    /// above, plus this reference telling recovery how to materialize
    /// the state from page records. Page-granular checkpointing writes
    /// only dirty pages to the heap and installs this small anchor,
    /// instead of serializing the whole state on every checkpoint.
    pub paged: Option<PagedRef>,
}

/// Reference from a checkpoint anchor to the paged heap holding its
/// state (see `cdb-storage`'s `page`/`paged` modules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedRef {
    /// Logical heap byte length the anchor covers: only page records
    /// wholly below this watermark belong to the snapshot. The heap is
    /// append-only and flushed *before* the anchor installs, so a
    /// durable anchor always references a durable heap prefix.
    pub heap_len: u64,
    /// Arena length of the snapshotted tree: node pages `0..arena_len`
    /// must all be materializable or the anchor is unusable.
    pub arena_len: u64,
    /// The tree's root node id.
    pub root: u64,
}

impl Checkpoint {
    /// A checkpoint with only the core state (no coverage claim, no
    /// carried history) — the v1 shape.
    pub fn basic(last_txn: Option<TxnId>, tree: TreeDb, prov: ProvStore) -> Self {
        Checkpoint {
            last_txn,
            tree,
            prov,
            covered_len: None,
            last_time: 0,
            log: Vec::new(),
            publishes: Vec::new(),
            aux: Vec::new(),
            snapshots: Vec::new(),
            paged: None,
        }
    }
}

/// Version tag opening a v2 checkpoint payload. A v1 payload starts
/// with an option presence byte (0 or 1), so 2 is unambiguous.
const CKPT_VERSION_V2: u8 = 2;

/// Version tag opening a v3 checkpoint payload: the v2 fields followed
/// by a [`PagedRef`]. Only emitted when `paged` is `Some`, so v2
/// readers keep decoding every checkpoint a non-paged database writes.
const CKPT_VERSION_V3: u8 = 3;

// ------------------------------------------------------------ writer

/// Appends a little-endian `u32` to `out`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64` to `out`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `i64` to `out`.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string to `out`.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends an optional `u64` (presence byte + value) to `out`.
pub fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_u64(out, x);
        }
    }
}

/// Appends an [`Atom`] (tag byte + payload) to `out`. Public because
/// the server wire protocol (`cdb-server::proto`) reuses this codec
/// for request/response values.
pub fn put_atom(out: &mut Vec<u8>, a: &Atom) {
    match a {
        Atom::Unit => out.push(0),
        Atom::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Atom::Int(i) => {
            out.push(2);
            put_i64(out, *i);
        }
        Atom::Decimal(d) => {
            out.push(3);
            put_i64(out, d.digits());
            out.push(d.scale());
        }
        Atom::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
    }
}

/// Appends an optional [`Atom`] (presence byte + value) to `out`.
pub fn put_opt_atom(out: &mut Vec<u8>, a: Option<&Atom>) {
    match a {
        None => out.push(0),
        Some(a) => {
            out.push(1);
            put_atom(out, a);
        }
    }
}

fn put_origin(out: &mut Vec<u8>, o: &Origin) {
    match o {
        Origin::Local => out.push(0),
        Origin::CopiedFrom { db, path, chain } => {
            out.push(1);
            put_str(out, db);
            put_str(out, path);
            put_u32(out, chain.len() as u32);
            for c in chain {
                put_origin(out, c);
            }
        }
        Origin::External { source } => {
            out.push(2);
            put_str(out, source);
        }
    }
}

fn put_clip(out: &mut Vec<u8>, c: &ClipNode) {
    put_str(out, &c.label);
    put_opt_atom(out, c.value.as_ref());
    put_u32(out, c.children.len() as u32);
    for child in &c.children {
        put_clip(out, child);
    }
}

fn put_op(out: &mut Vec<u8>, op: &CurationOp) {
    match op {
        CurationOp::Insert {
            node,
            parent,
            label,
            value,
        } => {
            out.push(0);
            put_u64(out, node.0 as u64);
            put_u64(out, parent.0 as u64);
            put_str(out, label);
            put_opt_atom(out, value.as_ref());
        }
        CurationOp::Modify { node, old, new } => {
            out.push(1);
            put_u64(out, node.0 as u64);
            put_opt_atom(out, old.as_ref());
            put_opt_atom(out, new.as_ref());
        }
        CurationOp::Delete { node } => {
            out.push(2);
            put_u64(out, node.0 as u64);
        }
        CurationOp::Paste {
            node,
            parent,
            origin,
            snapshot,
        } => {
            out.push(3);
            put_u64(out, node.0 as u64);
            put_u64(out, parent.0 as u64);
            put_origin(out, origin);
            put_clip(out, snapshot);
        }
    }
}

/// Encodes a transaction as a WAL frame payload.
pub fn encode_transaction(txn: &Transaction) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_u64(&mut out, txn.id.0);
    put_str(&mut out, &txn.curator);
    put_u64(&mut out, txn.time);
    put_u32(&mut out, txn.ops.len() as u32);
    for op in &txn.ops {
        put_op(&mut out, op);
    }
    out
}

fn put_raw_node(out: &mut Vec<u8>, n: &RawNode) {
    put_str(out, &n.label);
    put_opt_atom(out, n.value.as_ref());
    put_opt_u64(out, n.parent.map(|p| p.0 as u64));
    put_u32(out, n.children.len() as u32);
    for c in &n.children {
        put_u64(out, c.0 as u64);
    }
    out.push(u8::from(n.alive));
}

fn put_tree(out: &mut Vec<u8>, tree: &TreeDb) {
    put_str(out, tree.name());
    put_u64(out, tree.root().0 as u64);
    let raw = tree.raw_nodes();
    put_u32(out, raw.len() as u32);
    for n in &raw {
        put_raw_node(out, n);
    }
}

fn put_prov_records(out: &mut Vec<u8>, recs: &[ProvRecord]) {
    put_u32(out, recs.len() as u32);
    for r in recs {
        put_u64(out, r.txn.0);
        match &r.event {
            ProvEvent::Created(o) => {
                out.push(0);
                put_origin(out, o);
            }
            ProvEvent::Modified => out.push(1),
        }
    }
}

fn put_prov(out: &mut Vec<u8>, prov: &ProvStore) {
    out.push(match prov.mode() {
        StoreMode::Naive => 0,
        StoreMode::Hereditary => 1,
    });
    let records = prov.raw_records();
    put_u32(out, records.len() as u32);
    for (node, recs) in records {
        put_u64(out, node.0 as u64);
        put_prov_records(out, recs);
    }
}

fn put_chunk(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn put_chunks(out: &mut Vec<u8>, chunks: &[Vec<u8>]) {
    put_u32(out, chunks.len() as u32);
    for c in chunks {
        put_chunk(out, c);
    }
}

/// Encodes a checkpoint snapshot as a checkpoint-file frame payload
/// (the v2 form, or v3 when a [`PagedRef`] anchor is present; v1
/// payloads remain decodable).
pub fn encode_checkpoint(ck: &Checkpoint) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.push(if ck.paged.is_some() {
        CKPT_VERSION_V3
    } else {
        CKPT_VERSION_V2
    });
    put_opt_u64(&mut out, ck.last_txn.map(|t| t.0));
    put_tree(&mut out, &ck.tree);
    put_prov(&mut out, &ck.prov);
    put_opt_u64(&mut out, ck.covered_len);
    put_u64(&mut out, ck.last_time);
    put_u32(&mut out, ck.log.len() as u32);
    for txn in &ck.log {
        put_chunk(&mut out, &encode_transaction(txn));
    }
    put_chunks(&mut out, &ck.publishes);
    put_chunks(&mut out, &ck.aux);
    put_chunks(&mut out, &ck.snapshots);
    if let Some(p) = &ck.paged {
        put_u64(&mut out, p.heap_len);
        put_u64(&mut out, p.arena_len);
        put_u64(&mut out, p.root);
    }
    out
}

// ------------------------------------------------- paged node codec

/// One tree arena slot in its paged encoding — the exact per-node
/// field set [`put_tree`] writes, as a standalone page payload.
/// Tombstones are first-class: a checkpoint must round-trip dead
/// nodes and arena order exactly for tail replay to re-allocate the
/// original ids (same argument as the whole-tree codec above).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PagedNode {
    /// The node label.
    pub label: String,
    /// The node payload, if a leaf.
    pub value: Option<Atom>,
    /// Parent arena index (`None` only for the root slot).
    pub parent: Option<u64>,
    /// Child arena indices, in sibling order.
    pub children: Vec<u64>,
    /// Whether the node is live (tombstones persist in the arena).
    pub alive: bool,
}

/// The number of arena slots in a tree, tombstones included — the
/// range of valid node-page object ids.
pub fn arena_len(tree: &TreeDb) -> usize {
    tree.raw_nodes().len()
}

/// The raw structural links of an arena slot, tombstones included:
/// `(parent, children, alive)`. `None` when `index` is out of range.
/// This is the dirty-tracking accessor: a subtree deletion tombstones
/// nodes the public (live-only) API can no longer reach, yet their
/// pages must be recaptured.
pub fn node_links(tree: &TreeDb, index: usize) -> Option<(Option<usize>, Vec<usize>, bool)> {
    let raw = tree.raw_nodes();
    let n = raw.get(index)?;
    Some((
        n.parent.map(|p| p.0),
        n.children.iter().map(|c| c.0).collect(),
        n.alive,
    ))
}

/// Encodes one arena slot as a node-page payload. `None` when `index`
/// is out of range.
pub fn encode_tree_node(tree: &TreeDb, index: usize) -> Option<Vec<u8>> {
    let raw = tree.raw_nodes();
    let n = raw.get(index)?;
    let mut out = Vec::with_capacity(32);
    put_raw_node(&mut out, n);
    Some(out)
}

/// Decodes a node-page payload written by [`encode_tree_node`].
pub fn decode_tree_node(bytes: &[u8]) -> Result<PagedNode, WireError> {
    let mut r = Reader::new(bytes);
    let node = r.paged_node()?;
    r.finish()?;
    Ok(node)
}

/// Assembles a tree from per-slot paged nodes in arena order — the
/// paged-recovery counterpart of the whole-tree decoder, so a heap
/// materialization round-trips tombstones and ids exactly.
pub fn tree_from_paged_nodes(
    name: impl Into<String>,
    root: u64,
    nodes: Vec<PagedNode>,
) -> Result<TreeDb, WireError> {
    let root = NodeId(usize::try_from(root).map_err(|_| WireError::Overflow("root id"))?);
    let mut raw = Vec::with_capacity(nodes.len());
    for n in nodes {
        let parent = match n.parent {
            None => None,
            Some(p) => Some(NodeId(
                usize::try_from(p).map_err(|_| WireError::Overflow("parent id"))?,
            )),
        };
        let mut children = Vec::with_capacity(n.children.len());
        for c in n.children {
            children.push(NodeId(
                usize::try_from(c).map_err(|_| WireError::Overflow("child id"))?,
            ));
        }
        raw.push(RawNode {
            label: n.label,
            value: n.value,
            parent,
            children,
            alive: n.alive,
        });
    }
    Ok(TreeDb::from_raw(name.into(), root, raw))
}

/// One node's directly-stored provenance records by arena index —
/// the capture-side accessor for the paged store (node ids are arena
/// indices, but `NodeId` has no public constructor).
pub fn direct_prov_records(prov: &ProvStore, index: usize) -> &[ProvRecord] {
    prov.direct(NodeId(index))
}

/// Encodes one node's direct provenance records as a prov-page
/// payload.
pub fn encode_prov_records(recs: &[ProvRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 16 * recs.len());
    put_prov_records(&mut out, recs);
    out
}

/// Decodes a prov-page payload written by [`encode_prov_records`].
pub fn decode_prov_records(bytes: &[u8]) -> Result<Vec<ProvRecord>, WireError> {
    let mut r = Reader::new(bytes);
    let recs = r.prov_records()?;
    r.finish()?;
    Ok(recs)
}

/// Assembles a provenance store from per-node paged record lists —
/// the paged-recovery counterpart of the whole-store decoder.
pub fn prov_from_paged(
    mode: StoreMode,
    entries: Vec<(u64, Vec<ProvRecord>)>,
) -> Result<ProvStore, WireError> {
    let mut records = BTreeMap::new();
    for (node, recs) in entries {
        let node = NodeId(usize::try_from(node).map_err(|_| WireError::Overflow("node id"))?);
        if !recs.is_empty() {
            records.insert(node, recs);
        }
    }
    Ok(ProvStore::from_raw(mode, records))
}

// ------------------------------------------------------------ reader

/// A cursor over a wire payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Reads an optional `u64` (presence byte + value).
    pub fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(WireError::BadTag("option", t)),
        }
    }

    /// Reads a `u32` element count and validates it against the bytes
    /// remaining: a sequence of `n` elements each at least
    /// `min_elem_bytes` long cannot outrun the payload, so an inflated
    /// count field (bit rot, a foreign file) fails here with a typed
    /// [`WireError::BadLength`] *before* any allocation or element
    /// loop runs.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::BadLength {
                claimed: n as u64,
                remaining: self.remaining(),
            });
        }
        Ok(n)
    }

    /// Reads a `u64` that must fit the platform's `usize` (arena
    /// indices); a silent `as` truncation would alias node ids.
    fn index(&mut self, what: &'static str) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::Overflow(what))
    }

    fn node_id(&mut self) -> Result<NodeId, WireError> {
        Ok(NodeId(self.index("node id")?))
    }

    /// Reads an [`Atom`] (tag byte + payload). Public counterpart of
    /// [`put_atom`] for the server wire protocol.
    pub fn atom(&mut self) -> Result<Atom, WireError> {
        match self.u8()? {
            0 => Ok(Atom::Unit),
            1 => Ok(Atom::Bool(self.u8()? != 0)),
            2 => Ok(Atom::Int(self.i64()?)),
            3 => {
                let digits = self.i64()?;
                let scale = self.u8()?;
                Ok(Atom::Decimal(Decimal::new(digits, scale)))
            }
            4 => Ok(Atom::Str(self.str()?)),
            t => Err(WireError::BadTag("atom", t)),
        }
    }

    /// Reads an optional [`Atom`] (presence byte + value). Public
    /// counterpart of [`put_opt_atom`].
    pub fn opt_atom(&mut self) -> Result<Option<Atom>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.atom()?)),
            t => Err(WireError::BadTag("option", t)),
        }
    }

    fn origin(&mut self) -> Result<Origin, WireError> {
        self.origin_at(0)
    }

    fn origin_at(&mut self, depth: usize) -> Result<Origin, WireError> {
        if depth >= MAX_NESTING {
            return Err(WireError::TooDeep("origin chain"));
        }
        match self.u8()? {
            0 => Ok(Origin::Local),
            1 => {
                let db = self.str()?;
                let path = self.str()?;
                // A chained origin is at least 1 byte (a Local tag).
                let n = self.seq_len(1)?;
                let mut chain = Vec::with_capacity(n);
                for _ in 0..n {
                    chain.push(self.origin_at(depth + 1)?);
                }
                Ok(Origin::CopiedFrom { db, path, chain })
            }
            2 => Ok(Origin::External {
                source: self.str()?,
            }),
            t => Err(WireError::BadTag("origin", t)),
        }
    }

    fn clip(&mut self) -> Result<ClipNode, WireError> {
        self.clip_at(0)
    }

    fn clip_at(&mut self, depth: usize) -> Result<ClipNode, WireError> {
        if depth >= MAX_NESTING {
            return Err(WireError::TooDeep("clip subtree"));
        }
        let label = self.str()?;
        let value = self.opt_atom()?;
        // A child clip is at least 9 bytes: empty label (4), absent
        // value (1), zero child count (4).
        let n = self.seq_len(9)?;
        let mut children = Vec::with_capacity(n);
        for _ in 0..n {
            children.push(self.clip_at(depth + 1)?);
        }
        Ok(ClipNode {
            label,
            value,
            children,
        })
    }

    fn op(&mut self) -> Result<CurationOp, WireError> {
        match self.u8()? {
            0 => Ok(CurationOp::Insert {
                node: self.node_id()?,
                parent: self.node_id()?,
                label: self.str()?,
                value: self.opt_atom()?,
            }),
            1 => Ok(CurationOp::Modify {
                node: self.node_id()?,
                old: self.opt_atom()?,
                new: self.opt_atom()?,
            }),
            2 => Ok(CurationOp::Delete {
                node: self.node_id()?,
            }),
            3 => Ok(CurationOp::Paste {
                node: self.node_id()?,
                parent: self.node_id()?,
                origin: self.origin()?,
                snapshot: self.clip()?,
            }),
            t => Err(WireError::BadTag("curation op", t)),
        }
    }

    fn paged_node(&mut self) -> Result<PagedNode, WireError> {
        let label = self.str()?;
        let value = self.opt_atom()?;
        let parent = self.opt_u64()?;
        let nc = self.seq_len(8)?;
        let mut children = Vec::with_capacity(nc);
        for _ in 0..nc {
            children.push(self.u64()?);
        }
        let alive = self.u8()? != 0;
        Ok(PagedNode {
            label,
            value,
            parent,
            children,
            alive,
        })
    }

    fn tree(&mut self) -> Result<TreeDb, WireError> {
        let name = self.str()?;
        let root = self.u64()?;
        // A raw node is at least 11 bytes: empty label (4), absent
        // value (1), absent parent (1), zero children (4), alive (1).
        let n = self.seq_len(11)?;
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            nodes.push(self.paged_node()?);
        }
        tree_from_paged_nodes(name, root, nodes)
    }

    fn prov_records(&mut self) -> Result<Vec<ProvRecord>, WireError> {
        // A record is at least 9 bytes: txn id (8) + event tag (1).
        let nr = self.seq_len(9)?;
        let mut recs = Vec::with_capacity(nr);
        for _ in 0..nr {
            let txn = TxnId(self.u64()?);
            let event = match self.u8()? {
                0 => ProvEvent::Created(self.origin()?),
                1 => ProvEvent::Modified,
                t => return Err(WireError::BadTag("prov event", t)),
            };
            recs.push(ProvRecord { txn, event });
        }
        Ok(recs)
    }

    fn prov(&mut self) -> Result<ProvStore, WireError> {
        let mode = match self.u8()? {
            0 => StoreMode::Naive,
            1 => StoreMode::Hereditary,
            t => return Err(WireError::BadTag("store mode", t)),
        };
        // A record-list entry is at least 12 bytes: node id (8) +
        // record count (4).
        let n = self.seq_len(12)?;
        let mut records = BTreeMap::new();
        for _ in 0..n {
            let node = self.node_id()?;
            records.insert(node, self.prov_records()?);
        }
        Ok(ProvStore::from_raw(mode, records))
    }

    /// Asserts the payload was fully consumed — a value followed by
    /// trailing bytes is corruption, not a success. Public because
    /// every frame decoder (WAL and network protocol alike) ends with
    /// this check.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// Decodes a transaction frame payload.
pub fn decode_transaction(bytes: &[u8]) -> Result<Transaction, WireError> {
    let mut r = Reader::new(bytes);
    let id = TxnId(r.u64()?);
    let curator = r.str()?;
    let time = r.u64()?;
    // The smallest op is a Delete: tag (1) + node id (8).
    let n = r.seq_len(9)?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(r.op()?);
    }
    r.finish()?;
    Ok(Transaction {
        id,
        curator,
        time,
        ops,
    })
}

fn read_chunks(r: &mut Reader<'_>) -> Result<Vec<Vec<u8>>, WireError> {
    // A chunk is at least its 4-byte length prefix.
    let n = r.seq_len(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.u32()? as usize;
        out.push(r.bytes(len)?.to_vec());
    }
    Ok(out)
}

/// Decodes a checkpoint frame payload, any version. A v1 payload
/// (first byte is an option presence tag, 0 or 1) yields a checkpoint
/// with every v2 field at its default; a v3 payload additionally
/// carries a [`PagedRef`] anchor.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, WireError> {
    let mut r = Reader::new(bytes);
    let version = match bytes.first() {
        Some(&CKPT_VERSION_V2) => CKPT_VERSION_V2,
        Some(&CKPT_VERSION_V3) => CKPT_VERSION_V3,
        _ => 1,
    };
    if version >= CKPT_VERSION_V2 {
        r.u8()?;
    }
    let last_txn = r.opt_u64()?.map(TxnId);
    let tree = r.tree()?;
    let prov = r.prov()?;
    let mut ck = Checkpoint::basic(last_txn, tree, prov);
    if version >= CKPT_VERSION_V2 {
        ck.covered_len = r.opt_u64()?;
        ck.last_time = r.u64()?;
        // A carried transaction is at least its 4-byte length prefix.
        let n = r.seq_len(4)?;
        for _ in 0..n {
            let len = r.u32()? as usize;
            ck.log.push(decode_transaction(r.bytes(len)?)?);
        }
        ck.publishes = read_chunks(&mut r)?;
        ck.aux = read_chunks(&mut r)?;
        ck.snapshots = read_chunks(&mut r)?;
    }
    if version >= CKPT_VERSION_V3 {
        ck.paged = Some(PagedRef {
            heap_len: r.u64()?,
            arena_len: r.u64()?,
            root: r.u64()?,
        });
    }
    r.finish()?;
    Ok(ck)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::CuratedTree;
    use crate::provstore::StoreMode;

    fn busy_tree() -> CuratedTree {
        // A database exercising every op and atom constructor, with a
        // cross-database paste (nested origin chain) and a deletion
        // (tombstones in the arena).
        let mut src = CuratedTree::new("upstream", StoreMode::Hereditary);
        let sroot = src.tree.root();
        let mut t = src.begin("up", 1);
        let e = t.insert(sroot, "entry", None).unwrap();
        t.insert(e, "ac", Some(Atom::Str("Q1".into()))).unwrap();
        t.insert(e, "mass", Some(Atom::Decimal(Decimal::new(2802, 2))))
            .unwrap();
        t.insert(e, "reviewed", Some(Atom::Bool(true))).unwrap();
        t.commit();
        let clip = src.copy(e).unwrap();

        let mut db = CuratedTree::new("wire", StoreMode::Hereditary);
        let root = db.tree.root();
        let mut t = db.begin("alice", 2);
        let pasted = t.paste(root, &clip).unwrap();
        let note = t.insert(root, "note", Some(Atom::Int(-7))).unwrap();
        t.modify(note, Some(Atom::Unit)).unwrap();
        t.commit();
        let mut t = db.begin("bob", 3);
        let scratch = t.insert(pasted, "scratch", None).unwrap();
        t.delete(scratch).unwrap();
        t.commit();
        db
    }

    #[test]
    fn transactions_round_trip() {
        let db = busy_tree();
        for txn in db.transactions() {
            let bytes = encode_transaction(txn);
            assert_eq!(&decode_transaction(&bytes).unwrap(), txn);
        }
    }

    #[test]
    fn checkpoints_round_trip_tombstones_and_prov() {
        let db = busy_tree();
        let ck = Checkpoint::basic(db.last_txn_id(), db.tree.clone(), db.prov.clone());
        let bytes = encode_checkpoint(&ck);
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(back, ck);
        // Tail replay onto the decoded tree allocates the original ids:
        // a fresh node gets the next arena index, not a reused one.
        let mut recovered = CuratedTree::from_parts(back.tree, db.log.clone(), back.prov);
        let root = recovered.tree.root();
        let mut a = recovered.begin("x", 9);
        let fresh_rec = a.insert(root, "f", None).unwrap();
        a.commit();
        let mut live = db.clone();
        let root = live.tree.root();
        let mut b = live.begin("x", 9);
        let fresh_live = b.insert(root, "f", None).unwrap();
        b.commit();
        assert_eq!(fresh_rec, fresh_live);
        assert_eq!(recovered, live);
    }

    #[test]
    fn truncated_payloads_error_instead_of_panicking() {
        let db = busy_tree();
        let bytes = encode_transaction(&db.transactions()[0]);
        for cut in 0..bytes.len() {
            assert!(decode_transaction(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let ck = encode_checkpoint(&Checkpoint::basic(None, db.tree.clone(), db.prov.clone()));
        for cut in (0..ck.len()).step_by(7) {
            assert!(decode_checkpoint(&ck[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn v2_checkpoints_round_trip_carried_history() {
        let db = busy_tree();
        let mut ck = Checkpoint::basic(db.last_txn_id(), db.tree.clone(), db.prov.clone());
        ck.covered_len = Some(4096);
        ck.last_time = 3;
        ck.log = db.log.clone();
        ck.publishes = vec![vec![1, 2, 3], Vec::new()];
        ck.aux = vec![b"event".to_vec()];
        ck.snapshots = vec![b"value-bytes".to_vec()];
        let bytes = encode_checkpoint(&ck);
        assert_eq!(decode_checkpoint(&bytes).unwrap(), ck);
    }

    #[test]
    fn v3_checkpoints_round_trip_the_paged_anchor() {
        let db = busy_tree();
        let mut ck = Checkpoint::basic(db.last_txn_id(), db.tree.clone(), db.prov.clone());
        ck.covered_len = Some(512);
        ck.paged = Some(PagedRef {
            heap_len: 8192,
            arena_len: 9,
            root: 0,
        });
        let bytes = encode_checkpoint(&ck);
        assert_eq!(bytes[0], 3);
        assert_eq!(decode_checkpoint(&bytes).unwrap(), ck);
        // Truncation discipline holds for the extended form too.
        for cut in (0..bytes.len()).step_by(5) {
            assert!(decode_checkpoint(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn paged_node_codec_round_trips_the_arena_exactly() {
        let db = busy_tree();
        let n = arena_len(&db.tree);
        assert!(n > 1);
        let mut nodes = Vec::new();
        for i in 0..n {
            let bytes = encode_tree_node(&db.tree, i).unwrap();
            nodes.push(decode_tree_node(&bytes).unwrap());
        }
        assert!(encode_tree_node(&db.tree, n).is_none());
        // Tombstones survive: the busy tree deleted a node.
        assert!(nodes.iter().any(|p| !p.alive));
        let back =
            tree_from_paged_nodes(db.tree.name(), db.tree.root().index() as u64, nodes).unwrap();
        assert_eq!(back, db.tree);
    }

    #[test]
    fn paged_prov_codec_round_trips_per_node_records() {
        let db = busy_tree();
        let mut entries = Vec::new();
        for i in 0..arena_len(&db.tree) {
            let recs = db.prov.direct(NodeId(i));
            if recs.is_empty() {
                continue;
            }
            let bytes = encode_prov_records(recs);
            entries.push((i as u64, decode_prov_records(&bytes).unwrap()));
        }
        let back = prov_from_paged(db.prov.mode(), entries).unwrap();
        assert_eq!(back, db.prov);
    }

    #[test]
    fn node_links_reach_tombstoned_slots() {
        let db = busy_tree();
        let n = arena_len(&db.tree);
        let dead: Vec<usize> = (0..n)
            .filter(|&i| matches!(node_links(&db.tree, i), Some((_, _, false))))
            .collect();
        assert!(!dead.is_empty());
        // A dead node still reports its recorded parent link even
        // though the live-only API refuses to look at it.
        let (parent, _, _) = node_links(&db.tree, dead[0]).unwrap();
        assert!(parent.is_some());
        assert!(node_links(&db.tree, n).is_none());
    }

    #[test]
    fn v1_checkpoint_payloads_still_decode() {
        let db = busy_tree();
        let ck = Checkpoint::basic(db.last_txn_id(), db.tree.clone(), db.prov.clone());
        // A v1 payload is the unversioned core-field encoding.
        let mut v1 = Vec::new();
        put_opt_u64(&mut v1, ck.last_txn.map(|t| t.0));
        put_tree(&mut v1, &ck.tree);
        put_prov(&mut v1, &ck.prov);
        assert_eq!(decode_checkpoint(&v1).unwrap(), ck);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let db = busy_tree();
        let mut bytes = encode_transaction(&db.transactions()[0]);
        bytes.push(0);
        assert_eq!(decode_transaction(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn inflated_op_count_is_a_typed_error_not_a_loop() {
        // A corrupt count field claiming u32::MAX ops with 3 bytes of
        // payload left must fail with BadLength before the op loop
        // (the old decoder looped until it starved, and its
        // `with_capacity(n.min(65_536))` was the only allocation cap).
        let mut b = Vec::new();
        put_u64(&mut b, 0);
        put_str(&mut b, "c");
        put_u64(&mut b, 1);
        put_u32(&mut b, u32::MAX);
        b.extend_from_slice(&[0, 0, 0]);
        assert!(matches!(
            decode_transaction(&b),
            Err(WireError::BadLength {
                claimed,
                remaining: 3
            }) if claimed == u64::from(u32::MAX)
        ));
    }

    #[test]
    fn inflated_chunk_count_in_checkpoint_is_a_typed_error() {
        let db = busy_tree();
        let ck = Checkpoint::basic(db.last_txn_id(), db.tree.clone(), db.prov.clone());
        let mut bytes = encode_checkpoint(&ck);
        // The final chunk list (snapshots) ends the payload: rewrite
        // its count (last 4 bytes — the list is empty) to a huge value.
        let at = bytes.len() - 4;
        bytes[at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_checkpoint(&bytes),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn over_deep_clip_nesting_is_rejected_without_recursing() {
        // Craft a paste whose clip nests far past MAX_NESTING, built
        // iteratively (a real ClipNode that deep would itself recurse
        // on drop). Each level: empty label, no value, one child; the
        // innermost has zero children.
        let mut b = Vec::new();
        put_u64(&mut b, 0); // txn id
        put_str(&mut b, "c");
        put_u64(&mut b, 1); // time
        put_u32(&mut b, 1); // one op
        b.push(3); // Paste
        put_u64(&mut b, 1); // node
        put_u64(&mut b, 0); // parent
        b.push(0); // Origin::Local
        let depth = MAX_NESTING + 64;
        for _ in 0..depth {
            put_str(&mut b, "");
            b.push(0); // no value
            put_u32(&mut b, 1); // one child
        }
        put_str(&mut b, "");
        b.push(0);
        put_u32(&mut b, 0); // leaf
        assert_eq!(
            decode_transaction(&b),
            Err(WireError::TooDeep("clip subtree"))
        );
    }

    #[test]
    fn over_deep_origin_chain_is_rejected() {
        let mut b = Vec::new();
        for _ in 0..MAX_NESTING + 8 {
            b.push(1); // CopiedFrom
            put_str(&mut b, "db");
            put_str(&mut b, "/p");
            put_u32(&mut b, 1); // one chained origin
        }
        b.push(0); // Local
        let mut r = Reader::new(&b);
        assert_eq!(r.origin(), Err(WireError::TooDeep("origin chain")));
    }

    #[test]
    fn inflated_string_length_errors_cleanly() {
        let mut b = Vec::new();
        put_u64(&mut b, 0);
        // Curator string claims 1 GiB with 2 bytes behind it.
        put_u32(&mut b, 1 << 30);
        b.extend_from_slice(b"ab");
        assert_eq!(decode_transaction(&b), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn seq_len_validates_against_remaining() {
        let mut b = Vec::new();
        put_u32(&mut b, 5);
        b.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let mut r = Reader::new(&b);
        // 5 elements × 2 bytes = 10 ≤ 10 remaining: fine.
        assert_eq!(r.seq_len(2), Ok(5));
        let mut b = Vec::new();
        put_u32(&mut b, 5);
        b.extend_from_slice(&[1, 2, 3]);
        let mut r = Reader::new(&b);
        assert_eq!(
            r.seq_len(2),
            Err(WireError::BadLength {
                claimed: 5,
                remaining: 3
            })
        );
    }

    #[test]
    fn bad_tags_are_named() {
        assert!(matches!(
            decode_transaction(&{
                let mut b = Vec::new();
                put_u64(&mut b, 0);
                put_str(&mut b, "c");
                put_u64(&mut b, 1);
                put_u32(&mut b, 1);
                b.push(9); // no such op tag
                b.extend_from_slice(&[0u8; 8]); // pad past the length precheck
                b
            }),
            Err(WireError::BadTag("curation op", 9))
        ));
    }
}
