//! A small provenance query language.
//!
//! §3.1 poses the design challenge: "Can we design a query language that
//! provides good high-level support for writing sophisticated queries
//! against curated databases involving provenance, the raw data, and
//! perhaps previous versions?" This module is a working answer at the
//! scale of this reproduction — one language spanning all three:
//!
//! ```text
//! VALUE /entry/name                    -- the raw data
//! VALUE /entry/name AT TXN 3           -- …in a past state (log replay)
//! WHEN CREATED /entry/name             -- provenance: first creation
//! FROM WHERE /entry                    -- provenance: the origin chain
//! WHO TOUCHED /entry                   -- provenance: contributing curators
//! HISTORY /entry/name                  -- every touching transaction
//! CHANGED BETWEEN TXN 1 AND TXN 4      -- what the period changed
//! ```
//!
//! Queries are parsed by [`parse`] and evaluated by [`eval`] against a
//! [`CuratedTree`]; answers are structured ([`Answer`]) and printable.

use std::fmt;

use crate::ops::{CuratedTree, CurationOp, TxnId};
use crate::queries;
use crate::replay;
use crate::tree::TreeError;

/// A parsed provenance query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvQuery {
    /// `VALUE <path> [AT TXN <n>]`
    Value {
        /// Label path to the node.
        path: String,
        /// Evaluate against the state after this transaction.
        at: Option<TxnId>,
    },
    /// `WHEN CREATED <path>`
    WhenCreated {
        /// Label path to the node.
        path: String,
    },
    /// `FROM WHERE <path>`
    FromWhere {
        /// Label path to the node.
        path: String,
    },
    /// `WHO TOUCHED <path>`
    WhoTouched {
        /// Label path to the node.
        path: String,
    },
    /// `HISTORY <path>`
    History {
        /// Label path to the node.
        path: String,
    },
    /// `CHANGED BETWEEN TXN <a> AND TXN <b>`
    ChangedBetween {
        /// First transaction (exclusive lower bound is `a`-1; i.e.
        /// changes *of* transactions a..=b are reported).
        from: TxnId,
        /// Last transaction, inclusive.
        to: TxnId,
    },
}

/// A query answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer {
    /// A raw value (as a rendered string; `None` = node has no payload).
    Value(Option<String>),
    /// Creation info: transaction, curator, time.
    Created {
        /// The creating transaction.
        txn: TxnId,
        /// The curator.
        curator: String,
        /// The logical time.
        time: u64,
    },
    /// An origin chain, oldest first (rendered).
    Origins(Vec<String>),
    /// Curators, in first-touch order.
    Curators(Vec<String>),
    /// Touching transactions: (txn, curator, ops touching the node).
    History(Vec<(TxnId, String, usize)>),
    /// Paths changed in a transaction range.
    Changed(Vec<String>),
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Answer::Value(Some(v)) => write!(f, "{v}"),
            Answer::Value(None) => write!(f, "(no value)"),
            Answer::Created { txn, curator, time } => {
                write!(f, "created in {txn} by {curator} at t={time}")
            }
            Answer::Origins(os) => write!(f, "{}", os.join(" → ")),
            Answer::Curators(cs) => write!(f, "{}", cs.join(", ")),
            Answer::History(h) => {
                for (i, (t, c, n)) in h.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "{t} by {c} ({n} ops)")?;
                }
                Ok(())
            }
            Answer::Changed(ps) => write!(f, "{}", ps.join("\n")),
        }
    }
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "provql parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Evaluation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Path lookup or tree error.
    Tree(TreeError),
    /// Replay failure.
    Replay(String),
    /// The node has no recorded creation.
    NoProvenance(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Tree(e) => write!(f, "{e}"),
            EvalError::Replay(m) => write!(f, "replay: {m}"),
            EvalError::NoProvenance(p) => write!(f, "no provenance recorded for {p}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<TreeError> for EvalError {
    fn from(e: TreeError) -> Self {
        EvalError::Tree(e)
    }
}

/// Parses a query.
pub fn parse(input: &str) -> Result<ProvQuery, ParseError> {
    let toks: Vec<&str> = input.split_whitespace().collect();
    let upper: Vec<String> = toks.iter().map(|t| t.to_ascii_uppercase()).collect();
    let u: Vec<&str> = upper.iter().map(String::as_str).collect();
    match u.as_slice() {
        ["VALUE", _p] => Ok(ProvQuery::Value {
            path: toks[1].to_owned(),
            at: None,
        }),
        ["VALUE", _p, "AT", "TXN", n] => Ok(ProvQuery::Value {
            path: toks[1].to_owned(),
            at: Some(TxnId(parse_num(n)?)),
        }),
        ["WHEN", "CREATED", _p] => Ok(ProvQuery::WhenCreated {
            path: toks[2].to_owned(),
        }),
        ["FROM", "WHERE", _p] => Ok(ProvQuery::FromWhere {
            path: toks[2].to_owned(),
        }),
        ["WHO", "TOUCHED", _p] => Ok(ProvQuery::WhoTouched {
            path: toks[2].to_owned(),
        }),
        ["HISTORY", _p] => Ok(ProvQuery::History {
            path: toks[1].to_owned(),
        }),
        ["CHANGED", "BETWEEN", "TXN", a, "AND", "TXN", b] => Ok(ProvQuery::ChangedBetween {
            from: TxnId(parse_num(a)?),
            to: TxnId(parse_num(b)?),
        }),
        _ => Err(ParseError(format!(
            "unrecognized query {input:?}; see module docs for the grammar"
        ))),
    }
}

fn parse_num(s: &str) -> Result<u64, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("expected a number, got {s:?}")))
}

/// Evaluates a query against a curated tree.
pub fn eval(db: &CuratedTree, q: &ProvQuery) -> Result<Answer, EvalError> {
    match q {
        ProvQuery::Value { path, at: None } => {
            let node = db.tree.resolve_path(path)?;
            Ok(Answer::Value(db.tree.value(node)?.map(|a| a.to_string())))
        }
        ProvQuery::Value {
            path,
            at: Some(txn),
        } => {
            let past = replay::replay(db.tree.name(), &db.log, Some(*txn))
                .map_err(|e| EvalError::Replay(e.to_string()))?;
            let node = past.resolve_path(path)?;
            Ok(Answer::Value(past.value(node)?.map(|a| a.to_string())))
        }
        ProvQuery::WhenCreated { path } => {
            let node = db.tree.resolve_path(path)?;
            let txn = queries::when_created(db, node)
                .ok_or_else(|| EvalError::NoProvenance(path.clone()))?;
            let t = db
                .transactions()
                .iter()
                .find(|t| t.id == txn)
                .ok_or_else(|| EvalError::NoProvenance(path.clone()))?;
            Ok(Answer::Created {
                txn,
                curator: t.curator.clone(),
                time: t.time,
            })
        }
        ProvQuery::FromWhere { path } => {
            let node = db.tree.resolve_path(path)?;
            Ok(Answer::Origins(
                queries::how_arrived(db, node)
                    .iter()
                    .map(|o| o.to_string())
                    .collect(),
            ))
        }
        ProvQuery::WhoTouched { path } => {
            let node = db.tree.resolve_path(path)?;
            Ok(Answer::Curators(queries::curators_of(db, node)?))
        }
        ProvQuery::History { path } => {
            let node = db.tree.resolve_path(path)?;
            Ok(Answer::History(
                queries::history(db, node)
                    .into_iter()
                    .map(|(t, ops)| (t.id, t.curator.clone(), ops.len()))
                    .collect(),
            ))
        }
        ProvQuery::ChangedBetween { from, to } => {
            // Replay to `to` so even since-deleted nodes resolve paths.
            let state = replay::replay(db.tree.name(), &db.log, Some(*to))
                .map_err(|e| EvalError::Replay(e.to_string()))?;
            let mut out = Vec::new();
            for txn in db.transactions() {
                if txn.id < *from || txn.id > *to {
                    continue;
                }
                for op in &txn.ops {
                    let node = op.node();
                    let desc = match op {
                        CurationOp::Insert { label, .. } => {
                            format!(
                                "+ {} ({})",
                                state.path_of(node).unwrap_or_else(|_| label.clone()),
                                txn.id
                            )
                        }
                        CurationOp::Paste { .. } => {
                            format!(
                                "⇐ {} ({})",
                                state.path_of(node).unwrap_or_else(|_| node.to_string()),
                                txn.id
                            )
                        }
                        CurationOp::Modify { .. } => {
                            format!(
                                "~ {} ({})",
                                state.path_of(node).unwrap_or_else(|_| node.to_string()),
                                txn.id
                            )
                        }
                        CurationOp::Delete { .. } => format!("- {node} ({})", txn.id),
                    };
                    out.push(desc);
                }
            }
            Ok(Answer::Changed(out))
        }
    }
}

/// Parses and evaluates in one step.
pub fn query(db: &CuratedTree, input: &str) -> Result<Answer, String> {
    let q = parse(input).map_err(|e| e.to_string())?;
    eval(db, &q).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provstore::StoreMode;
    use cdb_model::Atom;

    fn build() -> CuratedTree {
        let mut src = CuratedTree::new("uniprot", StoreMode::Hereditary);
        let sroot = src.tree.root();
        let mut t = src.begin("upstream", 1);
        let e = t.insert(sroot, "entry", None).unwrap();
        t.insert(e, "name", Some(Atom::Str("ywhah".into())))
            .unwrap();
        t.commit();
        let clip = src.copy(e).unwrap();

        let mut db = CuratedTree::new("mydb", StoreMode::Hereditary);
        let root = db.tree.root();
        let mut t = db.begin("alice", 10);
        t.paste(root, &clip).unwrap();
        t.commit();
        let name = db.tree.resolve_path("/entry/name").unwrap();
        let mut t = db.begin("bob", 20);
        t.modify(name, Some(Atom::Str("YWHAH".into()))).unwrap();
        t.commit();
        db
    }

    #[test]
    fn value_queries_read_raw_and_past_data() {
        let db = build();
        let now = query(&db, "VALUE /entry/name").unwrap();
        assert_eq!(now.to_string(), "\"YWHAH\"");
        let then = query(&db, "VALUE /entry/name AT TXN 0").unwrap();
        assert_eq!(then.to_string(), "\"ywhah\"");
    }

    #[test]
    fn when_created_names_the_paste_transaction() {
        let db = build();
        match query(&db, "WHEN CREATED /entry/name").unwrap() {
            Answer::Created { txn, curator, time } => {
                assert_eq!(txn, TxnId(0));
                assert_eq!(curator, "alice");
                assert_eq!(time, 10);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn from_where_shows_the_cross_database_chain() {
        let db = build();
        let a = query(&db, "FROM WHERE /entry").unwrap();
        let s = a.to_string();
        assert!(s.contains("local"), "{s}");
        assert!(s.contains("copied from uniprot:/entry"), "{s}");
    }

    #[test]
    fn who_touched_and_history() {
        let db = build();
        assert_eq!(
            query(&db, "WHO TOUCHED /entry").unwrap().to_string(),
            "alice, bob"
        );
        match query(&db, "HISTORY /entry/name").unwrap() {
            Answer::History(h) => {
                assert_eq!(h.len(), 1, "only the modify targets the name node itself");
                assert_eq!(h[0].1, "bob");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn changed_between_lists_operations() {
        let db = build();
        match query(&db, "CHANGED BETWEEN TXN 1 AND TXN 1").unwrap() {
            Answer::Changed(ps) => {
                assert_eq!(ps.len(), 1);
                assert!(ps[0].contains("/entry/name"), "{ps:?}");
                assert!(ps[0].starts_with('~'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn keywords_are_case_insensitive_but_paths_are_not() {
        let db = build();
        assert!(query(&db, "value /entry/name").is_ok());
        assert!(query(&db, "VALUE /ENTRY/name").is_err());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("FROB /x").is_err());
        assert!(parse("VALUE /x AT TXN seven").is_err());
        assert!(parse("").is_err());
    }
}
