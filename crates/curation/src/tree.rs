//! The mutable semistructured tree store.
//!
//! An edge-labeled tree in the AceDB/semistructured tradition (§6 of the
//! paper): every node has a label, an optional atomic payload, and an
//! ordered list of children. Nodes live in an arena and keep their
//! [`NodeId`] for life, which is what provenance records point at;
//! deleted nodes are tombstoned, never reused.

use std::fmt;

use cdb_model::{Atom, Value};

/// A node identifier: stable for the lifetime of the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index behind this id — stable for the database's
    /// lifetime. The network protocol ships ids to clients as
    /// integers; everything in-process should keep using `NodeId`.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Errors from tree manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The node id is unknown or tombstoned.
    NoSuchNode(NodeId),
    /// The operation would detach the root.
    CannotDeleteRoot,
    /// A path lookup failed.
    NoSuchPath(String),
    /// Attaching a node under its own descendant.
    CycleCreated,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::NoSuchNode(n) => write!(f, "no such node {n}"),
            TreeError::CannotDeleteRoot => write!(f, "cannot delete the root"),
            TreeError::NoSuchPath(p) => write!(f, "no such path {p:?}"),
            TreeError::CycleCreated => write!(f, "operation would create a cycle"),
        }
    }
}

impl std::error::Error for TreeError {}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    label: String,
    value: Option<Atom>,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    alive: bool,
}

/// A curated database as a semistructured tree.
///
/// Equality compares the *entire arena* — names, tombstones, and node
/// order included — which is what the crash-recovery tests rely on: a
/// recovered tree must be byte-identical to the uncrashed one, not
/// merely value-equal on live nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeDb {
    name: String,
    nodes: Vec<Node>,
    root: NodeId,
}

/// A raw arena node, as exposed to the wire codec (`crate::wire`). The
/// arena index of the node is implicit in its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RawNode {
    pub(crate) label: String,
    pub(crate) value: Option<Atom>,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
    pub(crate) alive: bool,
}

impl TreeDb {
    /// Creates a database whose root carries the database name as label.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let root = Node {
            label: name.clone(),
            value: None,
            parent: None,
            children: Vec::new(),
            alive: true,
        };
        TreeDb {
            name,
            nodes: vec![root],
            root: NodeId(0),
        }
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    fn node(&self, id: NodeId) -> Result<&Node, TreeError> {
        self.nodes
            .get(id.0)
            .filter(|n| n.alive)
            .ok_or(TreeError::NoSuchNode(id))
    }

    fn node_mut(&mut self, id: NodeId) -> Result<&mut Node, TreeError> {
        self.nodes
            .get_mut(id.0)
            .filter(|n| n.alive)
            .ok_or(TreeError::NoSuchNode(id))
    }

    /// Whether a node id is live.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.get(id.0).map(|n| n.alive).unwrap_or(false)
    }

    /// A node's label.
    pub fn label(&self, id: NodeId) -> Result<&str, TreeError> {
        Ok(&self.node(id)?.label)
    }

    /// A node's atomic payload.
    pub fn value(&self, id: NodeId) -> Result<Option<&Atom>, TreeError> {
        Ok(self.node(id)?.value.as_ref())
    }

    /// A node's parent.
    pub fn parent(&self, id: NodeId) -> Result<Option<NodeId>, TreeError> {
        Ok(self.node(id)?.parent)
    }

    /// A node's children, in order.
    pub fn children(&self, id: NodeId) -> Result<&[NodeId], TreeError> {
        Ok(&self.node(id)?.children)
    }

    /// The chain of ancestors from `id` (exclusive) to the root
    /// (inclusive).
    pub fn ancestors(&self, id: NodeId) -> Result<Vec<NodeId>, TreeError> {
        let mut out = Vec::new();
        let mut cur = self.node(id)?.parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.node(p)?.parent;
        }
        Ok(out)
    }

    /// The label path from the root to `id`, e.g. `"/entry/name"`.
    pub fn path_of(&self, id: NodeId) -> Result<String, TreeError> {
        if id == self.root {
            self.node(id)?;
            return Ok("/".to_owned());
        }
        let mut labels = vec![self.node(id)?.label.clone()];
        for a in self.ancestors(id)? {
            if a != self.root {
                labels.push(self.node(a)?.label.clone());
            }
        }
        labels.reverse();
        Ok(format!("/{}", labels.join("/")))
    }

    /// The first child of `id` with the given label.
    pub fn child_by_label(&self, id: NodeId, label: &str) -> Result<Option<NodeId>, TreeError> {
        for &c in &self.node(id)?.children {
            if self.node(c)?.label == label {
                return Ok(Some(c));
            }
        }
        Ok(None)
    }

    /// Resolves a `/`-separated label path from the root (first matching
    /// child at each step).
    pub fn resolve_path(&self, path: &str) -> Result<NodeId, TreeError> {
        let mut cur = self.root;
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            cur = self
                .child_by_label(cur, seg)?
                .ok_or_else(|| TreeError::NoSuchPath(path.to_owned()))?;
        }
        Ok(cur)
    }

    /// All live node ids, in creation order.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].alive && self.reachable(NodeId(i)))
            .map(NodeId)
            .collect()
    }

    fn reachable(&self, id: NodeId) -> bool {
        let mut cur = id;
        loop {
            match self.nodes[cur.0].parent {
                None => return cur == self.root,
                Some(p) => {
                    if !self.nodes[p.0].alive {
                        return false;
                    }
                    cur = p;
                }
            }
        }
    }

    /// The number of live, reachable nodes.
    pub fn size(&self) -> usize {
        self.live_nodes().len()
    }

    // ------------------------------------------------- serialization
    //
    // Raw arena access for the wire codec (`crate::wire`). The codec
    // must round-trip tombstoned nodes and arena positions exactly,
    // because node ids are arena indices and log replay re-allocates
    // them in order.

    pub(crate) fn raw_nodes(&self) -> Vec<RawNode> {
        self.nodes
            .iter()
            .map(|n| RawNode {
                label: n.label.clone(),
                value: n.value.clone(),
                parent: n.parent,
                children: n.children.clone(),
                alive: n.alive,
            })
            .collect()
    }

    pub(crate) fn from_raw(name: String, root: NodeId, raw: Vec<RawNode>) -> Self {
        TreeDb {
            name,
            nodes: raw
                .into_iter()
                .map(|n| Node {
                    label: n.label,
                    value: n.value,
                    parent: n.parent,
                    children: n.children,
                    alive: n.alive,
                })
                .collect(),
            root,
        }
    }

    // ----------------------------------------------------- mutations
    //
    // These are the raw tree edits; curation code goes through
    // `ops::Transaction`, which records provenance around them.

    pub(crate) fn create_node(
        &mut self,
        parent: NodeId,
        label: impl Into<String>,
        value: Option<Atom>,
    ) -> Result<NodeId, TreeError> {
        self.node(parent)?; // validate
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            label: label.into(),
            value,
            parent: Some(parent),
            children: Vec::new(),
            alive: true,
        });
        self.node_mut(parent)?.children.push(id);
        Ok(id)
    }

    pub(crate) fn set_value(
        &mut self,
        id: NodeId,
        value: Option<Atom>,
    ) -> Result<Option<Atom>, TreeError> {
        let node = self.node_mut(id)?;
        Ok(std::mem::replace(&mut node.value, value))
    }

    pub(crate) fn delete_subtree(&mut self, id: NodeId) -> Result<(), TreeError> {
        if id == self.root {
            return Err(TreeError::CannotDeleteRoot);
        }
        let parent = self.node(id)?.parent;
        if let Some(p) = parent {
            self.node_mut(p)?.children.retain(|&c| c != id);
        }
        // Tombstone the whole subtree.
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let node = self.node_mut(n)?;
            node.alive = false;
            stack.extend(node.children.iter().copied());
        }
        Ok(())
    }

    /// Extracts a subtree as a plain [`Value`]: leaves become atoms,
    /// inner nodes become records keyed by child label (repeated labels
    /// become a list), preserving the curated-entry shape.
    pub fn subtree_value(&self, id: NodeId) -> Result<Value, TreeError> {
        let node = self.node(id)?;
        if node.children.is_empty() {
            return Ok(match &node.value {
                Some(a) => Value::Atom(a.clone()),
                None => Value::unit(),
            });
        }
        let mut grouped: Vec<(String, Vec<Value>)> = Vec::new();
        for &c in &node.children {
            let label = self.node(c)?.label.clone();
            let v = self.subtree_value(c)?;
            match grouped.iter_mut().find(|(l, _)| *l == label) {
                Some((_, vs)) => vs.push(v),
                None => grouped.push((label, vec![v])),
            }
        }
        Ok(Value::Record(
            grouped
                .into_iter()
                .map(|(l, mut vs)| {
                    let v = if vs.len() == 1 {
                        vs.remove(0)
                    } else {
                        Value::list(vs)
                    };
                    (l, v)
                })
                .collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (TreeDb, NodeId, NodeId) {
        let mut db = TreeDb::new("udb");
        let entry = db.create_node(db.root(), "entry", None).unwrap();
        let name = db
            .create_node(entry, "name", Some(Atom::Str("ywhah".into())))
            .unwrap();
        (db, entry, name)
    }

    #[test]
    fn creation_and_navigation() {
        let (db, entry, name) = sample();
        assert_eq!(db.label(entry).unwrap(), "entry");
        assert_eq!(db.value(name).unwrap(), Some(&Atom::Str("ywhah".into())));
        assert_eq!(db.parent(name).unwrap(), Some(entry));
        assert_eq!(db.children(entry).unwrap(), &[name]);
        assert_eq!(db.path_of(name).unwrap(), "/entry/name");
        assert_eq!(db.resolve_path("/entry/name").unwrap(), name);
        assert_eq!(db.size(), 3);
    }

    #[test]
    fn delete_tombstones_subtree() {
        let (mut db, entry, name) = sample();
        db.delete_subtree(entry).unwrap();
        assert!(!db.is_alive(entry));
        assert!(!db.is_alive(name));
        assert_eq!(db.size(), 1);
        assert!(matches!(db.label(name), Err(TreeError::NoSuchNode(_))));
        assert!(matches!(
            db.resolve_path("/entry"),
            Err(TreeError::NoSuchPath(_))
        ));
    }

    #[test]
    fn root_cannot_be_deleted() {
        let (mut db, _, _) = sample();
        let root = db.root();
        assert_eq!(db.delete_subtree(root), Err(TreeError::CannotDeleteRoot));
    }

    #[test]
    fn node_ids_are_never_reused() {
        let (mut db, entry, _) = sample();
        db.delete_subtree(entry).unwrap();
        let e2 = db.create_node(db.root(), "entry", None).unwrap();
        assert_ne!(e2, entry);
    }

    #[test]
    fn set_value_returns_previous() {
        let (mut db, _, name) = sample();
        let old = db.set_value(name, Some(Atom::Str("ywha1".into()))).unwrap();
        assert_eq!(old, Some(Atom::Str("ywhah".into())));
        assert_eq!(db.value(name).unwrap(), Some(&Atom::Str("ywha1".into())));
    }

    #[test]
    fn subtree_value_groups_children() {
        let mut db = TreeDb::new("udb");
        let entry = db.create_node(db.root(), "entry", None).unwrap();
        db.create_node(entry, "name", Some(Atom::Str("x".into())))
            .unwrap();
        let refs = db.create_node(entry, "refs", None).unwrap();
        db.create_node(refs, "ref", Some(Atom::Int(1))).unwrap();
        db.create_node(refs, "ref", Some(Atom::Int(2))).unwrap();
        let v = db.subtree_value(entry).unwrap();
        assert_eq!(
            v,
            Value::record([
                ("name", Value::str("x")),
                (
                    "refs",
                    Value::record([("ref", Value::list([Value::int(1), Value::int(2)]))])
                ),
            ])
        );
    }

    #[test]
    fn path_of_root_children() {
        let (db, entry, _) = sample();
        assert_eq!(db.path_of(entry).unwrap(), "/entry");
        assert_eq!(db.path_of(db.root()).unwrap(), "/");
    }
}
