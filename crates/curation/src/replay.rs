//! Log replay: reconstructing past states from the transaction log.
//!
//! §5.1 asks: "An open question is whether one could create an archive
//! directly from the transaction log." With the log recording parents
//! for creations and clipboard content for pastes (see
//! [`CurationOp::Insert`] and [`CurationOp::Paste`]), the answer here is
//! yes: [`replay`] deterministically rebuilds the tree as of any
//! transaction — reproducing the original node ids exactly, because the
//! arena allocates in operation order — and `cdb-core` layers archive
//! construction on top (`CuratedDatabase::archive_from_log`).
//!
//! Because ids are reproduced, provenance records and lifecycle data
//! remain valid against replayed states, which makes the reconstruction
//! more than a value-level diff.

use crate::ops::{ClipNode, CuratedTree, CurationOp, Transaction, TxnId};
use crate::tree::{NodeId, TreeDb, TreeError};

/// Errors during replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The log disagrees with what replay produced — the log is corrupt,
    /// truncated, or from another database.
    Inconsistent(String),
    /// An underlying tree error.
    Tree(TreeError),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Inconsistent(m) => write!(f, "inconsistent log: {m}"),
            ReplayError::Tree(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<TreeError> for ReplayError {
    fn from(e: TreeError) -> Self {
        ReplayError::Tree(e)
    }
}

/// Replays a transaction log (in order) up to and **including** `upto`
/// (or the whole log when `None`), returning the reconstructed tree.
/// Node ids in the replayed tree equal the original ids.
pub fn replay(name: &str, log: &[Transaction], upto: Option<TxnId>) -> Result<TreeDb, ReplayError> {
    let mut tree = TreeDb::new(name);
    for txn in log {
        if let Some(limit) = upto {
            if txn.id > limit {
                break;
            }
        }
        for op in &txn.ops {
            apply(&mut tree, op)?;
        }
    }
    Ok(tree)
}

/// Replays a transaction tail onto an existing base tree (a checkpoint
/// snapshot), up to and **including** `upto` (or the whole tail when
/// `None`). This is the truncated-history counterpart of [`replay`]:
/// when the covered log is gone, reconstruction starts from the
/// checkpoint tree instead of empty.
pub fn replay_onto(
    base: TreeDb,
    log: &[Transaction],
    upto: Option<TxnId>,
) -> Result<TreeDb, ReplayError> {
    let mut tree = base;
    for txn in log {
        if let Some(limit) = upto {
            if txn.id > limit {
                break;
            }
        }
        for op in &txn.ops {
            apply(&mut tree, op)?;
        }
    }
    Ok(tree)
}

/// Verifies a reconstructed tree against the live tree of `db` (ids,
/// labels, values, structure).
pub fn verify_replay(db: &CuratedTree, replayed: &TreeDb) -> Result<(), ReplayError> {
    for id in db.tree.live_nodes() {
        if !replayed.is_alive(id) {
            return Err(ReplayError::Inconsistent(format!(
                "live node {id} missing from replay"
            )));
        }
        if db.tree.label(id)? != replayed.label(id)?
            || db.tree.value(id)? != replayed.value(id)?
            || db.tree.children(id)? != replayed.children(id)?
        {
            return Err(ReplayError::Inconsistent(format!(
                "node {id} differs from replay"
            )));
        }
    }
    if replayed.size() != db.tree.size() {
        return Err(ReplayError::Inconsistent(format!(
            "replay has {} live nodes, database has {}",
            replayed.size(),
            db.tree.size()
        )));
    }
    Ok(())
}

/// Replays the log of a curated tree and verifies the reconstruction
/// matches the live tree (ids, labels, values, structure). Returns the
/// replayed tree.
pub fn replay_and_verify(db: &CuratedTree) -> Result<TreeDb, ReplayError> {
    let replayed = replay(db.tree.name(), &db.log, None)?;
    verify_replay(db, &replayed)?;
    Ok(replayed)
}

/// Applies a committed transaction to a curated database during
/// recovery: the tree *and* the provenance store are updated exactly as
/// the original [`crate::ops::Txn`] methods did, allocated node ids are
/// verified against the log, and the transaction is appended to the
/// database's log. This is the WAL tail-replay primitive of
/// `cdb-storage`: `recover = load(checkpoint) + apply_committed(tail)`.
pub fn apply_committed(db: &mut CuratedTree, txn: &Transaction) -> Result<(), ReplayError> {
    for op in &txn.ops {
        match op {
            CurationOp::Insert {
                node,
                parent,
                label,
                value,
            } => {
                let created = db.tree.create_node(*parent, label.clone(), value.clone())?;
                check_id(*node, created)?;
                db.prov.on_insert(created, txn.id);
            }
            CurationOp::Modify { node, new, .. } => {
                db.tree.set_value(*node, new.clone())?;
                db.prov.on_modify(*node, txn.id);
            }
            CurationOp::Delete { node } => {
                db.tree.delete_subtree(*node)?;
            }
            CurationOp::Paste {
                node,
                parent,
                origin,
                snapshot,
            } => {
                let created = paste_snapshot(&mut db.tree, *parent, snapshot)?;
                check_id(*node, created)?;
                db.prov
                    .on_paste(created, txn.id, origin.clone(), snapshot.size());
            }
        }
    }
    db.adopt_unapplied(txn.clone());
    Ok(())
}

fn apply(tree: &mut TreeDb, op: &CurationOp) -> Result<(), ReplayError> {
    match op {
        CurationOp::Insert {
            node,
            parent,
            label,
            value,
        } => {
            let created = tree.create_node(*parent, label.clone(), value.clone())?;
            check_id(*node, created)
        }
        CurationOp::Modify { node, new, .. } => {
            tree.set_value(*node, new.clone())?;
            Ok(())
        }
        CurationOp::Delete { node } => {
            tree.delete_subtree(*node)?;
            Ok(())
        }
        CurationOp::Paste {
            node,
            parent,
            snapshot,
            ..
        } => {
            let created = paste_snapshot(tree, *parent, snapshot)?;
            check_id(*node, created)
        }
    }
}

fn check_id(expected: NodeId, got: NodeId) -> Result<(), ReplayError> {
    if expected == got {
        Ok(())
    } else {
        Err(ReplayError::Inconsistent(format!(
            "replay allocated {got}, log says {expected}"
        )))
    }
}

fn paste_snapshot(
    tree: &mut TreeDb,
    parent: NodeId,
    snap: &ClipNode,
) -> Result<NodeId, ReplayError> {
    let node = tree.create_node(parent, snap.label.clone(), snap.value.clone())?;
    for c in &snap.children {
        paste_snapshot(tree, node, c)?;
    }
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provstore::StoreMode;
    use cdb_model::Atom;

    fn build() -> CuratedTree {
        let mut db = CuratedTree::new("d", StoreMode::Hereditary);
        let root = db.tree.root();
        let mut t = db.begin("a", 1);
        let e = t.insert(root, "entry", None).unwrap();
        let n = t.insert(e, "name", Some(Atom::Str("x".into()))).unwrap();
        t.commit();
        let mut t = db.begin("b", 2);
        t.modify(n, Some(Atom::Str("y".into()))).unwrap();
        let e2 = t.insert(root, "entry2", None).unwrap();
        t.commit();
        let mut t = db.begin("c", 3);
        t.delete(e2).unwrap();
        t.commit();
        db
    }

    #[test]
    fn full_replay_matches_live_tree() {
        let db = build();
        let replayed = replay_and_verify(&db).unwrap();
        assert_eq!(replayed.size(), db.tree.size());
    }

    #[test]
    fn partial_replay_reconstructs_past_states() {
        let db = build();
        // After txn 0: root + entry + name(x).
        let t0 = replay("d", &db.log, Some(TxnId(0))).unwrap();
        assert_eq!(t0.size(), 3);
        let name = t0.resolve_path("/entry/name").unwrap();
        assert_eq!(t0.value(name).unwrap(), Some(&Atom::Str("x".into())));
        // After txn 1: name modified, entry2 added.
        let t1 = replay("d", &db.log, Some(TxnId(1))).unwrap();
        assert_eq!(t1.size(), 4);
        let name = t1.resolve_path("/entry/name").unwrap();
        assert_eq!(t1.value(name).unwrap(), Some(&Atom::Str("y".into())));
        // After txn 2: entry2 gone again.
        let t2 = replay("d", &db.log, Some(TxnId(2))).unwrap();
        assert_eq!(t2.size(), 3);
    }

    #[test]
    fn replay_reproduces_node_ids() {
        let db = build();
        let replayed = replay_and_verify(&db).unwrap();
        let live_orig = db.tree.live_nodes();
        let live_replay = replayed.live_nodes();
        assert_eq!(live_orig, live_replay);
    }

    #[test]
    fn pastes_replay_with_content() {
        let src = {
            let mut s = CuratedTree::new("s", StoreMode::Hereditary);
            let root = s.tree.root();
            let mut t = s.begin("u", 1);
            let e = t.insert(root, "entry", None).unwrap();
            t.insert(e, "ac", Some(Atom::Str("Q1".into()))).unwrap();
            t.commit();
            s
        };
        let clip = src.copy(src.tree.resolve_path("/entry").unwrap()).unwrap();
        let mut db = CuratedTree::new("d", StoreMode::Hereditary);
        let root = db.tree.root();
        let mut t = db.begin("me", 2);
        t.paste(root, &clip).unwrap();
        t.commit();
        let replayed = replay_and_verify(&db).unwrap();
        let ac = replayed.resolve_path("/entry/ac").unwrap();
        assert_eq!(replayed.value(ac).unwrap(), Some(&Atom::Str("Q1".into())));
    }

    #[test]
    fn apply_committed_reproduces_the_live_database_exactly() {
        let db = build();
        let mut recovered = CuratedTree::new("d", StoreMode::Hereditary);
        for txn in db.transactions() {
            apply_committed(&mut recovered, txn).unwrap();
        }
        // Whole-struct equality: arena (tombstones included), provenance
        // records, log, and the next transaction id.
        assert_eq!(recovered, db);
        // And the next transaction continues the id sequence.
        let id = recovered.begin("x", 9).commit();
        assert_eq!(Some(id), recovered.last_txn_id());
        assert!(id > db.last_txn_id().unwrap());
    }

    #[test]
    fn truncated_or_corrupt_logs_are_detected() {
        let db = build();
        // Drop the middle transaction: ids no longer line up.
        let mut broken = db.log.clone();
        broken.remove(1);
        // Either replay errors (id mismatch / missing node)…
        match replay("d", &broken, None) {
            Err(_) => {}
            Ok(t) => {
                // …or produces a tree that verification would reject.
                assert_ne!(t.size(), db.tree.size());
            }
        }
    }
}
