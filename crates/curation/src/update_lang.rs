//! The provenance-aware update language (§3, Figure 3; \[52, 14\]).
//!
//! Figure 3's three SQL programs compute the same relation but carry
//! provenance differently:
//!
//! 1. the **query** (`SELECT R.A, 55 AS B … UNION SELECT * …`) is
//!    *copying*: it builds a fresh table (⊥) and fresh tuples around
//!    copied cells;
//! 2. **`DELETE` + `INSERT`** preserves the *table's* color while
//!    replacing a whole tuple with an invented one;
//! 3. **`UPDATE … SET`** preserves both the table's and the updated
//!    *tuple's* colors, replacing only the assigned cell.
//!
//! Programs 2 and 3 are not copying (they keep a container's color while
//! changing a component) but satisfy the weaker **kind-preservation**
//! condition of \[14\], which this module's generic complex-object
//! update operations ([`UpdateOp`]) maintain by construction.

use cdb_annotation::nested::{CNode, Colored, ColoredTable};
use cdb_model::Atom;
use cdb_relalg::{Pred, RelalgError};

/// Colored semantics of `INSERT INTO t VALUES (…)`: a freshly-invented
/// tuple (all parts ⊥) appended to the table, whose color is preserved.
pub fn sql_insert(table: &ColoredTable, values: Vec<Atom>) -> Result<ColoredTable, RelalgError> {
    if values.len() != table.schema.arity() {
        return Err(RelalgError::UpdateError("arity mismatch in INSERT".into()));
    }
    let fields: Vec<(String, Colored)> = table
        .schema
        .attrs()
        .iter()
        .zip(values)
        .map(|(a, v)| (a.clone(), Colored::invented_atom(v)))
        .collect();
    let new_row = Colored::record(fields, None);
    let mut out = table.clone();
    match &mut out.table.node {
        CNode::Set(rows) => rows.push(new_row),
        _ => return Err(RelalgError::UpdateError("not a table".into())),
    }
    Ok(out)
}

/// Colored semantics of `DELETE FROM t WHERE pred`: satisfying rows are
/// removed; the table keeps its color.
pub fn sql_delete(table: &ColoredTable, pred: &Pred) -> Result<ColoredTable, RelalgError> {
    let mut out = table.clone();
    let schema = out.schema.clone();
    match &mut out.table.node {
        CNode::Set(rows) => {
            let mut kept = Vec::new();
            for row in rows.drain(..) {
                if !pred.eval(&schema, &row_tuple(&schema, &row)?)? {
                    kept.push(row);
                }
            }
            *rows = kept;
        }
        _ => return Err(RelalgError::UpdateError("not a table".into())),
    }
    Ok(out)
}

/// Colored semantics of `UPDATE t SET attr = v, … WHERE pred`: matching
/// rows keep their tuple color; assigned cells become invented atoms
/// (⊥); other cells keep their colors.
pub fn sql_update(
    table: &ColoredTable,
    sets: &[(&str, Atom)],
    pred: &Pred,
) -> Result<ColoredTable, RelalgError> {
    for (a, _) in sets {
        table.schema.resolve(a)?;
    }
    let mut out = table.clone();
    let schema = out.schema.clone();
    match &mut out.table.node {
        CNode::Set(rows) => {
            for row in rows.iter_mut() {
                if pred.eval(&schema, &row_tuple(&schema, row)?)? {
                    let CNode::Record(fields) = &mut row.node else {
                        return Err(RelalgError::UpdateError("rows must be records".into()));
                    };
                    for (a, v) in sets {
                        fields.insert((*a).to_owned(), Colored::invented_atom(v.clone()));
                    }
                }
            }
        }
        _ => return Err(RelalgError::UpdateError("not a table".into())),
    }
    Ok(out)
}

/// The colored semantics of Figure 3's *query* program:
/// `SELECT R.A, 55 AS B FROM R WHERE A = 10 UNION SELECT * FROM R WHERE
/// A <> 10` — fresh table, fresh tuples around copied A cells for the
/// rewritten rows, whole preserved tuples for the rest.
pub fn figure3_query(table: &ColoredTable) -> Result<ColoredTable, RelalgError> {
    let schema = table.schema.clone();
    let CNode::Set(rows) = &table.table.node else {
        return Err(RelalgError::UpdateError("not a table".into()));
    };
    let mut out_rows = Vec::new();
    for row in rows {
        let t = row_tuple(&schema, row)?;
        let a_is_10 = Pred::col_eq_const("A", 10).eval(&schema, &t)?;
        if a_is_10 {
            let CNode::Record(fields) = &row.node else {
                return Err(RelalgError::UpdateError("rows must be records".into()));
            };
            let a_cell = fields
                .get("A")
                .cloned()
                .ok_or_else(|| RelalgError::UpdateError("missing A".into()))?;
            out_rows.push(Colored::record(
                [
                    ("A".to_owned(), a_cell),
                    ("B".to_owned(), Colored::invented_atom(55)),
                ],
                None,
            ));
        } else {
            out_rows.push(row.clone()); // SELECT * preserves the tuple
        }
    }
    Ok(ColoredTable {
        schema,
        table: Colored::set(out_rows, None),
    })
}

fn row_tuple(schema: &cdb_relalg::Schema, row: &Colored) -> Result<Vec<Atom>, RelalgError> {
    let CNode::Record(m) = &row.node else {
        return Err(RelalgError::UpdateError("rows must be records".into()));
    };
    schema
        .attrs()
        .iter()
        .map(|a| {
            let cell = m
                .get(a)
                .ok_or_else(|| RelalgError::UpdateError(format!("missing attr {a}")))?;
            match &cell.node {
                CNode::Atom(atom) => Ok(atom.clone()),
                _ => Err(RelalgError::UpdateError("cells must be atomic".into())),
            }
        })
        .collect()
}

/// Runs a parsed SQL statement (from `cdb-relalg::sql`) against a
/// colored table with the provenance semantics above. `UPDATE`/`DELETE`
/// mutate in place (table color preserved); `INSERT` appends invented
/// tuples; single-table queries evaluate with the colored evaluator of
/// `cdb-annotation` (the statement's scans must reference `table_name`).
pub fn run_statement(
    table: &ColoredTable,
    table_name: &str,
    stmt: &cdb_relalg::sql::Statement,
) -> Result<ColoredTable, RelalgError> {
    use cdb_relalg::sql::Statement;
    match stmt {
        Statement::Insert { relation, rows } => {
            check_rel(relation, table_name)?;
            let mut cur = table.clone();
            for row in rows {
                cur = sql_insert(&cur, row.clone())?;
            }
            Ok(cur)
        }
        Statement::Delete { relation, pred } => {
            check_rel(relation, table_name)?;
            sql_delete(table, pred)
        }
        Statement::Update {
            relation,
            sets,
            pred,
        } => {
            check_rel(relation, table_name)?;
            let sets: Vec<(&str, Atom)> =
                sets.iter().map(|(c, a)| (c.as_str(), a.clone())).collect();
            sql_update(table, &sets, pred)
        }
        Statement::Query(q) => {
            // Bridge to the flat colored evaluator: rows become colored
            // tuples (cell colors kept; tuple/table colors do not exist
            // at the flat level, so a query is evaluated on cells and
            // re-wrapped with ⊥ containers — which is exactly the
            // copying semantics for queries).
            let mut flat = cdb_annotation::colored::ColoredRelation::empty(table.schema.clone());
            let CNode::Set(rows) = &table.table.node else {
                return Err(RelalgError::UpdateError("not a table".into()));
            };
            for row in rows {
                let CNode::Record(fields) = &row.node else {
                    return Err(RelalgError::UpdateError("rows must be records".into()));
                };
                let mut values = Vec::new();
                let mut colors = Vec::new();
                for a in table.schema.attrs() {
                    let cell = fields
                        .get(a)
                        .ok_or_else(|| RelalgError::UpdateError(format!("missing {a}")))?;
                    let CNode::Atom(atom) = &cell.node else {
                        return Err(RelalgError::UpdateError("cells must be atomic".into()));
                    };
                    values.push(atom.clone());
                    colors.push(
                        cell.color
                            .iter()
                            .cloned()
                            .collect::<std::collections::BTreeSet<_>>(),
                    );
                }
                flat.insert(cdb_annotation::colored::ColoredTuple { values, colors })?;
            }
            let mut db = cdb_annotation::colored::ColoredDatabase::new();
            db.insert(table_name.to_owned(), flat);
            let out = cdb_annotation::colored::eval_colored(
                &db,
                q,
                &cdb_annotation::colored::Scheme::Default,
            )?;
            // Re-nest: fresh (⊥) tuples and table around the output
            // cells; merged cells keep at most one color (pick the
            // smallest for determinism — set-valued colors at the
            // nested level are modeled as sibling tuples in Figure 2,
            // which the flat evaluator has already merged away).
            // Qualifiers introduced by SELECT * scans are stripped.
            let out_schema = out
                .schema()
                .unqualified()
                .unwrap_or_else(|_| out.schema().clone());
            let rows = out
                .tuples()
                .iter()
                .map(|t| {
                    let fields: Vec<(String, Colored)> = out_schema
                        .attrs()
                        .iter()
                        .zip(t.values.iter().zip(&t.colors))
                        .map(|(a, (v, cs))| {
                            let cell = Colored {
                                color: cs.iter().next().cloned(),
                                node: CNode::Atom(v.clone()),
                            };
                            (a.clone(), cell)
                        })
                        .collect();
                    Colored::record(fields, None)
                })
                .collect::<Vec<_>>();
            Ok(ColoredTable {
                schema: out_schema,
                table: Colored::set(rows, None),
            })
        }
    }
}

fn check_rel(relation: &str, table_name: &str) -> Result<(), RelalgError> {
    if relation == table_name {
        Ok(())
    } else {
        Err(RelalgError::NoSuchRelation(relation.to_owned()))
    }
}

// ------------------------------------------------ complex-object updates

/// A path into a colored complex object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CStep {
    /// Descend into a record field.
    Field(String),
    /// Descend into a set element by position.
    Elem(usize),
}

/// The update operations of the complex-object update language \[52\].
/// All are kind-preserving by construction: containers keep their
/// colors while gaining/losing components; replaced atoms are invented
/// (⊥).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert (or overwrite) a record field.
    InsertField {
        /// Path to the record.
        path: Vec<CStep>,
        /// The field label.
        label: String,
        /// The new field value.
        value: Colored,
    },
    /// Delete a record field.
    DeleteField {
        /// Path to the record.
        path: Vec<CStep>,
        /// The field label.
        label: String,
    },
    /// Insert an element into a set.
    InsertElem {
        /// Path to the set.
        path: Vec<CStep>,
        /// The new element.
        value: Colored,
    },
    /// Delete a set element by position.
    DeleteElem {
        /// Path to the set.
        path: Vec<CStep>,
        /// The element index.
        index: usize,
    },
    /// Replace an atom with a new (invented, ⊥) atom.
    ReplaceAtom {
        /// Path to the atom.
        path: Vec<CStep>,
        /// The new atom.
        value: Atom,
    },
}

/// Applies an update operation, returning the new colored value.
pub fn apply(value: &Colored, op: &UpdateOp) -> Result<Colored, RelalgError> {
    match op {
        UpdateOp::InsertField {
            path,
            label,
            value: v,
        } => with_node(value, path, &mut |node| match node {
            CNode::Record(m) => {
                m.insert(label.clone(), v.clone());
                Ok(())
            }
            _ => Err(RelalgError::UpdateError(
                "InsertField target not a record".into(),
            )),
        }),
        UpdateOp::DeleteField { path, label } => with_node(value, path, &mut |node| match node {
            CNode::Record(m) => m
                .remove(label)
                .map(|_| ())
                .ok_or_else(|| RelalgError::UpdateError("no such field".into())),
            _ => Err(RelalgError::UpdateError(
                "DeleteField target not a record".into(),
            )),
        }),
        UpdateOp::InsertElem { path, value: v } => with_node(value, path, &mut |node| match node {
            CNode::Set(xs) => {
                xs.push(v.clone());
                Ok(())
            }
            _ => Err(RelalgError::UpdateError(
                "InsertElem target not a set".into(),
            )),
        }),
        UpdateOp::DeleteElem { path, index } => with_node(value, path, &mut |node| match node {
            CNode::Set(xs) => {
                if *index < xs.len() {
                    xs.remove(*index);
                    Ok(())
                } else {
                    Err(RelalgError::UpdateError(
                        "element index out of range".into(),
                    ))
                }
            }
            _ => Err(RelalgError::UpdateError(
                "DeleteElem target not a set".into(),
            )),
        }),
        UpdateOp::ReplaceAtom { path, value: v } => {
            let mut out = value.clone();
            let target = navigate_mut(&mut out, path)?;
            match &target.node {
                CNode::Atom(_) => {
                    target.node = CNode::Atom(v.clone());
                    target.color = None; // invented
                    Ok(out)
                }
                _ => Err(RelalgError::UpdateError(
                    "ReplaceAtom target not an atom".into(),
                )),
            }
        }
    }
}

/// Applies a sequence of operations in order.
pub fn apply_all(value: &Colored, ops: &[UpdateOp]) -> Result<Colored, RelalgError> {
    let mut cur = value.clone();
    for op in ops {
        cur = apply(&cur, op)?;
    }
    Ok(cur)
}

fn with_node(
    value: &Colored,
    path: &[CStep],
    f: &mut dyn FnMut(&mut CNode) -> Result<(), RelalgError>,
) -> Result<Colored, RelalgError> {
    let mut out = value.clone();
    let target = navigate_mut(&mut out, path)?;
    f(&mut target.node)?;
    Ok(out)
}

fn navigate_mut<'a>(
    value: &'a mut Colored,
    path: &[CStep],
) -> Result<&'a mut Colored, RelalgError> {
    let mut cur = value;
    for step in path {
        cur = match (step, &mut cur.node) {
            (CStep::Field(l), CNode::Record(m)) => m
                .get_mut(l)
                .ok_or_else(|| RelalgError::UpdateError(format!("no field {l}")))?,
            (CStep::Elem(i), CNode::Set(xs)) => xs
                .get_mut(*i)
                .ok_or_else(|| RelalgError::UpdateError("element out of range".into()))?,
            _ => {
                return Err(RelalgError::UpdateError(
                    "path step does not match value shape".into(),
                ))
            }
        };
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_annotation::nested::{check_copying, check_kind_preservation};
    use cdb_relalg::Schema;

    fn int(i: i64) -> Atom {
        Atom::Int(i)
    }

    /// Figure 3's R: {(A:10^b1, B:49^b2)^t1, (A:12^b3, B:50^b4)^t2}^tab.
    fn figure3_r() -> ColoredTable {
        ColoredTable::figure2_style(
            Schema::new(["A", "B"]).unwrap(),
            &[vec![int(10), int(49)], vec![int(12), int(50)]],
        )
    }

    fn rows(t: &ColoredTable) -> Vec<String> {
        match &t.table.node {
            CNode::Set(xs) => xs.iter().map(|r| r.to_string()).collect(),
            _ => panic!(),
        }
    }

    #[test]
    fn figure3_program1_query_is_copying() {
        let r = figure3_r();
        let out = figure3_query(&r).unwrap();
        // Fresh table, fresh tuple around the copied A cell, preserved
        // second tuple.
        assert_eq!(out.table.color, None);
        assert_eq!(
            rows(&out),
            vec!["(A: 10^b1, B: 55^⊥)^⊥", "(A: 12^b3, B: 50^b4)^t2"]
        );
        check_copying(&r.table, &out.table).unwrap();
    }

    #[test]
    fn figure3_program2_delete_insert() {
        let r = figure3_r();
        let out = sql_insert(
            &sql_delete(&r, &Pred::col_eq_const("A", 10)).unwrap(),
            vec![int(10), int(55)],
        )
        .unwrap();
        // Table keeps its color; the new tuple is wholly invented.
        assert_eq!(out.table.color.as_deref(), Some("tab"));
        assert_eq!(
            rows(&out),
            vec!["(A: 12^b3, B: 50^b4)^t2", "(A: 10^⊥, B: 55^⊥)^⊥"]
        );
        // Not copying (table color preserved but contents changed)…
        assert!(check_copying(&r.table, &out.table).is_err());
        // …but kind-preserving.
        check_kind_preservation(&r.table, &out.table).unwrap();
    }

    #[test]
    fn figure3_program3_update() {
        let r = figure3_r();
        let out = sql_update(&r, &[("B", int(55))], &Pred::col_eq_const("A", 10)).unwrap();
        // Table AND tuple colors preserved; only B is invented.
        assert_eq!(out.table.color.as_deref(), Some("tab"));
        assert_eq!(
            rows(&out),
            vec!["(A: 10^b1, B: 55^⊥)^t1", "(A: 12^b3, B: 50^b4)^t2"]
        );
        assert!(check_copying(&r.table, &out.table).is_err());
        check_kind_preservation(&r.table, &out.table).unwrap();
    }

    #[test]
    fn all_three_programs_agree_on_plain_values() {
        let r = figure3_r();
        let p1 = figure3_query(&r).unwrap().table.strip();
        let p2 = sql_insert(
            &sql_delete(&r, &Pred::col_eq_const("A", 10)).unwrap(),
            vec![int(10), int(55)],
        )
        .unwrap()
        .table
        .strip();
        let p3 = sql_update(&r, &[("B", int(55))], &Pred::col_eq_const("A", 10))
            .unwrap()
            .table
            .strip();
        assert_eq!(p1, p2);
        assert_eq!(p2, p3);
    }

    #[test]
    fn figure3_statements_run_through_the_sql_parser() {
        use cdb_relalg::sql::parse_script;
        let r = figure3_r();
        // P2's statements, as printed in the figure.
        let stmts =
            parse_script("DELETE FROM R WHERE A = 10; INSERT INTO R VALUES (10, 55);").unwrap();
        let mut cur = r.clone();
        for s in &stmts {
            cur = run_statement(&cur, "R", s).unwrap();
        }
        assert_eq!(cur.table.color.as_deref(), Some("tab"));
        assert_eq!(
            rows(&cur),
            vec!["(A: 12^b3, B: 50^b4)^t2", "(A: 10^⊥, B: 55^⊥)^⊥"]
        );
        // P3 via the parser (paper's transposed clause order).
        let stmts = parse_script("UPDATE R WHERE A = 10; SET B = 55").unwrap();
        let p3 = run_statement(&r, "R", &stmts[0]).unwrap();
        assert_eq!(
            rows(&p3),
            vec!["(A: 10^b1, B: 55^⊥)^t1", "(A: 12^b3, B: 50^b4)^t2"]
        );
        // Statements addressed to an unknown table are rejected.
        let bad = parse_script("DELETE FROM S WHERE A = 1").unwrap();
        assert!(run_statement(&r, "R", &bad[0]).is_err());
    }

    #[test]
    fn queries_through_run_statement_are_copying() {
        use cdb_relalg::sql::parse;
        let r = figure3_r();
        let stmt = parse("SELECT * FROM R WHERE A = 10").unwrap();
        let out = run_statement(&r, "R", &stmt).unwrap();
        // Flat bridge: cells keep their colors, containers are fresh.
        assert_eq!(out.table.color, None);
        assert_eq!(rows(&out), vec!["(A: 10^b1, B: 49^b2)^⊥"]);
    }

    #[test]
    fn complex_object_updates_are_kind_preserving() {
        let v = Colored::distinct(
            &cdb_model::Value::record([
                ("name", cdb_model::Value::str("x")),
                ("refs", cdb_model::Value::set([cdb_model::Value::int(1)])),
            ]),
            "c",
        );
        let ops = vec![
            UpdateOp::InsertField {
                path: vec![],
                label: "organism".into(),
                value: Colored::invented_atom("human"),
            },
            UpdateOp::InsertElem {
                path: vec![CStep::Field("refs".into())],
                value: Colored::invented_atom(2),
            },
            UpdateOp::ReplaceAtom {
                path: vec![CStep::Field("name".into())],
                value: Atom::Str("y".into()),
            },
        ];
        let out = apply_all(&v, &ops).unwrap();
        check_kind_preservation(&v, &out).unwrap();
        // The record kept its color while gaining a field — the Theseus
        // move copying would reject.
        assert_eq!(out.color, v.color);
        assert!(check_copying(&v, &out).is_err());
    }

    #[test]
    fn delete_ops() {
        let v = Colored::distinct(
            &cdb_model::Value::record([
                ("a", cdb_model::Value::int(1)),
                (
                    "refs",
                    cdb_model::Value::set([cdb_model::Value::int(1), cdb_model::Value::int(2)]),
                ),
            ]),
            "c",
        );
        let out = apply(
            &v,
            &UpdateOp::DeleteField {
                path: vec![],
                label: "a".into(),
            },
        )
        .unwrap();
        check_kind_preservation(&v, &out).unwrap();
        let out2 = apply(
            &out,
            &UpdateOp::DeleteElem {
                path: vec![CStep::Field("refs".into())],
                index: 0,
            },
        )
        .unwrap();
        check_kind_preservation(&v, &out2).unwrap();
        match &out2.node {
            CNode::Record(m) => {
                assert!(!m.contains_key("a"));
                match &m["refs"].node {
                    CNode::Set(xs) => assert_eq!(xs.len(), 1),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn path_errors_are_reported() {
        let v = Colored::invented_atom(1);
        assert!(apply(
            &v,
            &UpdateOp::InsertField {
                path: vec![CStep::Field("x".into())],
                label: "y".into(),
                value: Colored::invented_atom(2)
            }
        )
        .is_err());
        assert!(apply(
            &v,
            &UpdateOp::DeleteElem {
                path: vec![],
                index: 0
            }
        )
        .is_err());
        // Replacing a record as if it were an atom fails.
        let rec = Colored::record([("a", Colored::invented_atom(1))], None);
        assert!(apply(
            &rec,
            &UpdateOp::ReplaceAtom {
                path: vec![],
                value: Atom::Int(2)
            }
        )
        .is_err());
    }
}
