//! Curation operations and transactions.
//!
//! §3.1: curation is "entirely familiar to anyone who has constructed
//! bibliographies": find an entry elsewhere, **copy** it, **paste** it
//! into one's own database, then **correct** it. Each basic operation is
//! recorded inside a [`Transaction`] attributed to a curator at a
//! timestamp; the provenance store (see [`crate::provstore`]) derives
//! per-node provenance from these records.

use std::fmt;

use cdb_model::Atom;

use crate::provstore::{Origin, ProvStore};
use crate::tree::{NodeId, TreeDb, TreeError};

/// A transaction identifier (monotonic per database).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// One basic curation operation, as recorded in the transaction log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CurationOp {
    /// A fresh node was inserted (new data, typed in by the curator).
    Insert {
        /// The created node.
        node: NodeId,
        /// The parent it was attached to (recorded so the log is
        /// replayable — see [`crate::replay`]).
        parent: NodeId,
        /// Its label.
        label: String,
        /// Its atomic payload, if a leaf.
        value: Option<Atom>,
    },
    /// A node's atomic payload was modified.
    Modify {
        /// The modified node.
        node: NodeId,
        /// The previous payload.
        old: Option<Atom>,
        /// The new payload.
        new: Option<Atom>,
    },
    /// A subtree was deleted.
    Delete {
        /// The deleted subtree root.
        node: NodeId,
    },
    /// A subtree copied from elsewhere was pasted here.
    Paste {
        /// The pasted subtree's new root node.
        node: NodeId,
        /// The parent it was attached to.
        parent: NodeId,
        /// Where the data came from.
        origin: Origin,
        /// The pasted content, as captured on the clipboard. Recording
        /// the content (not just a reference) is what makes the log
        /// *replayable* — see [`crate::replay`], which answers §5.1's
        /// "whether one could create an archive directly from the
        /// transaction log".
        snapshot: ClipNode,
    },
}

impl CurationOp {
    /// The node this operation primarily concerns.
    pub fn node(&self) -> NodeId {
        match self {
            CurationOp::Insert { node, .. }
            | CurationOp::Modify { node, .. }
            | CurationOp::Delete { node }
            | CurationOp::Paste { node, .. } => *node,
        }
    }
}

/// A committed transaction: who, when, and the operation log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// The transaction id.
    pub id: TxnId,
    /// The curator who performed it.
    pub curator: String,
    /// A logical timestamp (supplied by the caller; the engine never
    /// reads wall-clock time).
    pub time: u64,
    /// The operations, in execution order.
    pub ops: Vec<CurationOp>,
}

/// A subtree captured by a copy operation, carrying its provenance.
///
/// §3: "When data is copied between applications or systems, its
/// annotation, context, and especially where-provenance information is
/// lost." The clipboard is exactly the artifact that *prevents* that
/// loss: it snapshots both the data and the source's provenance chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clipboard {
    /// The copied subtree (labels, values, structure).
    pub snapshot: ClipNode,
    /// The source database name.
    pub source_db: String,
    /// The source path at copy time.
    pub source_path: String,
    /// The provenance chain of the copied subtree root in the source,
    /// oldest first (the source's own origins, so that pasting preserves
    /// the full derivation history across databases).
    pub source_chain: Vec<Origin>,
}

/// A node snapshot inside a clipboard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClipNode {
    /// The node label.
    pub label: String,
    /// The node payload.
    pub value: Option<Atom>,
    /// Child snapshots.
    pub children: Vec<ClipNode>,
}

impl ClipNode {
    /// Number of nodes in this snapshot.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ClipNode::size).sum::<usize>()
    }
}

/// A curated database: the tree plus its transaction log and provenance
/// store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CuratedTree {
    /// The underlying tree.
    pub tree: TreeDb,
    /// The committed transaction log. May be a *tail* of the full
    /// history when the database was recovered from a checkpoint whose
    /// covered log was truncated (`Retention::Reclaim`); `base_txn`
    /// then records where the tail begins.
    pub log: Vec<Transaction>,
    /// The provenance store.
    pub prov: ProvStore,
    next_txn: u64,
    /// Last transaction id folded into the state before `log` begins
    /// (`None` when `log` is the full history).
    base_txn: Option<TxnId>,
}

impl CuratedTree {
    /// Creates an empty curated database with the given provenance-store
    /// mode.
    pub fn new(name: impl Into<String>, mode: crate::provstore::StoreMode) -> Self {
        CuratedTree {
            tree: TreeDb::new(name),
            log: Vec::new(),
            prov: ProvStore::new(mode),
            next_txn: 0,
            base_txn: None,
        }
    }

    /// Begins a transaction. Operations are applied immediately to the
    /// tree; the record is committed (appended to the log and the
    /// provenance store) by [`Txn::commit`].
    pub fn begin(&mut self, curator: impl Into<String>, time: u64) -> Txn<'_> {
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        Txn {
            db: self,
            txn: Transaction {
                id,
                curator: curator.into(),
                time,
                ops: Vec::new(),
            },
        }
    }

    /// Copies a subtree of this database to a clipboard (non-mutating).
    pub fn copy(&self, node: NodeId) -> Result<Clipboard, TreeError> {
        Ok(Clipboard {
            snapshot: self.snapshot(node)?,
            source_db: self.tree.name().to_owned(),
            source_path: self.tree.path_of(node)?,
            source_chain: self.prov.chain(&self.tree, node),
        })
    }

    fn snapshot(&self, node: NodeId) -> Result<ClipNode, TreeError> {
        Ok(ClipNode {
            label: self.tree.label(node)?.to_owned(),
            value: self.tree.value(node)?.cloned(),
            children: self
                .tree
                .children(node)?
                .to_vec()
                .into_iter()
                .map(|c| self.snapshot(c))
                .collect::<Result<_, _>>()?,
        })
    }

    /// Reassembles a curated database from recovered parts (the durable
    /// WAL's checkpoint + tail-replay path in `cdb-storage`). The next
    /// transaction id continues after the last logged transaction.
    pub fn from_parts(tree: TreeDb, log: Vec<Transaction>, prov: ProvStore) -> Self {
        let next_txn = log.last().map(|t| t.id.0 + 1).unwrap_or(0);
        CuratedTree {
            tree,
            log,
            prov,
            next_txn,
            base_txn: None,
        }
    }

    /// Reassembles a curated database whose `log` is only the *tail*
    /// of its history: everything through `base_txn` is already folded
    /// into `tree` and `prov`, and the covered transaction records are
    /// gone (checkpoint-anchored truncation under `Retention::Reclaim`).
    /// Transaction ids continue after the tail, or after `base_txn`
    /// when the tail is empty.
    pub fn from_parts_at(
        tree: TreeDb,
        log: Vec<Transaction>,
        prov: ProvStore,
        base_txn: Option<TxnId>,
    ) -> Self {
        let next_txn = log
            .last()
            .map(|t| t.id.0 + 1)
            .or(base_txn.map(|t| t.0 + 1))
            .unwrap_or(0);
        CuratedTree {
            tree,
            log,
            prov,
            next_txn,
            base_txn,
        }
    }

    /// Appends an already-committed transaction to the log *without*
    /// applying it — used by recovery for transactions whose effects are
    /// already covered by a loaded checkpoint.
    pub fn adopt_unapplied(&mut self, txn: Transaction) {
        self.next_txn = txn.id.0 + 1;
        self.log.push(txn);
    }

    /// The committed transactions.
    pub fn transactions(&self) -> &[Transaction] {
        &self.log
    }

    /// The id of the most recently committed transaction, if any —
    /// falling back to the truncated-history base when the tail log is
    /// empty.
    pub fn last_txn_id(&self) -> Option<TxnId> {
        self.log.last().map(|t| t.id).or(self.base_txn)
    }

    /// Where the in-memory log begins: the last transaction id already
    /// folded into the state before `log`, or `None` when `log` is the
    /// full history.
    pub fn base_txn_id(&self) -> Option<TxnId> {
        self.base_txn
    }
}

/// An open transaction.
pub struct Txn<'a> {
    db: &'a mut CuratedTree,
    txn: Transaction,
}

impl<'a> Txn<'a> {
    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.txn.id
    }

    /// Read access to the tree mid-transaction (operations apply
    /// immediately, so this reflects the in-progress state).
    pub fn tree(&self) -> &TreeDb {
        &self.db.tree
    }

    /// Inserts a fresh node (newly-authored data).
    pub fn insert(
        &mut self,
        parent: NodeId,
        label: impl Into<String>,
        value: Option<Atom>,
    ) -> Result<NodeId, TreeError> {
        let label = label.into();
        let node = self
            .db
            .tree
            .create_node(parent, label.clone(), value.clone())?;
        self.db.prov.on_insert(node, self.txn.id);
        self.txn.ops.push(CurationOp::Insert {
            node,
            parent,
            label,
            value,
        });
        Ok(node)
    }

    /// Modifies a node's payload.
    pub fn modify(&mut self, node: NodeId, new: Option<Atom>) -> Result<(), TreeError> {
        let old = self.db.tree.set_value(node, new.clone())?;
        self.db.prov.on_modify(node, self.txn.id);
        self.txn.ops.push(CurationOp::Modify { node, old, new });
        Ok(())
    }

    /// Deletes a subtree.
    pub fn delete(&mut self, node: NodeId) -> Result<(), TreeError> {
        self.db.tree.delete_subtree(node)?;
        self.txn.ops.push(CurationOp::Delete { node });
        Ok(())
    }

    /// Pastes a clipboard under `parent`, recording where it came from.
    pub fn paste(&mut self, parent: NodeId, clip: &Clipboard) -> Result<NodeId, TreeError> {
        let node = self.paste_snapshot(parent, &clip.snapshot)?;
        let origin = Origin::CopiedFrom {
            db: clip.source_db.clone(),
            path: clip.source_path.clone(),
            chain: clip.source_chain.clone(),
        };
        self.db
            .prov
            .on_paste(node, self.txn.id, origin.clone(), clip.snapshot.size());
        self.txn.ops.push(CurationOp::Paste {
            node,
            parent,
            origin,
            snapshot: clip.snapshot.clone(),
        });
        Ok(node)
    }

    fn paste_snapshot(&mut self, parent: NodeId, snap: &ClipNode) -> Result<NodeId, TreeError> {
        let node = self
            .db
            .tree
            .create_node(parent, snap.label.clone(), snap.value.clone())?;
        for c in &snap.children {
            self.paste_snapshot(node, c)?;
        }
        Ok(node)
    }

    /// Commits: appends the record to the database log.
    pub fn commit(self) -> TxnId {
        let id = self.txn.id;
        self.db.log.push(self.txn);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provstore::StoreMode;

    fn new_db(name: &str) -> CuratedTree {
        CuratedTree::new(name, StoreMode::Hereditary)
    }

    #[test]
    fn insert_modify_delete_are_logged() {
        let mut db = new_db("d");
        let root = db.tree.root();
        let mut t = db.begin("alice", 100);
        let e = t.insert(root, "entry", None).unwrap();
        let n = t.insert(e, "name", Some(Atom::Str("x".into()))).unwrap();
        t.modify(n, Some(Atom::Str("y".into()))).unwrap();
        t.commit();
        assert_eq!(db.log.len(), 1);
        assert_eq!(db.log[0].ops.len(), 3);
        assert_eq!(db.log[0].curator, "alice");
        let mut t2 = db.begin("bob", 200);
        t2.delete(e).unwrap();
        t2.commit();
        assert_eq!(db.log[1].ops, vec![CurationOp::Delete { node: e }]);
        assert!(!db.tree.is_alive(n));
    }

    #[test]
    fn copy_paste_between_databases() {
        // Build a source database with an entry.
        let mut src = new_db("uniprot");
        let root = src.tree.root();
        let mut t = src.begin("curator1", 1);
        let e = t.insert(root, "entry", None).unwrap();
        t.insert(e, "ac", Some(Atom::Str("Q04917".into()))).unwrap();
        t.insert(e, "de", Some(Atom::Str("14-3-3 PROTEIN ETA".into())))
            .unwrap();
        t.commit();

        // Copy it into a target database.
        let clip = src.copy(e).unwrap();
        assert_eq!(clip.snapshot.size(), 3);
        assert_eq!(clip.source_db, "uniprot");
        assert_eq!(clip.source_path, "/entry");

        let mut dst = new_db("mydb");
        let droot = dst.tree.root();
        let mut t = dst.begin("me", 2);
        let pasted = t.paste(droot, &clip).unwrap();
        t.commit();

        assert_eq!(dst.tree.label(pasted).unwrap(), "entry");
        let ac = dst.tree.resolve_path("/entry/ac").unwrap();
        assert_eq!(
            dst.tree.value(ac).unwrap(),
            Some(&Atom::Str("Q04917".into()))
        );
        // The paste op recorded the origin.
        match &dst.log[0].ops[0] {
            CurationOp::Paste {
                origin, snapshot, ..
            } => {
                assert_eq!(snapshot.size(), 3);
                match origin {
                    Origin::CopiedFrom { db, path, .. } => {
                        assert_eq!(db, "uniprot");
                        assert_eq!(path, "/entry");
                    }
                    other => panic!("unexpected origin {other:?}"),
                }
            }
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn txn_ids_are_monotonic() {
        let mut db = new_db("d");
        let a = db.begin("x", 1).commit();
        let b = db.begin("x", 2).commit();
        assert!(b > a);
    }

    #[test]
    fn modify_records_old_and_new() {
        let mut db = new_db("d");
        let root = db.tree.root();
        let mut t = db.begin("a", 1);
        let n = t.insert(root, "v", Some(Atom::Int(1))).unwrap();
        t.commit();
        let mut t = db.begin("a", 2);
        t.modify(n, Some(Atom::Int(2))).unwrap();
        t.commit();
        match &db.log[1].ops[0] {
            CurationOp::Modify { old, new, .. } => {
                assert_eq!(old, &Some(Atom::Int(1)));
                assert_eq!(new, &Some(Atom::Int(2)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
