//! Provenance queries over a curated tree (§3.1).
//!
//! "…it is possible to ask questions such as when some data value was
//! first created, by what process did that value arrive in a database,
//! when was a subtree last modified…"

use crate::ops::{CuratedTree, CurationOp, Transaction, TxnId};
use crate::provstore::{Origin, ProvEvent};
use crate::tree::{NodeId, TreeError};

/// When (which transaction) a node was first created — directly, or via
/// the paste that brought its subtree in. A node whose direct records
/// only say "modified" inherits its creation from the nearest ancestor
/// with a creation record (the hereditary rule).
pub fn when_created(db: &CuratedTree, node: NodeId) -> Option<TxnId> {
    let created_in = |n: NodeId| {
        db.prov
            .direct(n)
            .iter()
            .find(|r| matches!(r.event, ProvEvent::Created(_)))
            .map(|r| r.txn)
    };
    if let Some(t) = created_in(node) {
        return Some(t);
    }
    for a in db.tree.ancestors(node).ok()? {
        if let Some(t) = created_in(a) {
            return Some(t);
        }
    }
    None
}

/// The process by which a value arrived: the flattened origin chain,
/// oldest first — e.g. `[Local (in uniprot), CopiedFrom uniprot:/entry]`.
pub fn how_arrived(db: &CuratedTree, node: NodeId) -> Vec<Origin> {
    db.prov.chain(&db.tree, node)
}

/// The transaction that last modified the subtree rooted at `node`
/// (any modification, insertion or paste below it counts; deletions
/// count against the parent subtree that contained them).
pub fn last_modified(db: &CuratedTree, node: NodeId) -> Result<Option<TxnId>, TreeError> {
    let mut last = None;
    for txn in db.transactions() {
        for op in &txn.ops {
            let target = op.node();
            let affected = if db.tree.is_alive(target) {
                target == node || {
                    let mut cur = target;
                    let mut hit = false;
                    while let Some(p) = db.tree.parent(cur)? {
                        if p == node || cur == node {
                            hit = true;
                            break;
                        }
                        cur = p;
                    }
                    hit || cur == node
                }
            } else {
                // Deleted nodes: we cannot walk ancestors anymore; a
                // delete op affects the subtree it was in if the deleted
                // node's id was ever under `node` — approximate by
                // attributing deletes to every ancestor query (safe
                // over-approximation used only for last-modified).
                matches!(op, CurationOp::Delete { .. })
            };
            if affected {
                last = Some(txn.id);
            }
        }
    }
    Ok(last)
}

/// The full history of a node: every transaction whose log touches it,
/// with the touching operations.
pub fn history(db: &CuratedTree, node: NodeId) -> Vec<(&Transaction, Vec<&CurationOp>)> {
    let mut out = Vec::new();
    for txn in db.transactions() {
        let ops: Vec<&CurationOp> = txn.ops.iter().filter(|op| op.node() == node).collect();
        if !ops.is_empty() {
            out.push((txn, ops));
        }
    }
    out
}

/// All curators who have touched the subtree rooted at `node`, in first-
/// touch order — the "authorship" a citation of this entry should credit
/// (§5.2: "It is appropriate to cite the authorship of an entry…").
pub fn curators_of(db: &CuratedTree, node: NodeId) -> Result<Vec<String>, TreeError> {
    let mut out: Vec<String> = Vec::new();
    for txn in db.transactions() {
        let touches = txn.ops.iter().any(|op| {
            let t = op.node();
            if t == node {
                return true;
            }
            if !db.tree.is_alive(t) {
                return false;
            }
            let mut cur = t;
            while let Ok(Some(p)) = db.tree.parent(cur) {
                if p == node {
                    return true;
                }
                cur = p;
            }
            false
        });
        if touches && !out.contains(&txn.curator) {
            out.push(txn.curator.clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provstore::StoreMode;
    use cdb_model::Atom;

    fn source_db() -> (CuratedTree, NodeId) {
        let mut src = CuratedTree::new("uniprot", StoreMode::Hereditary);
        let root = src.tree.root();
        let mut t = src.begin("upstream-curator", 1);
        let e = t.insert(root, "entry", None).unwrap();
        t.insert(e, "ac", Some(Atom::Str("Q04917".into()))).unwrap();
        t.insert(e, "seq", Some(Atom::Str("GDREQLL".into())))
            .unwrap();
        t.commit();
        (src, e)
    }

    #[test]
    fn when_created_via_paste() {
        let (src, e) = source_db();
        let clip = src.copy(e).unwrap();
        let mut db = CuratedTree::new("mine", StoreMode::Hereditary);
        let root = db.tree.root();
        let mut t = db.begin("me", 10);
        t.paste(root, &clip).unwrap();
        let paste_txn = t.commit();
        let seq = db.tree.resolve_path("/entry/seq").unwrap();
        assert_eq!(when_created(&db, seq), Some(paste_txn));
    }

    #[test]
    fn how_arrived_shows_the_copy_chain() {
        let (src, e) = source_db();
        let clip = src.copy(e).unwrap();
        let mut db = CuratedTree::new("mine", StoreMode::Hereditary);
        let root = db.tree.root();
        let mut t = db.begin("me", 10);
        let p = t.paste(root, &clip).unwrap();
        t.commit();
        let chain = how_arrived(&db, p);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0], Origin::Local);
        assert!(matches!(&chain[1], Origin::CopiedFrom { db, .. } if db == "uniprot"));
    }

    #[test]
    fn last_modified_tracks_subtree_edits() {
        let (mut src, e) = source_db();
        assert_eq!(
            last_modified(&src, e).unwrap(),
            Some(TxnId(0)),
            "creation counts"
        );
        let seq = src.tree.resolve_path("/entry/seq").unwrap();
        let mut t = src.begin("upstream-curator", 2);
        t.modify(seq, Some(Atom::Str("GDREQLX".into()))).unwrap();
        let txn = t.commit();
        assert_eq!(last_modified(&src, e).unwrap(), Some(txn));
        // A sibling subtree is untouched by that txn.
        let root = src.tree.root();
        let mut t = src.begin("x", 3);
        let other = t.insert(root, "other", None).unwrap();
        t.commit();
        assert_eq!(last_modified(&src, other).unwrap(), Some(TxnId(2)));
    }

    #[test]
    fn history_lists_touching_transactions() {
        let (mut src, _) = source_db();
        let seq = src.tree.resolve_path("/entry/seq").unwrap();
        let mut t = src.begin("second-curator", 5);
        t.modify(seq, Some(Atom::Str("NEW".into()))).unwrap();
        t.commit();
        let h = history(&src, seq);
        assert_eq!(h.len(), 2, "insert txn and modify txn");
        assert_eq!(h[0].0.curator, "upstream-curator");
        assert_eq!(h[1].0.curator, "second-curator");
    }

    #[test]
    fn curators_of_collects_authorship() {
        let (mut src, e) = source_db();
        let seq = src.tree.resolve_path("/entry/seq").unwrap();
        let mut t = src.begin("second-curator", 5);
        t.modify(seq, Some(Atom::Str("NEW".into()))).unwrap();
        t.commit();
        assert_eq!(
            curators_of(&src, e).unwrap(),
            vec!["upstream-curator".to_string(), "second-curator".to_string()]
        );
    }
}
