//! # cdb-curation
//!
//! The copy-paste model of database curation (§3 of *Curated
//! Databases*, after Buneman–Chapman–Cheney, SIGMOD 2006 \[13\]):
//!
//! > "curated databases are semistructured trees, and the fundamental
//! > operation is to copy a data element — a subtree — from one tree to
//! > another."
//!
//! * [`tree`] — the mutable semistructured tree store ([`TreeDb`]),
//! * [`ops`] — the curation operations (insert, modify, delete, copy,
//!   paste) grouped into [`ops::Transaction`]s attributed to curators,
//! * [`provstore`] — the provenance store, with the two cost mitigations
//!   of §3.1: **hereditary provenance** ("unless a node in the tree has
//!   been modified, its provenance is that of its parent node") and
//!   **transaction squashing** ("a description of the effects of the
//!   transaction that is shorter than the log of basic operations"), plus
//!   a naive per-node store as the baseline the benchmarks compare
//!   against,
//! * [`queries`] — provenance queries: when was a value created, by what
//!   process did it arrive, when was a subtree last modified,
//! * [`update_lang`] — the provenance-aware update language of §3.1
//!   \[52, 14\]: updates over colored complex objects, the
//!   kind-preservation condition, and the three Figure 3 programs.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ops;
pub mod provql;
pub mod provstore;
pub mod queries;
pub mod replay;
pub mod tree;
pub mod update_lang;
pub mod wire;

pub use ops::{Clipboard, CurationOp, Transaction, TxnId};
pub use provstore::{Origin, ProvRecord, ProvStore, StoreMode};
pub use tree::{NodeId, TreeDb};
