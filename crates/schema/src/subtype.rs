//! The three subtype disciplines of §6.1.
//!
//! The paper's running scenario: a curated database's content model `r`
//! gains a new field `a` at the end, becoming `r a`. Under **inclusion**
//! subtyping (the discipline of XDuce/CDuce-style languages \[3, 46\]),
//! "a transformation that expects an element of r may break if we
//! provide an element of ra, since the language ra is not a subtype of
//! (that is, contained in) r" — extension breaks everything. **Width**
//! (prefix) subtyping tolerates appended fields but is order-dependent
//! (the paper's rab/rb counterexample, reproduced in the tests).
//! **Interleaving** subtyping tolerates new fields anywhere, recovering
//! the record-subtyping guarantee relational schemas enjoy.

use crate::automata::contains;
use crate::regex::Regex;

/// Inclusion subtyping: `sub <: sup` iff `L(sub) ⊆ L(sup)`.
pub fn inclusion_subtype(sub: &Regex, sup: &Regex) -> bool {
    contains(sup, sub)
}

/// Width (prefix) subtyping, §6.1: "r is a subtype of r′ if every
/// element of r′ is a prefix of some element of r" — i.e. a consumer
/// expecting `sup` can read a prefix-shaped view of any `sub` document.
///
/// Equivalently: `L(sup) ⊆ prefixes(L(sub))`. Decided by a product walk
/// of derivative pairs: wherever `sup` can accept, `sub` must still be
/// extendable (non-empty residual language).
pub fn width_subtype(sub: &Regex, sup: &Regex) -> bool {
    let mut seen: std::collections::BTreeSet<(Regex, Regex)> = Default::default();
    let mut work = vec![(sup.clone(), sub.clone())];
    let alphabet: Vec<String> = sup.alphabet().union(&sub.alphabet()).cloned().collect();
    while let Some((p, s)) = work.pop() {
        if p.is_empty_language() {
            continue;
        }
        // Wherever sup accepts a word w, w must be a prefix of some
        // element of sub: the residual of sub after w must be a
        // non-empty language (normalized: not the literal ∅).
        if p.nullable() && s.is_empty_language() {
            return false;
        }
        if !seen.insert((p.clone(), s.clone())) {
            continue;
        }
        for a in &alphabet {
            let dp = p.derivative(a);
            if dp.is_empty_language() {
                continue;
            }
            work.push((dp, s.derivative(a)));
        }
    }
    true
}

/// Interleaving subtyping: `sub <: sup` allowing the new fields
/// `extras` to occur *anywhere*: `L(sub) ⊆ L(sup # extras*)` where
/// `extras` is the alternation of the symbols of `sub` not in `sup`.
pub fn interleave_subtype(sub: &Regex, sup: &Regex) -> bool {
    let extras: Vec<Regex> = sub
        .alphabet()
        .difference(&sup.alphabet())
        .map(|s| Regex::sym(s.clone()))
        .collect();
    let padding = Regex::star(Regex::alt(extras));
    let widened = Regex::interleave(sup.clone(), padding);
    contains(&widened, sub)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: &str) -> Regex {
        Regex::parse(s).unwrap()
    }

    #[test]
    fn inclusion_breaks_on_field_append() {
        // §6.1: ra is not contained in r.
        let old = r("title author year");
        let new = r("title author year doi");
        assert!(!inclusion_subtype(&new, &old), "extension breaks inclusion");
        assert!(inclusion_subtype(&old, &old), "reflexive");
        // Narrowing an alternation IS an inclusion subtype.
        assert!(inclusion_subtype(&r("a b"), &r("a (b | c)")));
    }

    #[test]
    fn width_subtyping_tolerates_appended_fields() {
        let old = r("title author year");
        let new = r("title author year doi");
        assert!(
            width_subtype(&new, &old),
            "every old word is a prefix of a new one"
        );
        assert!(!width_subtype(&old, &new), "not the other way around");
    }

    #[test]
    fn width_subtyping_is_order_dependent_paper_counterexample() {
        // §6.1: add a then b at the end of r, getting rab; a query uses
        // r and b but not a. Remove a → rb. Width subtyping gives no
        // guarantee that rb still works where rab did: "b" alone is not
        // a prefix-extension compatible view.
        let rab = r("t a b");
        let rb = r("t b");
        let query_needs = r("t b"); // consumer reads t then b, ignoring a? It cannot:
                                    // width subtyping is positional. rab is NOT a width-subtype of
                                    // the consumer's expectation once a sits in the middle:
        assert!(!width_subtype(&rab, &query_needs));
        // while rb is:
        assert!(width_subtype(&rb, &query_needs));
        // So code written against "t b" worked on rb but breaks on rab —
        // the arbitrary-order trap the paper describes.
    }

    #[test]
    fn interleave_subtyping_tolerates_fields_anywhere() {
        let consumer = r("t b");
        let rab = r("t a b");
        let rb = r("t b");
        let arb = r("a t b");
        assert!(interleave_subtype(&rab, &consumer));
        assert!(interleave_subtype(&rb, &consumer));
        assert!(interleave_subtype(&arb, &consumer));
        // But genuinely missing or reordered *known* fields still fail.
        assert!(!interleave_subtype(&r("t"), &consumer), "b missing");
        assert!(
            !interleave_subtype(&r("b t"), &consumer),
            "known order violated"
        );
    }

    #[test]
    fn interleave_subtyping_recovers_record_subtyping() {
        // A record with fields A,B,C (any order) used where A,B expected.
        let wide = r("A & B & C");
        let narrow = r("A & B");
        assert!(interleave_subtype(&wide, &narrow));
        assert!(!interleave_subtype(&narrow, &wide), "missing required C");
    }

    #[test]
    fn width_subtype_with_optional_and_star() {
        // Consumers of `entry*` can prefix-read a database that appends
        // a trailer.
        assert!(width_subtype(&r("entry* trailer"), &r("entry*")));
        assert!(width_subtype(&r("a (b | c) d"), &r("a (b | c)")));
        assert!(!width_subtype(&r("a d"), &r("a (b | c)")));
    }

    #[test]
    fn subtype_relations_are_distinct() {
        // Inclusion ⊊ interleave-tolerant: inclusion implies interleave
        // subtyping (extras = ∅ ⇒ same check)…
        let sub = r("a b");
        let sup = r("a (b | c)");
        assert!(inclusion_subtype(&sub, &sup));
        assert!(interleave_subtype(&sub, &sup));
        // …but not conversely.
        let appended = r("a b d");
        assert!(!inclusion_subtype(&appended, &sup));
        assert!(interleave_subtype(&appended, &sup));
    }
}
