//! Derivative-based DFA construction and regex recovery.
//!
//! The DFA of an expression is built from its Brzozowski derivatives:
//! states are normalized derivative expressions, the start state is the
//! expression itself, and a state is accepting iff nullable. Because the
//! smart constructors normalize aggressively, the state set is finite
//! for every expression in this crate (including interleaving, whose
//! derivative law `d_a(r # s) = d_a(r) # s | r # d_a(s)` is built in).
//!
//! The DFA's state count is the semantic measure of the **interleaving
//! blow-up**: `a # b # c # …` over n symbols yields 2ⁿ states, which is
//! what the E9 bench tabulates. [`Dfa::to_regex`] recovers an
//! interleave-free expression by state elimination.

use std::collections::BTreeMap;

use crate::regex::Regex;

/// A guard against state explosion in adversarial inputs.
const MAX_STATES: usize = 1 << 20;

/// A deterministic finite automaton over label symbols.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// Alphabet, sorted.
    alphabet: Vec<String>,
    /// Transition table: `trans[state][symbol_index]`, `usize::MAX` = no
    /// transition (dead).
    trans: Vec<Vec<usize>>,
    /// Accepting states.
    accepting: Vec<bool>,
    /// Start state (always 0).
    start: usize,
}

impl Dfa {
    /// Builds the derivative DFA. Returns `None` if the state cap is
    /// exceeded.
    pub fn build(expr: &Regex) -> Option<Dfa> {
        let alphabet: Vec<String> = expr.alphabet().into_iter().collect();
        let mut index: BTreeMap<Regex, usize> = BTreeMap::new();
        let mut states: Vec<Regex> = Vec::new();
        let mut worklist: Vec<usize> = Vec::new();
        let mut trans: Vec<Vec<usize>> = Vec::new();

        index.insert(expr.clone(), 0);
        states.push(expr.clone());
        worklist.push(0);
        trans.push(vec![usize::MAX; alphabet.len()]);

        while let Some(si) = worklist.pop() {
            for (ai, a) in alphabet.iter().enumerate() {
                let d = states[si].derivative(a);
                if d.is_empty_language() {
                    continue;
                }
                let ti = match index.get(&d) {
                    Some(&t) => t,
                    None => {
                        let t = states.len();
                        if t >= MAX_STATES {
                            return None;
                        }
                        index.insert(d.clone(), t);
                        states.push(d);
                        trans.push(vec![usize::MAX; alphabet.len()]);
                        worklist.push(t);
                        t
                    }
                };
                trans[si][ai] = ti;
            }
        }
        let accepting = states.iter().map(Regex::nullable).collect();
        Some(Dfa {
            alphabet,
            trans,
            accepting,
            start: 0,
        })
    }

    /// Number of states (the blow-up measure).
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &[String] {
        &self.alphabet
    }

    /// Runs the DFA on a word.
    pub fn accepts<S: AsRef<str>>(&self, word: impl IntoIterator<Item = S>) -> bool {
        let mut cur = self.start;
        for s in word {
            let Some(ai) = self.alphabet.iter().position(|a| a == s.as_ref()) else {
                return false;
            };
            let next = self.trans[cur][ai];
            if next == usize::MAX {
                return false;
            }
            cur = next;
        }
        self.accepting[cur]
    }

    /// Recovers a regular expression by GNFA state elimination. The
    /// result uses only `{∅, ε, sym, seq, alt, star}`.
    #[allow(clippy::needless_range_loop)] // index pairs over a 2-D matrix
    pub fn to_regex(&self) -> Regex {
        let n = self.trans.len();
        // GNFA with fresh start (n) and accept (n+1) states; edge
        // labels are regexes.
        let total = n + 2;
        let mut edge: Vec<Vec<Regex>> = vec![vec![Regex::Empty; total]; total];
        for (s, row) in self.trans.iter().enumerate() {
            for (ai, &t) in row.iter().enumerate() {
                if t != usize::MAX {
                    let lbl = Regex::sym(self.alphabet[ai].clone());
                    let old = std::mem::replace(&mut edge[s][t], Regex::Empty);
                    edge[s][t] = Regex::alt([old, lbl]);
                }
            }
        }
        edge[n][self.start] = Regex::Eps;
        for (s, &acc) in self.accepting.iter().enumerate() {
            if acc {
                edge[s][n + 1] = Regex::alt([
                    std::mem::replace(&mut edge[s][n + 1], Regex::Empty),
                    Regex::Eps,
                ]);
            }
        }
        // Eliminate original states one by one.
        for rip in 0..n {
            let self_loop = edge[rip][rip].clone();
            let loop_star = Regex::star(self_loop);
            for p in 0..total {
                if p == rip {
                    continue;
                }
                let p_in = edge[p][rip].clone();
                if p_in.is_empty_language() {
                    continue;
                }
                for q in 0..total {
                    if q == rip {
                        continue;
                    }
                    let out = edge[rip][q].clone();
                    if out.is_empty_language() {
                        continue;
                    }
                    let via = Regex::seq([p_in.clone(), loop_star.clone(), out]);
                    let old = std::mem::replace(&mut edge[p][q], Regex::Empty);
                    edge[p][q] = Regex::alt([old, via]);
                }
            }
            for x in 0..total {
                edge[rip][x] = Regex::Empty;
                edge[x][rip] = Regex::Empty;
            }
        }
        edge[n][n + 1].clone()
    }
}

/// The DFA state count of an expression — `None` if it exceeds the cap.
pub fn state_count(expr: &Regex) -> Option<usize> {
    Dfa::build(expr).map(|d| d.state_count())
}

/// Language containment `L(a) ⊆ L(b)` by product exploration of
/// derivative pairs: from `(a, b)`, follow both derivatives on every
/// symbol of `a`'s alphabet (symbols outside `b`'s alphabet drive `b` to
/// ∅); reject if a nullable `a`-state pairs with a non-nullable
/// `b`-state.
pub fn contains(sup: &Regex, sub: &Regex) -> bool {
    let mut seen: std::collections::BTreeSet<(Regex, Regex)> = Default::default();
    let mut work = vec![(sub.clone(), sup.clone())];
    let alphabet: Vec<String> = sub.alphabet().union(&sup.alphabet()).cloned().collect();
    while let Some((a, b)) = work.pop() {
        if a.is_empty_language() {
            continue;
        }
        if a.nullable() && !b.nullable() {
            return false;
        }
        if !seen.insert((a.clone(), b.clone())) {
            continue;
        }
        for s in &alphabet {
            let da = a.derivative(s);
            if da.is_empty_language() {
                continue;
            }
            let db = b.derivative(s);
            if db.is_empty_language() {
                return false; // a word in L(a) leaves L(b)'s prefixes…
            }
            work.push((da, db));
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: &str) -> Regex {
        Regex::parse(s).unwrap()
    }

    #[test]
    fn dfa_agrees_with_derivative_matching() {
        for (expr, word, expect) in [
            ("a b c", vec!["a", "b", "c"], true),
            ("a b c", vec!["a", "c"], false),
            ("(a|b)* c", vec!["b", "a", "c"], true),
            ("(a|b)* c", vec!["c", "c"], false),
            ("a & b", vec!["b", "a"], true),
            ("a & b", vec!["a"], false),
        ] {
            let e = r(expr);
            let dfa = Dfa::build(&e).unwrap();
            assert_eq!(dfa.accepts(word.clone()), expect, "{expr} on {word:?}");
            assert_eq!(e.matches(word.clone()), expect);
        }
    }

    #[test]
    fn interleave_state_count_is_exponential() {
        let syms = ["a", "b", "c", "d", "e", "f"];
        let mut counts = Vec::new();
        for n in 1..=6 {
            let e = syms[..n]
                .iter()
                .map(|s| Regex::sym(*s))
                .reduce(Regex::interleave)
                .unwrap();
            counts.push(state_count(&e).unwrap());
        }
        // a#b#…#xn has exactly 2^n reachable states (subsets of symbols
        // consumed).
        assert_eq!(counts, vec![2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn sequence_state_count_is_linear() {
        let syms = ["a", "b", "c", "d", "e", "f"];
        for n in 1..=6 {
            let e = Regex::seq(syms[..n].iter().map(|s| Regex::sym(*s)));
            assert_eq!(state_count(&e).unwrap(), n + 1);
        }
    }

    #[test]
    fn to_regex_round_trips_language() {
        for expr in ["a b c", "(a|b)* c", "a & b & c", "(a b) & c*", "a? b+"] {
            let e = r(expr);
            let back = Dfa::build(&e).unwrap().to_regex();
            assert!(!format!("{back:?}").contains("Interleave"));
            // Compare on all words up to length 4 over the alphabet.
            let alphabet: Vec<String> = e.alphabet().into_iter().collect();
            let mut words: Vec<Vec<String>> = vec![vec![]];
            for _ in 0..4 {
                let mut next = Vec::new();
                for w in &words {
                    for s in &alphabet {
                        let mut w2 = w.clone();
                        w2.push(s.clone());
                        next.push(w2);
                    }
                }
                words.extend(next);
            }
            words.dedup();
            for w in words {
                assert_eq!(
                    e.matches(w.iter().map(String::as_str)),
                    back.matches(w.iter().map(String::as_str)),
                    "{expr} vs recovered on {w:?}"
                );
            }
        }
    }

    #[test]
    fn containment_basics() {
        assert!(contains(&r("(a|b)*"), &r("a b a")));
        assert!(contains(&r("(a|b)*"), &r("a* b*")));
        assert!(!contains(&r("a b"), &r("a b | b a")));
        assert!(contains(&r("a & b"), &r("a b")));
        assert!(contains(&r("a & b"), &r("b a")));
        assert!(!contains(&r("a b"), &r("a & b")));
        // Reflexivity and ∅/ε edge cases.
        assert!(contains(&r("a b c"), &r("a b c")));
        assert!(contains(&r("a?"), &Regex::Eps));
        assert!(contains(&Regex::Eps, &Regex::Empty));
        assert!(!contains(&Regex::Empty, &Regex::Eps));
    }
}
