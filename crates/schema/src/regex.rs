//! Regular expressions over field labels, with Brzozowski derivatives
//! and the interleaving (shuffle) operator of §6.1.
//!
//! Smart constructors keep expressions in a normal form (associativity
//! flattening, identity/annihilator elimination, duplicate-alternative
//! removal) so that the set of derivatives reachable from any expression
//! is finite — which is what makes the derivative-based DFA construction
//! in [`crate::automata`] terminate and its state counts meaningful.

use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

/// A regular expression over label symbols.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Regex {
    /// The empty language ∅.
    Empty,
    /// The empty string ε.
    Eps,
    /// A single symbol.
    Sym(String),
    /// Concatenation.
    Seq(Vec<Regex>),
    /// Alternation.
    Alt(BTreeSet<Regex>),
    /// Kleene star.
    Star(Rc<Regex>),
    /// Interleaving (shuffle): all ways of merging a word of the left
    /// with a word of the right, preserving each side's order.
    Interleave(Rc<Regex>, Rc<Regex>),
}

impl Regex {
    /// A symbol.
    pub fn sym(s: impl Into<String>) -> Regex {
        Regex::Sym(s.into())
    }

    /// Normalized concatenation.
    pub fn seq(parts: impl IntoIterator<Item = Regex>) -> Regex {
        let mut out: Vec<Regex> = Vec::new();
        for p in parts {
            match p {
                Regex::Empty => return Regex::Empty,
                Regex::Eps => {}
                Regex::Seq(xs) => out.extend(xs),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Eps,
            1 => out.pop().expect("len checked"),
            _ => Regex::Seq(out),
        }
    }

    /// Normalized alternation.
    pub fn alt(parts: impl IntoIterator<Item = Regex>) -> Regex {
        let mut out: BTreeSet<Regex> = BTreeSet::new();
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Alt(xs) => out.extend(xs),
                other => {
                    out.insert(other);
                }
            }
        }
        match out.len() {
            0 => Regex::Empty,
            1 => out.into_iter().next().expect("len checked"),
            _ => Regex::Alt(out),
        }
    }

    /// Normalized star.
    pub fn star(inner: Regex) -> Regex {
        match inner {
            Regex::Empty | Regex::Eps => Regex::Eps,
            s @ Regex::Star(_) => s,
            other => Regex::Star(Rc::new(other)),
        }
    }

    /// `r?` = `r | ε`.
    pub fn opt(inner: Regex) -> Regex {
        Regex::alt([inner, Regex::Eps])
    }

    /// Normalized interleaving.
    pub fn interleave(a: Regex, b: Regex) -> Regex {
        match (a, b) {
            (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
            (Regex::Eps, x) | (x, Regex::Eps) => x,
            (a, b) => {
                // Order the operands (interleaving commutes) for sharing.
                if a <= b {
                    Regex::Interleave(Rc::new(a), Rc::new(b))
                } else {
                    Regex::Interleave(Rc::new(b), Rc::new(a))
                }
            }
        }
    }

    /// Whether ε ∈ L(self).
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty => false,
            Regex::Eps => true,
            Regex::Sym(_) => false,
            Regex::Seq(xs) => xs.iter().all(Regex::nullable),
            Regex::Alt(xs) => xs.iter().any(Regex::nullable),
            Regex::Star(_) => true,
            Regex::Interleave(a, b) => a.nullable() && b.nullable(),
        }
    }

    /// Whether L(self) = ∅. (With the normalizing constructors, only the
    /// literal `Empty` denotes the empty language.)
    pub fn is_empty_language(&self) -> bool {
        matches!(self, Regex::Empty)
    }

    /// The Brzozowski derivative with respect to symbol `a`.
    pub fn derivative(&self, a: &str) -> Regex {
        match self {
            Regex::Empty | Regex::Eps => Regex::Empty,
            Regex::Sym(s) => {
                if s == a {
                    Regex::Eps
                } else {
                    Regex::Empty
                }
            }
            Regex::Seq(xs) => {
                // d(r1 r2…) = d(r1) r2… | [r1 nullable] d(r2…)
                let (first, rest) = xs.split_first().expect("Seq is non-empty");
                let rest_re = Regex::seq(rest.iter().cloned());
                let left =
                    Regex::seq(std::iter::once(first.derivative(a)).chain(rest.iter().cloned()));
                if first.nullable() {
                    Regex::alt([left, rest_re.derivative(a)])
                } else {
                    left
                }
            }
            Regex::Alt(xs) => Regex::alt(xs.iter().map(|x| x.derivative(a))),
            Regex::Star(inner) => Regex::seq([inner.derivative(a), Regex::Star(Rc::clone(inner))]),
            Regex::Interleave(l, r) => Regex::alt([
                Regex::interleave(l.derivative(a), (**r).clone()),
                Regex::interleave((**l).clone(), r.derivative(a)),
            ]),
        }
    }

    /// Whether the word (sequence of labels) is in the language.
    pub fn matches<S: AsRef<str>>(&self, word: impl IntoIterator<Item = S>) -> bool {
        let mut cur = self.clone();
        for s in word {
            cur = cur.derivative(s.as_ref());
            if cur.is_empty_language() {
                return false;
            }
        }
        cur.nullable()
    }

    /// The set of symbols occurring in the expression.
    pub fn alphabet(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_alphabet(&mut out);
        out
    }

    fn collect_alphabet(&self, out: &mut BTreeSet<String>) {
        match self {
            Regex::Empty | Regex::Eps => {}
            Regex::Sym(s) => {
                out.insert(s.clone());
            }
            Regex::Seq(xs) => {
                for x in xs {
                    x.collect_alphabet(out);
                }
            }
            Regex::Alt(xs) => {
                for x in xs {
                    x.collect_alphabet(out);
                }
            }
            Regex::Star(x) => x.collect_alphabet(out),
            Regex::Interleave(a, b) => {
                a.collect_alphabet(out);
                b.collect_alphabet(out);
            }
        }
    }

    /// Syntactic size (number of AST nodes) — the measure in which
    /// interleaving elimination blows up exponentially.
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Eps | Regex::Sym(_) => 1,
            Regex::Seq(xs) => 1 + xs.iter().map(Regex::size).sum::<usize>(),
            Regex::Alt(xs) => 1 + xs.iter().map(Regex::size).sum::<usize>(),
            Regex::Star(x) => 1 + x.size(),
            Regex::Interleave(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Rewrites the expression to eliminate interleaving, producing an
    /// equivalent expression over `{ε, sym, seq, alt, star}` only, by
    /// building the derivative DFA and converting it back to a regular
    /// expression (state elimination). Exponential in general —
    /// "removing interleaving can lead to an exponential increase in the
    /// size of the regular expression, as is apparent from a#b#c#…" —
    /// which `cdb-bench`'s schema benches measure.
    pub fn eliminate_interleave(&self) -> Regex {
        crate::automata::Dfa::build(self)
            .expect("interleave elimination exceeded the state cap")
            .to_regex()
    }

    /// Parses an expression from a compact syntax: symbols are
    /// identifiers; juxtaposition (whitespace or `,`) is concatenation;
    /// `|` alternation; `&` interleaving; postfix `*`, `+`, `?`;
    /// parentheses group. Precedence: postfix > concatenation > `&` >
    /// `|`.
    pub fn parse(input: &str) -> Result<Regex, String> {
        let mut p = Parser {
            input: input.as_bytes(),
            pos: 0,
        };
        let r = p.alt_expr()?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(r)
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn prec(r: &Regex) -> u8 {
            match r {
                Regex::Alt(_) => 0,
                Regex::Interleave(_, _) => 1,
                Regex::Seq(_) => 2,
                _ => 3,
            }
        }
        fn show(r: &Regex, p: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let mine = prec(r);
            if mine < p {
                write!(f, "(")?;
            }
            match r {
                Regex::Empty => write!(f, "∅")?,
                Regex::Eps => write!(f, "ε")?,
                Regex::Sym(s) => write!(f, "{s}")?,
                Regex::Seq(xs) => {
                    for (i, x) in xs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        show(x, 3, f)?;
                    }
                }
                Regex::Alt(xs) => {
                    for (i, x) in xs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " | ")?;
                        }
                        show(x, 1, f)?;
                    }
                }
                Regex::Star(x) => {
                    show(x, 3, f)?;
                    write!(f, "*")?;
                }
                Regex::Interleave(a, b) => {
                    show(a, 2, f)?;
                    write!(f, " & ")?;
                    show(b, 2, f)?;
                }
            }
            if mine < p {
                write!(f, ")")?;
            }
            Ok(())
        }
        show(self, 0, f)
    }
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.input.len()
            && (self.input[self.pos].is_ascii_whitespace() || self.input[self.pos] == b',')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn alt_expr(&mut self) -> Result<Regex, String> {
        let mut parts = vec![self.interleave_expr()?];
        while self.peek() == Some(b'|') {
            self.pos += 1;
            parts.push(self.interleave_expr()?);
        }
        Ok(Regex::alt(parts))
    }

    fn interleave_expr(&mut self) -> Result<Regex, String> {
        let mut acc = self.seq_expr()?;
        while self.peek() == Some(b'&') {
            self.pos += 1;
            let rhs = self.seq_expr()?;
            acc = Regex::interleave(acc, rhs);
        }
        Ok(acc)
    }

    fn seq_expr(&mut self) -> Result<Regex, String> {
        let mut parts = Vec::new();
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'(' => {
                    parts.push(self.postfix_expr()?);
                }
                _ => break,
            }
        }
        if parts.is_empty() {
            return Err(format!("expected expression at byte {}", self.pos));
        }
        Ok(Regex::seq(parts))
    }

    fn postfix_expr(&mut self) -> Result<Regex, String> {
        let mut base = self.atom_expr()?;
        loop {
            match self.input.get(self.pos).copied() {
                Some(b'*') => {
                    self.pos += 1;
                    base = Regex::star(base);
                }
                Some(b'+') => {
                    self.pos += 1;
                    base = Regex::seq([base.clone(), Regex::star(base)]);
                }
                Some(b'?') => {
                    self.pos += 1;
                    base = Regex::opt(base);
                }
                _ => break,
            }
        }
        Ok(base)
    }

    fn atom_expr(&mut self) -> Result<Regex, String> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let r = self.alt_expr()?;
                if self.peek() != Some(b')') {
                    return Err(format!("expected ')' at byte {}", self.pos));
                }
                self.pos += 1;
                Ok(r)
            }
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
                let start = self.pos;
                while self.pos < self.input.len()
                    && (self.input[self.pos].is_ascii_alphanumeric()
                        || self.input[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                Ok(Regex::sym(
                    std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| "bad utf-8".to_owned())?,
                ))
            }
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: &str) -> Regex {
        Regex::parse(s).unwrap()
    }

    #[test]
    fn parsing_and_display() {
        assert_eq!(r("a b c").to_string(), "a b c");
        assert_eq!(r("a | b c").to_string(), "a | b c");
        assert_eq!(r("(a | b)*").to_string(), "(a | b)*");
        // Interleave operands are canonically reordered (it commutes).
        assert_eq!(r("a & b & c").to_string(), "c & (a & b)");
        assert_eq!(r("a+").to_string(), "a a*");
        assert!(Regex::parse("a )").is_err());
        assert!(Regex::parse("|").is_err());
    }

    #[test]
    fn matching_basics() {
        assert!(r("a b c").matches(["a", "b", "c"]));
        assert!(!r("a b c").matches(["a", "c", "b"]));
        assert!(r("(a | b)*").matches(["a", "b", "b", "a"]));
        assert!(r("(a | b)*").matches(Vec::<&str>::new()));
        assert!(r("a b? c").matches(["a", "c"]));
        assert!(!r("a b? c").matches(["a", "b", "b", "c"]));
    }

    #[test]
    fn interleave_matches_all_shuffles() {
        let e = r("(a b) & c");
        assert!(e.matches(["a", "b", "c"]));
        assert!(e.matches(["a", "c", "b"]));
        assert!(e.matches(["c", "a", "b"]));
        assert!(!e.matches(["b", "a", "c"]), "a-before-b order preserved");
        assert!(!e.matches(["a", "b"]));
    }

    #[test]
    fn interleave_expresses_record_subtyping_shape() {
        // a & b & c accepts any permutation — the unordered record.
        let e = r("a & b & c");
        for perm in [
            ["a", "b", "c"],
            ["a", "c", "b"],
            ["b", "a", "c"],
            ["b", "c", "a"],
            ["c", "a", "b"],
            ["c", "b", "a"],
        ] {
            assert!(e.matches(perm), "{perm:?}");
        }
        assert!(!e.matches(["a", "b"]));
        assert!(!e.matches(["a", "b", "c", "a"]));
    }

    #[test]
    fn derivatives_normalize() {
        let e = r("a b | a c");
        let d = e.derivative("a");
        assert!(d.matches(["b"]));
        assert!(d.matches(["c"]));
        assert!(!d.matches(["a"]));
        assert_eq!(e.derivative("z"), Regex::Empty);
    }

    #[test]
    fn eliminate_interleave_preserves_language_on_samples() {
        let e = r("(a b) & c");
        let flat = e.eliminate_interleave();
        assert!(!format!("{flat:?}").contains("Interleave"));
        for w in [
            vec!["a", "b", "c"],
            vec!["a", "c", "b"],
            vec!["c", "a", "b"],
            vec!["b", "a", "c"],
            vec!["a", "b"],
            vec![],
        ] {
            assert_eq!(e.matches(w.clone()), flat.matches(w.clone()), "{w:?}");
        }
    }

    #[test]
    fn eliminate_interleave_blows_up() {
        // a & b & c & d … — the paper's example of exponential growth.
        let syms = ["a", "b", "c", "d", "e"];
        let mut sizes = Vec::new();
        for n in 2..=5 {
            let e = syms[..n]
                .iter()
                .map(|s| Regex::sym(*s))
                .reduce(Regex::interleave)
                .unwrap();
            sizes.push(e.eliminate_interleave().size());
        }
        assert!(
            sizes.windows(2).all(|w| w[1] >= 2 * w[0]),
            "sizes should at least double: {sizes:?}"
        );
    }

    #[test]
    fn star_shuffle_is_language_equivalent_to_alternation_star() {
        // a* # b* ≡ (a|b)*.
        let e = Regex::interleave(Regex::star(Regex::sym("a")), Regex::star(Regex::sym("b")));
        let flat = e.eliminate_interleave();
        assert!(!format!("{flat:?}").contains("Interleave"));
        for w in [
            vec![],
            vec!["a"],
            vec!["b"],
            vec!["a", "b", "a"],
            vec!["b", "b", "a", "a"],
        ] {
            assert!(flat.matches(w.clone()), "{w:?}");
            assert!(e.matches(w), "original");
        }
    }

    #[test]
    fn alphabet_and_size() {
        let e = r("(a b)* | c & d");
        let al = e.alphabet();
        assert_eq!(al.len(), 4);
        assert!(e.size() >= 6);
    }

    #[test]
    fn smart_constructors_normalize() {
        assert_eq!(
            Regex::seq([Regex::Eps, Regex::sym("a"), Regex::Eps]),
            Regex::sym("a")
        );
        assert_eq!(Regex::seq([Regex::sym("a"), Regex::Empty]), Regex::Empty);
        assert_eq!(Regex::alt([Regex::Empty, Regex::sym("a")]), Regex::sym("a"));
        assert_eq!(
            Regex::alt([Regex::sym("a"), Regex::sym("a")]),
            Regex::sym("a")
        );
        assert_eq!(
            Regex::star(Regex::star(Regex::sym("a"))),
            Regex::star(Regex::sym("a"))
        );
        assert_eq!(Regex::star(Regex::Empty), Regex::Eps);
        assert_eq!(
            Regex::interleave(Regex::Eps, Regex::sym("a")),
            Regex::sym("a")
        );
        assert_eq!(
            Regex::interleave(Regex::Empty, Regex::sym("a")),
            Regex::Empty
        );
    }
}
