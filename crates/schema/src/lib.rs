//! # cdb-schema
//!
//! Evolution of structure (§6 of *Curated Databases*):
//!
//! * [`regex`] — regular-expression content models over field labels
//!   (the regular-expression types of XML schema languages), with
//!   Brzozowski derivatives, matching, and an **interleaving** operator
//!   `r1 # r2` (§6.1),
//! * [`automata`] — derivative-based DFA construction and state
//!   counting, used to demonstrate the exponential blow-up of removing
//!   interleaving (`a # b # c # …`, \[42, 43, 56\]),
//! * [`subtype`] — the three subtype disciplines §6.1 contrasts:
//!   **inclusion** subtyping (language containment — under which adding
//!   a field breaks existing transformations), **width** (prefix)
//!   subtyping, and **interleaving-based** subtyping (new fields may
//!   appear anywhere), with the order-dependence counterexample from the
//!   paper,
//! * [`infer`] — schema inference for schema-less semistructured data
//!   (§6's AceDB retro-fitting): complex-object [`cdb_model::Type`]
//!   inference by least upper bounds, and CHARE-style regular-expression
//!   inference from example label sequences \[4, 6, 7\].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod automata;
pub mod infer;
pub mod regex;
pub mod subtype;

pub use regex::Regex;
pub use subtype::{inclusion_subtype, interleave_subtype, width_subtype};
