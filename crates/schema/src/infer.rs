//! Schema inference for schema-less semistructured data.
//!
//! §6: AceDB let biologists build databases without a schema, and "since
//! eventually one will want to retro-fit a schema to the data, it also
//! points to the need of automatic schema inference for semistructured
//! data" \[4, 6, 7, 34, 74\]. Two inference problems are solved here:
//!
//! * [`infer_type`] — a complex-object [`Type`] for a collection of
//!   values, by folding least upper bounds: fields present in only some
//!   entries become optional (the World Factbook's
//!   `Government/Elections/Althing` pattern),
//! * [`infer_regex`] — a CHARE-style (chain of alternations with
//!   multiplicities) regular expression generalizing a set of example
//!   label sequences, the shape \[6\] shows covers almost all real-world
//!   DTD content models.

use std::collections::{BTreeMap, BTreeSet};

use cdb_model::{AtomType, Type, Value};

use crate::regex::Regex;

/// Infers a type covering all given values (an empty input infers
/// [`Type::Any`]).
pub fn infer_type<'a>(values: impl IntoIterator<Item = &'a Value>) -> Type {
    let mut it = values.into_iter();
    let Some(first) = it.next() else {
        return Type::Any;
    };
    let mut acc = type_of(first);
    for v in it {
        acc = acc.lub(&type_of(v));
    }
    acc
}

/// The exact (most specific) type of a single value.
pub fn type_of(v: &Value) -> Type {
    match v {
        Value::Atom(a) => Type::Atom(AtomType::of(a)),
        Value::Record(m) => Type::record(m.iter().map(|(l, x)| (l.clone(), type_of(x)))),
        Value::Set(s) => Type::set(infer_type(s.iter())),
        Value::List(xs) => Type::list(infer_type(xs.iter())),
    }
}

/// Infers a CHARE expression from example label sequences: a
/// concatenation of *factors*, each an alternation of symbols with a
/// multiplicity (`1`, `?`, `+`, `*`).
///
/// Factors are the strongly-connected components of the symbol
/// successor graph, emitted in topological order; a factor's
/// multiplicity is derived from how often its symbols occur per example.
/// The result is guaranteed to accept every example (checked by tests
/// and debug assertions), at the cost of possible generalization —
/// which is the point of inference.
pub fn infer_regex<S: AsRef<str>>(examples: &[Vec<S>]) -> Regex {
    let examples: Vec<Vec<&str>> = examples
        .iter()
        .map(|e| e.iter().map(AsRef::as_ref).collect())
        .collect();
    let symbols: BTreeSet<&str> = examples.iter().flatten().copied().collect();
    if symbols.is_empty() {
        return Regex::Eps;
    }
    // Successor graph: a → b if b ever directly follows a.
    let mut succ: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &examples {
        for w in e.windows(2) {
            succ.entry(w[0]).or_default().insert(w[1]);
        }
    }
    // SCCs by Tarjan-lite (iterative Kosaraju on the small graph).
    let sccs = scc_topological(&symbols, &succ);
    // Multiplicity of each factor: across examples, min and max number
    // of occurrences of the factor's symbols.
    let mut factors = Vec::new();
    for comp in sccs {
        let (mut min_c, mut max_c) = (usize::MAX, 0usize);
        for e in &examples {
            let c = e.iter().filter(|s| comp.contains(*s)).count();
            min_c = min_c.min(c);
            max_c = max_c.max(c);
        }
        let base = Regex::alt(comp.iter().map(|s| Regex::sym(*s)));
        // A multi-symbol SCC means the symbols repeat among themselves:
        // force a starred/plus factor regardless of counts.
        let repeating = comp.len() > 1 || max_c > 1;
        let factor = match (min_c, repeating) {
            (0, true) => Regex::star(base),
            (0, false) => Regex::opt(base),
            (_, true) => Regex::seq([base.clone(), Regex::star(base)]),
            (_, false) => base,
        };
        factors.push(factor);
    }
    let result = Regex::seq(factors);
    debug_assert!(
        examples.iter().all(|e| result.matches(e.iter().copied())),
        "inferred expression must accept every example"
    );
    result
}

/// SCCs of the successor graph in topological order of first occurrence.
fn scc_topological<'a>(
    symbols: &BTreeSet<&'a str>,
    succ: &BTreeMap<&'a str, BTreeSet<&'a str>>,
) -> Vec<BTreeSet<&'a str>> {
    // Compute reachability closure.
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut work = vec![from];
        while let Some(x) = work.pop() {
            if x == to {
                return true;
            }
            if !seen.insert(x) {
                continue;
            }
            if let Some(ns) = succ.get(x) {
                work.extend(ns.iter().copied());
            }
        }
        false
    };
    // Group mutually-reachable symbols.
    let mut comps: Vec<BTreeSet<&str>> = Vec::new();
    for &s in symbols {
        if comps.iter().any(|c| c.contains(s)) {
            continue;
        }
        let mut comp = BTreeSet::new();
        comp.insert(s);
        for &t in symbols {
            if t != s && reaches(s, t) && reaches(t, s) {
                comp.insert(t);
            }
        }
        comps.push(comp);
    }
    // Topological sort: comp A before comp B if A reaches B.
    comps.sort_by(|a, b| {
        let ar = a.iter().next().expect("non-empty");
        let br = b.iter().next().expect("non-empty");
        if reaches(ar, br) && !reaches(br, ar) {
            std::cmp::Ordering::Less
        } else if reaches(br, ar) && !reaches(ar, br) {
            std::cmp::Ordering::Greater
        } else {
            ar.cmp(br)
        }
    });
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_model::types::FieldType;

    #[test]
    fn type_inference_marks_varying_fields_optional() {
        // Iceland has an "althing" field; other countries do not (§6's
        // Government/Elections/Althing example).
        let iceland = Value::record([
            ("name", Value::str("Iceland")),
            ("althing", Value::str("parliament")),
        ]);
        let latvia = Value::record([("name", Value::str("Latvia"))]);
        let t = infer_type([&iceland, &latvia]);
        match &t {
            Type::Record(fs) => {
                assert!(!fs["name"].optional);
                assert!(fs["althing"].optional);
            }
            other => panic!("expected record, got {other}"),
        }
        // Both values check against the inferred type.
        assert!(t.check(&iceland).is_ok());
        assert!(t.check(&latvia).is_ok());
    }

    #[test]
    fn type_inference_generalizes_sets_elementwise() {
        let db = Value::set([
            Value::record([("a", Value::int(1))]),
            Value::record([("a", Value::int(2)), ("b", Value::str("x"))]),
        ]);
        let t = infer_type([&db]);
        match &t {
            Type::Set(elem) => match elem.as_ref() {
                Type::Record(fs) => {
                    assert_eq!(fs["a"], FieldType::required(Type::Atom(AtomType::Int)));
                    assert!(fs["b"].optional);
                }
                other => panic!("expected record, got {other}"),
            },
            other => panic!("expected set, got {other}"),
        }
    }

    #[test]
    fn incompatible_shapes_fall_back_to_any() {
        let t = infer_type([&Value::int(1), &Value::str("x")]);
        assert_eq!(t, Type::Any);
        assert_eq!(infer_type(std::iter::empty()), Type::Any);
    }

    #[test]
    fn regex_inference_simple_sequence() {
        let ex = vec![vec!["id", "ac", "de", "sq"], vec!["id", "ac", "de", "sq"]];
        let e = infer_regex(&ex);
        assert!(e.matches(["id", "ac", "de", "sq"]));
        assert!(!e.matches(["ac", "id", "de", "sq"]));
        assert_eq!(e.to_string(), "id ac de sq");
    }

    #[test]
    fn regex_inference_optional_and_repeated() {
        // Some entries have no "kw", some have multiple "ref"s.
        let ex = vec![
            vec!["id", "ref", "sq"],
            vec!["id", "ref", "ref", "ref", "sq"],
            vec!["id", "kw", "ref", "sq"],
        ];
        let e = infer_regex(&ex);
        for x in &ex {
            assert!(e.matches(x.iter().copied()), "{x:?}");
        }
        // Generalizes: more refs fine, kw optional.
        assert!(e.matches(["id", "ref", "ref", "ref", "ref", "sq"]));
        assert!(e.matches(["id", "ref", "sq"]));
        assert!(!e.matches(["ref", "id", "sq"]));
    }

    #[test]
    fn regex_inference_alternating_symbols_form_a_starred_factor() {
        // a and b alternate arbitrarily: they form one SCC.
        let ex = vec![vec!["x", "a", "b", "a", "y"], vec!["x", "b", "a", "b", "y"]];
        let e = infer_regex(&ex);
        for x in &ex {
            assert!(e.matches(x.iter().copied()));
        }
        assert!(e.matches(["x", "a", "b", "a", "b", "a", "y"]));
    }

    #[test]
    fn regex_inference_empty_and_single() {
        assert_eq!(infer_regex::<&str>(&[]), Regex::Eps);
        let e = infer_regex(&[vec!["a"]]);
        assert!(e.matches(["a"]));
        assert!(!e.matches(Vec::<&str>::new()));
    }

    #[test]
    fn inferred_types_accept_future_entries_with_extra_fields() {
        // The retro-fitted schema keeps working as curators add fields
        // (width subtyping at the value level).
        let t = infer_type([&Value::record([("a", Value::int(1))])]);
        let richer = Value::record([("a", Value::int(2)), ("z", Value::str("new"))]);
        assert!(t.check(&richer).is_ok());
    }
}
