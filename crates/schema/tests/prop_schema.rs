//! Property-based tests: derivative matching vs DFA, interleave
//! elimination preserves the language, containment soundness, and
//! subtype-relation structure on random expressions.

use cdb_schema::automata::{contains, Dfa};
use cdb_schema::{inclusion_subtype, interleave_subtype, width_subtype, Regex};
use proptest::prelude::*;

fn sym() -> impl Strategy<Value = Regex> {
    prop_oneof![
        Just(Regex::sym("a")),
        Just(Regex::sym("b")),
        Just(Regex::sym("c"))
    ]
}

/// Random regular expressions of bounded size (with interleaving).
fn regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![Just(Regex::Eps), sym()];
    leaf.prop_recursive(3, 12, 2, |inner| {
        (inner.clone(), inner).prop_flat_map(|(a, b)| {
            prop_oneof![
                Just(Regex::seq([a.clone(), b.clone()])),
                Just(Regex::alt([a.clone(), b.clone()])),
                Just(Regex::star(a.clone())),
                Just(Regex::opt(a.clone())),
                Just(Regex::interleave(a, b)),
            ]
        })
    })
}

/// Random short words over the alphabet.
fn word() -> impl Strategy<Value = Vec<&'static str>> {
    proptest::collection::vec(prop_oneof![Just("a"), Just("b"), Just("c")], 0..6)
}

proptest! {
    /// Derivative-based matching agrees with the constructed DFA.
    #[test]
    fn dfa_agrees_with_derivatives(e in regex(), w in word()) {
        let dfa = Dfa::build(&e).expect("state cap");
        prop_assert_eq!(e.matches(w.iter().copied()), dfa.accepts(w.iter().copied()));
    }

    /// Interleave elimination preserves the language on sampled words.
    #[test]
    fn eliminate_interleave_preserves_language(e in regex(), w in word()) {
        let flat = e.eliminate_interleave();
        let has_interleave = format!("{:?}", flat).contains("Interleave");
        prop_assert!(!has_interleave);
        let (em, fm) = (e.matches(w.iter().copied()), flat.matches(w.iter().copied()));
        prop_assert_eq!(em, fm, "disagree on {:?} for {} vs flat {}", w, e, flat);
    }

    /// DFA-to-regex recovery preserves the language on sampled words.
    #[test]
    fn dfa_to_regex_preserves_language(e in regex(), w in word()) {
        let back = Dfa::build(&e).unwrap().to_regex();
        prop_assert_eq!(
            e.matches(w.iter().copied()),
            back.matches(w.iter().copied())
        );
    }

    /// Containment soundness: if L(sub) ⊆ L(sup) is claimed, no sampled
    /// word is in sub but not sup; and containment is reflexive, with
    /// alternation an upper bound.
    #[test]
    fn containment_sound_on_samples(a in regex(), b in regex(), w in word()) {
        prop_assert!(contains(&a, &a), "reflexive");
        let alt = Regex::alt([a.clone(), b.clone()]);
        prop_assert!(contains(&alt, &a), "a ⊆ a|b");
        prop_assert!(contains(&alt, &b), "b ⊆ a|b");
        if contains(&b, &a) && a.matches(w.iter().copied()) {
            prop_assert!(b.matches(w.iter().copied()),
                "claimed {} ⊆ {} but {:?} separates them", a, b, w);
        }
    }

    /// Inclusion subtyping implies interleaving subtyping (the padding
    /// star includes ε). It does NOT imply width subtyping — width runs
    /// in the other direction (every *supertype* word must be a prefix
    /// of a subtype word), e.g. `a <: a|b` by inclusion while `b` is a
    /// prefix of no word of `a`.
    #[test]
    fn inclusion_implies_interleave_subtyping(a in regex(), b in regex()) {
        if inclusion_subtype(&a, &b) {
            prop_assert!(interleave_subtype(&a, &b),
                "inclusion {} <: {} but interleaving disagrees", a, b);
        }
    }

    /// Appending fresh material always preserves width subtyping.
    #[test]
    fn appending_preserves_width_subtype(a in regex()) {
        let extended = Regex::seq([a.clone(), Regex::sym("z")]);
        prop_assert!(width_subtype(&extended, &a));
    }

    /// Interleaving fresh symbols anywhere preserves interleave
    /// subtyping.
    #[test]
    fn interleaving_fresh_symbols_preserves_subtype(a in regex()) {
        let widened = Regex::interleave(a.clone(), Regex::star(Regex::sym("z")));
        prop_assert!(interleave_subtype(&widened, &a));
    }

    /// Smart-constructor normalization never changes nullability or
    /// single-symbol derivatives.
    #[test]
    fn derivatives_respect_language(e in regex(), w in word()) {
        // matches(w) computed stepwise equals direct evaluation — this
        // is the definition, but exercises the normalizing constructors
        // deeply.
        let mut cur = e.clone();
        let mut alive = true;
        for s in &w {
            cur = cur.derivative(s);
            if cur.is_empty_language() {
                alive = false;
                break;
            }
        }
        let stepwise = alive && cur.nullable();
        prop_assert_eq!(stepwise, e.matches(w.iter().copied()));
    }
}
