//! E9 — §6.1's schema-evolution costs.
//!
//! Regenerates the interleaving blow-up table (DFA states and
//! interleave-free regex size for `a # b # c # …`, exponential per
//! \[42, 43, 56\]) and measures subtype checking: inclusion vs width vs
//! interleaving on evolving content models, plus schema inference
//! throughput.

use std::sync::Once;

use cdb_bench::print_once;
use cdb_schema::automata::{state_count, Dfa};
use cdb_schema::infer::infer_regex;
use cdb_schema::{inclusion_subtype, interleave_subtype, width_subtype, Regex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

static TABLE: Once = Once::new();

const SYMS: [&str; 10] = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"];

fn interleave_of(n: usize) -> Regex {
    SYMS[..n]
        .iter()
        .map(|s| Regex::sym(*s))
        .reduce(Regex::interleave)
        .expect("n ≥ 1")
}

fn table() {
    println!("\n=== E9: the interleaving blow-up (a # b # … over n symbols) ===");
    println!(
        "{:<6} {:>12} {:>12} {:>20}",
        "n", "expr size", "DFA states", "flat regex size"
    );
    for n in 1..=8 {
        let e = interleave_of(n);
        let states = state_count(&e).expect("within cap");
        let flat = if n <= 6 {
            e.eliminate_interleave().size().to_string()
        } else {
            "(skipped)".to_owned()
        };
        println!("{:<6} {:>12} {:>12} {:>20}", n, e.size(), states, flat);
    }
    println!();
}

fn bench_blowup(c: &mut Criterion) {
    print_once(&TABLE, table);
    let mut g = c.benchmark_group("e9_interleave_dfa");
    for n in [3usize, 5, 7] {
        let e = interleave_of(n);
        g.bench_with_input(BenchmarkId::new("build_dfa", n), &n, |b, _| {
            b.iter(|| black_box(Dfa::build(&e).unwrap().state_count()))
        });
    }
    g.finish();
}

fn bench_subtyping(c: &mut Criterion) {
    // An evolving UniProt-ish content model.
    let old = Regex::parse("id ac dt* de gn os oc* ref* cc* dr* kw* sq").unwrap();
    let appended = Regex::parse("id ac dt* de gn os oc* ref* cc* dr* kw* sq ft*").unwrap();
    let inserted = Regex::parse("id ac dt* de gn os og oc* ref* cc* dr* kw* sq").unwrap();

    let mut g = c.benchmark_group("e9_subtype_checks");
    for (name, evolved) in [("appended", &appended), ("inserted", &inserted)] {
        g.bench_with_input(BenchmarkId::new("inclusion", name), evolved, |b, e| {
            b.iter(|| black_box(inclusion_subtype(e, &old)))
        });
        g.bench_with_input(BenchmarkId::new("width", name), evolved, |b, e| {
            b.iter(|| black_box(width_subtype(e, &old)))
        });
        g.bench_with_input(BenchmarkId::new("interleaving", name), evolved, |b, e| {
            b.iter(|| black_box(interleave_subtype(e, &old)))
        });
    }
    g.finish();
}

fn bench_inference(c: &mut Criterion) {
    // Inference over many observed entry layouts.
    let mut examples: Vec<Vec<&str>> = Vec::new();
    for i in 0..200 {
        let mut e = vec!["id", "ac"];
        if i % 3 != 0 {
            e.push("de");
        }
        #[allow(clippy::same_item_push)] // repeated fields are the point
        for _ in 0..(i % 5) {
            e.push("ref");
        }
        if i % 7 == 0 {
            e.push("kw");
        }
        e.push("sq");
        examples.push(e);
    }
    c.bench_function("e9_infer_content_model_200_entries", |b| {
        b.iter(|| black_box(infer_regex(&examples)))
    });
}

criterion_group!(benches, bench_blowup, bench_subtyping, bench_inference);
criterion_main!(benches);
