//! E18 + E24 — the price of observability (see EXPERIMENTS.md).
//!
//! The cdb-obs design claim is that an always-on metrics registry and
//! always-timing spans cost nearly nothing on the paths that matter:
//! the budget is **< 3% commit-throughput regression at 4 writers**
//! with metrics on versus off, and similar on join latency.
//!
//! Hand-rolled harness (the criterion-shim `Bencher` is
//! single-threaded; the commit measurement is about threads). Each
//! configuration is measured twice in alternation (on, off, on, off)
//! and averaged, so slow drift on the host cancels instead of landing
//! entirely on one side.
//!
//! Rows in `BENCH_obs_overhead.json`:
//!
//! - `e18_commit/w4/metrics_{on,off}` — group-commit throughput over a
//!   simulated 3 ms-sync device, 4 writers.
//! - `e18_commit/w4/tracing_on` — same with span ring emission enabled
//!   too (the `trace on` regime).
//! - `e18_join/metrics_{on,off}` — hash natural-join latency via
//!   `eval_with_stats`.
//! - `e18_overhead/{commit_w4,join}_centipct` — the measured on/off
//!   regression in hundredths of a percent (`ns_per_iter` field;
//!   clamped at 0 when "on" measures faster, which happens within
//!   noise), so the < 3% acceptance reads directly as `< 300`.
//! - `e24_served/edit/obs_{on,off}` — ns per served write: a protocol
//!   client over an in-memory pipe driving a session thread whose
//!   `SharedDb` commits through the same 3 ms-sync device. "On" is
//!   the full distributed-observability regime (metrics + tracing +
//!   wire trace ids on every request); "off" disables both flags.
//! - `e24_overhead/served_edit_centipct` — the served-write
//!   regression; the S29 budget is **< 1%** (`ns_per_iter < 100`),
//!   credible because each request already pays a device sync.

use std::hint::black_box;
use std::thread;
use std::time::{Duration, Instant};

use cdb_core::SharedDb;
use cdb_model::Atom;
use cdb_relalg::{eval_with_stats, ExecConfig};
use cdb_server::admission::Admission;
use cdb_server::client::Client;
use cdb_server::session::Session;
use cdb_server::transport::mem_pair;
use cdb_storage::{Io, MemIo, ThrottledIo};
use cdb_workload::relational::{join_tables, natural_join_query, JoinConfig};
use criterion::{push_record, smoke_mode, write_json_report, Record};

/// Simulated device sync latency — same regime as E17, so the commit
/// numbers here are comparable to `BENCH_commit_throughput.json`.
const SYNC_LATENCY: Duration = Duration::from_millis(3);
const WRITERS: u64 = 4;
const WINDOW: Duration = Duration::from_micros(100);
const SEED_KEYS: u64 = 16;

fn throttled_dev() -> Box<dyn Io> {
    Box::new(ThrottledIo::new(MemIo::new(), SYNC_LATENCY))
}

fn seed_key(i: u64) -> String {
    format!("K{}", i % SEED_KEYS)
}

/// 4 writers over `SharedDb` group commit; returns commits/s.
fn group_throughput(per_writer: u64) -> f64 {
    let db = SharedDb::open(
        "bench",
        "id",
        throttled_dev(),
        cdb_storage::CheckpointStore::mem(),
        WINDOW,
    )
    .unwrap();
    for i in 0..SEED_KEYS {
        db.add_entry("seed", i, &seed_key(i), &[("v", Atom::Int(0))])
            .unwrap();
    }
    let start = Instant::now();
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let db = db.clone();
            thread::spawn(move || {
                for i in 0..per_writer {
                    db.edit_field(
                        "w",
                        1_000_000 * (w + 1) + i,
                        &seed_key(w + i * WRITERS),
                        "v",
                        Atom::Int(i as i64),
                    )
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (WRITERS * per_writer) as f64 / start.elapsed().as_secs_f64()
}

/// Mean ns per hash-join evaluation.
fn join_ns(db: &cdb_relalg::Database, expr: &cdb_relalg::RaExpr, iters: u64) -> f64 {
    let cfg = ExecConfig::default();
    let start = Instant::now();
    for _ in 0..iters {
        black_box(eval_with_stats(db, expr, &cfg).unwrap());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Runs `measure` twice with metrics on and twice off, alternating,
/// and returns the (on, off) averages.
fn alternated(mut measure: impl FnMut() -> f64) -> (f64, f64) {
    let mut on = Vec::new();
    let mut off = Vec::new();
    for _ in 0..2 {
        cdb_obs::set_metrics_enabled(true);
        on.push(measure());
        cdb_obs::set_metrics_enabled(false);
        off.push(measure());
    }
    cdb_obs::set_metrics_enabled(true);
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    (avg(&on), avg(&off))
}

/// Like [`alternated`], but "on" is the whole observability stack —
/// metrics *and* tracing (which also stamps trace ids onto the wire).
fn alternated_full(mut measure: impl FnMut() -> f64) -> (f64, f64) {
    let mut on = Vec::new();
    let mut off = Vec::new();
    for _ in 0..2 {
        cdb_obs::set_metrics_enabled(true);
        cdb_obs::set_tracing(true);
        on.push(measure());
        cdb_obs::set_tracing(false);
        cdb_obs::set_metrics_enabled(false);
        off.push(measure());
    }
    cdb_obs::set_metrics_enabled(true);
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    (avg(&on), avg(&off))
}

/// ns per served edit: a client over an in-memory pipe against a
/// session thread serving a `SharedDb` on the throttled device — the
/// full write path a remote curator pays (frame decode, admission,
/// dispatch, group commit, response), end to end.
fn served_edit_ns(per: u64) -> f64 {
    let db = SharedDb::open(
        "bench",
        "id",
        throttled_dev(),
        cdb_storage::CheckpointStore::mem(),
        WINDOW,
    )
    .unwrap();
    for i in 0..SEED_KEYS {
        db.add_entry("seed", i, &seed_key(i), &[("v", Atom::Int(0))])
            .unwrap();
    }
    let admission = Admission::new(4, 5, db.metrics());
    let (client_end, server_end) = mem_pair();
    let session = {
        let db = db.clone();
        thread::spawn(move || Session::new(server_end, db, admission).run())
    };
    let mut client = Client::over(client_end);
    client.hello("bench").unwrap();
    let start = Instant::now();
    for i in 0..per {
        client
            .edit("w", 1_000_000 + i, &seed_key(i), "v", Atom::Int(i as i64))
            .unwrap();
    }
    let elapsed = start.elapsed();
    client.close().unwrap();
    drop(client);
    session.join().unwrap();
    elapsed.as_nanos() as f64 / per as f64
}

fn throughput_row(op: &str, ops_per_s: f64, commits: u64) {
    eprintln!("  {op:<40} {ops_per_s:>10.0} commits/s");
    push_record(Record {
        op: op.to_owned(),
        ns_per_iter: (1e9 / ops_per_s) as u128,
        samples: commits as usize,
        iters_per_sample: 1,
        threads: Some(WRITERS),
        batch_window_us: Some(WINDOW.as_micros() as u64),
        ..Record::default()
    });
}

fn overhead_row(op: &str, pct: f64, budget_pct: f64) {
    let verdict = if pct < budget_pct { "within" } else { "OVER" };
    eprintln!("  {op:<40} {pct:>9.2} %   ({verdict} the {budget_pct}% budget)");
    push_record(Record {
        op: op.to_owned(),
        ns_per_iter: (pct.max(0.0) * 100.0).round() as u128,
        samples: 1,
        iters_per_sample: 1,
        ..Record::default()
    });
}

fn main() {
    let (per_writer, join_iters) = if smoke_mode() { (3, 5) } else { (150, 300) };

    eprintln!(
        "\n== e18: commit throughput, metrics on vs off (4 writers, {SYNC_LATENCY:?} sync) =="
    );
    let (on, off) = alternated(|| group_throughput(per_writer));
    let commits = WRITERS * per_writer;
    throughput_row("e18_commit/w4/metrics_on", on, commits);
    throughput_row("e18_commit/w4/metrics_off", off, commits);
    // Throughput regression: how much slower "on" is than "off".
    let commit_pct = (off - on) / off * 100.0;
    overhead_row("e18_overhead/commit_w4_centipct", commit_pct, 3.0);

    cdb_obs::set_tracing(true);
    let traced = group_throughput(per_writer);
    cdb_obs::set_tracing(false);
    throughput_row("e18_commit/w4/tracing_on", traced, commits);

    eprintln!("\n== e18: hash-join latency, metrics on vs off ==");
    let n: usize = if smoke_mode() { 300 } else { 5_000 };
    let jcfg = JoinConfig {
        left_rows: n,
        right_rows: n,
        key_cardinality: n,
        payload_values: 1_000,
    };
    let jdb = join_tables(0xC0DB, &jcfg);
    let nat = natural_join_query();
    let (on_ns, off_ns) = alternated(|| join_ns(&jdb, &nat, join_iters));
    eprintln!(
        "  e18_join/metrics_on                      {:>10.1?}",
        Duration::from_nanos(on_ns as u64)
    );
    eprintln!(
        "  e18_join/metrics_off                     {:>10.1?}",
        Duration::from_nanos(off_ns as u64)
    );
    push_record(Record {
        op: "e18_join/metrics_on".to_owned(),
        ns_per_iter: on_ns as u128,
        samples: join_iters as usize,
        iters_per_sample: 1,
        ..Record::default()
    });
    push_record(Record {
        op: "e18_join/metrics_off".to_owned(),
        ns_per_iter: off_ns as u128,
        samples: join_iters as usize,
        iters_per_sample: 1,
        ..Record::default()
    });
    // Latency regression: how much slower "on" is than "off".
    let join_pct = (on_ns - off_ns) / off_ns * 100.0;
    overhead_row("e18_overhead/join_centipct", join_pct, 3.0);

    eprintln!("\n== e24: served-write latency, full observability on vs off ==");
    let served_per = if smoke_mode() { 5 } else { 400 };
    let (served_on, served_off) = alternated_full(|| served_edit_ns(served_per));
    for (op, ns) in [
        ("e24_served/edit/obs_on", served_on),
        ("e24_served/edit/obs_off", served_off),
    ] {
        eprintln!(
            "  {op:<40} {:>10.1?} /request",
            Duration::from_nanos(ns as u64)
        );
        push_record(Record {
            op: op.to_owned(),
            ns_per_iter: ns as u128,
            samples: served_per as usize,
            iters_per_sample: 1,
            batch_window_us: Some(WINDOW.as_micros() as u64),
            ..Record::default()
        });
    }
    let served_pct = (served_on - served_off) / served_off * 100.0;
    overhead_row("e24_overhead/served_edit_centipct", served_pct, 1.0);

    write_json_report("obs_overhead", env!("CARGO_MANIFEST_DIR"));
}
