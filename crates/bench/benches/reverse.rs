//! E5 — §2.2's reverse-propagation complexity landscape.
//!
//! The general side-effect-free placement search probes every candidate
//! source cell with a forward evaluation; its cost grows with database
//! size × query cost. The key-preserving fast path of \[27\] resolves
//! the placement directly and verifies once. The bench regenerates the
//! claimed shape: key-preserving stays near-constant in probe count
//! while the general search scales with the candidate space. View
//! deletion (minimal witnesses + hitting sets) is measured alongside.

use std::sync::Once;

use cdb_annotation::reverse::{
    find_placement_key_preserving, find_placements, view_deletions, Target,
};
use cdb_bench::print_once;
use cdb_model::Atom;
use cdb_relalg::{Database, ProjItem, RaExpr, Relation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

static TABLE: Once = Once::new();

fn make_db(n: usize) -> Database {
    let rows_r = (0..n).map(|i| vec![Atom::Int(i as i64), Atom::Int((i % 20) as i64)]);
    let rows_s = (0..20).map(|j| vec![Atom::Int(j as i64), Atom::Int((j * 10) as i64)]);
    Database::new()
        .with("R", Relation::table(["K", "G"], rows_r).unwrap())
        .with("S", Relation::table(["G", "C"], rows_s).unwrap())
}

/// A key-preserving projection-join view: keeps R's key K.
fn view() -> RaExpr {
    RaExpr::scan("R")
        .natural_join(RaExpr::scan("S"))
        .project(vec![ProjItem::col("K", "K"), ProjItem::col("C", "C")])
}

fn target(n: usize) -> Target {
    let k = (n / 2) as i64;
    Target {
        tuple: vec![Atom::Int(k), Atom::Int((k % 20) * 10)],
        attr: "K".into(),
    }
}

fn table() {
    println!("\n=== E5: probe counts, general search vs key-preserving ===");
    println!(
        "{:<8} {:>16} {:>18} {:>14}",
        "|R|", "general probes", "general found", "fast probes"
    );
    for n in [20usize, 40, 80, 160] {
        let db = make_db(n);
        let q = view();
        let t = target(n);
        let (found, stats) = find_placements(&db, &q, &t).unwrap();
        let (fast, fstats) = find_placement_key_preserving(&db, &q, "R", &["K"], &t).unwrap();
        assert!(fast.is_some());
        println!(
            "{:<8} {:>16} {:>18} {:>14}",
            n,
            stats.evaluations,
            found.len(),
            fstats.evaluations
        );
    }
    println!();
}

fn bench_placement(c: &mut Criterion) {
    print_once(&TABLE, table);
    let mut g = c.benchmark_group("e5_side_effect_free_placement");
    g.sample_size(10);
    for n in [20usize, 40, 80] {
        let db = make_db(n);
        let q = view();
        let t = target(n);
        g.bench_with_input(BenchmarkId::new("general_search", n), &n, |b, _| {
            b.iter(|| black_box(find_placements(&db, &q, &t).unwrap().0.len()))
        });
        g.bench_with_input(BenchmarkId::new("key_preserving", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    find_placement_key_preserving(&db, &q, "R", &["K"], &t)
                        .unwrap()
                        .0
                        .is_some(),
                )
            })
        });
    }
    g.finish();
}

fn bench_view_deletion(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_view_deletion");
    g.sample_size(10);
    for n in [20usize, 60] {
        let db = make_db(n);
        // π_C(R ⋈ S): each C has n/20 witnesses.
        let q = RaExpr::scan("R")
            .natural_join(RaExpr::scan("S"))
            .project(vec![ProjItem::col("C", "C")]);
        let t = vec![Atom::Int(50)];
        g.bench_with_input(BenchmarkId::new("minimal_deletions", n), &n, |b, _| {
            b.iter(|| black_box(view_deletions(&db, &q, &t).unwrap().len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_placement, bench_view_deletion);
criterion_main!(benches);
