//! E1 — the overhead of annotation propagation (§2.1).
//!
//! Measures evaluating the same query plain, under the default
//! propagation scheme, and under DEFAULT-ALL, at growing input sizes —
//! the "efficiency of computing annotation propagation" that the
//! DBNotes work investigates.

use cdb_annotation::colored::{eval_colored, ColoredDatabase, Scheme};
use cdb_model::Atom;
use cdb_relalg::{eval::eval, Database, Pred, RaExpr, Relation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn make_db(n: usize) -> Database {
    let rows_r = (0..n).map(|i| vec![Atom::Int(i as i64), Atom::Int((i % 50) as i64)]);
    let rows_s = (0..n).map(|i| {
        vec![
            Atom::Int((i * 2 % n.max(1)) as i64),
            Atom::Int((i % 50) as i64),
        ]
    });
    Database::new()
        .with("R", Relation::table(["A", "B"], rows_r).unwrap())
        .with("S", Relation::table(["A", "B"], rows_s).unwrap())
}

fn query() -> RaExpr {
    RaExpr::ScanAs("R".into(), "R".into())
        .product(RaExpr::ScanAs("S".into(), "S".into()))
        .select(Pred::col_eq_col("R.A", "S.A").and(Pred::col_eq_const("R.B", 7)))
        .project(vec![
            cdb_relalg::ProjItem::col("R.A", "A"),
            cdb_relalg::ProjItem::col("S.B", "B"),
        ])
}

fn bench_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_annotation_overhead");
    g.sample_size(10);
    for n in [50usize, 100, 200] {
        let db = make_db(n);
        let cdb = ColoredDatabase::distinctly_colored(&db);
        let q = query();
        g.bench_with_input(BenchmarkId::new("plain", n), &n, |b, _| {
            b.iter(|| black_box(eval(&db, &q).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("default_scheme", n), &n, |b, _| {
            b.iter(|| black_box(eval_colored(&cdb, &q, &Scheme::Default).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("default_all", n), &n, |b, _| {
            b.iter(|| black_box(eval_colored(&cdb, &q, &Scheme::DefaultAll).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
