//! E6 — §3.1's provenance-store cost claims.
//!
//! Regenerates the storage comparison (naive per-node trail vs
//! hereditary provenance) and the transaction-squashing compression
//! ratio, and measures the time cost of running curation sessions under
//! each store mode plus the provenance-query latency.

use std::sync::Once;

use cdb_bench::print_once;
use cdb_curation::provstore::{squash, StoreMode};
use cdb_curation::queries;
use cdb_workload::sessions::{CurationSim, SessionConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

static TABLE: Once = Once::new();

fn cfg(transactions: usize) -> SessionConfig {
    SessionConfig {
        source_entries: 200,
        fields_per_entry: 12,
        transactions,
        pastes_per_txn: 4,
        edits_per_txn: 6,
        inserts_per_txn: 1,
    }
}

fn table() {
    println!("\n=== E6: provenance store size vs curation volume ===");
    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>14} {:>14} {:>10}",
        "txns", "nodes", "naive recs", "naive B", "hered recs", "hered B", "squash"
    );
    for txns in [10usize, 40, 160] {
        let mut naive = CurationSim::new(1, StoreMode::Naive, cfg(txns));
        let mut hered = CurationSim::new(1, StoreMode::Hereditary, cfg(txns));
        naive.run();
        hered.run();
        let raw: usize = hered.target.log.iter().map(|t| t.ops.len()).sum();
        let squashed: usize = hered.target.log.iter().map(|t| squash(&t.ops).len()).sum();
        println!(
            "{:<8} {:>10} {:>14} {:>14} {:>14} {:>14} {:>9.0}%",
            txns,
            hered.target.tree.size(),
            naive.target.prov.record_count(),
            naive.target.prov.encoded_size(),
            hered.target.prov.record_count(),
            hered.target.prov.encoded_size(),
            100.0 * squashed as f64 / raw as f64,
        );
    }
    println!();
}

fn bench_sessions(c: &mut Criterion) {
    print_once(&TABLE, table);
    let mut g = c.benchmark_group("e6_curation_sessions");
    for mode in [StoreMode::Naive, StoreMode::Hereditary] {
        g.bench_with_input(
            BenchmarkId::new("run_40_txns", format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let mut sim = CurationSim::new(3, mode, cfg(40));
                    sim.run();
                    black_box(sim.target.prov.record_count())
                })
            },
        );
    }
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut sim = CurationSim::new(5, StoreMode::Hereditary, cfg(80));
    sim.run();
    let entry = sim.pasted_roots()[sim.pasted_roots().len() / 2];
    // A leaf under that entry exercises the hereditary ancestor walk.
    let leaf = sim.target.tree.children(entry).unwrap()[0];

    let mut g = c.benchmark_group("e6_provenance_queries");
    g.bench_function("how_arrived_leaf", |b| {
        b.iter(|| black_box(queries::how_arrived(&sim.target, leaf)))
    });
    g.bench_function("when_created", |b| {
        b.iter(|| black_box(queries::when_created(&sim.target, leaf)))
    });
    g.bench_function("history_scan", |b| {
        b.iter(|| black_box(queries::history(&sim.target, entry).len()))
    });
    g.bench_function("squash_all_txns", |b| {
        b.iter(|| {
            let total: usize = sim.target.log.iter().map(|t| squash(&t.ops).len()).sum();
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sessions, bench_queries);
criterion_main!(benches);
