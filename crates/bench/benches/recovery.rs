//! E16 — durable WAL: log-replay throughput vs checkpoint interval.
//!
//! A curation session from `cdb-workload` is written as a WAL image;
//! the bench then times full recovery (scan + decode + replay + verify)
//! with no checkpoint and with checkpoints taken every 64 / 16
//! transactions (recovery loads the *last* checkpoint and replays only
//! the tail), plus raw append+sync throughput. Prints a one-shot table
//! of image size and recovery stats before the timed samples; the
//! measurements land in `BENCH_recovery.json`.

use std::hint::black_box;
use std::sync::Once;

use cdb_curation::ops::CuratedTree;
use cdb_curation::provstore::StoreMode;
use cdb_curation::replay::apply_committed;
use cdb_curation::wire::{encode_transaction, Checkpoint};
use cdb_storage::{recover, DurableLog, MemIo, FRAME_TXN};
use cdb_workload::sessions::{CurationSim, SessionConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

static REPORT: Once = Once::new();

fn session(txns: usize) -> CuratedTree {
    let mut sim = CurationSim::new(
        0xD0_0B,
        StoreMode::Hereditary,
        SessionConfig {
            source_entries: 8,
            fields_per_entry: 3,
            transactions: txns,
            pastes_per_txn: 2,
            edits_per_txn: 3,
            inserts_per_txn: 1,
        },
    );
    sim.run();
    sim.target
}

fn wal_image(db: &CuratedTree) -> Vec<u8> {
    let mut log = DurableLog::create(MemIo::new()).unwrap();
    for txn in db.transactions() {
        log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
    }
    log.sync().unwrap();
    log.into_io().bytes().to_vec()
}

/// The checkpoint a curator checkpointing every `interval` transactions
/// would hold at crash time: state after the last full interval
/// strictly before the crash (so there is always a tail to replay).
fn checkpoint_every(db: &CuratedTree, interval: usize) -> Checkpoint {
    let k = (db.log.len() - 1) / interval * interval;
    let mut snap = CuratedTree::new(db.tree.name(), StoreMode::Hereditary);
    for txn in &db.log[..k] {
        apply_committed(&mut snap, txn).unwrap();
    }
    Checkpoint {
        last_txn: snap.last_txn_id(),
        tree: snap.tree,
        prov: snap.prov,
    }
}

fn bench_recovery(c: &mut Criterion) {
    let txns: usize = if criterion::smoke_mode() { 12 } else { 250 };
    let db = session(txns);
    let image = wal_image(&db);

    cdb_bench::print_once(&REPORT, || {
        let (_, rec) = recover(
            "curated",
            StoreMode::Hereditary,
            MemIo::from_bytes(image.clone()),
            None,
        )
        .unwrap();
        eprintln!(
            "\n-- E16: {} txns, WAL image {} bytes, {} tree nodes --",
            txns,
            image.len(),
            rec.db.tree.size(),
        );
        eprintln!("full replay: {:?}", rec.stats);
        for interval in [64, 16] {
            if interval >= txns {
                continue;
            }
            let ck = checkpoint_every(&db, interval);
            let (_, rec) = recover(
                "curated",
                StoreMode::Hereditary,
                MemIo::from_bytes(image.clone()),
                Some(ck),
            )
            .unwrap();
            eprintln!("checkpoint every {interval}: {:?}", rec.stats);
        }
        eprintln!();
    });

    let mut g = c.benchmark_group("e16_recovery");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("replay_full", txns), &txns, |b, _| {
        b.iter_with_setup(
            || MemIo::from_bytes(image.clone()),
            |io| black_box(recover("curated", StoreMode::Hereditary, io, None).unwrap()),
        )
    });
    for interval in [64usize, 16] {
        if interval >= txns {
            continue;
        }
        let ck = checkpoint_every(&db, interval);
        g.bench_with_input(
            BenchmarkId::new(format!("replay_ckpt_every_{interval}"), txns),
            &txns,
            |b, _| {
                b.iter_with_setup(
                    || (MemIo::from_bytes(image.clone()), Some(ck.clone())),
                    |(io, ck)| {
                        black_box(recover("curated", StoreMode::Hereditary, io, ck).unwrap())
                    },
                )
            },
        );
    }
    // Raw log-append throughput: encode + append + one sync per txn.
    let frames: Vec<Vec<u8>> = db.transactions().iter().map(encode_transaction).collect();
    g.bench_with_input(BenchmarkId::new("append_sync", txns), &txns, |b, _| {
        b.iter_with_setup(
            || DurableLog::create(MemIo::new()).unwrap(),
            |mut log| {
                for f in &frames {
                    log.append(FRAME_TXN, f).unwrap();
                    log.sync().unwrap();
                }
                black_box(log.len().unwrap())
            },
        )
    });
    g.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
