//! E16/E19 — durable WAL: recovery cost vs checkpoint policy.
//!
//! **E16** (single-file log): a curation session from `cdb-workload`
//! is written as a WAL image; the bench then times full recovery
//! (scan + decode + replay + verify) with no checkpoint and with
//! checkpoints taken every 64 / 16 transactions (recovery loads the
//! *last* checkpoint and replays only the tail), plus raw append+sync
//! throughput.
//!
//! **E19** (segmented log): history grows 16× across three sizes; with
//! no checkpoint, recovery replays the whole log and its cost grows
//! linearly, while with periodic checkpoints plus
//! [`Retention::Reclaim`] truncation the covered segments are deleted
//! and recovery stays flat — it scans only the live tail. Each row
//! records the live-segment count in the `segments` field of
//! `BENCH_recovery.json`.
//!
//! Prints a one-shot table of image size and recovery stats before the
//! timed samples; the measurements land in `BENCH_recovery.json`.

use std::hint::black_box;
use std::sync::Once;
use std::time::Instant;

use cdb_curation::ops::CuratedTree;
use cdb_curation::provstore::StoreMode;
use cdb_curation::replay::apply_committed;
use cdb_curation::wire::{encode_transaction, Checkpoint};
use cdb_model::Atom;
use cdb_storage::{
    recover, DurableLog, MemBacking, MemIo, Retention, SegmentConfig, SegmentedIo, FRAME_TXN,
};
use cdb_workload::sessions::{CurationSim, SessionConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Record};

static REPORT: Once = Once::new();

fn session(txns: usize) -> CuratedTree {
    let mut sim = CurationSim::new(
        0xD0_0B,
        StoreMode::Hereditary,
        SessionConfig {
            source_entries: 8,
            fields_per_entry: 3,
            transactions: txns,
            pastes_per_txn: 2,
            edits_per_txn: 3,
            inserts_per_txn: 1,
        },
    );
    sim.run();
    sim.target
}

fn wal_image(db: &CuratedTree) -> Vec<u8> {
    let mut log = DurableLog::create(MemIo::new()).unwrap();
    for txn in db.transactions() {
        log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
    }
    log.sync().unwrap();
    log.into_io().bytes().to_vec()
}

/// The checkpoint a curator checkpointing every `interval` transactions
/// would hold at crash time: state after the last full interval
/// strictly before the crash (so there is always a tail to replay).
fn checkpoint_every(db: &CuratedTree, interval: usize) -> Checkpoint {
    let k = (db.log.len() - 1) / interval * interval;
    let mut snap = CuratedTree::new(db.tree.name(), StoreMode::Hereditary);
    for txn in &db.log[..k] {
        apply_committed(&mut snap, txn).unwrap();
    }
    Checkpoint::basic(snap.last_txn_id(), snap.tree, snap.prov)
}

fn bench_recovery(c: &mut Criterion) {
    let txns: usize = if criterion::smoke_mode() { 12 } else { 250 };
    let db = session(txns);
    let image = wal_image(&db);

    cdb_bench::print_once(&REPORT, || {
        let (_, rec) = recover(
            "curated",
            StoreMode::Hereditary,
            MemIo::from_bytes(image.clone()),
            None,
        )
        .unwrap();
        eprintln!(
            "\n-- E16: {} txns, WAL image {} bytes, {} tree nodes --",
            txns,
            image.len(),
            rec.db.tree.size(),
        );
        eprintln!("full replay: {:?}", rec.stats);
        for interval in [64, 16] {
            if interval >= txns {
                continue;
            }
            let ck = checkpoint_every(&db, interval);
            let (_, rec) = recover(
                "curated",
                StoreMode::Hereditary,
                MemIo::from_bytes(image.clone()),
                Some(ck),
            )
            .unwrap();
            eprintln!("checkpoint every {interval}: {:?}", rec.stats);
        }
        eprintln!();
    });

    let mut g = c.benchmark_group("e16_recovery");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("replay_full", txns), &txns, |b, _| {
        b.iter_with_setup(
            || MemIo::from_bytes(image.clone()),
            |io| black_box(recover("curated", StoreMode::Hereditary, io, None).unwrap()),
        )
    });
    for interval in [64usize, 16] {
        if interval >= txns {
            continue;
        }
        let ck = checkpoint_every(&db, interval);
        g.bench_with_input(
            BenchmarkId::new(format!("replay_ckpt_every_{interval}"), txns),
            &txns,
            |b, _| {
                b.iter_with_setup(
                    || (MemIo::from_bytes(image.clone()), Some(ck.clone())),
                    |(io, ck)| {
                        black_box(recover("curated", StoreMode::Hereditary, io, ck).unwrap())
                    },
                )
            },
        );
    }
    // Raw log-append throughput: encode + append + one sync per txn.
    let frames: Vec<Vec<u8>> = db.transactions().iter().map(encode_transaction).collect();
    g.bench_with_input(BenchmarkId::new("append_sync", txns), &txns, |b, _| {
        b.iter_with_setup(
            || DurableLog::create(MemIo::new()).unwrap(),
            |mut log| {
                for f in &frames {
                    log.append(FRAME_TXN, f).unwrap();
                    log.sync().unwrap();
                }
                black_box(log.len().unwrap())
            },
        )
    });
    g.finish();
}

/// E19's curation workload: one setup transaction builds a fixed
/// 8-entry / 3-field tree, then every later transaction only *edits*
/// existing fields. The live tree (and the node arena) stay a constant
/// size while the history grows without bound — isolating exactly what
/// checkpoint-anchored truncation is supposed to bound. Hand-rolled
/// rather than `CurationSim` because the simulator's scratch notes
/// insert-and-delete nodes, which grows the arena with history.
fn e19_session(txns: usize) -> CuratedTree {
    let mut db = CuratedTree::new("curated", StoreMode::Naive);
    let root = db.tree.root();
    let mut t = db.begin("curator0", 0);
    let mut fields = Vec::new();
    for i in 0..8 {
        let entry = t.insert(root, format!("entry{i}"), None).expect("insert");
        for f in 0..3 {
            let field = t
                .insert(entry, format!("f{f}"), Some(Atom::Str("v".into())))
                .expect("insert");
            fields.push(field);
        }
    }
    t.commit();
    for k in 1..txns {
        let mut t = db.begin("curator", k as u64);
        for j in 0..4 {
            let node = fields[(k * 4 + j) % fields.len()];
            let _ = t.modify(node, Some(Atom::Str(format!("v{k}.{j}"))));
        }
        t.commit();
    }
    db
}

/// Builds a segmented durable history of `txns` transactions. With
/// `reclaim`, a v2 checkpoint (coverage watermark + truncated log) is
/// taken every 8 transactions and the covered segments are deleted;
/// without it, the log just grows. Returns the crash-surviving backing
/// plus the last installed checkpoint.
fn segmented_history(
    db: &CuratedTree,
    reclaim: bool,
    cfg: SegmentConfig,
) -> (MemBacking, Option<Checkpoint>) {
    let (io, backing) = SegmentedIo::mem(cfg).unwrap();
    let mut log = DurableLog::create(io).unwrap();
    let mut snap = CuratedTree::new(db.tree.name(), StoreMode::Naive);
    let mut ck = None;
    for (i, txn) in db.transactions().iter().enumerate() {
        log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
        apply_committed(&mut snap, txn).unwrap();
        if reclaim && (i + 1) % 8 == 0 {
            log.sync().unwrap();
            let covered = log.len().unwrap();
            let mut c = Checkpoint::basic(snap.last_txn_id(), snap.tree.clone(), snap.prov.clone());
            c.covered_len = Some(covered);
            ck = Some(c);
            log.reclaim(covered).unwrap();
        }
    }
    log.sync().unwrap();
    (backing, ck)
}

/// One timed recovery over a fresh crash image of `backing`. Returns
/// the wall time and the live-segment count recovery reported.
fn timed_recover(
    backing: &MemBacking,
    cfg: SegmentConfig,
    ck: &Option<Checkpoint>,
) -> (std::time::Duration, u64) {
    let io = SegmentedIo::open(Box::new(backing.crash()), cfg).unwrap();
    // The clone stands in for the checkpoint *load* (a deserialization
    // whose cost tracks state size, not history) — keep it outside the
    // timed window so the samples isolate scan + tail replay.
    let ck = ck.clone();
    let start = Instant::now();
    let (_, rec) = recover("curated", StoreMode::Naive, io, ck).unwrap();
    let elapsed = start.elapsed();
    black_box(&rec.db);
    (elapsed, rec.stats.live_segments)
}

/// E19 — does checkpoint-anchored truncation keep recovery flat as
/// history grows? Hand-rolled timing (each sample is one full
/// recovery), recorded via `push_record` so the `segments` column
/// lands in the JSON report.
fn bench_recovery_growth(_c: &mut Criterion) {
    let (base, samples) = if criterion::smoke_mode() {
        (8usize, 1usize)
    } else {
        (24, 10)
    };
    // Segments small enough that even the smallest size spans several,
    // so every row measures the bounded steady state: live tail ≤ 2
    // segments regardless of how much history came before.
    let cfg = SegmentConfig {
        segment_bytes: 1024,
        retention: Retention::Reclaim,
    };
    eprintln!("\n== bench group: e19_recovery_growth ==");
    for (variant, reclaim) in [("full_replay", false), ("ckpt_reclaim", true)] {
        for mult in [1usize, 4, 16] {
            let txns = base * mult;
            let (backing, ck) = segmented_history(&e19_session(txns), reclaim, cfg);
            let mut times = Vec::with_capacity(samples);
            let mut segments = 0;
            for _ in 0..samples {
                let (t, live) = timed_recover(&backing, cfg, &ck);
                times.push(t);
                segments = live;
            }
            times.sort();
            let median = times[times.len() / 2];
            eprintln!(
                "  e19_recovery_growth/{variant}/{txns:<28} median {median:>10.3?}  \
                 ({segments} live segments, {} bytes on device)",
                backing.live_bytes(),
            );
            criterion::push_record(Record {
                op: format!("e19_recovery_growth/{variant}/{txns}"),
                size: Some(txns as u64),
                ns_per_iter: median.as_nanos(),
                samples,
                iters_per_sample: 1,
                segments: Some(segments),
                ..Record::default()
            });
        }
    }
}

criterion_group!(benches, bench_recovery, bench_recovery_growth);
criterion_main!(benches);
