//! E20 — network serving layer: throughput and latency versus
//! connection count over real TCP, closed- and open-loop, and the
//! admission-control knee (see EXPERIMENTS.md).
//!
//! Hand-rolled harness (the criterion-shim `Bencher` model is
//! single-threaded; this experiment is about concurrent connections),
//! recording rows through [`criterion::push_record`] so results land
//! in `BENCH_server.json` like every other experiment.
//!
//! Two sweeps:
//!
//! 1. **Closed loop** — N connections, each issuing the next request
//!    only after the previous response (think interactive curators).
//!    The server is sized to fit (`slots > conns`), so nothing sheds;
//!    the curve shows how per-request latency and aggregate
//!    throughput scale with connections.
//! 2. **Open loop** — the same sweep but against a server pinned to
//!    `OPEN_LOOP_SLOTS` admission slots, clients *not* retrying: a
//!    shed request is counted and the client moves on, so offered
//!    load keeps rising past what the server admits. Past the knee
//!    the shed count climbs while the p99 of *admitted* requests
//!    stays bounded — that is the point of load-shedding, and the
//!    `shed` column records it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use cdb_core::SharedDb;
use cdb_model::Atom;
use cdb_server::{Client, ClientError, Request, Response, Server, ServerConfig};
use cdb_storage::{CheckpointStore, MemIo};
use criterion::{push_record, smoke_mode, write_json_report, Record};

/// Keys pre-seeded before the timed loop; timed requests are edits
/// over these, so the database size is stationary throughout.
const SEED_KEYS: u64 = 16;

/// Admission slots for the open-loop sweep — deliberately small so
/// the connection sweep crosses the knee.
const OPEN_LOOP_SLOTS: usize = 2;

fn serve(conns: usize, slots: usize) -> (SharedDb, Server) {
    let db = SharedDb::open(
        "bench",
        "id",
        Box::new(MemIo::new()),
        CheckpointStore::mem(),
        Duration::from_micros(100),
    )
    .unwrap();
    for i in 0..SEED_KEYS {
        db.add_entry("seed", i, &format!("K{i}"), &[("v", Atom::Int(0))])
            .unwrap();
    }
    let server = Server::bind(
        db.clone(),
        "127.0.0.1:0",
        ServerConfig {
            workers: conns + 1,
            slots,
            retry_hint_ms: 1,
        },
    )
    .unwrap();
    (db, server)
}

fn edit_req(conn: usize, i: u64) -> Request {
    Request::Edit {
        curator: format!("c{conn}"),
        time: 1_000_000 * (conn as u64 + 1) + i,
        key: format!("K{}", (conn as u64 + i) % SEED_KEYS),
        field: "v".to_string(),
        value: Atom::Int(i as i64),
    }
}

struct SweepPoint {
    ops_per_s: f64,
    p50_ns: u128,
    p99_ns: u128,
    shed: u64,
    done: u64,
}

/// Runs `conns` TCP clients for `per_conn` requests each. Closed loop
/// when `retry` is true (shed requests are retried until admitted);
/// open loop when false (a shed request is counted and skipped).
fn sweep(conns: usize, per_conn: u64, slots: usize, retry: bool) -> SweepPoint {
    let (db, server) = serve(conns, slots);
    let addr = server.local_addr().to_string();
    let shed_seen = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let addr = addr.clone();
            let shed_seen = shed_seen.clone();
            thread::spawn(move || {
                let mut client = Client::dial(&addr).expect("dial bench server");
                client.hello(&format!("bench{c}")).unwrap();
                let mut latencies = Vec::with_capacity(per_conn as usize);
                for i in 0..per_conn {
                    let req = edit_req(c, i);
                    let t0 = Instant::now();
                    let resp = if retry {
                        client.request_retrying(&req, 10_000)
                    } else {
                        client.request(&req)
                    };
                    match resp {
                        Ok(Response::Ok) => latencies.push(t0.elapsed().as_nanos()),
                        Ok(Response::Retry { .. }) => {
                            shed_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(other) => panic!("unexpected response {other:?}"),
                        Err(ClientError::Shed { .. }) => {
                            shed_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("bench client failed: {e}"),
                    }
                }
                let _ = client.close();
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u128> = Vec::new();
    for h in handles {
        latencies.extend(h.join().unwrap());
    }
    let wall = start.elapsed().as_secs_f64();
    server.drain(Duration::from_secs(5));
    // The server-side counter and the client-side tally agree; report
    // the server's (the one the metrics pipeline exports).
    let shed = db.metrics().counter("server.req.shed").get();
    assert_eq!(
        shed,
        shed_seen.load(Ordering::Relaxed),
        "shed accounting split"
    );
    latencies.sort();
    let done = latencies.len() as u64;
    let (p50_ns, p99_ns) = if latencies.is_empty() {
        (0, 0)
    } else {
        (
            latencies[latencies.len() / 2],
            latencies[latencies.len() * 99 / 100],
        )
    };
    SweepPoint {
        ops_per_s: done as f64 / wall,
        p50_ns,
        p99_ns,
        shed,
        done,
    }
}

fn rows(prefix: &str, conns: usize, p: &SweepPoint) {
    eprintln!(
        "  {prefix}/c{conns:<2} {:>10.0} ops/s  p50 {:>10.3?}  p99 {:>10.3?}  shed {}",
        p.ops_per_s,
        Duration::from_nanos(p.p50_ns as u64),
        Duration::from_nanos(p.p99_ns as u64),
        p.shed,
    );
    let base = Record {
        samples: p.done as usize,
        iters_per_sample: 1,
        threads: Some(conns as u64),
        shed: Some(p.shed),
        ..Record::default()
    };
    push_record(Record {
        op: format!("{prefix}/c{conns}/throughput"),
        ns_per_iter: if p.ops_per_s > 0.0 {
            (1e9 / p.ops_per_s) as u128
        } else {
            0
        },
        ..base.clone()
    });
    push_record(Record {
        op: format!("{prefix}/c{conns}/p50"),
        ns_per_iter: p.p50_ns,
        ..base.clone()
    });
    push_record(Record {
        op: format!("{prefix}/c{conns}/p99"),
        ns_per_iter: p.p99_ns,
        ..base
    });
}

fn main() {
    let (per_conn, conn_sweep): (u64, &[usize]) = if smoke_mode() {
        (5, &[1, 2])
    } else {
        (400, &[1, 2, 4, 8])
    };

    eprintln!("\n== e20: closed loop (slots sized to fit — no shedding) ==");
    for &conns in conn_sweep {
        let p = sweep(conns, per_conn, conns + 2, true);
        assert_eq!(p.shed, 0, "closed-loop run was sized not to shed");
        assert_eq!(p.done, conns as u64 * per_conn);
        rows("e20_closed", conns, &p);
    }

    eprintln!("\n== e20: open loop ({OPEN_LOOP_SLOTS} slots — sweep across the knee) ==");
    for &conns in conn_sweep {
        let p = sweep(conns, per_conn, OPEN_LOOP_SLOTS, false);
        rows("e20_open", conns, &p);
    }

    write_json_report("server", env!("CARGO_MANIFEST_DIR"));
}
