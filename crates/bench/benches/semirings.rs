//! E4 — the cost of provenance across semirings (§4.1).
//!
//! The same positive query evaluated as a K-relation under every
//! instantiation: Bool (set semantics, the baseline), ℕ (bags), Lineage,
//! Why, MinWhy, Tropical, and full ℕ[X] polynomials — showing the price
//! of each provenance grade, plus the evaluate-once-specialize-later
//! alternative via homomorphisms.

use cdb_model::Atom;
use cdb_relalg::{Pred, RaExpr, Schema};
use cdb_semiring::eval::eval_k;
use cdb_semiring::hom::{poly_to_nat, poly_to_why};
use cdb_semiring::instances::Bool;
use cdb_semiring::{
    KDatabase, KRelation, Lineage, MinWhy, Nat, Polynomial, Semiring, Tropical, Why,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn make_db<K: Semiring>(n: usize, var: impl Fn(String) -> K) -> KDatabase<K> {
    let schema = Schema::new(["X", "Y", "Z"]).unwrap();
    let rel = KRelation::from_pairs(
        schema,
        (0..n).map(|i| {
            (
                vec![
                    Atom::Int((i % 23) as i64),
                    Atom::Int((i % 7) as i64),
                    Atom::Int((i % 11) as i64),
                ],
                var(format!("t{i}")),
            )
        }),
    )
    .unwrap();
    KDatabase::new().with("R", rel)
}

fn query() -> RaExpr {
    // A self-join + union shaped like Figure 4.
    let copy = RaExpr::scan("R").project_cols(["X", "Z"]);
    let join = RaExpr::ScanAs("R".into(), "r1".into())
        .product(RaExpr::ScanAs("R".into(), "r2".into()))
        .select(Pred::col_eq_col("r1.Y", "r2.Y"))
        .project(vec![
            cdb_relalg::ProjItem::col("r1.X", "X"),
            cdb_relalg::ProjItem::col("r2.Z", "Z"),
        ]);
    copy.union(join)
}

fn bench_semirings(c: &mut Criterion) {
    let n = 120usize;
    let q = query();
    let mut g = c.benchmark_group("e4_semiring_evaluation");
    g.sample_size(10);

    let bool_db = make_db(n, |_| Bool(true));
    g.bench_with_input(BenchmarkId::new("bool_set_semantics", n), &n, |b, _| {
        b.iter(|| black_box(eval_k(&bool_db, &q).unwrap()))
    });
    let nat_db = make_db(n, |_| Nat(1));
    g.bench_with_input(BenchmarkId::new("nat_bags", n), &n, |b, _| {
        b.iter(|| black_box(eval_k(&nat_db, &q).unwrap()))
    });
    let lin_db = make_db(n, Lineage::var);
    g.bench_with_input(BenchmarkId::new("lineage", n), &n, |b, _| {
        b.iter(|| black_box(eval_k(&lin_db, &q).unwrap()))
    });
    let why_db = make_db(n, Why::var);
    g.bench_with_input(BenchmarkId::new("why_provenance", n), &n, |b, _| {
        b.iter(|| black_box(eval_k(&why_db, &q).unwrap()))
    });
    let min_db = make_db(n, MinWhy::var);
    g.bench_with_input(BenchmarkId::new("minimal_why", n), &n, |b, _| {
        b.iter(|| black_box(eval_k(&min_db, &q).unwrap()))
    });
    let trop_db = make_db(n, |_| Tropical::Cost(1));
    g.bench_with_input(BenchmarkId::new("tropical_cost", n), &n, |b, _| {
        b.iter(|| black_box(eval_k(&trop_db, &q).unwrap()))
    });
    let poly_db = make_db(n, Polynomial::var);
    g.bench_with_input(BenchmarkId::new("polynomial_nx", n), &n, |b, _| {
        b.iter(|| black_box(eval_k(&poly_db, &q).unwrap()))
    });
    g.finish();

    // Evaluate-once-in-ℕ[X], specialize afterwards.
    let poly_out = eval_k(&poly_db, &q).unwrap();
    let mut g2 = c.benchmark_group("e4_specialize_after");
    g2.bench_function("poly_to_why", |b| {
        b.iter(|| black_box(poly_out.map_annotations(&poly_to_why)))
    });
    g2.bench_function("poly_to_nat", |b| {
        b.iter(|| black_box(poly_out.map_annotations(&poly_to_nat)))
    });
    g2.finish();
}

criterion_group!(benches, bench_semirings);
criterion_main!(benches);
