//! E17 — commit throughput under group commit, and snapshot read
//! latency under write load (see EXPERIMENTS.md).
//!
//! Hand-rolled harness (the criterion-shim `Bencher` model is
//! single-threaded; this experiment is about threads), recording rows
//! through [`criterion::push_record`] so the results land in
//! `BENCH_commit_throughput.json` like every other experiment.
//!
//! Two measurements:
//!
//! 1. **Commit throughput** — ops/s for a single writer syncing every
//!    commit (`Durability::Always`, the PR-2 path) versus N concurrent
//!    writers over [`SharedDb`] group commit, across batch windows.
//!    The device is a [`ThrottledIo`] charging a fixed latency per
//!    sync, so the measured ratios reflect the batching protocol
//!    rather than the host filesystem's fsync cost (tmpfs would make
//!    syncs nearly free and the comparison meaningless); a real-file
//!    pair of rows is included for reference.
//! 2. **Snapshot read latency** — p50/p99 of `snapshot()` + a view
//!    query, on an idle database and again with 4 writers committing
//!    concurrently. Snapshot isolation should keep the two within
//!    noise of each other.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use cdb_core::{CuratedDatabase, SharedDb};
use cdb_model::Atom;
use cdb_storage::{FileIo, Io, MemIo, ThrottledIo};
use criterion::{push_record, smoke_mode, write_json_report, Record};

/// Simulated device sync latency — the regime group commit targets
/// (a commodity SSD fdatasync is ~0.5–2 ms).
const SYNC_LATENCY: Duration = Duration::from_millis(3);

/// Entries pre-seeded before the timed loop. The timed commits are
/// `edit_field` over these keys, so the workload is stationary: the
/// database stays the same size throughout and neither path's
/// per-commit CPU cost drifts as the run progresses.
const SEED_KEYS: u64 = 16;

fn throttled_dev() -> Box<dyn Io> {
    Box::new(ThrottledIo::new(MemIo::new(), SYNC_LATENCY))
}

fn seed_key(i: u64) -> String {
    format!("K{}", i % SEED_KEYS)
}

/// Single writer, sync at every commit — the PR-2 baseline.
fn always_throughput(dev: Box<dyn Io>, commits: u64) -> f64 {
    let mut db =
        CuratedDatabase::open("bench", "id", dev, cdb_storage::CheckpointStore::mem()).unwrap();
    for i in 0..SEED_KEYS {
        db.add_entry("seed", i, &seed_key(i), &[("v", Atom::Int(0))])
            .unwrap();
    }
    let start = Instant::now();
    for i in 0..commits {
        db.edit_field("w", SEED_KEYS + i, &seed_key(i), "v", Atom::Int(i as i64))
            .unwrap();
    }
    commits as f64 / start.elapsed().as_secs_f64()
}

/// N writers over `SharedDb` group commit at the given batch window.
fn group_throughput(dev: Box<dyn Io>, writers: u64, window: Duration, per_writer: u64) -> f64 {
    let db = SharedDb::open(
        "bench",
        "id",
        dev,
        cdb_storage::CheckpointStore::mem(),
        window,
    )
    .unwrap();
    for i in 0..SEED_KEYS {
        db.add_entry("seed", i, &seed_key(i), &[("v", Atom::Int(0))])
            .unwrap();
    }
    let start = Instant::now();
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let db = db.clone();
            thread::spawn(move || {
                for i in 0..per_writer {
                    db.edit_field(
                        "w",
                        1_000_000 * (w + 1) + i,
                        &seed_key(w + i * writers),
                        "v",
                        Atom::Int(i as i64),
                    )
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (writers * per_writer) as f64 / start.elapsed().as_secs_f64()
}

/// One read sample: take a snapshot, build the relational view over
/// every entry, then read a window of fields — a realistic serving
/// query, not a mutex microbenchmark, so the percentiles measure the
/// serving layer rather than scheduler jitter (the benches run on
/// small hosts where a sub-µs read's p99 is pure preemption noise).
const READS_PER_SAMPLE: usize = 25;

/// Samples snapshot reads, returning (p50, p99) in ns per sample.
fn read_latency(db: &SharedDb, keys: &[String], samples: usize) -> (u128, u128) {
    let mut times: Vec<u128> = Vec::with_capacity(samples);
    for i in 0..samples {
        let start = Instant::now();
        let snap = db.snapshot();
        let rel = cdb_core::views::entry_relation(&snap, &["v"]).unwrap();
        std::hint::black_box(rel.len());
        let colored = cdb_core::views::colored_entry_relation(&snap, &["v"]).unwrap();
        std::hint::black_box(colored.tuples().len());
        for j in 0..READS_PER_SAMPLE {
            let key = &keys[(i + j) % keys.len()];
            let _ = std::hint::black_box(snap.field(key, "v"));
        }
        times.push(start.elapsed().as_nanos());
    }
    times.sort();
    (times[times.len() / 2], times[times.len() * 99 / 100])
}

fn ops_row(op: &str, ops_per_s: f64, threads: u64, window: Option<Duration>, commits: u64) {
    eprintln!("  {op:<40} {ops_per_s:>10.0} commits/s");
    push_record(Record {
        op: op.to_owned(),
        ns_per_iter: (1e9 / ops_per_s) as u128,
        samples: commits as usize,
        iters_per_sample: 1,
        threads: Some(threads),
        batch_window_us: window.map(|w| w.as_micros() as u64),
        ..Record::default()
    });
}

fn latency_row(op: &str, ns: u128, threads: u64, samples: usize) {
    eprintln!("  {op:<40} {:>10.3?}", Duration::from_nanos(ns as u64));
    push_record(Record {
        op: op.to_owned(),
        ns_per_iter: ns,
        samples,
        iters_per_sample: 1,
        threads: Some(threads),
        ..Record::default()
    });
}

fn bench_commit_throughput(per_writer_base: u64) {
    eprintln!("\n== e17: commit throughput (simulated {SYNC_LATENCY:?} sync) ==");
    let baseline = always_throughput(throttled_dev(), per_writer_base * 4);
    ops_row(
        "e17_commit/always/w1",
        baseline,
        1,
        None,
        per_writer_base * 4,
    );
    for writers in [1u64, 2, 4] {
        for window_us in [0u64, 100, 500] {
            let window = Duration::from_micros(window_us);
            let per_writer = per_writer_base * 4 / writers;
            let ops = group_throughput(throttled_dev(), writers, window, per_writer);
            ops_row(
                &format!("e17_commit/group/w{writers}/win{window_us}us"),
                ops,
                writers,
                Some(window),
                writers * per_writer,
            );
        }
    }

    // Reference rows on a real file (host-dependent; the simulated
    // rows above are the comparable series).
    let dir = std::env::temp_dir().join(format!("cdb-e17-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file_dev = |name: &str| -> Box<dyn Io> { Box::new(FileIo::open(dir.join(name)).unwrap()) };
    let base_file = always_throughput(file_dev("always.wal"), per_writer_base * 2);
    ops_row(
        "e17_commit/file/always/w1",
        base_file,
        1,
        None,
        per_writer_base * 2,
    );
    let group_file = group_throughput(
        file_dev("group.wal"),
        4,
        Duration::from_micros(100),
        per_writer_base / 2,
    );
    ops_row(
        "e17_commit/file/group/w4/win100us",
        group_file,
        4,
        Some(Duration::from_micros(100)),
        per_writer_base * 2,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_read_latency(samples: usize) {
    eprintln!("\n== e17: snapshot read latency (idle vs 4 writers) ==");
    const ENTRIES: usize = 100;
    let db = SharedDb::open(
        "bench",
        "id",
        throttled_dev(),
        cdb_storage::CheckpointStore::mem(),
        Duration::from_micros(100),
    )
    .unwrap();
    let keys: Vec<String> = (0..ENTRIES).map(|i| format!("K{i}")).collect();
    for (i, key) in keys.iter().enumerate() {
        db.add_entry("seed", i as u64, key, &[("v", Atom::Int(i as i64))])
            .unwrap();
    }

    let (p50, p99) = read_latency(&db, &keys, samples);
    latency_row("e17_read/idle/p50", p50, 0, samples);
    latency_row("e17_read/idle/p99", p99, 0, samples);

    // Writers pace themselves like interactive curators rather than
    // spinning flat out: each edits, waits for its commit to be acked,
    // then pauses. A tight loop on a small host measures CPU
    // starvation of the reader, not the serving layer.
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let db = db.clone();
            let stop = stop.clone();
            let keys = keys.clone();
            thread::spawn(move || {
                let mut t = 1_000_000 * (w + 1);
                let mut i = w as usize;
                while !stop.load(Ordering::Relaxed) {
                    t += 1;
                    i = (i + 7) % keys.len();
                    db.edit_field("w", t, &keys[i], "v", Atom::Int(t as i64))
                        .unwrap();
                    thread::sleep(Duration::from_millis(6));
                }
            })
        })
        .collect();
    // Let the write load reach steady state before sampling.
    thread::sleep(Duration::from_millis(if smoke_mode() { 1 } else { 50 }));
    let (p50w, p99w) = read_latency(&db, &keys, samples);
    stop.store(true, Ordering::Relaxed);
    for h in writers {
        h.join().unwrap();
    }
    latency_row("e17_read/under_4_writers/p50", p50w, 4, samples);
    latency_row("e17_read/under_4_writers/p99", p99w, 4, samples);
    let stats = db.group_stats().unwrap();
    eprintln!(
        "  group stats: {} batches, {} frames, max batch {}",
        stats.batches, stats.frames_synced, stats.max_batch
    );
}

fn main() {
    let (per_writer, samples) = if smoke_mode() { (3, 50) } else { (100, 2_000) };
    bench_commit_throughput(per_writer);
    bench_read_latency(samples);
    write_json_report("commit_throughput", env!("CARGO_MANIFEST_DIR"));
}
