//! E7 — §5.1's archiving claims.
//!
//! Regenerates three result sets:
//!   1. storage bytes over N versions for snapshots / deltas / archive
//!      (printed table; the paper's claim: the archive "is a
//!      space-efficient method for recording all past versions" for
//!      append-mostly curated data),
//!   2. single-version retrieval latency per store (the delta store
//!      degrades linearly with version depth; the archive does not),
//!   3. temporal (longitudinal) query latency: archive-direct vs
//!      scan-all-versions (the paper: other methods answer such queries
//!      only by "an attempt to evaluate the query on each version").

use std::sync::Once;

use cdb_archive::temporal;
use cdb_bench::{build_stores, factbook_versions, print_once, uniprot_releases};
use cdb_model::keys::KeyStep;
use cdb_model::{Atom, KeyPath};
use cdb_workload::factbook::FactbookSim;
use cdb_workload::uniprot::UniprotSim;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

static SPACE_TABLE: Once = Once::new();

fn space_table() {
    println!("\n=== E7.1: storage bytes over versions (UniProt-like, 200 entries) ===");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>16} {:>18}",
        "versions", "snapshots B", "deltas B", "archive B", "flat-archive B", "archive/snapshot"
    );
    for versions in [5usize, 10, 20, 40] {
        let vs = uniprot_releases(42, 200, versions);
        let (archive, snaps, deltas) = build_stores(UniprotSim::key_spec(), &vs);
        let (a, s, d) = (
            archive.encoded_size(),
            snaps.encoded_size(),
            deltas.encoded_size(),
        );
        let flat = archive.encoded_size_flat();
        println!(
            "{:<10} {:>14} {:>14} {:>14} {:>16} {:>17.2}%",
            versions,
            s,
            d,
            a,
            flat,
            100.0 * a as f64 / s as f64
        );
    }
    println!("(flat-archive = ablation: hereditary interval sharing disabled)");
    println!();
}

fn bench_retrieval(c: &mut Criterion) {
    print_once(&SPACE_TABLE, space_table);
    let versions = 30usize;
    let vs = factbook_versions(7, 40, versions);
    let (archive, snaps, deltas) = build_stores(FactbookSim::key_spec(), &vs);
    let mut g = c.benchmark_group("e7_retrieve_version");
    for v in [0u32, 15, 29] {
        g.bench_with_input(BenchmarkId::new("archive", v), &v, |b, &v| {
            b.iter(|| black_box(archive.retrieve(v).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("snapshots", v), &v, |b, &v| {
            b.iter(|| black_box(snaps.retrieve(v).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("deltas_replay", v), &v, |b, &v| {
            b.iter(|| black_box(deltas.retrieve(v).unwrap()))
        });
    }
    g.finish();
}

fn bench_temporal(c: &mut Criterion) {
    let versions = 30usize;
    let vs = factbook_versions(7, 40, versions);
    let (archive, snaps, _) = build_stores(FactbookSim::key_spec(), &vs);
    // A country present from the start.
    let sim = FactbookSim::new(
        7,
        cdb_workload::factbook::FactbookConfig {
            countries: 40,
            ..Default::default()
        },
    );
    let name = sim.country_name(0).to_owned();
    let path = KeyPath::root()
        .child(KeyStep::Entry(vec![Atom::Str(name)]))
        .child(KeyStep::Field("people".into()))
        .child(KeyStep::Field("internet_users".into()));
    let spec = FactbookSim::key_spec();

    let mut g = c.benchmark_group("e7_temporal_series");
    g.bench_function("archive_direct", |b| {
        b.iter(|| black_box(temporal::series(&archive, &path).unwrap()))
    });
    g.bench_function("scan_all_versions", |b| {
        b.iter(|| black_box(temporal::series_by_scan(&snaps, &spec, &path).unwrap()))
    });
    g.finish();

    let mut g2 = c.benchmark_group("e7_merge_new_version");
    let next = factbook_versions(7, 40, versions + 1)
        .pop()
        .expect("one more");
    g2.bench_function("archive_add_version", |b| {
        b.iter_with_setup(
            || archive.clone(),
            |mut a| {
                a.add_version(&next, "next").unwrap();
                black_box(a.version_count())
            },
        )
    });
    g2.finish();
}

criterion_group!(benches, bench_retrieval, bench_temporal);
criterion_main!(benches);
