//! E21 — larger-than-memory paging: hit rate vs read latency as the
//! working set sweeps past the buffer pool.
//!
//! A fixed-capacity [`BufferPool`] (64 frames, `CDB_TEST_POOL_PAGES`
//! overrides) serves page reads from heaps holding 0.5× to 8× the
//! pool's capacity in pages. Two access patterns per size:
//!
//! * `read_uniform` — uniform random pages: the adversarial case; the
//!   hit rate should track `pool/working_set` and the latency should
//!   degrade smoothly with the miss rate — a gentle slope, not a
//!   cliff, because a miss is one `read_at` against the page table,
//!   never a rescan;
//! * `read_hot` — 90% of reads over a hot tenth of the pages
//!   (curation sessions revisit the entries under edit): the pool
//!   keeps the hot set resident and the hit rate stays high even at
//!   8× memory pressure.
//!
//! Every row in `BENCH_paging.json` records `pool_pages` and the
//! observed `hit_rate` alongside the latency, so the report shows the
//! degradation curve directly (EXPERIMENTS.md E21 reads it back).

use std::hint::black_box;
use std::time::Instant;

use cdb_obs::Metrics;
use cdb_storage::{pool_pages_from_env, BufferPool, MemIo, PageStore};
use criterion::{criterion_group, criterion_main, Criterion, Record};

fn lcg(r: &mut u64) -> u64 {
    *r = r
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *r >> 33
}

/// A heap of `pages` pages with distinct, recognizable payloads.
fn heap(pages: u64, payload: usize) -> PageStore<MemIo> {
    let mut store = PageStore::open(MemIo::new(), None).unwrap();
    for p in 0..pages {
        let mut body = vec![0u8; payload];
        body[..8].copy_from_slice(&p.to_le_bytes());
        store.write_page(p, &body).unwrap();
    }
    store
}

fn bench_paging(_c: &mut Criterion) {
    let pool_pages = pool_pages_from_env(64);
    let (reads, samples) = if criterion::smoke_mode() {
        (256usize, 1usize)
    } else {
        (20_000, 10)
    };
    let payload = 512usize;
    eprintln!("\n== bench group: e21_paging (pool {pool_pages} frames, {payload}-byte pages) ==");
    for (pattern, hot) in [("read_uniform", false), ("read_hot", true)] {
        // Working set as a multiple of the pool: ×0.5 (fits twice
        // over) through ×8 (heavy eviction churn).
        for num in [pool_pages as u64 / 2, 1, 2, 4, 8]
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                if i == 0 {
                    m.max(1)
                } else {
                    m * pool_pages as u64
                }
            })
        {
            let pages = num;
            let mut times = Vec::with_capacity(samples);
            let mut hit_rate = 1.0f64;
            for s in 0..samples {
                let metrics = Metrics::new();
                let mut pool = BufferPool::new(heap(pages, payload), pool_pages, &metrics);
                let mut r = 0x5EED ^ ((s as u64) << 32) ^ pages;
                // Warm the pool with one pass so the steady state is
                // measured, not the cold fill.
                for p in 0..pages.min(pool_pages as u64) {
                    black_box(pool.get(p).unwrap());
                }
                let warm = pool.stats();
                let start = Instant::now();
                for _ in 0..reads {
                    let p = if hot && lcg(&mut r) % 10 < 9 {
                        lcg(&mut r) % (pages / 10).max(1)
                    } else {
                        lcg(&mut r) % pages
                    };
                    black_box(pool.get(p).unwrap());
                }
                times.push(start.elapsed() / reads as u32);
                let end = pool.stats();
                let (h, m) = (end.hits - warm.hits, end.misses - warm.misses);
                hit_rate = h as f64 / (h + m).max(1) as f64;
            }
            times.sort();
            let median = times[times.len() / 2];
            eprintln!(
                "  e21_paging/{pattern}/{pages:<8} median {median:>9.1?}/read  \
                 hit rate {hit_rate:.3}  ({:.1}x pool)",
                pages as f64 / pool_pages as f64,
            );
            criterion::push_record(Record {
                op: format!("e21_paging/{pattern}/{pages}"),
                size: Some(pages),
                ns_per_iter: median.as_nanos(),
                samples,
                iters_per_sample: reads as u64,
                pool_pages: Some(pool_pages as u64),
                hit_rate: Some(hit_rate),
                ..Record::default()
            });
        }
    }
}

criterion_group!(benches, bench_paging);
criterion_main!(benches);
