//! E15 — the physical join engine (`cdb-relalg::exec`).
//!
//! Hash join vs the naive nested loop on workload-generated equi-join
//! tables, sequential vs parallel partitioned probing, and the σ(R × S)
//! equi-join recognizer. Prints the ExecStats operator table and a
//! one-shot speedup line before the timed samples.

use std::hint::black_box;
use std::sync::Once;
use std::time::Instant;

use cdb_relalg::eval::eval;
use cdb_relalg::{eval_hash, eval_with_stats, ExecConfig};
use cdb_workload::relational::{join_tables, natural_join_query, select_product_query, JoinConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

static REPORT: Once = Once::new();

fn bench_joins(c: &mut Criterion) {
    // Smoke mode shrinks the tables: one nested-loop iteration at full
    // size costs seconds, which is exactly what CI should not pay.
    let n: usize = if criterion::smoke_mode() { 300 } else { 10_000 };
    let cfg = JoinConfig {
        left_rows: n,
        right_rows: n,
        key_cardinality: n,
        payload_values: 1_000,
    };
    let db = join_tables(0xC0DB, &cfg);
    let nat = natural_join_query();

    cdb_bench::print_once(&REPORT, || {
        let started = Instant::now();
        let naive = eval(&db, &nat).unwrap();
        let loop_time = started.elapsed();
        let started = Instant::now();
        let (hashed, stats) = eval_with_stats(&db, &nat, &ExecConfig::default()).unwrap();
        let hash_time = started.elapsed();
        assert_eq!(naive, hashed, "engines must agree before we time them");
        eprintln!("\n-- E15: R ⋈ S at {n}×{n}, {} rows out --", hashed.len());
        eprintln!("{stats}");
        eprintln!(
            "nested loop {loop_time:.3?}  hash {hash_time:.3?}  speedup {:.1}x\n",
            loop_time.as_secs_f64() / hash_time.as_secs_f64().max(1e-9),
        );
    });

    let mut g = c.benchmark_group("e15_natural_join");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("nested_loop", n), &n, |b, _| {
        b.iter(|| black_box(eval(&db, &nat).unwrap()))
    });
    g.bench_with_input(BenchmarkId::new("hash_sequential", n), &n, |b, _| {
        b.iter(|| black_box(eval_hash(&db, &nat, &ExecConfig::sequential()).unwrap()))
    });
    g.bench_with_input(BenchmarkId::new("hash_parallel", n), &n, |b, _| {
        b.iter(|| black_box(eval_hash(&db, &nat, &ExecConfig::default()).unwrap()))
    });
    // Force partitioned probing even on one core, to price the
    // thread-scope machinery itself.
    let mut four = ExecConfig::with_partitions(4);
    four.parallel_threshold = 1;
    g.bench_with_input(BenchmarkId::new("hash_4_partitions", n), &n, |b, _| {
        b.iter(|| black_box(eval_hash(&db, &nat, &four).unwrap()))
    });
    g.finish();

    // The recognizer path: σ[r.K = s.K](R × S). The naive engine
    // *materializes* the product (n² rows), so this comparison runs on
    // smaller tables.
    let m: usize = if criterion::smoke_mode() { 100 } else { 1_000 };
    let cfg = JoinConfig {
        left_rows: m,
        right_rows: m,
        key_cardinality: m,
        payload_values: 1_000,
    };
    let db = join_tables(0xC0DB + 1, &cfg);
    let sel = select_product_query();
    let mut g = c.benchmark_group("e15_select_product");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("nested_loop", m), &m, |b, _| {
        b.iter(|| black_box(eval(&db, &sel).unwrap()))
    });
    g.bench_with_input(BenchmarkId::new("hash_recognized", m), &m, |b, _| {
        b.iter(|| black_box(eval_hash(&db, &sel, &ExecConfig::default()).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
