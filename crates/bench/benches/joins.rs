//! E15 + E25 — the physical join engine and the cost-based planner
//! (`cdb-relalg::exec` / `cdb-relalg::plan`).
//!
//! E15: hash join vs the naive nested loop on workload-generated
//! equi-join tables, sequential vs parallel partitioned probing, and
//! the σ(R × S) equi-join recognizer. E25: the planner vs the PR-1
//! single-shape engine on a three-way chain join and an indexed point
//! lookup — the shapes the recognizer cannot hash end to end. Prints
//! operator tables and one-shot speedup lines before the timed
//! samples; the chosen plans land in `BENCH_joins.json` as `plan` /
//! `index` fields.

use std::hint::black_box;
use std::sync::Once;
use std::time::Instant;

use cdb_relalg::eval::eval;
use cdb_relalg::{
    eval_hash, eval_planned, eval_with_stats, plan, DbStats, ExecConfig, IndexSet, PhysPlan,
};
use cdb_workload::relational::{
    chain_query, chain_tables, join_tables, natural_join_query, point_lookup_query,
    select_product_query, JoinConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

static REPORT: Once = Once::new();
static E25_REPORT: Once = Once::new();

/// The plan as one line for the JSON report: preorder operator labels.
fn plan_line(p: &PhysPlan) -> String {
    fn go(p: &PhysPlan, out: &mut Vec<String>) {
        out.push(p.label());
        for c in &p.children {
            go(c, out);
        }
    }
    let mut labels = Vec::new();
    go(p, &mut labels);
    labels.join(" <- ")
}

/// E25 — the cost-based planner vs the PR-1 single-shape engine on the
/// two shapes that engine cannot hash end to end: a three-way chain
/// join and an indexed point lookup.
fn bench_planner(c: &mut Criterion) {
    let n: usize = if criterion::smoke_mode() { 300 } else { 3_000 };
    let cfg = JoinConfig {
        left_rows: n,
        right_rows: n,
        key_cardinality: n,
        payload_values: 1_000,
    };
    let db = chain_tables(0xC0DB + 2, &cfg);
    let stats = DbStats::analyze(&db);
    let indexes = IndexSet::build(&db, [("R", "K")]).expect("R.K exists");
    let chain = chain_query();
    let point = point_lookup_query((n / 2) as i64);
    let chain_plan = plan(&db, &stats, &indexes, &chain);
    let point_plan = plan(&db, &stats, &indexes, &point);
    let exec = ExecConfig::default();

    cdb_bench::print_once(&E25_REPORT, || {
        // Engines must agree (canonical order) before we time them.
        let planned = eval_planned(&db, &stats, &indexes, &chain, &exec).unwrap();
        let pr1 = eval_hash(&db, &chain, &exec).unwrap().canonical();
        assert_eq!(planned, pr1, "planner and PR-1 engine must agree");
        let time = |f: &mut dyn FnMut()| {
            let started = Instant::now();
            f();
            started.elapsed()
        };
        let planner_t = time(&mut || {
            black_box(eval_planned(&db, &stats, &indexes, &chain, &exec).unwrap());
        });
        let pr1_t = time(&mut || {
            black_box(eval_hash(&db, &chain, &exec).unwrap());
        });
        eprintln!("\n-- E25: chain σ[r.K=s.K ∧ s.K=t.K]((R×S)×T) at {n} rows --");
        eprintln!("{}", chain_plan.render(None));
        eprintln!(
            "planner {planner_t:.3?}  pr1 hash {pr1_t:.3?}  speedup {:.1}x",
            pr1_t.as_secs_f64() / planner_t.as_secs_f64().max(1e-9),
        );
        let planned = eval_planned(&db, &stats, &indexes, &point, &exec).unwrap();
        let pr1 = eval_hash(&db, &point, &exec).unwrap().canonical();
        assert_eq!(planned, pr1, "point lookup must agree");
        let idx_t = time(&mut || {
            black_box(eval_planned(&db, &stats, &indexes, &point, &exec).unwrap());
        });
        let scan_t = time(&mut || {
            black_box(eval_hash(&db, &point, &exec).unwrap());
        });
        eprintln!("\n-- E25: point lookup σ[K = {}](R) at {n} rows --", n / 2);
        eprintln!("{}", point_plan.render(None));
        eprintln!(
            "index scan {idx_t:.3?}  full scan {scan_t:.3?}  speedup {:.1}x\n",
            scan_t.as_secs_f64() / idx_t.as_secs_f64().max(1e-9),
        );
    });

    let mut g = c.benchmark_group("e25_planner_chain");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("planner", n), &n, |b, _| {
        b.iter(|| black_box(eval_planned(&db, &stats, &indexes, &chain, &exec).unwrap()))
    });
    // No nested-loop row here: the naive engine materializes the full
    // (R × S) × T product — n²·(n/8) rows — which is minutes even at
    // modest sizes. The PR-1 hash engine is the meaningful baseline.
    g.bench_with_input(BenchmarkId::new("pr1_hash", n), &n, |b, _| {
        b.iter(|| black_box(eval_hash(&db, &chain, &exec).unwrap()))
    });
    g.finish();

    let mut g = c.benchmark_group("e25_point_lookup");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("planner_indexed", n), &n, |b, _| {
        b.iter(|| black_box(eval_planned(&db, &stats, &indexes, &point, &exec).unwrap()))
    });
    let no_index = IndexSet::new();
    g.bench_with_input(BenchmarkId::new("planner_scan", n), &n, |b, _| {
        b.iter(|| black_box(eval_planned(&db, &stats, &no_index, &point, &exec).unwrap()))
    });
    g.bench_with_input(BenchmarkId::new("pr1_scan_filter", n), &n, |b, _| {
        b.iter(|| black_box(eval_hash(&db, &point, &exec).unwrap()))
    });
    g.finish();

    // The chosen plans and index fan-out go to the JSON report so CI
    // can assert the planner actually planned (scripts/check.sh greps
    // for these fields).
    let rk_distinct = indexes.get("R", "K").map(|i| i.distinct());
    criterion::push_record(criterion::Record {
        op: "e25_planner_chain/plan".into(),
        size: Some(n as u64),
        ns_per_iter: 0,
        samples: 0,
        iters_per_sample: 0,
        plan: Some(plan_line(&chain_plan)),
        ..criterion::Record::default()
    });
    criterion::push_record(criterion::Record {
        op: "e25_point_lookup/plan".into(),
        size: Some(n as u64),
        ns_per_iter: 0,
        samples: 0,
        iters_per_sample: 0,
        plan: Some(plan_line(&point_plan)),
        index: rk_distinct,
        ..criterion::Record::default()
    });
}

fn bench_joins(c: &mut Criterion) {
    // Smoke mode shrinks the tables: one nested-loop iteration at full
    // size costs seconds, which is exactly what CI should not pay.
    let n: usize = if criterion::smoke_mode() { 300 } else { 10_000 };
    let cfg = JoinConfig {
        left_rows: n,
        right_rows: n,
        key_cardinality: n,
        payload_values: 1_000,
    };
    let db = join_tables(0xC0DB, &cfg);
    let nat = natural_join_query();

    cdb_bench::print_once(&REPORT, || {
        let started = Instant::now();
        let naive = eval(&db, &nat).unwrap();
        let loop_time = started.elapsed();
        let started = Instant::now();
        let (hashed, stats) = eval_with_stats(&db, &nat, &ExecConfig::default()).unwrap();
        let hash_time = started.elapsed();
        assert_eq!(naive, hashed, "engines must agree before we time them");
        eprintln!("\n-- E15: R ⋈ S at {n}×{n}, {} rows out --", hashed.len());
        eprintln!("{stats}");
        eprintln!(
            "nested loop {loop_time:.3?}  hash {hash_time:.3?}  speedup {:.1}x\n",
            loop_time.as_secs_f64() / hash_time.as_secs_f64().max(1e-9),
        );
    });

    let mut g = c.benchmark_group("e15_natural_join");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("nested_loop", n), &n, |b, _| {
        b.iter(|| black_box(eval(&db, &nat).unwrap()))
    });
    g.bench_with_input(BenchmarkId::new("hash_sequential", n), &n, |b, _| {
        b.iter(|| black_box(eval_hash(&db, &nat, &ExecConfig::sequential()).unwrap()))
    });
    g.bench_with_input(BenchmarkId::new("hash_parallel", n), &n, |b, _| {
        b.iter(|| black_box(eval_hash(&db, &nat, &ExecConfig::default()).unwrap()))
    });
    // Force partitioned probing even on one core, to price the
    // thread-scope machinery itself.
    let mut four = ExecConfig::with_partitions(4);
    four.parallel_threshold = 1;
    g.bench_with_input(BenchmarkId::new("hash_4_partitions", n), &n, |b, _| {
        b.iter(|| black_box(eval_hash(&db, &nat, &four).unwrap()))
    });
    g.finish();

    // The recognizer path: σ[r.K = s.K](R × S). The naive engine
    // *materializes* the product (n² rows), so this comparison runs on
    // smaller tables.
    let m: usize = if criterion::smoke_mode() { 100 } else { 1_000 };
    let cfg = JoinConfig {
        left_rows: m,
        right_rows: m,
        key_cardinality: m,
        payload_values: 1_000,
    };
    let db = join_tables(0xC0DB + 1, &cfg);
    let sel = select_product_query();
    let mut g = c.benchmark_group("e15_select_product");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("nested_loop", m), &m, |b, _| {
        b.iter(|| black_box(eval(&db, &sel).unwrap()))
    });
    g.bench_with_input(BenchmarkId::new("hash_recognized", m), &m, |b, _| {
        b.iter(|| black_box(eval_hash(&db, &sel, &ExecConfig::default()).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_joins, bench_planner);
criterion_main!(benches);
