//! E22 — sharded serving: write throughput at 1/2/4 shards, the
//! cross-shard 2PC transaction tax, and parallel vs sequential shard
//! recovery (see EXPERIMENTS.md).
//!
//! Hand-rolled harness (multi-threaded, like E17), recording rows
//! through [`criterion::push_record`] with the `shards` field set so
//! `BENCH_shard_scaling.json` carries the shard count per row.
//!
//! Three measurements:
//!
//! 1. **Write throughput** — 4 concurrent writers editing keys spread
//!    uniformly over S ∈ {1, 2, 4} shards, twice: over plain `MemIo`
//!    (commit cost is the in-memory apply under the shard lock — the
//!    regime sharding parallelizes) and over [`ThrottledIo`] charging a
//!    3 ms sync (the regime group commit already collapses: every
//!    writer queued during a sync is acked by it, so per-shard WALs
//!    are expected to be roughly latency-neutral there — that
//!    *negative* result is part of the experiment).
//! 2. **Cross-shard tax** — `merge_entries` latency when both keys live
//!    on one shard (plain commit) vs on two (PREPARE×2 + DECIDE×2 2PC
//!    journaling).
//! 3. **Recovery** — wall-clock to recover 4 shard WALs sequentially
//!    (decision scan + `recover_with`, one thread) vs
//!    [`recover_shards`] (one OS thread per shard). The parallel row
//!    only wins on a multi-core host; on a single CPU it measures pure
//!    thread overhead (correctness equivalence is proven separately by
//!    the `parallel_shard_recovery_equals_sequential` proptest).

use std::thread;
use std::time::{Duration, Instant};

use cdb_core::{ShardMap, ShardedDb};
use cdb_curation::provstore::StoreMode;
use cdb_curation::wire::encode_transaction;
use cdb_model::Atom;
use cdb_storage::{
    recover_shards, recover_with, scan_decisions, CheckpointStore, DurableLog, Io, MemIo,
    ThrottledIo, FRAME_TXN,
};
use cdb_workload::sessions::{CurationSim, SessionConfig};
use criterion::{push_record, smoke_mode, write_json_report, Record};

/// Simulated device sync latency for the throttled series (same regime
/// as E17).
const SYNC_LATENCY: Duration = Duration::from_millis(3);

const WRITERS: u64 = 4;

/// One printable prefix character per shard, found by probing the map.
fn shard_prefixes(map: &ShardMap) -> Vec<char> {
    (0..map.shards())
        .map(|s| {
            (0x21u8..0x7f)
                .map(|b| b as char)
                .find(|c| map.route(&c.to_string()) == s)
                .expect("every shard owns part of printable ASCII")
        })
        .collect()
}

fn durable_sharded(nshards: usize, throttled: bool, window: Duration) -> ShardedDb {
    let devices = (0..nshards)
        .map(|_| {
            let dev: Box<dyn Io> = if throttled {
                Box::new(ThrottledIo::new(MemIo::new(), SYNC_LATENCY))
            } else {
                Box::new(MemIo::new())
            };
            (dev, CheckpointStore::mem())
        })
        .collect();
    ShardedDb::open("bench", "id", ShardMap::uniform(nshards), devices, window).unwrap()
}

/// 4 writers editing pre-seeded keys striped over every shard; returns
/// ops/s.
fn sharded_write_throughput(db: &ShardedDb, per_writer: u64) -> f64 {
    let prefixes = shard_prefixes(db.map());
    let keys: Vec<String> = (0..16)
        .map(|i| format!("{}{:03}", prefixes[i % prefixes.len()], i))
        .collect();
    for (i, key) in keys.iter().enumerate() {
        db.add_entry("seed", i as u64, key, &[("v", Atom::Int(0))])
            .unwrap();
    }
    let start = Instant::now();
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let db = db.clone();
            let keys = keys.clone();
            thread::spawn(move || {
                for i in 0..per_writer {
                    // Stripe across shards so every WAL sees traffic.
                    let key = &keys[((w + i * WRITERS) as usize) % keys.len()];
                    db.edit_field("w", 1_000_000 * (w + 1) + i, key, "v", Atom::Int(i as i64))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (WRITERS * per_writer) as f64 / start.elapsed().as_secs_f64()
}

fn ops_row(op: &str, ops_per_s: f64, shards: usize, commits: u64) {
    eprintln!("  {op:<44} {ops_per_s:>10.0} commits/s");
    push_record(Record {
        op: op.to_owned(),
        ns_per_iter: (1e9 / ops_per_s) as u128,
        samples: commits as usize,
        iters_per_sample: 1,
        threads: Some(WRITERS),
        shards: Some(shards as u64),
        ..Record::default()
    });
}

fn bench_write_scaling(per_writer: u64) {
    eprintln!("\n== e22: write throughput vs shard count (4 writers) ==");
    for &shards in &[1usize, 2, 4] {
        let db = durable_sharded(shards, false, Duration::ZERO);
        let ops = sharded_write_throughput(&db, per_writer);
        ops_row(
            &format!("e22_write/mem/shards/{shards}"),
            ops,
            shards,
            WRITERS * per_writer,
        );
    }
    let throttled_per_writer = (per_writer / 4).max(2);
    for &shards in &[1usize, 2, 4] {
        let db = durable_sharded(shards, true, Duration::from_micros(100));
        let ops = sharded_write_throughput(&db, throttled_per_writer);
        ops_row(
            &format!("e22_write/throttled/shards/{shards}"),
            ops,
            shards,
            WRITERS * throttled_per_writer,
        );
    }
}

/// Merge latency, same-shard vs cross-shard, on a durable 2-shard db.
fn bench_cross_shard_tax(pairs: u64) {
    eprintln!("\n== e22: cross-shard 2PC tax (merge latency, 2 shards) ==");
    let db = durable_sharded(2, false, Duration::ZERO);
    let p = shard_prefixes(db.map());
    let mut t = 0u64;
    let mut add = |key: &str| {
        t += 1;
        db.add_entry("seed", t, key, &[("v", Atom::Int(t as i64))])
            .unwrap();
    };
    for i in 0..pairs {
        add(&format!("{}same-a{i}", p[0]));
        add(&format!("{}same-b{i}", p[0]));
        add(&format!("{}cross-a{i}", p[0]));
        add(&format!("{}cross-b{i}", p[1]));
    }
    for (label, a, b) in [
        ("same_shard", "same-a", "same-b"),
        ("cross_shard", "cross-a", "cross-b"),
    ] {
        let start = Instant::now();
        for i in 0..pairs {
            t += 1;
            let (kept, absorbed) = (
                format!("{}{a}{i}", p[0]),
                format!("{}{b}{i}", p[if label == "cross_shard" { 1 } else { 0 }]),
            );
            db.merge_entries("m", t, &kept, &absorbed).unwrap();
        }
        let ns = start.elapsed().as_nanos() / pairs as u128;
        eprintln!(
            "  e22_cross/{label:<34} {:>10.3?}/merge",
            Duration::from_nanos(ns as u64)
        );
        push_record(Record {
            op: format!("e22_cross/{label}"),
            ns_per_iter: ns,
            samples: pairs as usize,
            iters_per_sample: 1,
            threads: Some(1),
            shards: Some(2),
            ..Record::default()
        });
    }
}

/// One shard's WAL image: a `CurationSim` session of `txns`
/// transactions, framed and synced.
fn shard_image(seed: u64, txns: usize) -> Vec<u8> {
    let mut sim = CurationSim::new(
        seed,
        StoreMode::Hereditary,
        SessionConfig {
            source_entries: 3,
            fields_per_entry: 2,
            transactions: txns,
            pastes_per_txn: 1,
            edits_per_txn: 2,
            inserts_per_txn: 1,
        },
    );
    sim.run();
    let mut log = DurableLog::create(MemIo::new()).unwrap();
    for txn in sim.target.transactions() {
        log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
    }
    log.sync().unwrap();
    log.into_io().bytes().to_vec()
}

fn bench_parallel_recovery(txns_per_shard: usize) {
    eprintln!("\n== e22: parallel vs sequential shard recovery (4 shards) ==");
    const SHARDS: usize = 4;
    let images: Vec<Vec<u8>> = (0..SHARDS)
        .map(|i| shard_image(7 + i as u64 * 7919, txns_per_shard))
        .collect();

    let row = |op: &str, elapsed: Duration, threads: u64| {
        eprintln!("  {op:<44} {elapsed:>10.3?}");
        push_record(Record {
            op: op.to_owned(),
            ns_per_iter: elapsed.as_nanos(),
            samples: 1,
            iters_per_sample: 1,
            threads: Some(threads),
            shards: Some(SHARDS as u64),
            ..Record::default()
        });
    };

    // Sequential: the same two phases recover_shards runs, one thread.
    let ios: Vec<MemIo> = images
        .iter()
        .map(|im| MemIo::from_bytes(im.clone()))
        .collect();
    let start = Instant::now();
    let mut ctx = std::collections::BTreeMap::new();
    let mut seq_txns = 0u64;
    for mut io in ios {
        ctx.extend(scan_decisions(&mut io).unwrap());
        let (_, rec) = recover_with("bench", StoreMode::Hereditary, io, None, &ctx).unwrap();
        seq_txns += rec.db.log.len() as u64;
    }
    row("e22_recovery/sequential", start.elapsed(), 1);

    // Parallel: one OS thread per shard.
    let shards: Vec<(MemIo, _)> = images
        .iter()
        .map(|im| (MemIo::from_bytes(im.clone()), None))
        .collect();
    let start = Instant::now();
    let out = recover_shards("bench", StoreMode::Hereditary, shards, &Default::default()).unwrap();
    row("e22_recovery/parallel", start.elapsed(), SHARDS as u64);
    let par_txns: u64 = out.iter().map(|(_, r)| r.db.log.len() as u64).sum();
    assert_eq!(seq_txns, par_txns, "both paths must replay the same log");
    eprintln!("  ({par_txns} transactions replayed per path)");
}

fn main() {
    let (per_writer, pairs, txns) = if smoke_mode() {
        (3, 2, 2)
    } else {
        (500, 64, 320)
    };
    bench_write_scaling(per_writer);
    bench_cross_shard_tax(pairs);
    bench_parallel_recovery(txns);
    write_json_report("shard_scaling", env!("CARGO_MANIFEST_DIR"));
}
