//! Shared fixtures for the benchmark harnesses.
//!
//! Each bench regenerates one experiment of `EXPERIMENTS.md`; the
//! fixtures here build the workloads deterministically so runs are
//! comparable. Size tables (bytes, record counts, state counts) are
//! printed once per bench run via [`print_once`]-guarded report
//! functions — Criterion measures the *times*, the printed tables carry
//! the *space* results.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::Once;

use cdb_archive::{Archive, DeltaStore, SnapshotStore};
use cdb_model::Value;
use cdb_workload::factbook::{FactbookConfig, FactbookSim};
use cdb_workload::uniprot::{UniprotConfig, UniprotSim};

/// Runs `f` exactly once per process (for printing report tables from
/// benches without spamming every iteration).
pub fn print_once(once: &'static Once, f: impl FnOnce()) {
    once.call_once(f);
}

/// Builds `versions` successive editions of the synthetic Factbook.
pub fn factbook_versions(seed: u64, countries: usize, versions: usize) -> Vec<Value> {
    let mut sim = FactbookSim::new(
        seed,
        FactbookConfig {
            countries,
            revision_fraction: 0.3,
            fission_probability: 0.1,
        },
    );
    let mut out = Vec::with_capacity(versions);
    for _ in 0..versions {
        out.push(sim.snapshot());
        sim.advance();
    }
    out
}

/// Builds `releases` successive releases of the synthetic UniProt.
pub fn uniprot_releases(seed: u64, entries: usize, releases: usize) -> Vec<Value> {
    let mut sim = UniprotSim::new(
        seed,
        UniprotConfig {
            initial_entries: entries,
            ..Default::default()
        },
    );
    let mut out = Vec::with_capacity(releases);
    for _ in 0..releases {
        out.push(sim.snapshot());
        sim.advance();
    }
    out
}

/// Loads a version sequence into all three stores, returning
/// `(archive, snapshots, deltas)`.
pub fn build_stores(
    spec: cdb_model::KeySpec,
    versions: &[Value],
) -> (Archive, SnapshotStore, DeltaStore) {
    let mut archive = Archive::new("bench", spec.clone());
    let mut snaps = SnapshotStore::new();
    let mut deltas = DeltaStore::new(spec);
    for (i, v) in versions.iter().enumerate() {
        let label = format!("v{i}");
        archive.add_version(v, &label).expect("archive add");
        snaps.add_version(v, &label);
        deltas.add_version(v, &label).expect("delta add");
    }
    (archive, snaps, deltas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_workload::factbook::FactbookSim;

    #[test]
    fn fixtures_build_consistent_stores() {
        let versions = factbook_versions(1, 10, 5);
        let (archive, snaps, deltas) = build_stores(FactbookSim::key_spec(), &versions);
        for v in 0..5u32 {
            let a = archive.retrieve(v).unwrap();
            assert_eq!(a, snaps.retrieve(v).unwrap());
            assert_eq!(a, deltas.retrieve(v).unwrap());
        }
    }

    #[test]
    fn uniprot_fixture_is_keyed() {
        let versions = uniprot_releases(2, 20, 3);
        let spec = cdb_workload::uniprot::UniprotSim::key_spec();
        for v in &versions {
            assert!(spec.keyed_nodes(v).is_ok());
        }
    }
}
