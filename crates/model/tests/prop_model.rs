//! Property-based tests for the data model: path/navigation coherence,
//! functional updates, type lub laws, and key-path resolution.

use cdb_model::{Atom, Type, Value};
use proptest::prelude::*;

/// A strategy for atoms.
fn atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        Just(Atom::Unit),
        any::<bool>().prop_map(Atom::Bool),
        (-1000i64..1000).prop_map(Atom::Int),
        "[a-z]{0,6}".prop_map(Atom::Str),
    ]
}

/// A strategy for values of bounded depth/size.
fn value() -> impl Strategy<Value = Value> {
    let leaf = atom().prop_map(Value::Atom);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::btree_map("[a-c]", inner.clone(), 0..4).prop_map(Value::Record),
            proptest::collection::btree_set(inner.clone(), 0..4).prop_map(Value::Set),
            proptest::collection::vec(inner, 0..4).prop_map(Value::List),
        ]
    })
}

proptest! {
    /// Every enumerated part's path navigates back to that exact part.
    #[test]
    fn parts_paths_resolve(v in value()) {
        for (path, part) in v.parts() {
            prop_assert_eq!(v.get(&path).unwrap(), part);
        }
    }

    /// size() agrees with the number of enumerated parts.
    #[test]
    fn size_counts_parts(v in value()) {
        prop_assert_eq!(v.size(), v.parts().len());
    }

    /// Functionally updating a part to itself is the identity.
    #[test]
    fn update_with_same_value_is_identity(v in value()) {
        for (path, part) in v.parts() {
            let updated = v.updated(&path, part.clone()).unwrap();
            prop_assert_eq!(&updated, &v);
        }
    }

    /// After updating an atom leaf to a fresh marker, the marker is
    /// reachable at that path (unless set-merging collapsed it, in which
    /// case the updated tree simply no longer has the original).
    #[test]
    fn update_plants_new_value(v in value()) {
        let marker = Value::str("zz-marker");
        for (path, part) in v.parts() {
            if part.kind() != "atom" { continue; }
            let updated = v.updated(&path, marker.clone()).unwrap();
            // Either the marker is now at the path (records/lists) or
            // somewhere in the tree (set element keyed by value moved).
            let found = updated.parts().iter().any(|(_, p)| **p == marker);
            prop_assert!(found);
        }
    }

    /// Depth is monotone: every part is at most as deep as the whole.
    #[test]
    fn depth_bounds_parts(v in value()) {
        for (_, part) in v.parts() {
            prop_assert!(part.depth() <= v.depth());
        }
    }
}

/// A strategy for types of bounded depth.
fn ty() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::Any),
        Just(Type::Atom(cdb_model::AtomType::Int)),
        Just(Type::Atom(cdb_model::AtomType::Str)),
        Just(Type::Atom(cdb_model::AtomType::Bool)),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::btree_map(
                "[a-c]",
                (inner.clone(), any::<bool>()).prop_map(|(t, opt)| {
                    if opt {
                        cdb_model::types::FieldType::optional(t)
                    } else {
                        cdb_model::types::FieldType::required(t)
                    }
                }),
                0..3
            )
            .prop_map(Type::Record),
            inner.clone().prop_map(Type::set),
            inner.prop_map(Type::list),
        ]
    })
}

proptest! {
    /// lub is commutative and idempotent, and an upper bound.
    #[test]
    fn lub_laws(a in ty(), b in ty()) {
        prop_assert_eq!(a.lub(&b), b.lub(&a), "commutative");
        prop_assert_eq!(a.lub(&a), a.clone(), "idempotent");
        let l = a.lub(&b);
        prop_assert!(a.is_subtype_of(&l), "a <: lub(a,b): {} <: {}", a, l);
        prop_assert!(b.is_subtype_of(&l), "b <: lub(a,b): {} <: {}", b, l);
    }

    /// Subtyping is reflexive, and Any is top.
    #[test]
    fn subtype_reflexive_and_top(a in ty()) {
        prop_assert!(a.is_subtype_of(&a));
        prop_assert!(a.is_subtype_of(&Type::Any));
    }

    /// Inference coherence: every value checks against its exact type,
    /// both values check against the lub of their exact types, and
    /// everything checks against Any.
    #[test]
    fn values_check_against_lub(a in value(), b in value()) {
        let ta = exact_type(&a);
        let tb = exact_type(&b);
        prop_assert!(ta.check(&a).is_ok(), "exact type accepts its value");
        let l = ta.lub(&tb);
        prop_assert!(l.check(&a).is_ok(), "lub accepts left: {} vs {}", l, a);
        prop_assert!(l.check(&b).is_ok(), "lub accepts right: {} vs {}", l, b);
        prop_assert!(Type::Any.check(&a).is_ok());
    }
}

/// The most specific type of a value (duplicated from cdb-schema's
/// `type_of` to keep this crate's tests self-contained).
fn exact_type(v: &Value) -> Type {
    match v {
        Value::Atom(a) => Type::Atom(cdb_model::AtomType::of(a)),
        Value::Record(m) => Type::record(m.iter().map(|(l, x)| (l.clone(), exact_type(x)))),
        Value::Set(s) => Type::set(
            s.iter()
                .map(exact_type)
                .reduce(|a, b| a.lub(&b))
                .unwrap_or(Type::Any),
        ),
        Value::List(xs) => Type::list(
            xs.iter()
                .map(exact_type)
                .reduce(|a, b| a.lub(&b))
                .unwrap_or(Type::Any),
        ),
    }
}

mod keys {
    use super::*;
    use cdb_model::KeySpec;

    proptest! {
        /// For entry sets with unique keys, every keyed node resolves
        /// back to itself.
        #[test]
        fn keyed_nodes_resolve(
            entries in proptest::collection::btree_map("[a-z]{1,5}", -100i64..100, 1..8)
        ) {
            let spec = KeySpec::new().rule(Vec::<String>::new(), ["name"]);
            let v = Value::set(entries.iter().map(|(name, val)| {
                Value::record([
                    ("name", Value::str(name.clone())),
                    ("val", Value::int(*val)),
                ])
            }));
            let nodes = spec.keyed_nodes(&v).unwrap();
            prop_assert_eq!(nodes.len(), 1 + entries.len() * 3);
            for (kp, sub) in nodes {
                prop_assert_eq!(spec.resolve(&v, &kp).unwrap(), sub);
            }
        }
    }
}
