//! Errors produced by the data-model layer.

use std::fmt;

use crate::path::Path;

/// Errors from navigating, typing or keying complex objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A path step named a record field that does not exist.
    NoSuchField {
        /// The missing field label.
        label: String,
        /// The path prefix at which the lookup failed.
        at: Path,
    },
    /// A path step indexed a list out of bounds.
    IndexOutOfBounds {
        /// The out-of-range index.
        index: usize,
        /// The length of the list.
        len: usize,
        /// The path prefix at which the lookup failed.
        at: Path,
    },
    /// A path step selected a set element that is not present.
    NoSuchElement {
        /// The path prefix at which the lookup failed.
        at: Path,
    },
    /// A path step was applied to a value of the wrong shape
    /// (e.g. a field step on a set).
    ShapeMismatch {
        /// What the step expected ("record", "set", "list").
        expected: &'static str,
        /// What was found ("atom", "record", …).
        found: &'static str,
        /// The path prefix at which the mismatch occurred.
        at: Path,
    },
    /// A value failed to check against a type.
    TypeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
        /// The path at which checking failed.
        at: Path,
    },
    /// A key specification could not be satisfied (missing key field or
    /// duplicate key among siblings).
    KeyViolation {
        /// Human-readable description of the violation.
        detail: String,
        /// The path at which the violation occurred.
        at: Path,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoSuchField { label, at } => {
                write!(f, "no field {label:?} at {at}")
            }
            ModelError::IndexOutOfBounds { index, len, at } => {
                write!(f, "index {index} out of bounds (len {len}) at {at}")
            }
            ModelError::NoSuchElement { at } => {
                write!(f, "no such set element at {at}")
            }
            ModelError::ShapeMismatch {
                expected,
                found,
                at,
            } => {
                write!(f, "expected {expected}, found {found} at {at}")
            }
            ModelError::TypeMismatch { detail, at } => {
                write!(f, "type mismatch at {at}: {detail}")
            }
            ModelError::KeyViolation { detail, at } => {
                write!(f, "key violation at {at}: {detail}")
            }
        }
    }
}

impl std::error::Error for ModelError {}
