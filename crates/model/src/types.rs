//! Types for complex objects, with *record subtyping*.
//!
//! §6.1 of the paper argues that the extensibility guarantees databases
//! rely on ("adding a column seldom interferes with existing
//! applications") are exactly *record subtyping* in the programming-
//! language sense [Rémy 94]: a record with fields `A, B, C` can be used
//! wherever one with fields `A, B` is expected. This module provides that
//! subtype relation for the complex-object model; the regular-expression
//! side of the story (inclusion vs. width vs. interleaving subtyping for
//! XML-style content models) lives in `cdb-schema`.

use std::collections::BTreeMap;
use std::fmt;

use crate::atom::Atom;
use crate::error::ModelError;
use crate::path::{Path, Step};
use crate::value::{Label, Value};

/// Types of atomic values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AtomType {
    /// The unit type.
    Unit,
    /// Booleans.
    Bool,
    /// 64-bit integers.
    Int,
    /// Scaled decimals.
    Decimal,
    /// Strings.
    Str,
}

impl AtomType {
    /// The type of a given atom.
    pub fn of(a: &Atom) -> AtomType {
        match a {
            Atom::Unit => AtomType::Unit,
            Atom::Bool(_) => AtomType::Bool,
            Atom::Int(_) => AtomType::Int,
            Atom::Decimal(_) => AtomType::Decimal,
            Atom::Str(_) => AtomType::Str,
        }
    }
}

impl fmt::Display for AtomType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomType::Unit => "unit",
            AtomType::Bool => "bool",
            AtomType::Int => "int",
            AtomType::Decimal => "decimal",
            AtomType::Str => "string",
        };
        write!(f, "{s}")
    }
}

/// A record field: its type and whether it must be present.
///
/// Optional fields are how schema inference (`cdb-schema::infer`)
/// generalizes over entries that carry different field subsets — the
/// World Factbook's `Government/Elections/Althing` problem from §6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldType {
    /// The field's type.
    pub ty: Type,
    /// Whether the field may be absent.
    pub optional: bool,
}

impl FieldType {
    /// A required field of the given type.
    pub fn required(ty: Type) -> Self {
        FieldType {
            ty,
            optional: false,
        }
    }

    /// An optional field of the given type.
    pub fn optional(ty: Type) -> Self {
        FieldType { ty, optional: true }
    }
}

/// A type of complex objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// Any value. Top of the subtype order; inference's last resort.
    Any,
    /// An atomic type.
    Atom(AtomType),
    /// A record type. Values may carry *extra* fields (width subtyping).
    Record(BTreeMap<Label, FieldType>),
    /// A homogeneous set.
    Set(Box<Type>),
    /// A homogeneous list.
    List(Box<Type>),
}

impl Type {
    /// Convenience constructor for a record type with all-required fields.
    pub fn record<L: Into<Label>>(fields: impl IntoIterator<Item = (L, Type)>) -> Self {
        Type::Record(
            fields
                .into_iter()
                .map(|(l, t)| (l.into(), FieldType::required(t)))
                .collect(),
        )
    }

    /// Convenience constructor for a set type.
    pub fn set(elem: Type) -> Self {
        Type::Set(Box::new(elem))
    }

    /// Convenience constructor for a list type.
    pub fn list(elem: Type) -> Self {
        Type::List(Box::new(elem))
    }

    /// Checks `value` against this type. Extra record fields are allowed
    /// (width subtyping): existing applications keep working when the
    /// curators add a column.
    pub fn check(&self, value: &Value) -> Result<(), ModelError> {
        self.check_at(value, &Path::root())
    }

    fn check_at(&self, value: &Value, at: &Path) -> Result<(), ModelError> {
        match (self, value) {
            (Type::Any, _) => Ok(()),
            (Type::Atom(t), Value::Atom(a)) => {
                if AtomType::of(a) == *t {
                    Ok(())
                } else {
                    Err(ModelError::TypeMismatch {
                        detail: format!("expected {t}, found {} atom", a.tag()),
                        at: at.clone(),
                    })
                }
            }
            (Type::Record(fields), Value::Record(m)) => {
                for (l, ft) in fields {
                    match m.get(l) {
                        Some(v) => ft.ty.check_at(v, &at.child(Step::Field(l.clone())))?,
                        None if ft.optional => {}
                        None => {
                            return Err(ModelError::TypeMismatch {
                                detail: format!("missing required field {l:?}"),
                                at: at.clone(),
                            })
                        }
                    }
                }
                Ok(())
            }
            (Type::Set(elem), Value::Set(s)) => {
                for v in s {
                    elem.check_at(v, &at.child(Step::Elem(Box::new(v.clone()))))?;
                }
                Ok(())
            }
            (Type::List(elem), Value::List(xs)) => {
                for (i, v) in xs.iter().enumerate() {
                    elem.check_at(v, &at.child(Step::Index(i)))?;
                }
                Ok(())
            }
            (t, v) => Err(ModelError::TypeMismatch {
                detail: format!("expected {t}, found {}", v.kind()),
                at: at.clone(),
            }),
        }
    }

    /// The subtype relation `self <: other`: every value of `self` is a
    /// value of `other`. Records use *width and depth* subtyping: a
    /// subtype may require more fields and give each field a subtype.
    pub fn is_subtype_of(&self, other: &Type) -> bool {
        match (self, other) {
            (_, Type::Any) => true,
            (Type::Any, _) => false,
            (Type::Atom(a), Type::Atom(b)) => a == b,
            (Type::Record(sub), Type::Record(sup)) => sup.iter().all(|(l, ft_sup)| {
                match sub.get(l) {
                    // A field required above must be required below, and
                    // at a subtype.
                    Some(ft_sub) => {
                        (ft_sup.optional || !ft_sub.optional) && ft_sub.ty.is_subtype_of(&ft_sup.ty)
                    }
                    // A field missing below is fine only if optional
                    // above (the sub-record's values simply never have
                    // it... but width subtyping allows extra fields in
                    // *values*, so absence in the subtype's description
                    // is only safe when the supertype tolerates absence).
                    None => ft_sup.optional,
                }
            }),
            (Type::Set(a), Type::Set(b)) => a.is_subtype_of(b),
            (Type::List(a), Type::List(b)) => a.is_subtype_of(b),
            _ => false,
        }
    }

    /// The least upper bound of two types in the subtype order, used by
    /// schema inference to generalize over heterogeneous entries.
    /// Falls back to [`Type::Any`] when the shapes disagree.
    pub fn lub(&self, other: &Type) -> Type {
        match (self, other) {
            (a, b) if a == b => a.clone(),
            (Type::Atom(a), Type::Atom(b)) if a == b => Type::Atom(*a),
            (Type::Record(a), Type::Record(b)) => {
                let mut out: BTreeMap<Label, FieldType> = BTreeMap::new();
                for (l, fa) in a {
                    match b.get(l) {
                        Some(fb) => {
                            out.insert(
                                l.clone(),
                                FieldType {
                                    ty: fa.ty.lub(&fb.ty),
                                    optional: fa.optional || fb.optional,
                                },
                            );
                        }
                        None => {
                            out.insert(l.clone(), FieldType::optional(fa.ty.clone()));
                        }
                    }
                }
                for (l, fb) in b {
                    if !a.contains_key(l) {
                        out.insert(l.clone(), FieldType::optional(fb.ty.clone()));
                    }
                }
                Type::Record(out)
            }
            (Type::Set(a), Type::Set(b)) => Type::set(a.lub(b)),
            (Type::List(a), Type::List(b)) => Type::list(a.lub(b)),
            _ => Type::Any,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Any => write!(f, "any"),
            Type::Atom(a) => write!(f, "{a}"),
            Type::Record(fields) => {
                write!(f, "(")?;
                for (i, (l, ft)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}{}: {}", if ft.optional { "?" } else { "" }, ft.ty)?;
                }
                write!(f, ")")
            }
            Type::Set(t) => write!(f, "{{{t}}}"),
            Type::List(t) => write!(f, "[{t}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Type {
        Type::record([
            ("A", Type::Atom(AtomType::Int)),
            ("B", Type::Atom(AtomType::Int)),
        ])
    }

    fn abc() -> Type {
        Type::record([
            ("A", Type::Atom(AtomType::Int)),
            ("B", Type::Atom(AtomType::Int)),
            ("C", Type::Atom(AtomType::Str)),
        ])
    }

    #[test]
    fn width_subtyping_record_with_more_fields_is_subtype() {
        // §6.1: "we can always use a record with fields A, B, C anywhere
        // one with fields A, B is expected."
        assert!(abc().is_subtype_of(&ab()));
        assert!(!ab().is_subtype_of(&abc()));
    }

    #[test]
    fn values_with_extra_fields_check_against_narrower_type() {
        let v = Value::record([
            ("A", Value::int(1)),
            ("B", Value::int(2)),
            ("C", Value::str("x")),
        ]);
        assert!(ab().check(&v).is_ok());
        assert!(abc().check(&v).is_ok());
    }

    #[test]
    fn missing_required_field_fails() {
        let v = Value::record([("A", Value::int(1))]);
        let err = ab().check(&v).unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
    }

    #[test]
    fn optional_field_may_be_absent() {
        let t = Type::Record(
            [
                (
                    "A".to_string(),
                    FieldType::required(Type::Atom(AtomType::Int)),
                ),
                (
                    "B".to_string(),
                    FieldType::optional(Type::Atom(AtomType::Int)),
                ),
            ]
            .into_iter()
            .collect(),
        );
        assert!(t.check(&Value::record([("A", Value::int(1))])).is_ok());
    }

    #[test]
    fn set_and_list_checking() {
        let t = Type::set(ab());
        let good = Value::set([Value::record([("A", Value::int(1)), ("B", Value::int(2))])]);
        let bad = Value::set([Value::int(3)]);
        assert!(t.check(&good).is_ok());
        assert!(t.check(&bad).is_err());
        assert!(Type::list(Type::Atom(AtomType::Int))
            .check(&Value::list([Value::int(1), Value::int(2)]))
            .is_ok());
    }

    #[test]
    fn lub_makes_disagreeing_fields_optional() {
        let a = Type::record([("A", Type::Atom(AtomType::Int))]);
        let b = Type::record([("B", Type::Atom(AtomType::Str))]);
        let l = a.lub(&b);
        match &l {
            Type::Record(fs) => {
                assert!(fs["A"].optional);
                assert!(fs["B"].optional);
            }
            _ => panic!("expected record"),
        }
        // Both inputs are subtypes of the lub? A record typed `a` lacks B,
        // which the lub tolerates (optional), so yes.
        assert!(a.is_subtype_of(&l));
        assert!(b.is_subtype_of(&l));
    }

    #[test]
    fn lub_of_incompatible_shapes_is_any() {
        assert_eq!(
            Type::Atom(AtomType::Int).lub(&Type::set(Type::Any)),
            Type::Any
        );
        assert!(ab().is_subtype_of(&Type::Any));
    }

    #[test]
    fn subtype_reflexive_and_transitive_samples() {
        assert!(ab().is_subtype_of(&ab()));
        let wide = Type::record([
            ("A", Type::Atom(AtomType::Int)),
            ("B", Type::Atom(AtomType::Int)),
            ("C", Type::Atom(AtomType::Str)),
            ("D", Type::Atom(AtomType::Bool)),
        ]);
        assert!(wide.is_subtype_of(&abc()));
        assert!(abc().is_subtype_of(&ab()));
        assert!(wide.is_subtype_of(&ab()));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ab().to_string(), "(A: int, B: int)");
        assert_eq!(Type::set(Type::Atom(AtomType::Str)).to_string(), "{string}");
    }
}
