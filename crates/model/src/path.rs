//! Paths: canonical addresses of parts of a complex object.
//!
//! A [`Path`] is a sequence of [`Step`]s from the root of a value to one of
//! its parts. Set elements are addressed *by their value* (there is no
//! positional identity inside a set), which is exactly the addressing
//! discipline the colored-value provenance model of §2.3 needs: a color
//! names a part, and parts of sets are identified extensionally.

use std::fmt;

use crate::value::{Label, Value};

/// One navigation step.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Step {
    /// Descend into a record field.
    Field(Label),
    /// Descend into a list position.
    Index(usize),
    /// Descend into the set element equal to the given value.
    Elem(Box<Value>),
}

impl Step {
    /// The value shape this step can be applied to.
    pub fn expects(&self) -> &'static str {
        match self {
            Step::Field(_) => "record",
            Step::Index(_) => "list",
            Step::Elem(_) => "set",
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Field(l) => write!(f, ".{l}"),
            Step::Index(i) => write!(f, "[{i}]"),
            Step::Elem(v) => write!(f, "{{{v}}}"),
        }
    }
}

/// A path from the root of a value to one of its parts.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Path {
    steps: Vec<Step>,
}

impl Path {
    /// The empty path (addresses the whole value).
    pub fn root() -> Self {
        Path { steps: Vec::new() }
    }

    /// Builds a path from a step sequence.
    pub fn from_steps(steps: Vec<Step>) -> Self {
        Path { steps }
    }

    /// Convenience: a path of record-field steps, e.g. `Path::fields(["a","b"])`.
    pub fn fields<L: Into<Label>>(labels: impl IntoIterator<Item = L>) -> Self {
        Path {
            steps: labels.into_iter().map(|l| Step::Field(l.into())).collect(),
        }
    }

    /// The steps of this path.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether this is the root path.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Returns a new path extended by one step.
    pub fn child(&self, step: Step) -> Self {
        let mut steps = self.steps.clone();
        steps.push(step);
        Path { steps }
    }

    /// Returns a new path that is this path followed by `suffix`.
    pub fn join(&self, suffix: &Path) -> Self {
        let mut steps = self.steps.clone();
        steps.extend(suffix.steps.iter().cloned());
        Path { steps }
    }

    /// The parent path, or `None` at the root.
    pub fn parent(&self) -> Option<Path> {
        if self.steps.is_empty() {
            None
        } else {
            Some(Path {
                steps: self.steps[..self.steps.len() - 1].to_vec(),
            })
        }
    }

    /// The last step, or `None` at the root.
    pub fn last(&self) -> Option<&Step> {
        self.steps.last()
    }

    /// Whether `self` is a (non-strict) prefix of `other`. Provenance is
    /// *hereditary* (§3.1): a fact recorded at a path applies to every
    /// path it prefixes unless overridden below.
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        other.steps.len() >= self.steps.len() && self.steps[..] == other.steps[..self.steps.len()]
    }

    /// Strips `prefix` from the front of this path, if it is a prefix.
    pub fn strip_prefix(&self, prefix: &Path) -> Option<Path> {
        if prefix.is_prefix_of(self) {
            Some(Path {
                steps: self.steps[prefix.len()..].to_vec(),
            })
        } else {
            None
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, "/");
        }
        for s in &self.steps {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl FromIterator<Step> for Path {
    fn from_iter<T: IntoIterator<Item = Step>>(iter: T) -> Self {
        Path {
            steps: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_relation() {
        let p = Path::fields(["a", "b"]);
        let q = Path::fields(["a", "b", "c"]);
        let r = Path::fields(["a", "x"]);
        assert!(p.is_prefix_of(&q));
        assert!(p.is_prefix_of(&p));
        assert!(!q.is_prefix_of(&p));
        assert!(!r.is_prefix_of(&q));
    }

    #[test]
    fn strip_prefix_returns_suffix() {
        let p = Path::fields(["a", "b"]);
        let q = Path::fields(["a", "b", "c"]);
        assert_eq!(q.strip_prefix(&p), Some(Path::fields(["c"])));
        assert_eq!(p.strip_prefix(&q), None);
    }

    #[test]
    fn parent_and_last() {
        let p = Path::fields(["a", "b"]);
        assert_eq!(p.parent(), Some(Path::fields(["a"])));
        assert_eq!(p.last(), Some(&Step::Field("b".into())));
        assert_eq!(Path::root().parent(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Path::root().to_string(), "/");
        let p = Path::root()
            .child(Step::Field("a".into()))
            .child(Step::Index(2));
        assert_eq!(p.to_string(), ".a[2]");
    }

    #[test]
    fn join_concatenates() {
        let p = Path::fields(["a"]);
        let q = Path::fields(["b", "c"]);
        assert_eq!(p.join(&q), Path::fields(["a", "b", "c"]));
    }
}
