//! Label-path queries over complex objects — the XPath-like layer of
//! §6.1.
//!
//! > "Style-sheets for presentation based on such a model are easy to
//! > construct, as is an appropriate variant of XPath. Note that most
//! > XPath expressions are insensitive to the addition of new tags, so
//! > we would expect them to have the same kinds of guarantees about
//! > extensibility as we do for relational databases and SQL."
//!
//! A [`PathQuery`] is a sequence of axis steps over record fields (sets
//! and lists are transparent — a step applies to every element). The
//! extensibility guarantee is a theorem of the semantics and is
//! property-tested: adding *new* record fields anywhere in a value never
//! changes the result of a query that doesn't mention them.

use std::fmt;

use crate::path::{Path, Step};
use crate::value::Value;

/// One step of a path query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryStep {
    /// `/label` — the field `label` of each current record (elements of
    /// current sets/lists are searched transparently).
    Child(String),
    /// `/*` — every field of each current record.
    AnyChild,
    /// `//label` — every descendant field named `label`.
    Descendant(String),
}

/// A parsed path query, e.g. `/entry/name`, `//population`, `/entry/*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathQuery {
    steps: Vec<QueryStep>,
}

impl PathQuery {
    /// Parses a query. Syntax: steps separated by `/`; a leading `//`
    /// (or any empty segment) makes the following step a descendant
    /// step; `*` is the wildcard.
    pub fn parse(input: &str) -> Result<PathQuery, String> {
        let mut steps = Vec::new();
        let mut descendant = false;
        if !input.starts_with('/') {
            return Err("path query must start with '/'".to_owned());
        }
        for seg in input.split('/').skip(1) {
            if seg.is_empty() {
                descendant = true;
                continue;
            }
            let step = match (seg, descendant) {
                ("*", false) => QueryStep::AnyChild,
                ("*", true) => {
                    return Err("'//*' is not supported".to_owned());
                }
                (label, false) => QueryStep::Child(label.to_owned()),
                (label, true) => QueryStep::Descendant(label.to_owned()),
            };
            steps.push(step);
            descendant = false;
        }
        if descendant {
            return Err("trailing '/'".to_owned());
        }
        if steps.is_empty() {
            return Err("empty query".to_owned());
        }
        Ok(PathQuery { steps })
    }

    /// The labels this query mentions (used by the stability theorem:
    /// results are invariant under adding fields with *other* labels).
    pub fn mentioned_labels(&self) -> Vec<&str> {
        self.steps
            .iter()
            .filter_map(|s| match s {
                QueryStep::Child(l) | QueryStep::Descendant(l) => Some(l.as_str()),
                QueryStep::AnyChild => None,
            })
            .collect()
    }

    /// Whether the query uses a wildcard (wildcards are the one
    /// construct that *is* sensitive to new fields).
    pub fn has_wildcard(&self) -> bool {
        self.steps.iter().any(|s| matches!(s, QueryStep::AnyChild))
    }

    /// Evaluates the query, returning matching parts with their paths,
    /// in document order.
    pub fn eval<'v>(&self, value: &'v Value) -> Vec<(Path, &'v Value)> {
        let mut current: Vec<(Path, &Value)> = vec![(Path::root(), value)];
        for step in &self.steps {
            let mut next = Vec::new();
            for (p, v) in current {
                apply_step(step, &p, v, &mut next);
            }
            current = next;
        }
        current
    }

    /// Convenience: the matching values only.
    pub fn values<'v>(&self, value: &'v Value) -> Vec<&'v Value> {
        self.eval(value).into_iter().map(|(_, v)| v).collect()
    }
}

/// Applies one step to one node. Sets and lists are transparent: the
/// step recurses into their elements first.
fn apply_step<'v>(step: &QueryStep, at: &Path, v: &'v Value, out: &mut Vec<(Path, &'v Value)>) {
    match v {
        Value::Set(s) => {
            for el in s {
                let p = at.child(Step::Elem(Box::new(el.clone())));
                apply_step(step, &p, el, out);
            }
        }
        Value::List(xs) => {
            for (i, el) in xs.iter().enumerate() {
                let p = at.child(Step::Index(i));
                apply_step(step, &p, el, out);
            }
        }
        Value::Record(m) => match step {
            QueryStep::Child(label) => {
                if let Some(child) = m.get(label) {
                    out.push((at.child(Step::Field(label.clone())), child));
                }
            }
            QueryStep::AnyChild => {
                for (l, child) in m {
                    out.push((at.child(Step::Field(l.clone())), child));
                }
            }
            QueryStep::Descendant(label) => {
                collect_descendants(label, at, v, out);
            }
        },
        Value::Atom(_) => {
            if let QueryStep::Descendant(_) = step {
                // atoms have no descendants
            }
        }
    }
}

fn collect_descendants<'v>(label: &str, at: &Path, v: &'v Value, out: &mut Vec<(Path, &'v Value)>) {
    match v {
        Value::Atom(_) => {}
        Value::Record(m) => {
            for (l, child) in m {
                let p = at.child(Step::Field(l.clone()));
                if l == label {
                    out.push((p.clone(), child));
                }
                collect_descendants(label, &p, child, out);
            }
        }
        Value::Set(s) => {
            for el in s {
                let p = at.child(Step::Elem(Box::new(el.clone())));
                collect_descendants(label, &p, el, out);
            }
        }
        Value::List(xs) => {
            for (i, el) in xs.iter().enumerate() {
                let p = at.child(Step::Index(i));
                collect_descendants(label, &p, el, out);
            }
        }
    }
}

impl fmt::Display for PathQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            match s {
                QueryStep::Child(l) => write!(f, "/{l}")?,
                QueryStep::AnyChild => write!(f, "/*")?,
                QueryStep::Descendant(l) => write!(f, "//{l}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factbook() -> Value {
        Value::set([
            Value::record([
                ("name", Value::str("Iceland")),
                (
                    "people",
                    Value::record([("population", Value::int(300_000))]),
                ),
            ]),
            Value::record([
                ("name", Value::str("Latvia")),
                (
                    "people",
                    Value::record([("population", Value::int(1_900_000))]),
                ),
            ]),
        ])
    }

    #[test]
    fn child_steps_navigate_through_sets() {
        let v = factbook();
        let q = PathQuery::parse("/name").unwrap();
        let names = q.values(&v);
        assert_eq!(names.len(), 2);
        assert!(names.contains(&&Value::str("Iceland")));
    }

    #[test]
    fn nested_paths_and_descendants() {
        let v = factbook();
        let q = PathQuery::parse("/people/population").unwrap();
        assert_eq!(q.values(&v).len(), 2);
        let d = PathQuery::parse("//population").unwrap();
        assert_eq!(d.values(&v), q.values(&v));
    }

    #[test]
    fn wildcard_selects_all_fields() {
        let v = Value::record([("a", Value::int(1)), ("b", Value::int(2))]);
        let q = PathQuery::parse("/*").unwrap();
        assert_eq!(q.values(&v).len(), 2);
        assert!(q.has_wildcard());
    }

    #[test]
    fn results_carry_resolvable_paths() {
        let v = factbook();
        let q = PathQuery::parse("//population").unwrap();
        for (p, part) in q.eval(&v) {
            assert_eq!(v.get(&p).unwrap(), part);
        }
    }

    /// The §6.1 extensibility claim: adding new fields never disturbs a
    /// wildcard-free query that doesn't mention them.
    #[test]
    fn queries_are_insensitive_to_added_fields() {
        let v = factbook();
        let q = PathQuery::parse("/people/population").unwrap();
        let before: Vec<Value> = q.values(&v).into_iter().cloned().collect();
        // Evolve: add a field to every country and a nested one under
        // people.
        let evolved = Value::set(v.as_set().unwrap().iter().map(|c| {
            let mut m = c.as_record().unwrap().clone();
            m.insert("gdp".into(), Value::int(42));
            let mut people = m["people"].as_record().unwrap().clone();
            people.insert("internet_users".into(), Value::int(7));
            m.insert("people".into(), Value::Record(people));
            Value::Record(m)
        }));
        let after: Vec<Value> = q.values(&evolved).into_iter().cloned().collect();
        assert_eq!(before, after);
        // A wildcard query, by contrast, sees the new fields.
        let w = PathQuery::parse("/*").unwrap();
        assert!(w.values(&evolved).len() > w.values(&v).len());
    }

    #[test]
    fn parse_errors() {
        assert!(PathQuery::parse("name").is_err());
        assert!(PathQuery::parse("/").is_err());
        assert!(PathQuery::parse("/a/").is_err());
        assert!(PathQuery::parse("//*").is_err());
        assert_eq!(
            PathQuery::parse("/entry//name").unwrap().to_string(),
            "/entry//name"
        );
    }

    #[test]
    fn mentioned_labels_reports_dependencies() {
        let q = PathQuery::parse("/entry//name").unwrap();
        assert_eq!(q.mentioned_labels(), vec!["entry", "name"]);
    }
}
