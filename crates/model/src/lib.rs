//! # cdb-model
//!
//! The complex-object data model underlying the `curated-db` system, after
//! the model used throughout Buneman, Cheney, Tan and Vansummeren,
//! *Curated Databases* (PODS 2008), §2.3:
//!
//! > "it is more convenient to work in a domain of complex objects or
//! > nested relations in which values can be freely constructed out of
//! > base values, labeled records `(A:e1, B:e2, ...)` and sets
//! > `{e1, e2, ...}`."
//!
//! The crate provides:
//!
//! * [`Atom`] — base values (integers, strings, booleans, …),
//! * [`Value`] — complex objects built from atoms, records, sets and lists,
//! * [`Path`] / [`Step`] — canonical addresses of parts of a value,
//! * [`Type`] and type checking with *record subtyping* (§6.1 of the paper),
//! * hierarchical [`keys`] ("Keys for XML", used by the archiver and the
//!   provenance store to identify nodes invariantly under updates).
//!
//! Everything here is deliberately free of I/O and of any persistence
//! concern: the substrate crates (`cdb-archive`, `cdb-curation`, …) build
//! those layers on top.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod atom;
pub mod error;
pub mod keys;
pub mod path;
pub mod query;
pub mod types;
pub mod value;

pub use atom::Atom;
pub use error::ModelError;
pub use keys::{KeyPath, KeySpec};
pub use path::{Path, Step};
pub use query::PathQuery;
pub use types::{AtomType, Type};
pub use value::{Label, Value};
