//! Hierarchical keys ("Keys for XML", Buneman–Davidson–Fan–Hara–Tan),
//! the device §5.1 of the paper uses to archive curated databases:
//!
//! > "In the presence of hierarchical key constraints, it becomes
//! > possible to identify a node in a tree in a way that is invariant to
//! > updates that are performed on the tree."
//!
//! A [`KeySpec`] says, for each *context* (a chain of record-field labels
//! from the root, with set boundaries transparent), which fields of a set
//! element form its key. A [`KeyPath`] is then the canonical,
//! update-invariant address of a node: the field labels crossed, with each
//! set element identified by its key-field atoms rather than by position
//! or full value. The archiver (`cdb-archive`) merges successive versions
//! node-by-node along key paths, and the curation provenance store
//! records provenance against key paths for the same reason.

use std::collections::BTreeMap;
use std::fmt;

use crate::atom::Atom;
use crate::error::ModelError;
use crate::path::{Path, Step};
use crate::value::{Label, Value};

/// One step of a key path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KeyStep {
    /// Crossing a record field.
    Field(Label),
    /// Entering the set element whose key fields have these atoms,
    /// in the order given by the governing [`KeySpec`] rule.
    Entry(Vec<Atom>),
    /// Entering a list position (lists are keyed by index).
    Index(usize),
}

impl fmt::Display for KeyStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyStep::Field(l) => write!(f, "/{l}"),
            KeyStep::Entry(atoms) => {
                write!(f, "[")?;
                for (i, a) in atoms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "]")
            }
            KeyStep::Index(i) => write!(f, "#{i}"),
        }
    }
}

/// An update-invariant address of a node in a keyed hierarchical value.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyPath {
    steps: Vec<KeyStep>,
}

impl KeyPath {
    /// The root key path.
    pub fn root() -> Self {
        KeyPath { steps: Vec::new() }
    }

    /// Builds a key path from steps.
    pub fn from_steps(steps: Vec<KeyStep>) -> Self {
        KeyPath { steps }
    }

    /// The steps of this key path.
    pub fn steps(&self) -> &[KeyStep] {
        &self.steps
    }

    /// Returns a new key path extended by one step.
    pub fn child(&self, step: KeyStep) -> Self {
        let mut steps = self.steps.clone();
        steps.push(step);
        KeyPath { steps }
    }

    /// The parent key path, or `None` at the root.
    pub fn parent(&self) -> Option<KeyPath> {
        if self.steps.is_empty() {
            None
        } else {
            Some(KeyPath {
                steps: self.steps[..self.steps.len() - 1].to_vec(),
            })
        }
    }

    /// Whether `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &KeyPath) -> bool {
        other.steps.len() >= self.steps.len() && self.steps[..] == other.steps[..self.steps.len()]
    }

    /// The number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether this is the root key path.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl fmt::Display for KeyPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, "/");
        }
        for s in &self.steps {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// A hierarchical key specification.
///
/// Each rule maps a *context* — the chain of record-field labels from the
/// root down to a set (set and list crossings are transparent) — to the
/// list of fields that key the elements of that set. Sets with no rule
/// fall back to extensional identity (the element's whole value is its
/// key), which is always sound but defeats fat-node merging when leaf
/// fields change; well-organized curated databases (UniProt's `AC`
/// accession numbers, the Factbook's country names) always have real keys.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KeySpec {
    rules: BTreeMap<Vec<Label>, Vec<Label>>,
}

impl KeySpec {
    /// An empty specification (all sets use extensional identity).
    pub fn new() -> Self {
        KeySpec::default()
    }

    /// Adds a rule: elements of the set reached through record fields
    /// `context` are keyed by `key_fields`.
    pub fn rule<L1, L2>(
        mut self,
        context: impl IntoIterator<Item = L1>,
        key_fields: impl IntoIterator<Item = L2>,
    ) -> Self
    where
        L1: Into<Label>,
        L2: Into<Label>,
    {
        self.rules.insert(
            context.into_iter().map(Into::into).collect(),
            key_fields.into_iter().map(Into::into).collect(),
        );
        self
    }

    /// The key fields for a set reached via `context`, if a rule exists.
    pub fn key_fields(&self, context: &[Label]) -> Option<&[Label]> {
        self.rules.get(context).map(Vec::as_slice)
    }

    /// Computes the [`KeyStep::Entry`] identifying `element` within a set
    /// at `context`. Falls back to the element's whole atom value when no
    /// rule applies and the element is atomic; otherwise requires a rule.
    pub fn entry_step(
        &self,
        context: &[Label],
        element: &Value,
        at: &Path,
    ) -> Result<KeyStep, ModelError> {
        match self.key_fields(context) {
            Some(fields) => {
                let rec = element
                    .as_record()
                    .ok_or_else(|| ModelError::KeyViolation {
                        detail: format!(
                            "key rule at context {context:?} expects record elements, found {}",
                            element.kind()
                        ),
                        at: at.clone(),
                    })?;
                let mut atoms = Vec::with_capacity(fields.len());
                for fld in fields {
                    let v = rec.get(fld).ok_or_else(|| ModelError::KeyViolation {
                        detail: format!("missing key field {fld:?}"),
                        at: at.clone(),
                    })?;
                    let a = v.as_atom().ok_or_else(|| ModelError::KeyViolation {
                        detail: format!("key field {fld:?} is not atomic"),
                        at: at.clone(),
                    })?;
                    atoms.push(a.clone());
                }
                Ok(KeyStep::Entry(atoms))
            }
            None => match element.as_atom() {
                Some(a) => Ok(KeyStep::Entry(vec![a.clone()])),
                None => Err(ModelError::KeyViolation {
                    detail: format!(
                        "no key rule for set at context {context:?} with non-atomic elements"
                    ),
                    at: at.clone(),
                }),
            },
        }
    }

    /// Enumerates every node of `value` with its canonical key path, in
    /// depth-first order. Fails on key violations (missing key fields,
    /// duplicate keys among siblings, unkeyable sets).
    pub fn keyed_nodes<'v>(
        &self,
        value: &'v Value,
    ) -> Result<Vec<(KeyPath, &'v Value)>, ModelError> {
        let mut out = Vec::new();
        self.walk(
            value,
            &mut Vec::new(),
            KeyPath::root(),
            Path::root(),
            &mut out,
        )?;
        Ok(out)
    }

    fn walk<'v>(
        &self,
        value: &'v Value,
        context: &mut Vec<Label>,
        kp: KeyPath,
        vp: Path,
        out: &mut Vec<(KeyPath, &'v Value)>,
    ) -> Result<(), ModelError> {
        out.push((kp.clone(), value));
        match value {
            Value::Atom(_) => Ok(()),
            Value::Record(m) => {
                for (l, v) in m {
                    context.push(l.clone());
                    self.walk(
                        v,
                        context,
                        kp.child(KeyStep::Field(l.clone())),
                        vp.child(Step::Field(l.clone())),
                        out,
                    )?;
                    context.pop();
                }
                Ok(())
            }
            Value::Set(s) => {
                let mut seen: BTreeMap<KeyStep, ()> = BTreeMap::new();
                for v in s {
                    let step = self.entry_step(context, v, &vp)?;
                    if seen.insert(step.clone(), ()).is_some() {
                        return Err(ModelError::KeyViolation {
                            detail: format!("duplicate key {step} among siblings"),
                            at: vp.clone(),
                        });
                    }
                    self.walk(
                        v,
                        context,
                        kp.child(step),
                        vp.child(Step::Elem(Box::new(v.clone()))),
                        out,
                    )?;
                }
                Ok(())
            }
            Value::List(xs) => {
                for (i, v) in xs.iter().enumerate() {
                    self.walk(
                        v,
                        context,
                        kp.child(KeyStep::Index(i)),
                        vp.child(Step::Index(i)),
                        out,
                    )?;
                }
                Ok(())
            }
        }
    }

    /// Resolves a key path to the part of `value` it addresses.
    pub fn resolve<'v>(
        &self,
        value: &'v Value,
        key_path: &KeyPath,
    ) -> Result<&'v Value, ModelError> {
        let mut cur = value;
        let mut context: Vec<Label> = Vec::new();
        for (i, step) in key_path.steps().iter().enumerate() {
            let at = || Path::root(); // best-effort location for errors
            cur = match (step, cur) {
                (KeyStep::Field(l), Value::Record(m)) => {
                    context.push(l.clone());
                    m.get(l).ok_or_else(|| ModelError::NoSuchField {
                        label: l.clone(),
                        at: at(),
                    })?
                }
                (KeyStep::Entry(_), Value::Set(s)) => {
                    let mut found = None;
                    for v in s {
                        let cand = self.entry_step(&context, v, &at())?;
                        if cand == *step {
                            found = Some(v);
                            break;
                        }
                    }
                    found.ok_or(ModelError::NoSuchElement { at: at() })?
                }
                (KeyStep::Index(n), Value::List(xs)) => {
                    xs.get(*n).ok_or_else(|| ModelError::IndexOutOfBounds {
                        index: *n,
                        len: xs.len(),
                        at: at(),
                    })?
                }
                (step, found) => {
                    let expected = match step {
                        KeyStep::Field(_) => "record",
                        KeyStep::Entry(_) => "set",
                        KeyStep::Index(_) => "list",
                    };
                    return Err(ModelError::ShapeMismatch {
                        expected,
                        found: found.kind(),
                        at: Path::root(),
                    });
                }
            };
            let _ = i;
        }
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny Factbook-like database: a set of countries keyed by name.
    fn factbook() -> (KeySpec, Value) {
        let spec = KeySpec::new().rule(Vec::<Label>::new(), ["name"]);
        let v = Value::set([
            Value::record([
                ("name", Value::str("Iceland")),
                ("population", Value::int(300_000)),
            ]),
            Value::record([
                ("name", Value::str("Liechtenstein")),
                ("population", Value::int(35_000)),
            ]),
        ]);
        (spec, v)
    }

    #[test]
    fn key_paths_are_update_invariant() {
        let (spec, v1) = factbook();
        // Update Liechtenstein's population: its key path must not change.
        let v2 = Value::set([
            Value::record([
                ("name", Value::str("Iceland")),
                ("population", Value::int(300_000)),
            ]),
            Value::record([
                ("name", Value::str("Liechtenstein")),
                ("population", Value::int(36_000)),
            ]),
        ]);
        let kp = KeyPath::root()
            .child(KeyStep::Entry(vec![Atom::Str("Liechtenstein".into())]))
            .child(KeyStep::Field("population".into()));
        assert_eq!(spec.resolve(&v1, &kp).unwrap(), &Value::int(35_000));
        assert_eq!(spec.resolve(&v2, &kp).unwrap(), &Value::int(36_000));
    }

    #[test]
    fn keyed_nodes_enumerates_with_canonical_paths() {
        let (spec, v) = factbook();
        let nodes = spec.keyed_nodes(&v).unwrap();
        // root set + 2 records + 4 fields = 7 nodes.
        assert_eq!(nodes.len(), 7);
        for (kp, sub) in &nodes {
            assert_eq!(spec.resolve(&v, kp).unwrap(), *sub);
        }
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let spec = KeySpec::new().rule(Vec::<Label>::new(), ["name"]);
        let v = Value::set([
            Value::record([("name", Value::str("X")), ("a", Value::int(1))]),
            Value::record([("name", Value::str("X")), ("a", Value::int(2))]),
        ]);
        assert!(matches!(
            spec.keyed_nodes(&v),
            Err(ModelError::KeyViolation { .. })
        ));
    }

    #[test]
    fn missing_key_field_is_rejected() {
        let spec = KeySpec::new().rule(Vec::<Label>::new(), ["name"]);
        let v = Value::set([Value::record([("a", Value::int(1))])]);
        assert!(matches!(
            spec.keyed_nodes(&v),
            Err(ModelError::KeyViolation { .. })
        ));
    }

    #[test]
    fn atomic_sets_need_no_rule() {
        let spec = KeySpec::new();
        let v = Value::set([Value::int(1), Value::int(2)]);
        let nodes = spec.keyed_nodes(&v).unwrap();
        assert_eq!(nodes.len(), 3);
    }

    #[test]
    fn unkeyed_record_sets_are_rejected() {
        let spec = KeySpec::new();
        let v = Value::set([Value::record([("a", Value::int(1))])]);
        assert!(matches!(
            spec.keyed_nodes(&v),
            Err(ModelError::KeyViolation { .. })
        ));
    }

    #[test]
    fn nested_contexts_use_their_own_rules() {
        // countries keyed by name; each has cities keyed by city field.
        let spec = KeySpec::new()
            .rule(Vec::<Label>::new(), ["name"])
            .rule(["cities"], ["city"]);
        let v = Value::set([Value::record([
            ("name", Value::str("Iceland")),
            (
                "cities",
                Value::set([Value::record([
                    ("city", Value::str("Reykjavik")),
                    ("pop", Value::int(120_000)),
                ])]),
            ),
        ])]);
        let kp = KeyPath::root()
            .child(KeyStep::Entry(vec![Atom::Str("Iceland".into())]))
            .child(KeyStep::Field("cities".into()))
            .child(KeyStep::Entry(vec![Atom::Str("Reykjavik".into())]))
            .child(KeyStep::Field("pop".into()));
        assert_eq!(spec.resolve(&v, &kp).unwrap(), &Value::int(120_000));
    }

    #[test]
    fn key_path_display() {
        let kp = KeyPath::root()
            .child(KeyStep::Entry(vec![Atom::Str("Iceland".into())]))
            .child(KeyStep::Field("pop".into()))
            .child(KeyStep::Index(3));
        assert_eq!(kp.to_string(), "[\"Iceland\"]/pop#3");
        assert_eq!(KeyPath::root().to_string(), "/");
    }

    #[test]
    fn prefix_and_parent() {
        let a = KeyPath::root().child(KeyStep::Field("x".into()));
        let b = a.child(KeyStep::Index(0));
        assert!(a.is_prefix_of(&b));
        assert_eq!(b.parent(), Some(a.clone()));
        assert!(KeyPath::root().is_prefix_of(&a));
    }
}
