//! Base (atomic) values.
//!
//! Atoms are the leaves of every complex object. They are totally ordered
//! and hashable so that sets of values can be kept in canonical order and
//! used as keys — a property the archiver's fat-node merge and the
//! provenance store both rely on.

use std::fmt;

/// A base value: the leaves of the complex-object model.
///
/// Real numbers are represented as scaled decimals (`Decimal`) rather than
/// floats so that `Atom` can implement `Eq`, `Ord` and `Hash` — the data
/// model must support set semantics, and IEEE floats cannot be set
/// elements. Curated scientific data (molecular weights, percentages) is
/// decimal in the sources anyway.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// The unit/null atom. Used for label-only tree nodes.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A scaled decimal: `digits * 10^-scale`.
    Decimal(Decimal),
    /// A UTF-8 string.
    Str(String),
}

/// A scaled decimal number: `digits * 10^-scale`, kept in a canonical form
/// where `digits` has no trailing zero factor unless `scale == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decimal {
    digits: i64,
    scale: u8,
}

impl Decimal {
    /// Creates a decimal `digits * 10^-scale`, canonicalizing trailing
    /// zeros (`1500, 2` becomes `15, 0` — i.e. `15.00` → `15`).
    pub fn new(mut digits: i64, mut scale: u8) -> Self {
        while scale > 0 && digits % 10 == 0 {
            digits /= 10;
            scale -= 1;
        }
        Decimal { digits, scale }
    }

    /// The unscaled digits.
    pub fn digits(&self) -> i64 {
        self.digits
    }

    /// The decimal scale (number of fractional digits).
    pub fn scale(&self) -> u8 {
        self.scale
    }

    /// Approximate conversion to `f64`, for reporting only.
    pub fn to_f64(&self) -> f64 {
        self.digits as f64 / 10f64.powi(self.scale as i32)
    }
}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Compare digits * 10^-scale without losing precision: scale both
        // to the larger scale using i128 arithmetic.
        let (a, b) = (self.digits as i128, other.digits as i128);
        let (sa, sb) = (self.scale as u32, other.scale as u32);
        let max = sa.max(sb);
        let a = a * 10i128.pow(max - sa);
        let b = b * 10i128.pow(max - sb);
        a.cmp(&b)
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.digits);
        }
        let sign = if self.digits < 0 { "-" } else { "" };
        let abs = self.digits.unsigned_abs();
        let pow = 10u64.pow(self.scale as u32);
        write!(
            f,
            "{sign}{}.{:0width$}",
            abs / pow,
            abs % pow,
            width = self.scale as usize
        )
    }
}

impl Atom {
    /// A short tag naming the constructor, used in error messages and in
    /// the kind-preservation checker of the update language.
    pub fn tag(&self) -> &'static str {
        match self {
            Atom::Unit => "unit",
            Atom::Bool(_) => "bool",
            Atom::Int(_) => "int",
            Atom::Decimal(_) => "decimal",
            Atom::Str(_) => "string",
        }
    }

    /// Returns the string payload if this atom is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Atom::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer payload if this atom is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Atom::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload if this atom is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Atom::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Unit => write!(f, "()"),
            Atom::Bool(b) => write!(f, "{b}"),
            Atom::Int(i) => write!(f, "{i}"),
            Atom::Decimal(d) => write!(f, "{d}"),
            Atom::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Atom {
    fn from(v: i64) -> Self {
        Atom::Int(v)
    }
}

impl From<bool> for Atom {
    fn from(v: bool) -> Self {
        Atom::Bool(v)
    }
}

impl From<&str> for Atom {
    fn from(v: &str) -> Self {
        Atom::Str(v.to_owned())
    }
}

impl From<String> for Atom {
    fn from(v: String) -> Self {
        Atom::Str(v)
    }
}

impl From<Decimal> for Atom {
    fn from(v: Decimal) -> Self {
        Atom::Decimal(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_canonicalizes_trailing_zeros() {
        assert_eq!(Decimal::new(1500, 2), Decimal::new(15, 0));
        assert_eq!(Decimal::new(1500, 2).to_string(), "15");
        assert_eq!(Decimal::new(1502, 2).to_string(), "15.02");
        assert_eq!(Decimal::new(-1502, 2).to_string(), "-15.02");
    }

    #[test]
    fn decimal_ordering_is_numeric() {
        let a = Decimal::new(15, 1); // 1.5
        let b = Decimal::new(2, 0); // 2
        let c = Decimal::new(150, 2); // 1.50 == 1.5
        assert!(a < b);
        assert_eq!(a, c);
        assert_eq!(a.cmp(&c), std::cmp::Ordering::Equal);
    }

    #[test]
    fn atom_ordering_separates_constructors() {
        // The derived order sorts by constructor first; all we rely on is
        // totality and consistency with Eq.
        let mut atoms = vec![
            Atom::Str("b".into()),
            Atom::Int(3),
            Atom::Unit,
            Atom::Bool(true),
            Atom::Str("a".into()),
        ];
        atoms.sort();
        atoms.dedup();
        assert_eq!(atoms.len(), 5);
    }

    #[test]
    fn atom_accessors() {
        assert_eq!(Atom::from(42).as_int(), Some(42));
        assert_eq!(Atom::from("x").as_str(), Some("x"));
        assert_eq!(Atom::from(true).as_bool(), Some(true));
        assert_eq!(Atom::Unit.as_int(), None);
        assert_eq!(Atom::from(42).tag(), "int");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Atom::Unit.to_string(), "()");
        assert_eq!(Atom::from(7).to_string(), "7");
        assert_eq!(Atom::from("hi").to_string(), "\"hi\"");
    }
}
