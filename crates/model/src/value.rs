//! Complex objects: values built from atoms, records, sets and lists.
//!
//! This is the "simple complex-object model in which records, sets, and
//! lists can be freely combined" that §6.1 of the paper argues is the
//! right underlying data model for curated databases (with XML demoted to
//! a presentation/transmission format).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::atom::Atom;
use crate::error::ModelError;
use crate::path::{Path, Step};

/// A record-field / tree-edge label.
pub type Label = String;

/// A complex object.
///
/// Sets are kept in a `BTreeSet` so that value equality is extensional
/// (order- and duplicate-insensitive), which the annotation-propagation
/// semantics of §2 depends on: a union that merges two equal base values
/// must *merge* their annotations rather than keep two copies.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A base value.
    Atom(Atom),
    /// A labeled record `(A: e1, B: e2, …)`.
    Record(BTreeMap<Label, Value>),
    /// A set `{e1, e2, …}` with extensional equality.
    Set(BTreeSet<Value>),
    /// An ordered list `[e1, e2, …]`.
    List(Vec<Value>),
}

impl Value {
    /// Convenience constructor for an atom value.
    pub fn atom(a: impl Into<Atom>) -> Self {
        Value::Atom(a.into())
    }

    /// Convenience constructor for an integer atom.
    pub fn int(i: i64) -> Self {
        Value::Atom(Atom::Int(i))
    }

    /// Convenience constructor for a string atom.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Atom(Atom::Str(s.into()))
    }

    /// Convenience constructor for the unit atom.
    pub fn unit() -> Self {
        Value::Atom(Atom::Unit)
    }

    /// Builds a record from `(label, value)` pairs.
    pub fn record<L: Into<Label>>(fields: impl IntoIterator<Item = (L, Value)>) -> Self {
        Value::Record(fields.into_iter().map(|(l, v)| (l.into(), v)).collect())
    }

    /// Builds a set from values (duplicates collapse).
    pub fn set(items: impl IntoIterator<Item = Value>) -> Self {
        Value::Set(items.into_iter().collect())
    }

    /// Builds a list from values.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Self {
        Value::List(items.into_iter().collect())
    }

    /// The shape tag of this value: `"atom"`, `"record"`, `"set"` or
    /// `"list"`. This is the *kind* used by the kind-preservation
    /// condition on update languages (§3.1 / \[14\]).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Atom(_) => "atom",
            Value::Record(_) => "record",
            Value::Set(_) => "set",
            Value::List(_) => "list",
        }
    }

    /// Returns the atom if this value is atomic.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Value::Atom(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the record fields if this value is a record.
    pub fn as_record(&self) -> Option<&BTreeMap<Label, Value>> {
        match self {
            Value::Record(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the set elements if this value is a set.
    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the list elements if this value is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Looks up a record field directly.
    pub fn field(&self, label: &str) -> Option<&Value> {
        self.as_record().and_then(|m| m.get(label))
    }

    /// Navigates to the part of this value addressed by `path`.
    pub fn get(&self, path: &Path) -> Result<&Value, ModelError> {
        let mut cur = self;
        for (i, step) in path.steps().iter().enumerate() {
            let at = || Path::from_steps(path.steps()[..i].to_vec());
            cur = match (step, cur) {
                (Step::Field(l), Value::Record(m)) => {
                    m.get(l).ok_or_else(|| ModelError::NoSuchField {
                        label: l.clone(),
                        at: at(),
                    })?
                }
                (Step::Index(n), Value::List(xs)) => {
                    xs.get(*n).ok_or_else(|| ModelError::IndexOutOfBounds {
                        index: *n,
                        len: xs.len(),
                        at: at(),
                    })?
                }
                (Step::Elem(v), Value::Set(s)) => s
                    .get(v.as_ref())
                    .ok_or_else(|| ModelError::NoSuchElement { at: at() })?,
                (step, found) => {
                    return Err(ModelError::ShapeMismatch {
                        expected: step.expects(),
                        found: found.kind(),
                        at: at(),
                    })
                }
            };
        }
        Ok(cur)
    }

    /// Functionally replaces the part addressed by `path` with `new`,
    /// returning the updated value. Replacing a set element removes the
    /// old element and inserts the new one (set semantics).
    pub fn updated(&self, path: &Path, new: Value) -> Result<Value, ModelError> {
        self.updated_at(path.steps(), path, new)
    }

    fn updated_at(&self, steps: &[Step], full: &Path, new: Value) -> Result<Value, ModelError> {
        let Some((step, rest)) = steps.split_first() else {
            return Ok(new);
        };
        let at = || {
            let done = full.len() - steps.len();
            Path::from_steps(full.steps()[..done].to_vec())
        };
        match (step, self) {
            (Step::Field(l), Value::Record(m)) => {
                let child = m.get(l).ok_or_else(|| ModelError::NoSuchField {
                    label: l.clone(),
                    at: at(),
                })?;
                let mut m2 = m.clone();
                m2.insert(l.clone(), child.updated_at(rest, full, new)?);
                Ok(Value::Record(m2))
            }
            (Step::Index(n), Value::List(xs)) => {
                let child = xs.get(*n).ok_or_else(|| ModelError::IndexOutOfBounds {
                    index: *n,
                    len: xs.len(),
                    at: at(),
                })?;
                let mut xs2 = xs.clone();
                xs2[*n] = child.updated_at(rest, full, new)?;
                Ok(Value::List(xs2))
            }
            (Step::Elem(v), Value::Set(s)) => {
                let child = s
                    .get(v.as_ref())
                    .ok_or_else(|| ModelError::NoSuchElement { at: at() })?;
                let updated = child.updated_at(rest, full, new)?;
                let mut s2 = s.clone();
                s2.remove(v.as_ref());
                s2.insert(updated);
                Ok(Value::Set(s2))
            }
            (step, found) => Err(ModelError::ShapeMismatch {
                expected: step.expects(),
                found: found.kind(),
                at: at(),
            }),
        }
    }

    /// Enumerates every part of this value (including the value itself)
    /// together with its path, in depth-first order. This is the set of
    /// annotatable locations in the colored-value model of §2.3.
    pub fn parts(&self) -> Vec<(Path, &Value)> {
        let mut out = Vec::new();
        self.collect_parts(Path::root(), &mut out);
        out
    }

    fn collect_parts<'a>(&'a self, here: Path, out: &mut Vec<(Path, &'a Value)>) {
        out.push((here.clone(), self));
        match self {
            Value::Atom(_) => {}
            Value::Record(m) => {
                for (l, v) in m {
                    v.collect_parts(here.child(Step::Field(l.clone())), out);
                }
            }
            Value::Set(s) => {
                for v in s {
                    v.collect_parts(here.child(Step::Elem(Box::new(v.clone()))), out);
                }
            }
            Value::List(xs) => {
                for (i, v) in xs.iter().enumerate() {
                    v.collect_parts(here.child(Step::Index(i)), out);
                }
            }
        }
    }

    /// The number of parts (nodes) in this value.
    pub fn size(&self) -> usize {
        match self {
            Value::Atom(_) => 1,
            Value::Record(m) => 1 + m.values().map(Value::size).sum::<usize>(),
            Value::Set(s) => 1 + s.iter().map(Value::size).sum::<usize>(),
            Value::List(xs) => 1 + xs.iter().map(Value::size).sum::<usize>(),
        }
    }

    /// The nesting depth of this value (an atom has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Value::Atom(_) => 1,
            Value::Record(m) => 1 + m.values().map(Value::depth).max().unwrap_or(0),
            Value::Set(s) => 1 + s.iter().map(Value::depth).max().unwrap_or(0),
            Value::List(xs) => 1 + xs.iter().map(Value::depth).max().unwrap_or(0),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Atom(a) => write!(f, "{a}"),
            Value::Record(m) => {
                write!(f, "(")?;
                for (i, (l, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}: {v}")?;
                }
                write!(f, ")")
            }
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::List(xs) => {
                write!(f, "[")?;
                for (i, v) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<Atom> for Value {
    fn from(a: Atom) -> Self {
        Value::Atom(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        // {(A:10, B:50), (A:12, B:30)} — the un-annotated table of Fig. 2.
        Value::set([
            Value::record([("A", Value::int(10)), ("B", Value::int(50))]),
            Value::record([("A", Value::int(12)), ("B", Value::int(30))]),
        ])
    }

    #[test]
    fn display_matches_paper_syntax() {
        let t = Value::record([("A", Value::int(10)), ("B", Value::int(50))]);
        assert_eq!(t.to_string(), "(A: 10, B: 50)");
        assert_eq!(sample().to_string(), "{(A: 10, B: 50), (A: 12, B: 30)}");
    }

    #[test]
    fn set_equality_is_extensional() {
        let a = Value::set([Value::int(1), Value::int(2), Value::int(1)]);
        let b = Value::set([Value::int(2), Value::int(1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn get_navigates_records_sets_lists() {
        let v = sample();
        let elem = Value::record([("A", Value::int(10)), ("B", Value::int(50))]);
        let p = Path::root()
            .child(Step::Elem(Box::new(elem)))
            .child(Step::Field("B".into()));
        assert_eq!(v.get(&p).unwrap(), &Value::int(50));
    }

    #[test]
    fn get_reports_shape_mismatch() {
        let v = Value::int(3);
        let p = Path::root().child(Step::Field("A".into()));
        match v.get(&p) {
            Err(ModelError::ShapeMismatch {
                expected, found, ..
            }) => {
                assert_eq!(expected, "record");
                assert_eq!(found, "atom");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn updated_replaces_in_place() {
        let v = Value::record([("A", Value::int(10)), ("B", Value::int(50))]);
        let p = Path::root().child(Step::Field("B".into()));
        let v2 = v.updated(&p, Value::int(55)).unwrap();
        assert_eq!(v2.field("B").unwrap(), &Value::int(55));
        assert_eq!(v.field("B").unwrap(), &Value::int(50), "original untouched");
    }

    #[test]
    fn updated_set_element_keeps_set_semantics() {
        let v = Value::set([Value::int(1), Value::int(2)]);
        let p = Path::root().child(Step::Elem(Box::new(Value::int(1))));
        let v2 = v.updated(&p, Value::int(2)).unwrap();
        // 1 replaced by 2 merges with the existing 2.
        assert_eq!(v2, Value::set([Value::int(2)]));
    }

    #[test]
    fn parts_enumerates_all_nodes() {
        let v = sample();
        let parts = v.parts();
        // 1 set + 2 records + 4 atoms = 7 parts.
        assert_eq!(parts.len(), 7);
        assert_eq!(v.size(), 7);
        // Each part's path navigates back to the same subvalue.
        for (p, sub) in &parts {
            assert_eq!(v.get(p).unwrap(), *sub);
        }
    }

    #[test]
    fn depth_and_kind() {
        assert_eq!(Value::int(1).depth(), 1);
        assert_eq!(sample().depth(), 3);
        assert_eq!(sample().kind(), "set");
        assert_eq!(Value::list([]).kind(), "list");
    }
}
