//! Durability for the integrated database: WAL wiring, checkpoints,
//! and crash recovery.
//!
//! The curation layer's transaction log is the durable core — every
//! committed [`cdb_curation::ops::Transaction`] becomes one
//! `FRAME_TXN` in the WAL. The integrated engine has three more kinds
//! of state that the tree replay cannot reconstruct, and each rides
//! along in its own frame:
//!
//! * publish points → `FRAME_PUBLISH` (the archive itself is *not*
//!   persisted: it is recomputed by
//!   [`CuratedDatabase::archive_from_log`], the paper's §5.1 answer,
//!   which needs only the log and the publish points);
//! * lifecycle events → `FRAME_AUX` tag [`AUX_EVENT`];
//! * superimposed notes → `FRAME_AUX` tag [`AUX_NOTE`].
//!
//! Durability is per-instance: a database created with
//! [`CuratedDatabase::new`] is purely in-memory; one opened with
//! [`CuratedDatabase::open`] (or [`CuratedDatabase::open_dir`])
//! persists every commit, with [`Durability::Always`] syncing at each
//! commit and [`Durability::Batched`] deferring to an explicit
//! [`CuratedDatabase::sync`] — the classic group-commit trade
//! (unsynced transactions can be lost on crash, torn tails are
//! truncated on recovery, committed-and-synced ones never are).

use cdb_curation::provstore::StoreMode;
use cdb_curation::wire::{put_str, put_u64, Checkpoint, Reader, WireError};
use cdb_storage::{
    recover, CheckpointStore, DurableLog, GroupWal, Io, PublishRecord, ReclaimStats, Recovered,
    RecoveryStats, Retention, StorageError, FRAME_AUX, FRAME_COMMIT, FRAME_PUBLISH,
};

use crate::db::{CuratedDatabase, DbError, Note};
use crate::lifecycle::EntryEvent;

/// How a durable database reaches its WAL: exclusively, or through the
/// shared group-commit handle that [`crate::shared::SharedDb`] hands
/// every writer. The database's persist path is identical either way —
/// only the sync discipline differs (an owned log syncs inline; a
/// shared one batches syncs across writers, and `SharedDb` waits for
/// the batch *outside* the database lock).
#[derive(Debug)]
pub(crate) enum WalRef {
    /// This database owns the log outright (single-threaded use).
    Owned(DurableLog<Box<dyn Io>>),
    /// The log is shared with other writers via group commit.
    Shared(GroupWal),
}

impl WalRef {
    pub(crate) fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), StorageError> {
        match self {
            WalRef::Owned(log) => log.append(kind, payload),
            WalRef::Shared(group) => group.append(kind, payload).map(|_| ()),
        }
    }

    /// Forces everything appended so far to durable storage. For a
    /// shared log this is a full barrier across *all* writers, not
    /// just this database's frames.
    pub(crate) fn sync(&mut self) -> Result<(), StorageError> {
        match self {
            WalRef::Owned(log) => log.sync(),
            WalRef::Shared(group) => group.sync_all(),
        }
    }

    /// The log's logical length in bytes. With everything synced this
    /// is the coverage watermark a checkpoint claims.
    pub(crate) fn len(&self) -> Result<u64, StorageError> {
        match self {
            WalRef::Owned(log) => log.len(),
            WalRef::Shared(group) => group.log_len(),
        }
    }

    /// Frames appended but not yet covered by a successful sync.
    pub(crate) fn unsynced(&self) -> u64 {
        match self {
            WalRef::Owned(log) => log.unsynced_frames(),
            WalRef::Shared(group) => group.unsynced(),
        }
    }

    /// Retires log history covered by a durably installed checkpoint.
    pub(crate) fn reclaim(&mut self, covered: u64) -> Result<Option<ReclaimStats>, StorageError> {
        match self {
            WalRef::Owned(log) => log.reclaim(covered),
            WalRef::Shared(group) => group.reclaim(covered),
        }
    }

    /// Live segments backing the log (1 for unsegmented devices).
    pub(crate) fn live_segments(&self) -> u64 {
        match self {
            WalRef::Owned(log) => log.live_segments(),
            WalRef::Shared(group) => group.live_segments(),
        }
    }
}

/// What one [`CuratedDatabase::checkpoint`] covered and reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Log bytes the installed checkpoint durably covers — the next
    /// recovery skips every frame at or below this watermark.
    pub covered_bytes: u64,
    /// Fully-covered segments retired by this checkpoint (archived
    /// under [`Retention::KeepAll`], deleted under
    /// [`Retention::Reclaim`]); 0 on unsegmented devices.
    pub retired_segments: u64,
    /// Bytes those retired segments held.
    pub reclaimed_bytes: u64,
    /// Live segments remaining after retirement (1 on unsegmented
    /// devices).
    pub live_segments: u64,
}

/// When WAL appends are forced to durable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Sync at every commit: a returned operation is crash-durable.
    #[default]
    Always,
    /// Buffer appends until [`CuratedDatabase::sync`] (group commit):
    /// faster, but a crash can lose operations since the last sync —
    /// never corrupt the log, only truncate it.
    Batched,
}

/// Aux-frame tag: a serialized [`EntryEvent`].
pub const AUX_EVENT: u8 = 1;
/// Aux-frame tag: a serialized [`Note`] with its attachment point.
pub const AUX_NOTE: u8 = 2;
/// Aux-frame tag: a 2PC decision record (gid, commit). Only ever
/// written into a checkpoint's aux carriage — the WAL's own record is
/// the `FRAME_DECIDE` frame — so cross-shard decisions survive
/// checkpoint-anchored log truncation and can still resolve another
/// shard's in-doubt PREPARE after the deciding frames are retired.
pub const AUX_DECIDE: u8 = 3;
/// Aux-frame tag: a secondary-index registration or drop. Only the
/// registration is durable — postings are derived state, rebuilt from
/// the recovered tree — so the payload is just the field name and a
/// create/drop flag. Checkpoints re-encode the surviving registrations
/// (creates only), exactly as they re-encode notes.
pub const AUX_INDEX: u8 = 4;

/// One decoded auxiliary frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuxRecord {
    /// A lifecycle event to replay into the registry.
    Event(EntryEvent),
    /// A superimposed note and where it attaches.
    Note {
        /// Entry key the note attaches to.
        key: String,
        /// Field within the entry, if field-level.
        field: Option<String>,
        /// The annotation itself.
        note: Note,
    },
    /// A 2PC decision record carried by a checkpoint.
    Decision {
        /// Global cross-shard transaction id.
        gid: u64,
        /// Whether the transaction committed.
        commit: bool,
    },
    /// A secondary-index registration (`create`) or drop (`!create`).
    Index {
        /// The indexed entry field.
        field: String,
        /// `true` = register, `false` = drop.
        create: bool,
    },
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn read_opt_str(r: &mut Reader<'_>) -> Result<Option<String>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.str()?)),
        t => Err(WireError::BadTag("option", t)),
    }
}

/// Encodes a lifecycle event as an aux-frame payload.
pub fn encode_event(e: &EntryEvent) -> Vec<u8> {
    let mut out = vec![AUX_EVENT];
    match e {
        EntryEvent::Created {
            id,
            from_split,
            time,
        } => {
            out.push(0);
            put_str(&mut out, id);
            put_opt_str(&mut out, from_split.as_deref());
            put_u64(&mut out, *time);
        }
        EntryEvent::Merged {
            kept,
            absorbed,
            time,
        } => {
            out.push(1);
            put_str(&mut out, kept);
            put_str(&mut out, absorbed);
            put_u64(&mut out, *time);
        }
        EntryEvent::Split {
            original,
            parts,
            time,
        } => {
            out.push(2);
            put_str(&mut out, original);
            out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
            for p in parts {
                put_str(&mut out, p);
            }
            put_u64(&mut out, *time);
        }
        EntryEvent::Deleted { id, time } => {
            out.push(3);
            put_str(&mut out, id);
            put_u64(&mut out, *time);
        }
    }
    out
}

/// Encodes a note as an aux-frame payload.
pub fn encode_note(key: &str, field: Option<&str>, note: &Note) -> Vec<u8> {
    let mut out = vec![AUX_NOTE];
    put_str(&mut out, key);
    put_opt_str(&mut out, field);
    put_str(&mut out, &note.author);
    put_str(&mut out, &note.text);
    put_u64(&mut out, note.time);
    out
}

/// Encodes a 2PC decision record as an aux-frame payload (checkpoint
/// carriage only; see [`AUX_DECIDE`]).
pub fn encode_decision(gid: u64, commit: bool) -> Vec<u8> {
    let mut out = vec![AUX_DECIDE];
    put_u64(&mut out, gid);
    out.push(u8::from(commit));
    out
}

/// Encodes a secondary-index registration/drop as an aux-frame payload.
pub fn encode_index(field: &str, create: bool) -> Vec<u8> {
    let mut out = vec![AUX_INDEX];
    put_str(&mut out, field);
    out.push(u8::from(create));
    out
}

/// Decodes an aux-frame payload.
pub fn decode_aux(bytes: &[u8]) -> Result<AuxRecord, WireError> {
    let mut r = Reader::new(bytes);
    let rec = match r.u8()? {
        AUX_EVENT => AuxRecord::Event(match r.u8()? {
            0 => EntryEvent::Created {
                id: r.str()?,
                from_split: read_opt_str(&mut r)?,
                time: r.u64()?,
            },
            1 => EntryEvent::Merged {
                kept: r.str()?,
                absorbed: r.str()?,
                time: r.u64()?,
            },
            2 => {
                let original = r.str()?;
                let n = r.u32()? as usize;
                let mut parts = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    parts.push(r.str()?);
                }
                EntryEvent::Split {
                    original,
                    parts,
                    time: r.u64()?,
                }
            }
            3 => EntryEvent::Deleted {
                id: r.str()?,
                time: r.u64()?,
            },
            t => return Err(WireError::BadTag("lifecycle event", t)),
        }),
        AUX_NOTE => AuxRecord::Note {
            key: r.str()?,
            field: read_opt_str(&mut r)?,
            note: Note {
                author: r.str()?,
                text: r.str()?,
                time: r.u64()?,
            },
        },
        AUX_DECIDE => AuxRecord::Decision {
            gid: r.u64()?,
            commit: match r.u8()? {
                0 => false,
                1 => true,
                t => return Err(WireError::BadTag("decision flag", t)),
            },
        },
        AUX_INDEX => AuxRecord::Index {
            field: r.str()?,
            create: match r.u8()? {
                0 => false,
                1 => true,
                t => return Err(WireError::BadTag("index flag", t)),
            },
        },
        t => return Err(WireError::BadTag("aux record", t)),
    };
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(rec)
}

impl CuratedDatabase {
    /// Opens a durable database over a WAL device and a checkpoint
    /// device, recovering whatever committed state they hold. Empty
    /// devices yield a fresh database that will persist from the
    /// first commit on; a torn WAL tail (crash mid-write) is truncated
    /// and the state is rebuilt from the committed prefix, checkpoint
    /// first when one is usable.
    pub fn open(
        name: impl Into<String>,
        key_field: impl Into<String>,
        wal_io: Box<dyn Io>,
        mut ckpt: CheckpointStore,
    ) -> Result<Self, DbError> {
        let name = name.into();
        let ck = ckpt.load()?;
        let (log, rec) = recover(&name, StoreMode::Hereditary, wal_io, ck)?;
        Self::from_recovered(name, key_field, rec, WalRef::Owned(log), ckpt)
    }

    /// Assembles a database from a finished recovery. Shared by
    /// [`CuratedDatabase::open`] (owned WAL) and
    /// [`crate::shared::SharedDb::open`] (group-commit WAL).
    pub(crate) fn from_recovered(
        name: String,
        key_field: impl Into<String>,
        rec: Recovered,
        wal: WalRef,
        ckpt: CheckpointStore,
    ) -> Result<Self, DbError> {
        Self::from_recovered_with_metrics(name, key_field, rec, wal, ckpt, cdb_obs::Metrics::new())
    }

    /// [`CuratedDatabase::from_recovered`] with an externally-created
    /// metric registry — [`crate::shared::SharedDb::open`] builds the
    /// registry first so the group-commit WAL can record into it.
    pub(crate) fn from_recovered_with_metrics(
        name: String,
        key_field: impl Into<String>,
        rec: Recovered,
        wal: WalRef,
        ckpt: CheckpointStore,
        metrics: cdb_obs::Metrics,
    ) -> Result<Self, DbError> {
        let mut db = CuratedDatabase::new(name, key_field);
        db.metrics = metrics;
        db.curated = rec.db;
        db.last_time = rec.base_time;
        for aux in &rec.aux {
            match decode_aux(aux).map_err(StorageError::Wire)? {
                AuxRecord::Event(e) => db.lifecycle.replay_event(&e),
                AuxRecord::Note { key, field, note } => {
                    db.notes.entry((key, field)).or_default().push(note);
                }
                AuxRecord::Decision { gid, commit } => {
                    db.decisions.insert(gid, commit);
                }
                // Registrations replay in log order, so a drop cancels
                // an earlier create; postings rebuild below, after the
                // recovered tree is in place.
                AuxRecord::Index { field, create } => {
                    if create {
                        db.indexes.register(&field);
                    } else {
                        db.indexes.unregister(&field);
                    }
                }
            }
        }
        for field in db.index_fields() {
            db.rebuild_index(&field)?;
        }
        // The WAL's own DECIDE frames join the checkpoint-carried
        // records (later frames win — they are never contradictory, but
        // a self-healed abort may postdate a carried record).
        db.decisions.extend(rec.decisions.iter());
        db.publish_points = rec
            .publishes
            .iter()
            .map(|p| (p.txn, p.time, p.label.clone()))
            .collect();
        db.archive = if rec.truncated {
            // The covered log is gone: versions published before the
            // checkpoint cut cannot be replayed from the log. The
            // checkpoint carried their exported snapshots instead;
            // versions published after the cut replay onto the
            // checkpoint's base tree.
            db.rebuild_archive_truncated(
                rec.base_tree
                    .as_ref()
                    .expect("a truncated recovery always carries its base tree"),
                &rec.carried_snapshots,
            )?
        } else {
            db.archive_from_log()?
        };
        db.persisted_txns = db.curated.log.len();
        db.persisted_events = db.lifecycle.events().len();
        db.wal = Some(wal);
        db.ckpt = Some(ckpt);
        rec.stats.record_to(&db.metrics);
        db.metrics
            .gauge("storage.segment.count")
            .set(rec.stats.live_segments);
        db.recovery = Some(rec.stats);
        Ok(db)
    }

    /// Rebuilds the archive after a truncated recovery: the first
    /// `snapshots.len()` publish points take their exported values from
    /// the checkpoint's carried snapshots (their log prefix is gone);
    /// the rest — publishes in the replayed tail — are reconstructed by
    /// replaying the tail onto the checkpoint's base tree.
    fn rebuild_archive_truncated(
        &self,
        base_tree: &cdb_curation::tree::TreeDb,
        snapshots: &[Vec<u8>],
    ) -> Result<cdb_archive::Archive, DbError> {
        let spec =
            cdb_model::KeySpec::new().rule(Vec::<String>::new(), [self.key_field().to_owned()]);
        let mut rebuilt = cdb_archive::Archive::new(self.name(), spec);
        for (i, (txn, time, label)) in self.publish_points.iter().enumerate() {
            let snapshot = if let Some(bytes) = snapshots.get(i) {
                cdb_archive::codec::decode_value(bytes)
                    .map_err(|e| DbError::Storage(format!("carried snapshot {i}: {e}")))?
            } else {
                let tree = match txn {
                    Some(t) => cdb_curation::replay::replay_onto(
                        base_tree.clone(),
                        &self.curated.log,
                        Some(*t),
                    )
                    .map_err(|e| DbError::Storage(format!("tail replay for publish: {e}")))?,
                    None => base_tree.clone(),
                };
                crate::db::export_tree(&tree, self.key_field(), &self.lifecycle, *time)?
            };
            rebuilt.add_version(&snapshot, label.clone())?;
        }
        Ok(rebuilt)
    }

    /// Opens a durable database backed by segmented WAL files
    /// `<dir>/<name>.wal.<seq>` and the checkpoint `<dir>/<name>.ckpt`
    /// (all created if absent). Checkpoints install atomically via
    /// temp-file + rename; a legacy single-file `<dir>/<name>.wal` from
    /// an older layout is **not** migrated — open it with
    /// [`CuratedDatabase::open`] over a [`cdb_storage::FileIo`] instead.
    pub fn open_dir(
        name: impl Into<String>,
        key_field: impl Into<String>,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<Self, DbError> {
        Self::open_dir_with(name, key_field, dir, cdb_storage::SegmentConfig::default())
    }

    /// [`CuratedDatabase::open_dir`] with an explicit segment
    /// rotation/retention policy. The database's own retention knob is
    /// aligned with `cfg.retention`, so checkpoints carry (or drop) the
    /// covered transaction log consistently with what happens to the
    /// segment files.
    pub fn open_dir_with(
        name: impl Into<String>,
        key_field: impl Into<String>,
        dir: impl AsRef<std::path::Path>,
        cfg: cdb_storage::SegmentConfig,
    ) -> Result<Self, DbError> {
        let name = name.into();
        let dir = dir.as_ref();
        let wal = cdb_storage::SegmentedIo::open_dir(dir, &name, cfg)?;
        let ckpt = CheckpointStore::dir(dir, &name);
        let mut db = CuratedDatabase::open(name, key_field, Box::new(wal), ckpt)?;
        db.set_retention(cfg.retention);
        Ok(db)
    }

    /// Whether this instance persists commits.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// The durability policy (meaningful only for durable instances).
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Sets the durability policy. Switching to [`Durability::Always`]
    /// does not retroactively sync — call [`CuratedDatabase::sync`].
    pub fn set_durability(&mut self, durability: Durability) {
        self.durability = durability;
    }

    /// What recovery saw when this instance was opened from a WAL
    /// (`None` for in-memory databases).
    pub fn recovery_stats(&self) -> Option<&RecoveryStats> {
        self.recovery.as_ref()
    }

    /// Forces all buffered WAL frames to durable storage (a no-op for
    /// in-memory databases and under [`Durability::Always`]).
    pub fn sync(&mut self) -> Result<(), DbError> {
        if self.wal.is_some() {
            self.drain_pending()?;
            if let Some(log) = self.wal.as_mut() {
                log.sync()?;
            }
        }
        Ok(())
    }

    /// Appends every encoded-but-unwritten frame to the WAL, in order.
    /// On failure the unwritten frames stay queued, so a transient
    /// append error delays persistence instead of losing frames (or
    /// reordering them: nothing new is appended past a queued frame).
    /// Pops from the front of a deque, so a backlog of any size drains
    /// in one linear pass.
    fn drain_pending(&mut self) -> Result<(), DbError> {
        while let Some((kind, payload)) = self.pending_frames.front() {
            self.wal
                .as_mut()
                .expect("drain_pending is only called on durable databases")
                .append(*kind, payload)?;
            self.pending_frames.pop_front();
        }
        Ok(())
    }

    /// Writes a checkpoint: the WAL is synced, the current state is
    /// snapshotted with a coverage watermark (the synced log length),
    /// and the snapshot is installed **crash-atomically** through the
    /// [`CheckpointStore`] — a crash mid-install leaves the previous
    /// checkpoint loadable, never neither. Once installed, WAL segments
    /// fully below the watermark are retired per the device's
    /// [`Retention`] policy (archived or deleted); the checkpoint
    /// itself carries whatever the next recovery can no longer read
    /// from the live log — under [`Retention::KeepAll`] the full
    /// transaction log rides along, under [`Retention::Reclaim`] the
    /// exported snapshots of the published versions do.
    pub fn checkpoint(&mut self) -> Result<CheckpointStats, DbError> {
        if self.wal.is_none() {
            return Err(DbError::Storage(
                "checkpoint on an in-memory database".into(),
            ));
        }
        let _span = cdb_obs::SpanGuard::enter("core.checkpoint");
        self.metrics.counter("core.checkpoints").inc();
        self.drain_pending()?;
        let wal = self.wal.as_mut().expect("checked durable above");
        wal.sync()?;
        // Everything up to here is durable; nothing can be appended
        // between the sync and this read (`&mut self` serializes the
        // owned path, the database lock serializes the shared one), so
        // the watermark is exactly the durable log length.
        let covered = wal.len()?;

        // Paged databases capture dirty objects into the page heap and
        // flush it *before* the anchor below installs: a durable anchor
        // must always reference a durable heap prefix.
        let paged_ref = if self.paged.is_some() {
            Some(self.capture_paged()?)
        } else {
            None
        };

        let mut ck = if paged_ref.is_some() {
            // A paged anchor carries metadata only — tree, provenance,
            // and snapshot bodies live as pages behind the PagedRef
            // watermark. The placeholder tree exists solely to carry
            // the database name and store mode across the wire.
            Checkpoint::basic(
                self.curated.last_txn_id(),
                cdb_curation::TreeDb::new(self.curated.tree.name()),
                cdb_curation::ProvStore::new(self.curated.prov.mode()),
            )
        } else {
            Checkpoint::basic(
                self.curated.last_txn_id(),
                self.curated.tree.clone(),
                self.curated.prov.clone(),
            )
        };
        ck.paged = paged_ref;
        ck.covered_len = Some(covered);
        ck.last_time = self
            .curated
            .log
            .last()
            .map(|t| t.time)
            .unwrap_or(0)
            .max(self.last_time);
        // The in-memory log is already partial when this instance was
        // itself recovered from a reclaiming checkpoint — carrying it
        // as "the full history" would corrupt the next recovery, so a
        // cut instance always checkpoints in truncated form.
        let truncated_form =
            self.retention == Retention::Reclaim || self.curated.base_txn_id().is_some();
        ck.log = if truncated_form {
            Vec::new()
        } else {
            self.curated.log.clone()
        };
        if truncated_form && ck.paged.is_none() {
            ck.snapshots = (0..self.archive.version_count())
                .map(|v| {
                    self.archive
                        .retrieve(v)
                        .map(|val| cdb_archive::codec::encode_value(&val))
                })
                .collect::<Result<_, _>>()?;
        }
        // Publishes and aux records below the watermark disappear with
        // their frames, so the checkpoint re-encodes the complete
        // current sets (events first, then notes — recovery only
        // depends on relative order within each kind).
        ck.publishes = self
            .publish_points
            .iter()
            .map(|(txn, time, label)| {
                cdb_storage::recovery::encode_publish(&PublishRecord {
                    txn: *txn,
                    time: *time,
                    label: label.clone(),
                })
            })
            .collect();
        let mut aux: Vec<Vec<u8>> = self.lifecycle.events().iter().map(encode_event).collect();
        for ((key, field), notes) in &self.notes {
            for note in notes {
                aux.push(encode_note(key, field.as_deref(), note));
            }
        }
        // 2PC decision records ride every checkpoint so they outlive
        // the DECIDE frames the watermark is about to retire.
        for (&gid, &commit) in &self.decisions {
            aux.push(encode_decision(gid, commit));
        }
        // Index registrations likewise: only the surviving creates —
        // a drop below the watermark has already erased its create
        // from this set, so no drop records are needed.
        for field in self.indexes.fields() {
            aux.push(encode_index(&field, true));
        }
        ck.aux = aux;

        self.ckpt
            .as_mut()
            .expect("durable database always has a checkpoint store")
            .install(&ck)?;

        // The checkpoint is durably installed: history it covers can be
        // retired. Best-effort — a failed retire is retried by the next
        // checkpoint, never blocks this one.
        let wal = self.wal.as_mut().expect("checked durable above");
        let reclaimed = wal.reclaim(covered)?;
        let mut stats = CheckpointStats {
            covered_bytes: covered,
            live_segments: wal.live_segments(),
            ..CheckpointStats::default()
        };
        if let Some(r) = reclaimed {
            stats.retired_segments = r.retired;
            stats.reclaimed_bytes = r.reclaimed_bytes;
            stats.live_segments = r.live;
            self.metrics
                .counter("storage.segment.retired")
                .add(r.retired);
            self.metrics
                .counter("storage.segment.reclaimed_bytes")
                .add(r.reclaimed_bytes);
            if r.failed {
                self.metrics.counter("storage.error.retire_failed").inc();
            }
        }
        self.metrics
            .gauge("storage.segment.count")
            .set(stats.live_segments);
        Ok(stats)
    }

    /// Encodes every not-yet-persisted committed transaction *and* the
    /// lifecycle events produced alongside, then appends the frames to
    /// the WAL. Each transaction and its events share one atomic commit
    /// frame — a torn write can drop the whole operation but never
    /// split the transaction from its side effects. Persistence is
    /// position-based (`persisted_txns`/`persisted_events` prefixes of
    /// the in-memory logs), so a commit whose persist step previously
    /// errored is encoded or drained now, never skipped: the WAL always
    /// holds a gap-free prefix of the in-memory log. Called after every
    /// commit; in-memory instances skip straight out.
    pub(crate) fn persist_commit(&mut self) -> Result<(), DbError> {
        if self.wal.is_none() || self.defer_persist {
            return Ok(());
        }
        let _span = cdb_obs::SpanGuard::enter("core.persist_commit");
        for frame in self.encode_unpersisted() {
            self.pending_frames.push_back(frame);
        }
        self.drain_pending()?;
        if self.durability == Durability::Always {
            self.wal.as_mut().expect("checked durable above").sync()?;
        }
        Ok(())
    }

    /// Encodes every not-yet-persisted committed transaction (plus its
    /// lifecycle events) into WAL frames and advances the persistence
    /// cursors — without touching the WAL. [`persist_commit`] feeds the
    /// frames straight into the append queue; the sharded 2PC path
    /// instead seals them inside a PREPARE frame, so the transaction's
    /// whole cross-shard effect commits or aborts atomically.
    ///
    /// [`persist_commit`]: CuratedDatabase::persist_commit
    pub(crate) fn encode_unpersisted(&mut self) -> Vec<(u8, Vec<u8>)> {
        let mut frames = Vec::new();
        let mut fresh: Vec<Vec<u8>> = self.lifecycle.events()
            [self.persisted_events.min(self.lifecycle.events().len())..]
            .iter()
            .map(encode_event)
            .collect();
        let start = self.persisted_txns.min(self.curated.log.len());
        let txns = &self.curated.log[start..];
        if txns.is_empty() {
            for payload in fresh.drain(..) {
                frames.push((FRAME_AUX, payload));
            }
        } else {
            // Normally exactly one transaction is unpersisted and the
            // fresh events are its own. More than one means an earlier
            // persist was interrupted; the stragglers' events then ride
            // with the newest frame — relative aux order (all recovery
            // depends on) is preserved.
            for (i, txn) in txns.iter().enumerate() {
                let aux = if i + 1 == txns.len() {
                    std::mem::take(&mut fresh)
                } else {
                    Vec::new()
                };
                frames.push((FRAME_COMMIT, cdb_storage::encode_commit(txn, &aux)));
            }
        }
        self.metrics
            .counter("core.commits")
            .add((self.curated.log.len() - start) as u64);
        self.persisted_txns = self.curated.log.len();
        self.persisted_events = self.lifecycle.events().len();
        frames
    }

    /// Appends a publish point to the WAL. Publishes are synced
    /// immediately regardless of policy — losing one silently desyncs
    /// the archive from what users were told was published.
    pub(crate) fn persist_publish(&mut self) -> Result<(), DbError> {
        if self.wal.is_none() {
            return Ok(());
        }
        let _span = cdb_obs::SpanGuard::enter("core.persist_publish");
        self.metrics.counter("core.publishes").inc();
        let (txn, time, label) = self
            .publish_points
            .last()
            .expect("persist_publish follows a publish")
            .clone();
        self.pending_frames.push_back((
            FRAME_PUBLISH,
            cdb_storage::recovery::encode_publish(&PublishRecord { txn, time, label }),
        ));
        self.drain_pending()?;
        self.wal.as_mut().expect("checked durable above").sync()?;
        Ok(())
    }

    /// Appends a note to the WAL.
    pub(crate) fn persist_note(&mut self, key: &str, field: Option<&str>) -> Result<(), DbError> {
        if self.wal.is_none() || self.defer_persist {
            return Ok(());
        }
        self.metrics.counter("core.notes").inc();
        let note = self
            .notes
            .get(&(key.to_owned(), field.map(str::to_owned)))
            .and_then(|v| v.last())
            .expect("persist_note follows an annotate")
            .clone();
        self.pending_frames
            .push_back((FRAME_AUX, encode_note(key, field, &note)));
        self.drain_pending()?;
        if self.durability == Durability::Always {
            self.wal.as_mut().expect("checked durable above").sync()?;
        }
        Ok(())
    }

    /// Appends a secondary-index registration or drop to the WAL.
    /// Synced immediately like a publish: index DDL is rare and losing
    /// one silently changes which plans recovery can produce.
    pub(crate) fn persist_index(&mut self, field: &str, create: bool) -> Result<(), DbError> {
        if self.wal.is_none() || self.defer_persist {
            return Ok(());
        }
        self.metrics.counter("core.index_ddl").inc();
        self.pending_frames
            .push_back((FRAME_AUX, encode_index(field, create)));
        self.drain_pending()?;
        self.wal.as_mut().expect("checked durable above").sync()?;
        Ok(())
    }
}

impl Drop for CuratedDatabase {
    /// Best-effort flush on drop: under [`Durability::Batched`] a
    /// database can die holding committed-but-unsynced frames; dropping
    /// it cleanly (scope exit, shutdown) is not a crash, so those
    /// frames get one last drain + sync. Failure is swallowed — drop
    /// cannot return an error — but counted: the global
    /// `storage.error.dropped_unsynced` counter records every drop that
    /// lost a tail, so silent loss is at least observable. Panics skip
    /// the flush entirely (the unwound state is suspect, and crash
    /// recovery handles a truncated tail by design).
    fn drop(&mut self) {
        if std::thread::panicking() {
            return;
        }
        let dirty = match self.wal.as_ref() {
            None => return,
            Some(wal) => !self.pending_frames.is_empty() || wal.unsynced() > 0,
        };
        if !dirty {
            return;
        }
        let mut flush = || -> Result<(), DbError> {
            self.drain_pending()?;
            self.wal.as_mut().expect("checked durable above").sync()?;
            Ok(())
        };
        if flush().is_err() {
            cdb_obs::global()
                .counter("storage.error.dropped_unsynced")
                .inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aux_records_round_trip() {
        let records = [
            AuxRecord::Event(EntryEvent::Created {
                id: "P1".into(),
                from_split: None,
                time: 3,
            }),
            AuxRecord::Event(EntryEvent::Created {
                id: "P2".into(),
                from_split: Some("P0".into()),
                time: 4,
            }),
            AuxRecord::Event(EntryEvent::Merged {
                kept: "A".into(),
                absorbed: "B".into(),
                time: 5,
            }),
            AuxRecord::Event(EntryEvent::Split {
                original: "C".into(),
                parts: vec!["C1".into(), "C2".into()],
                time: 6,
            }),
            AuxRecord::Event(EntryEvent::Deleted {
                id: "D".into(),
                time: 7,
            }),
            AuxRecord::Note {
                key: "GABA-A".into(),
                field: Some("kind".into()),
                note: Note {
                    author: "carol".into(),
                    text: "verify against IUPHAR".into(),
                    time: 9,
                },
            },
            AuxRecord::Note {
                key: "5-HT3".into(),
                field: None,
                note: Note {
                    author: "dave".into(),
                    text: String::new(),
                    time: 0,
                },
            },
            AuxRecord::Decision {
                gid: 42,
                commit: true,
            },
            AuxRecord::Decision {
                gid: 0,
                commit: false,
            },
            AuxRecord::Index {
                field: "tm".into(),
                create: true,
            },
            AuxRecord::Index {
                field: String::new(),
                create: false,
            },
        ];
        for rec in records {
            let bytes = match &rec {
                AuxRecord::Event(e) => encode_event(e),
                AuxRecord::Note { key, field, note } => encode_note(key, field.as_deref(), note),
                AuxRecord::Decision { gid, commit } => encode_decision(*gid, *commit),
                AuxRecord::Index { field, create } => encode_index(field, *create),
            };
            assert_eq!(decode_aux(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn truncated_aux_payloads_error() {
        let bytes = encode_event(&EntryEvent::Merged {
            kept: "A".into(),
            absorbed: "B".into(),
            time: 5,
        });
        for cut in 0..bytes.len() {
            assert!(decode_aux(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
