//! The integrated curated database.
//!
//! Ties the substrates together the way §1 describes real curated
//! databases working: curators edit a working database through
//! transactions (with provenance recorded automatically), annotations
//! are superimposed on the core data (DAS-style, §2), and the database
//! is periodically **published** — each publication merged into the
//! fat-node archive so that any version can be retrieved, cited, and
//! queried longitudinally (§5).

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use cdb_archive::{Archive, ArchiveError, Citation, VersionId};
use cdb_curation::ops::{Clipboard, CuratedTree};
use cdb_curation::provstore::StoreMode;
use cdb_curation::tree::TreeError;
use cdb_curation::{queries, NodeId};
use cdb_model::keys::KeyStep;
use cdb_model::{Atom, KeyPath, KeySpec, Value};

use crate::lifecycle::{EntryRegistry, LifecycleError};

/// Errors from the integrated engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A tree-level error.
    Tree(TreeError),
    /// An archive-level error.
    Archive(ArchiveError),
    /// A lifecycle error.
    Lifecycle(LifecycleError),
    /// No entry with the given key.
    NoSuchEntry(String),
    /// No such field on the entry.
    NoSuchField(String, String),
    /// An entry with this key already exists.
    DuplicateEntry(String),
    /// A durability-layer failure (WAL, checkpoint, or recovery).
    Storage(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Tree(e) => write!(f, "{e}"),
            DbError::Archive(e) => write!(f, "{e}"),
            DbError::Lifecycle(e) => write!(f, "{e}"),
            DbError::NoSuchEntry(k) => write!(f, "no entry with key {k:?}"),
            DbError::NoSuchField(k, fld) => write!(f, "entry {k:?} has no field {fld:?}"),
            DbError::DuplicateEntry(k) => write!(f, "entry {k:?} already exists"),
            DbError::Storage(m) => write!(f, "storage: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<TreeError> for DbError {
    fn from(e: TreeError) -> Self {
        DbError::Tree(e)
    }
}

impl From<ArchiveError> for DbError {
    fn from(e: ArchiveError) -> Self {
        DbError::Archive(e)
    }
}

impl From<LifecycleError> for DbError {
    fn from(e: LifecycleError) -> Self {
        DbError::Lifecycle(e)
    }
}

impl From<cdb_storage::StorageError> for DbError {
    fn from(e: cdb_storage::StorageError) -> Self {
        DbError::Storage(e.to_string())
    }
}

/// A superimposed annotation: external to the core data (the DAS model
/// of §2), attributed and timestamped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Note {
    /// Who made the annotation.
    pub author: String,
    /// The annotation text.
    pub text: String,
    /// Logical time.
    pub time: u64,
}

/// The integrated curated database.
#[derive(Debug)]
pub struct CuratedDatabase {
    /// The working tree with its provenance store and transaction log.
    pub curated: CuratedTree,
    /// The identifier lifecycle registry.
    pub lifecycle: EntryRegistry,
    pub(crate) key_field: String,
    pub(crate) archive: Archive,
    pub(crate) notes: BTreeMap<(String, Option<String>), Vec<Note>>,
    /// For each published version: the last committed transaction at
    /// publish time (None = published before any transaction) and the
    /// logical time of that transaction — enough to rebuild the archive
    /// from the log alone (see [`CuratedDatabase::archive_from_log`]).
    pub(crate) publish_points: Vec<(Option<cdb_curation::TxnId>, u64, String)>,
    /// The write-ahead log, when this instance is durable (see
    /// [`CuratedDatabase::open`]); `None` = in-memory only. Either
    /// owned outright or a shared group-commit handle (see
    /// [`crate::shared::SharedDb`]).
    pub(crate) wal: Option<crate::durable::WalRef>,
    /// The crash-atomic checkpoint store, when durable.
    pub(crate) ckpt: Option<cdb_storage::CheckpointStore>,
    /// What happens to fully-checkpointed WAL segments (see
    /// [`cdb_storage::Retention`]): archived (default, paper semantics)
    /// or deleted to reclaim disk.
    pub(crate) retention: cdb_storage::Retention,
    /// Logical clock floor carried over from a checkpoint whose covered
    /// log was truncated: [`CuratedDatabase::publish`] falls back to it
    /// when the in-memory log is empty, keeping publish times monotone.
    pub(crate) last_time: u64,
    /// When to force appended frames to disk.
    pub(crate) durability: crate::durable::Durability,
    /// Curation transactions already encoded into WAL frames (a prefix
    /// length of `curated.log`). Persistence is driven by this
    /// position, not by "the last transaction", so a commit whose
    /// persist step failed or was skipped is picked up by the next one
    /// instead of being skipped in the WAL forever.
    pub(crate) persisted_txns: usize,
    /// Lifecycle events already encoded into WAL frames.
    pub(crate) persisted_events: usize,
    /// Frames encoded but not yet appended to the WAL (a previous
    /// append failed); drained, in order, before anything new is
    /// appended. A deque: draining pops the front, so a long backlog
    /// (a device down for thousands of commits) drains in one pass
    /// instead of the O(n²) `remove(0)` shuffle a `Vec` would cost.
    pub(crate) pending_frames: VecDeque<(u8, Vec<u8>)>,
    /// What the last recovery saw, when this instance was opened from
    /// a WAL.
    pub(crate) recovery: Option<cdb_storage::RecoveryStats>,
    /// The per-database metric registry (`Arc`-backed; snapshots made
    /// by [`CuratedDatabase::clone_state`] share it, so counters keep
    /// aggregating in one place while reads are served from copies).
    pub(crate) metrics: cdb_obs::Metrics,
    /// 2PC decision records this shard knows (gid → commit): populated
    /// by cross-shard commits and by recovery, re-encoded into every
    /// checkpoint so decisions outlive WAL truncation.
    pub(crate) decisions: BTreeMap<u64, bool>,
    /// When set, [`CuratedDatabase::persist_commit`] queues nothing:
    /// the sharded 2PC path runs curation ops under this flag and then
    /// seals the frames from
    /// [`CuratedDatabase::encode_unpersisted`] inside a PREPARE frame
    /// instead. Never set outside a held cross-shard commit.
    pub(crate) defer_persist: bool,
    /// The paged backing store, when this instance checkpoints
    /// page-granularly (see [`CuratedDatabase::open_paged`]): the page
    /// heap behind a buffer pool, plus dirty-object tracking so a
    /// checkpoint captures only what changed since the last anchor.
    /// `None` = classic full-state checkpoints.
    pub(crate) paged: Option<crate::paged::PagedBacking>,
    /// Registered secondary indexes over entry fields. Registrations
    /// are WAL-durable (tag [`crate::durable::AUX_INDEX`]) and carried
    /// by checkpoints; postings are derived state, reconciled on every
    /// commit and rebuilt from the tree on recovery.
    pub(crate) indexes: crate::indexes::FieldIndexes,
}

/// A deep copy of every field a curation operation can mutate, taken
/// before a cross-shard transaction touches a shard so an abort (a
/// failed PREPARE sync, a validation error on another shard) can
/// restore the state exactly. The persistence cursors ride along:
/// rollback after `encode_unpersisted` must also un-advance them.
#[derive(Debug)]
pub(crate) struct TxnBackup {
    curated: CuratedTree,
    lifecycle: EntryRegistry,
    notes: BTreeMap<(String, Option<String>), Vec<Note>>,
    archive: Archive,
    publish_points: Vec<(Option<cdb_curation::TxnId>, u64, String)>,
    last_time: u64,
    persisted_txns: usize,
    persisted_events: usize,
    indexes: crate::indexes::FieldIndexes,
}

impl CuratedDatabase {
    /// Creates an empty database whose entries are keyed by `key_field`
    /// (e.g. `"ac"` for a UniProt-like database, `"name"` for a
    /// Factbook-like one).
    pub fn new(name: impl Into<String>, key_field: impl Into<String>) -> Self {
        let name = name.into();
        let key_field = key_field.into();
        let spec = KeySpec::new().rule(Vec::<String>::new(), [key_field.clone()]);
        CuratedDatabase {
            curated: CuratedTree::new(name.clone(), StoreMode::Hereditary),
            lifecycle: EntryRegistry::new(),
            key_field,
            archive: Archive::new(name, spec),
            notes: BTreeMap::new(),
            publish_points: Vec::new(),
            wal: None,
            ckpt: None,
            retention: cdb_storage::Retention::default(),
            last_time: 0,
            durability: crate::durable::Durability::Always,
            persisted_txns: 0,
            persisted_events: 0,
            pending_frames: VecDeque::new(),
            recovery: None,
            metrics: cdb_obs::Metrics::new(),
            decisions: BTreeMap::new(),
            defer_persist: false,
            paged: None,
            indexes: crate::indexes::FieldIndexes::default(),
        }
    }

    /// Photographs the mutable curation state for 2PC rollback.
    pub(crate) fn backup_for_txn(&self) -> TxnBackup {
        TxnBackup {
            curated: self.curated.clone(),
            lifecycle: self.lifecycle.clone(),
            notes: self.notes.clone(),
            archive: self.archive.clone(),
            publish_points: self.publish_points.clone(),
            last_time: self.last_time,
            persisted_txns: self.persisted_txns,
            persisted_events: self.persisted_events,
            indexes: self.indexes.clone(),
        }
    }

    /// Restores the state photographed by
    /// [`CuratedDatabase::backup_for_txn`] — the abort path of a
    /// cross-shard transaction. WAL plumbing (pending frames, decision
    /// records) is deliberately untouched: an aborted 2PC txn never
    /// queued ordinary frames (they were deferred), and its decision
    /// record must survive the rollback.
    pub(crate) fn restore_from_backup(&mut self, backup: TxnBackup) {
        self.curated = backup.curated;
        self.lifecycle = backup.lifecycle;
        self.notes = backup.notes;
        self.archive = backup.archive;
        self.publish_points = backup.publish_points;
        self.last_time = backup.last_time;
        self.persisted_txns = backup.persisted_txns;
        self.persisted_events = backup.persisted_events;
        self.indexes = backup.indexes;
    }

    /// The segment-retention policy applied when a checkpoint retires
    /// fully-covered WAL history.
    pub fn retention(&self) -> cdb_storage::Retention {
        self.retention
    }

    /// Sets the segment-retention policy for future checkpoints.
    /// [`cdb_storage::Retention::KeepAll`] (the default) archives
    /// retired segments, preserving the paper's full-history semantics;
    /// [`cdb_storage::Retention::Reclaim`] deletes them, trading
    /// history reconstruction from the raw log for bounded disk (the
    /// checkpoint then carries the archive snapshots instead).
    pub fn set_retention(&mut self, retention: cdb_storage::Retention) {
        self.retention = retention;
    }

    /// The per-database metric registry. Storage handles created for
    /// this database (the group-commit WAL, recovery) record here.
    pub fn metrics(&self) -> &cdb_obs::Metrics {
        &self.metrics
    }

    /// A point-in-time view of every metric this database can see: its
    /// own registry merged with the process-global one (relational
    /// engine timings, storage error counters). Counters add, gauges
    /// take the maximum, histograms fold bucket-wise.
    pub fn metrics_snapshot(&self) -> cdb_obs::MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.merge(&cdb_obs::global().snapshot());
        snap
    }

    /// The database name.
    pub fn name(&self) -> &str {
        self.curated.tree.name()
    }

    /// The entry key field.
    pub fn key_field(&self) -> &str {
        &self.key_field
    }

    /// The archive of published versions.
    pub fn archive(&self) -> &Archive {
        &self.archive
    }

    /// The node of the entry with the given key.
    pub fn entry_node(&self, key: &str) -> Result<NodeId, DbError> {
        let root = self.curated.tree.root();
        for &child in self.curated.tree.children(root)? {
            if let Some(kf) = self.curated.tree.child_by_label(child, &self.key_field)? {
                if self.curated.tree.value(kf)? == Some(&Atom::Str(key.to_owned())) {
                    return Ok(child);
                }
            }
        }
        Err(DbError::NoSuchEntry(key.to_owned()))
    }

    /// The keys of all current entries.
    pub fn entry_keys(&self) -> Result<Vec<String>, DbError> {
        let root = self.curated.tree.root();
        let mut out = Vec::new();
        for &child in self.curated.tree.children(root)? {
            if let Some(kf) = self.curated.tree.child_by_label(child, &self.key_field)? {
                if let Some(Atom::Str(s)) = self.curated.tree.value(kf)? {
                    out.push(s.clone());
                }
            }
        }
        Ok(out)
    }

    /// Adds a freshly-authored entry.
    pub fn add_entry(
        &mut self,
        curator: &str,
        time: u64,
        key: &str,
        fields: &[(&str, Atom)],
    ) -> Result<NodeId, DbError> {
        if self.entry_node(key).is_ok() {
            return Err(DbError::DuplicateEntry(key.to_owned()));
        }
        // Lifecycle preconditions are checked *before* the transaction
        // commits: the registry remembers retired ids forever, so a key
        // absent from the live tree can still be rejected — and a txn
        // committed to the in-memory log but never WAL-persisted would
        // corrupt recovery.
        self.lifecycle.check_create(key)?;
        let root = self.curated.tree.root();
        let mut t = self.curated.begin(curator, time);
        let entry = t.insert(root, "entry", None)?;
        t.insert(
            entry,
            self.key_field.clone(),
            Some(Atom::Str(key.to_owned())),
        )?;
        for (label, value) in fields {
            t.insert(entry, (*label).to_owned(), Some(value.clone()))?;
        }
        t.commit();
        self.lifecycle.create(key, time)?;
        self.reindex_touched(&[key]);
        self.persist_commit()?;
        Ok(entry)
    }

    /// Imports an entry copied from another curated database (the §3
    /// copy-paste loop), registering it under `key`. The pasted
    /// subtree's provenance chain is preserved by the curation layer.
    pub fn import_entry(
        &mut self,
        curator: &str,
        time: u64,
        key: &str,
        clip: &Clipboard,
    ) -> Result<NodeId, DbError> {
        if self.entry_node(key).is_ok() {
            return Err(DbError::DuplicateEntry(key.to_owned()));
        }
        self.lifecycle.check_create(key)?;
        let root = self.curated.tree.root();
        let mut t = self.curated.begin(curator, time);
        let entry = t.paste(root, clip)?;
        // Ensure the key field is present and equal to `key`.
        match t.tree().child_by_label(entry, &self.key_field)? {
            Some(kf) => {
                if t.tree().value(kf)? != Some(&Atom::Str(key.to_owned())) {
                    t.modify(kf, Some(Atom::Str(key.to_owned())))?;
                }
            }
            None => {
                t.insert(
                    entry,
                    self.key_field.clone(),
                    Some(Atom::Str(key.to_owned())),
                )?;
            }
        }
        t.commit();
        self.lifecycle.create(key, time)?;
        self.reindex_touched(&[key]);
        self.persist_commit()?;
        Ok(entry)
    }

    fn field_node(&self, key: &str, field: &str) -> Result<NodeId, DbError> {
        let entry = self.entry_node(key)?;
        self.curated
            .tree
            .child_by_label(entry, field)?
            .ok_or_else(|| DbError::NoSuchField(key.to_owned(), field.to_owned()))
    }

    /// Edits (or adds) a field of an entry.
    pub fn edit_field(
        &mut self,
        curator: &str,
        time: u64,
        key: &str,
        field: &str,
        value: Atom,
    ) -> Result<(), DbError> {
        let entry = self.entry_node(key)?;
        let existing = self.curated.tree.child_by_label(entry, field)?;
        let mut t = self.curated.begin(curator, time);
        match existing {
            Some(node) => t.modify(node, Some(value))?,
            None => {
                t.insert(entry, field.to_owned(), Some(value))?;
            }
        }
        t.commit();
        self.reindex_touched(&[key]);
        self.persist_commit()?;
        Ok(())
    }

    /// Reads a field of an entry.
    pub fn field(&self, key: &str, field: &str) -> Result<Atom, DbError> {
        let node = self.field_node(key, field)?;
        Ok(self
            .curated
            .tree
            .value(node)?
            .cloned()
            .unwrap_or(Atom::Unit))
    }

    /// Deletes an entry outright.
    pub fn delete_entry(&mut self, curator: &str, time: u64, key: &str) -> Result<(), DbError> {
        let entry = self.entry_node(key)?;
        self.lifecycle.check_delete(key)?;
        let mut t = self.curated.begin(curator, time);
        t.delete(entry)?;
        t.commit();
        self.lifecycle.delete(key, time)?;
        self.reindex_touched(&[key]);
        self.persist_commit()?;
        Ok(())
    }

    /// Fusion (§6.2): `absorbed` is discovered to be the same object as
    /// `kept`; its fields that `kept` lacks are carried over, its node
    /// deleted, and its identifier retired (resolvable forever through
    /// the lifecycle registry).
    pub fn merge_entries(
        &mut self,
        curator: &str,
        time: u64,
        kept: &str,
        absorbed: &str,
    ) -> Result<(), DbError> {
        let kept_node = self.entry_node(kept)?;
        let absorbed_node = self.entry_node(absorbed)?;
        self.lifecycle.check_merge(kept, absorbed)?;
        // Carry over missing fields before deleting.
        let mut carry: Vec<(String, Option<Atom>)> = Vec::new();
        for &c in self.curated.tree.children(absorbed_node)? {
            let label = self.curated.tree.label(c)?.to_owned();
            if label != self.key_field
                && self
                    .curated
                    .tree
                    .child_by_label(kept_node, &label)?
                    .is_none()
            {
                carry.push((label, self.curated.tree.value(c)?.cloned()));
            }
        }
        let mut t = self.curated.begin(curator, time);
        for (label, value) in carry {
            t.insert(kept_node, label, value)?;
        }
        t.delete(absorbed_node)?;
        t.commit();
        self.lifecycle.merge(kept, absorbed, time)?;
        self.reindex_touched(&[kept, absorbed]);
        self.persist_commit()?;
        Ok(())
    }

    /// Fission (§6.2): `original` splits into `parts`, each given its
    /// own fields. The original's identifier is retired.
    pub fn split_entry(
        &mut self,
        curator: &str,
        time: u64,
        original: &str,
        parts: &[(&str, Vec<(&str, Atom)>)],
    ) -> Result<(), DbError> {
        let original_node = self.entry_node(original)?;
        let part_keys: Vec<String> = parts.iter().map(|(k, _)| (*k).to_string()).collect();
        self.lifecycle.check_split(original, &part_keys)?;
        let root = self.curated.tree.root();
        let mut t = self.curated.begin(curator, time);
        for (key, fields) in parts {
            let entry = t.insert(root, "entry", None)?;
            t.insert(
                entry,
                self.key_field.clone(),
                Some(Atom::Str((*key).to_owned())),
            )?;
            for (label, value) in fields {
                t.insert(entry, (*label).to_owned(), Some(value.clone()))?;
            }
        }
        t.delete(original_node)?;
        t.commit();
        self.lifecycle.split(original, &part_keys, time)?;
        let mut touched: Vec<&str> = vec![original];
        touched.extend(parts.iter().map(|(k, _)| *k));
        self.reindex_touched(&touched);
        self.persist_commit()?;
        Ok(())
    }

    /// Resolves any identifier — active or retired — to the current
    /// entries holding its data (following merges and splits).
    pub fn resolve_id(&self, id: &str) -> Result<Vec<String>, DbError> {
        let (current, _) = self.lifecycle.what_happened_to(id)?;
        Ok(current)
    }

    // ------------------------------------------------------- indexes

    /// Registers a durable secondary index over an entry field and
    /// builds its postings from the current entries. The registration
    /// is WAL-logged and checkpoint-carried; recovery re-registers it
    /// and rebuilds the postings from the recovered tree. Returns
    /// `false` (and does nothing) when the field is already indexed.
    ///
    /// Entries missing the field index as [`Atom::Unit`] — the same
    /// convention [`crate::views::entry_relation`] uses — so the index
    /// answers exactly the questions the relational view would.
    pub fn create_index(&mut self, field: &str) -> Result<bool, DbError> {
        if !self.indexes.register(field) {
            return Ok(false);
        }
        self.rebuild_index(field)?;
        self.persist_index(field, true)?;
        Ok(true)
    }

    /// Drops a secondary index. Returns `false` when none existed. The
    /// drop is WAL-logged like the creation, so recovery converges on
    /// the surviving registrations.
    pub fn drop_index(&mut self, field: &str) -> Result<bool, DbError> {
        if !self.indexes.unregister(field) {
            return Ok(false);
        }
        self.persist_index(field, false)?;
        Ok(true)
    }

    /// The fields currently indexed, in order.
    pub fn index_fields(&self) -> Vec<String> {
        self.indexes.fields()
    }

    /// The index over `field`, if one is registered.
    pub fn field_index(&self, field: &str) -> Option<&crate::indexes::FieldIndex> {
        self.indexes.get(field)
    }

    /// Keys of the entries whose `field` equals `value`, through the
    /// index; `None` when the field is not indexed (callers fall back
    /// to a scan).
    pub fn index_lookup(&self, field: &str, value: &Atom) -> Option<Vec<String>> {
        self.indexes.get(field).map(|i| i.lookup(value))
    }

    /// The value an entry indexes under for `field`: the key itself for
    /// the key field, `Unit` when the field is absent.
    fn index_value(&self, key: &str, field: &str) -> Atom {
        if field == self.key_field {
            Atom::Str(key.to_owned())
        } else {
            self.field(key, field).unwrap_or(Atom::Unit)
        }
    }

    /// Rebuilds one registered index's postings from the tree.
    pub(crate) fn rebuild_index(&mut self, field: &str) -> Result<(), DbError> {
        let rows: Vec<(String, Atom)> = self
            .entry_keys()?
            .into_iter()
            .map(|k| {
                let v = self.index_value(&k, field);
                (k, v)
            })
            .collect();
        if let Some(idx) = self.indexes.get_mut(field) {
            for (key, value) in rows {
                idx.set(&key, value);
            }
        }
        Ok(())
    }

    /// Reconciles every registered index for the entries a committed
    /// curation operation touched: existing entries re-point at their
    /// current field values, vanished entries (deleted, absorbed,
    /// split away) are unlinked. Runs inside the commit path, before
    /// persistence — 2PC rollback restores postings via
    /// [`CuratedDatabase::backup_for_txn`] along with the tree.
    pub(crate) fn reindex_touched(&mut self, keys: &[&str]) {
        if self.indexes.is_empty() {
            return;
        }
        let fields = self.indexes.fields();
        for &key in keys {
            if self.entry_node(key).is_ok() {
                for field in &fields {
                    let value = self.index_value(key, field);
                    if let Some(idx) = self.indexes.get_mut(field) {
                        idx.set(key, value);
                    }
                }
            } else {
                self.indexes.remove_key(key);
            }
        }
    }

    /// Planner statistics for the entries relation over the given
    /// fields, derived without scanning: row count from the lifecycle
    /// view, per-field distinct counts from the registered indexes
    /// (unindexed fields keep the planner's default heuristics). The
    /// relation is named `entries`, matching
    /// [`crate::views::query_entries_planned`].
    pub fn planner_stats(&self, fields: &[&str]) -> cdb_relalg::DbStats {
        let rows = self.entry_keys().map(|k| k.len() as u64).unwrap_or(0);
        let mut cols = std::collections::BTreeMap::new();
        cols.insert(
            self.key_field.clone(),
            cdb_relalg::ColStats::distinct_only(rows),
        );
        for f in fields {
            if let Some(idx) = self.indexes.get(f) {
                cols.insert(
                    (*f).to_owned(),
                    cdb_relalg::ColStats::distinct_only(idx.distinct()),
                );
            }
        }
        let mut stats = cdb_relalg::DbStats::none();
        stats
            .rels
            .insert("entries".to_owned(), cdb_relalg::RelStats { rows, cols });
        stats
    }

    /// The registered indexes as a relational [`cdb_relalg::IndexSet`]
    /// over the entries relation of `[key_field, fields…]` — postings
    /// converted from entry keys to row offsets (entries appear in
    /// [`CuratedDatabase::entry_keys`] order, the order
    /// [`crate::views::entry_relation`] emits rows in). Indexed fields
    /// not in the view are skipped.
    pub fn relalg_index_set(&self, fields: &[&str]) -> Result<cdb_relalg::IndexSet, DbError> {
        let mut set = cdb_relalg::IndexSet::new();
        if self.indexes.is_empty() {
            return Ok(set);
        }
        let offsets: std::collections::BTreeMap<String, usize> = self
            .entry_keys()?
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, i))
            .collect();
        let schema: Vec<&str> = std::iter::once(self.key_field.as_str())
            .chain(fields.iter().copied())
            .collect();
        for idx in self.indexes.iter() {
            let Some(col_idx) = schema.iter().position(|c| *c == idx.field()) else {
                continue;
            };
            let postings = idx.postings().map(|(value, keys)| {
                let mut rows: Vec<usize> = keys
                    .iter()
                    .filter_map(|k| offsets.get(k).copied())
                    .collect();
                rows.sort_unstable();
                (value.clone(), rows)
            });
            set.add(cdb_relalg::ColumnIndex::from_postings(
                "entries",
                idx.field(),
                col_idx,
                postings,
            ));
        }
        Ok(set)
    }

    // ---------------------------------------------------- annotations

    /// Attaches a superimposed annotation to an entry (`field = None`)
    /// or to one of its fields.
    pub fn annotate(
        &mut self,
        key: &str,
        field: Option<&str>,
        author: &str,
        text: &str,
        time: u64,
    ) -> Result<(), DbError> {
        match field {
            Some(f) => {
                self.field_node(key, f)?;
            }
            None => {
                self.entry_node(key)?;
            }
        }
        self.notes
            .entry((key.to_owned(), field.map(str::to_owned)))
            .or_default()
            .push(Note {
                author: author.to_owned(),
                text: text.to_owned(),
                time,
            });
        self.persist_note(key, field)?;
        Ok(())
    }

    /// The annotations on an entry or field.
    pub fn notes_on(&self, key: &str, field: Option<&str>) -> &[Note] {
        self.notes
            .get(&(key.to_owned(), field.map(str::to_owned)))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    // ----------------------------------------------------- publishing

    /// Exports the current working state as a keyed value: a set of
    /// entry records, each carrying its secondary (retired) identifiers
    /// from the lifecycle registry — UniProt's convention.
    pub fn export(&self) -> Result<Value, DbError> {
        export_tree(
            &self.curated.tree,
            &self.key_field,
            &self.lifecycle,
            u64::MAX,
        )
    }

    /// Publishes the current state as a new archived version — "a common
    /// practice is to maintain a working database … and periodically to
    /// 'publish' versions of the database" (§1).
    pub fn publish(&mut self, label: impl Into<String>) -> Result<VersionId, DbError> {
        let label = label.into();
        let snapshot = self.export()?;
        let v = self.archive.add_version(&snapshot, label.clone())?;
        let txn = self.curated.last_txn_id();
        // `last_time` floors the clock when the log was truncated by a
        // reclaiming checkpoint: the covered transactions are gone, but
        // publish times must stay monotone across the cut.
        let time = self
            .curated
            .log
            .last()
            .map(|t| t.time)
            .unwrap_or(0)
            .max(self.last_time);
        self.publish_points.push((txn, time, label));
        self.persist_publish()?;
        Ok(v)
    }

    /// Rebuilds the entire archive **from the transaction log alone** —
    /// the paper's §5.1 open question ("whether one could create an
    /// archive directly from the transaction log"), answered: each
    /// publish point's state is reconstructed by [`cdb_curation::replay`]
    /// and merged into a fresh archive. The result retrieves the same
    /// versions as the incrementally-built archive (asserted in tests).
    pub fn archive_from_log(&self) -> Result<Archive, DbError> {
        let spec = KeySpec::new().rule(Vec::<String>::new(), [self.key_field.clone()]);
        let mut rebuilt = Archive::new(self.name(), spec);
        for (txn, time, label) in &self.publish_points {
            let tree = match txn {
                Some(t) => cdb_curation::replay::replay(self.name(), &self.curated.log, Some(*t))
                    .map_err(|e| DbError::NoSuchEntry(format!("replay failed: {e}")))?,
                None => cdb_curation::tree::TreeDb::new(self.name()),
            };
            let snapshot = export_tree(&tree, &self.key_field, &self.lifecycle, *time)?;
            rebuilt.add_version(&snapshot, label.clone())?;
        }
        Ok(rebuilt)
    }

    /// Retrieves a published version.
    pub fn version(&self, v: VersionId) -> Result<Value, DbError> {
        Ok(self.archive.retrieve(v)?)
    }

    /// The key path of an entry in the archive.
    pub fn entry_key_path(&self, key: &str) -> KeyPath {
        KeyPath::root().child(KeyStep::Entry(vec![Atom::Str(key.to_owned())]))
    }

    /// Cites an entry as of a published version, crediting the curators
    /// who touched it (§5.2: "It is appropriate to cite the authorship
    /// of an entry").
    pub fn cite(&self, version: VersionId, key: &str) -> Result<Citation, DbError> {
        let authors = match self.entry_node(key) {
            Ok(node) => queries::curators_of(&self.curated, node)?,
            Err(_) => Vec::new(), // entry may exist only in old versions
        };
        Ok(Citation::cite(
            &self.archive,
            version,
            &self.entry_key_path(key),
            authors,
        )?)
    }

    /// The history of an entry field's value across published versions.
    pub fn field_series(&self, key: &str, field: &str) -> Result<Vec<(VersionId, Atom)>, DbError> {
        let path = self
            .entry_key_path(key)
            .child(KeyStep::Field(field.to_owned()));
        Ok(cdb_archive::temporal::series(&self.archive, &path)?)
    }

    /// A deep, in-memory copy of the full curated state — tree,
    /// provenance, log, lifecycle, archive, notes, publish points —
    /// with no durability attached. This is what a
    /// [`crate::shared::Snapshot`] wraps: every read method works on
    /// the copy, and nothing the live database does afterwards can
    /// reach it.
    pub(crate) fn clone_state(&self) -> CuratedDatabase {
        CuratedDatabase {
            curated: self.curated.clone(),
            lifecycle: self.lifecycle.clone(),
            key_field: self.key_field.clone(),
            archive: self.archive.clone(),
            notes: self.notes.clone(),
            publish_points: self.publish_points.clone(),
            wal: None,
            ckpt: None,
            retention: self.retention,
            last_time: self.last_time,
            durability: crate::durable::Durability::Always,
            persisted_txns: 0,
            persisted_events: 0,
            pending_frames: VecDeque::new(),
            recovery: None,
            metrics: self.metrics.clone(),
            decisions: self.decisions.clone(),
            defer_persist: false,
            paged: None,
            indexes: self.indexes.clone(),
        }
    }
}

/// Exports a (possibly replayed) tree as a keyed set of entry records,
/// injecting the secondary identifiers known as of `time`.
pub(crate) fn export_tree(
    tree: &cdb_curation::tree::TreeDb,
    key_field: &str,
    lifecycle: &EntryRegistry,
    time: u64,
) -> Result<Value, DbError> {
    let root = tree.root();
    let mut entries = Vec::new();
    for &child in tree.children(root)? {
        let mut v = tree.subtree_value(child)?;
        if let Value::Record(m) = &mut v {
            if let Some(Value::Atom(Atom::Str(key))) = m.get(key_field).cloned() {
                let secondary = lifecycle.secondary_ids_at(&key, time);
                if !secondary.is_empty() {
                    m.insert(
                        "secondary_ids".to_owned(),
                        Value::set(secondary.into_iter().map(Value::str)),
                    );
                }
            }
        }
        entries.push(v);
    }
    Ok(Value::set(entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CuratedDatabase {
        let mut db = CuratedDatabase::new("iuphar", "name");
        db.add_entry(
            "alice",
            1,
            "GABA-A",
            &[("kind", Atom::Str("receptor".into())), ("tm", Atom::Int(4))],
        )
        .unwrap();
        db.add_entry("bob", 2, "5-HT3", &[("kind", Atom::Str("receptor".into()))])
            .unwrap();
        db
    }

    #[test]
    fn add_edit_read_entries() {
        let mut db = sample();
        assert_eq!(db.entry_keys().unwrap().len(), 2);
        assert_eq!(
            db.field("GABA-A", "kind").unwrap(),
            Atom::Str("receptor".into())
        );
        db.edit_field(
            "carol",
            3,
            "GABA-A",
            "kind",
            Atom::Str("ion channel".into()),
        )
        .unwrap();
        assert_eq!(
            db.field("GABA-A", "kind").unwrap(),
            Atom::Str("ion channel".into())
        );
        assert!(matches!(
            db.field("GABA-A", "nope"),
            Err(DbError::NoSuchField(_, _))
        ));
        assert!(matches!(
            db.add_entry("x", 4, "GABA-A", &[]),
            Err(DbError::DuplicateEntry(_))
        ));
    }

    #[test]
    fn publish_and_time_travel() {
        let mut db = sample();
        let v0 = db.publish("2008-01").unwrap();
        db.edit_field("carol", 3, "GABA-A", "tm", Atom::Int(5))
            .unwrap();
        let v1 = db.publish("2008-02").unwrap();
        let series = db.field_series("GABA-A", "tm").unwrap();
        assert_eq!(series, vec![(v0, Atom::Int(4)), (v1, Atom::Int(5))]);
        // Old version still shows the old value.
        let old = db.version(v0).unwrap();
        let entry = old
            .as_set()
            .unwrap()
            .iter()
            .find(|e| e.field("name") == Some(&Value::str("GABA-A")))
            .unwrap()
            .clone();
        assert_eq!(entry.field("tm"), Some(&Value::int(4)));
    }

    #[test]
    fn citations_credit_curators_and_pin_versions() {
        let mut db = sample();
        let v0 = db.publish("r1").unwrap();
        db.edit_field(
            "carol",
            5,
            "GABA-A",
            "kind",
            Atom::Str("ion channel".into()),
        )
        .unwrap();
        db.publish("r2").unwrap();
        let c = db.cite(v0, "GABA-A").unwrap();
        assert!(c.authors.contains(&"alice".to_string()));
        assert!(c.authors.contains(&"carol".to_string()));
        let resolved = c.resolve(db.archive()).unwrap();
        assert_eq!(resolved.field("kind"), Some(&Value::str("receptor")));
    }

    #[test]
    fn fusion_retires_and_resolves_identifiers() {
        let mut db = sample();
        db.add_entry("alice", 3, "GABA-B", &[("tm", Atom::Int(7))])
            .unwrap();
        db.merge_entries("alice", 4, "GABA-A", "GABA-B").unwrap();
        assert!(matches!(
            db.entry_node("GABA-B"),
            Err(DbError::NoSuchEntry(_))
        ));
        // The retired id resolves to the survivor.
        assert_eq!(db.resolve_id("GABA-B").unwrap(), vec!["GABA-A".to_string()]);
        // Export carries the secondary id.
        let snap = db.export().unwrap();
        let entry = snap
            .as_set()
            .unwrap()
            .iter()
            .find(|e| e.field("name") == Some(&Value::str("GABA-A")))
            .unwrap()
            .clone();
        let secs = entry.field("secondary_ids").unwrap().as_set().unwrap();
        assert!(secs.contains(&Value::str("GABA-B")));
        // Fields missing on the survivor were carried over... GABA-A had
        // no "tm"? It did (4) — so tm is NOT carried. Kind was shared.
        assert_eq!(db.field("GABA-A", "tm").unwrap(), Atom::Int(4));
    }

    /// Retired identifiers stay in the registry forever (§6.2), so
    /// reusing one must be rejected *before* a curation transaction
    /// commits — a committed txn behind a failed lifecycle update is
    /// exactly the state that used to corrupt WAL recovery.
    #[test]
    fn retired_identifiers_cannot_be_reused() {
        let mut db = sample();
        db.delete_entry("alice", 3, "5-HT3").unwrap();
        let log_len = db.curated.log.len();
        assert!(matches!(
            db.add_entry("x", 4, "5-HT3", &[]),
            Err(DbError::Lifecycle(LifecycleError::Duplicate(_)))
        ));
        assert_eq!(db.curated.log.len(), log_len, "no phantom transaction");
        assert!(db.entry_node("5-HT3").is_err(), "no phantom entry");
        // A split onto a retired part name is rejected the same way,
        // leaving the original untouched.
        assert!(matches!(
            db.split_entry("y", 5, "GABA-A", &[("5-HT3", vec![])]),
            Err(DbError::Lifecycle(LifecycleError::Duplicate(_)))
        ));
        assert_eq!(db.curated.log.len(), log_len);
        assert!(db.entry_node("GABA-A").is_ok());
        // The database keeps working after the rejections.
        db.add_entry("x", 6, "5-HT4", &[]).unwrap();
        assert_eq!(db.curated.log.len(), log_len + 1);
    }

    #[test]
    fn fission_splits_with_lineage() {
        let mut db = sample();
        db.split_entry(
            "alice",
            5,
            "GABA-A",
            &[
                ("GABA-A1", vec![("kind", Atom::Str("receptor".into()))]),
                ("GABA-A2", vec![("kind", Atom::Str("receptor".into()))]),
            ],
        )
        .unwrap();
        assert!(db.entry_node("GABA-A").is_err());
        let mut resolved = db.resolve_id("GABA-A").unwrap();
        resolved.sort();
        assert_eq!(resolved, vec!["GABA-A1".to_string(), "GABA-A2".to_string()]);
        let anc = db.lifecycle.how_did_come_about("GABA-A1").unwrap();
        assert_eq!(anc, vec!["GABA-A".to_string()]);
    }

    #[test]
    fn annotations_are_superimposed() {
        let mut db = sample();
        db.annotate("GABA-A", Some("kind"), "carol", "verify against IUPHAR", 9)
            .unwrap();
        db.annotate("GABA-A", None, "dave", "entry looks complete", 10)
            .unwrap();
        assert_eq!(db.notes_on("GABA-A", Some("kind")).len(), 1);
        assert_eq!(db.notes_on("GABA-A", None).len(), 1);
        assert!(db.notes_on("5-HT3", None).is_empty());
        // Annotations do not leak into the published core data (§2: DAS
        // keeps them external).
        db.publish("r").unwrap();
        let snap = db.version(0).unwrap();
        assert!(!format!("{snap}").contains("IUPHAR"));
        // Annotating a missing target fails.
        assert!(db.annotate("nope", None, "x", "y", 1).is_err());
    }

    /// §5.1's open question, answered: the archive rebuilt from the
    /// transaction log retrieves the same versions as the archive built
    /// incrementally at publish time — through edits, annotations (which
    /// must NOT appear), merges and splits.
    #[test]
    fn archive_from_log_matches_live_archive() {
        let mut db = sample();
        db.publish("r0").unwrap();
        db.edit_field(
            "carol",
            3,
            "GABA-A",
            "kind",
            Atom::Str("ion channel".into()),
        )
        .unwrap();
        db.annotate("GABA-A", None, "dave", "superimposed, not core", 4)
            .unwrap();
        db.publish("r1").unwrap();
        db.add_entry("erin", 5, "NMDA", &[("tm", Atom::Int(4))])
            .unwrap();
        db.merge_entries("erin", 6, "GABA-A", "5-HT3").unwrap();
        db.publish("r2").unwrap();
        db.split_entry("erin", 7, "NMDA", &[("NMDA-1", vec![]), ("NMDA-2", vec![])])
            .unwrap();
        db.publish("r3").unwrap();

        let rebuilt = db.archive_from_log().unwrap();
        assert_eq!(rebuilt.version_count(), db.archive().version_count());
        for v in 0..db.archive().version_count() {
            assert_eq!(
                rebuilt.retrieve(v).unwrap(),
                db.archive().retrieve(v).unwrap(),
                "version {v} differs"
            );
            assert_eq!(
                rebuilt.versions()[v as usize].label,
                db.archive().versions()[v as usize].label
            );
        }
    }

    #[test]
    fn import_preserves_cross_database_provenance() {
        let mut src = CuratedDatabase::new("uniprot", "name");
        src.add_entry("upstream", 1, "P1", &[("sq", Atom::Str("GDREQ".into()))])
            .unwrap();
        let node = src.entry_node("P1").unwrap();
        let clip = src.curated.copy(node).unwrap();

        let mut dst = CuratedDatabase::new("mydb", "name");
        let pasted = dst.import_entry("me", 2, "P1", &clip).unwrap();
        let chain = queries::how_arrived(&dst.curated, pasted);
        assert!(chain
            .iter()
            .any(|o| matches!(o, cdb_curation::Origin::CopiedFrom { db, .. } if db == "uniprot")));
        assert_eq!(dst.field("P1", "sq").unwrap(), Atom::Str("GDREQ".into()));
    }
}
