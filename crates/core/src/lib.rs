//! # cdb-core
//!
//! The integrated curated-database engine — the system the paper's §1
//! describes and §7 calls for: one store in which *"the connections
//! between annotation, provenance, updates, archiving, and evolution"*
//! actually connect.
//!
//! A [`CuratedDatabase`] is:
//!
//! * a semistructured working tree curated through transactions with
//!   automatic provenance recording (`cdb-curation`),
//! * an entry [`lifecycle`] registry tracking fission/fusion with
//!   retired identifiers (§6.2's "What happened to X?"),
//! * superimposed [`Note`] annotations (DAS-style, §2), which propagate
//!   into relational [`views`] and back (reverse propagation, §2.2),
//! * a fat-node [`cdb_archive::Archive`] that every [`publish`] merges
//!   into, enabling temporal queries and versioned [`citation`]s (§5),
//! * schema inference over the published versions (`cdb-schema`, §6).
//!
//! [`publish`]: CuratedDatabase::publish
//! [`citation`]: cdb_archive::Citation

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod db;
pub mod durable;
pub mod indexes;
pub mod lifecycle;
pub mod paged;
pub mod sharded;
pub mod shared;
pub mod views;

pub use db::{CuratedDatabase, DbError, Note};
pub use durable::{CheckpointStats, Durability};
pub use indexes::{FieldIndex, FieldIndexes};
pub use lifecycle::{EntryEvent, EntryRegistry, Fate};
pub use sharded::{ShardMap, ShardedDb, ShardedSnapshot};
pub use shared::{SharedDb, Snapshot, DEFAULT_BATCH_WINDOW};

// Re-export the substrate crates under one roof, so downstream users
// depend on `cdb-core` alone.
pub use cdb_annotation as annotation;
pub use cdb_archive as archive;
pub use cdb_curation as curation;
pub use cdb_model as model;
pub use cdb_relalg as relalg;
pub use cdb_schema as schema;
pub use cdb_semiring as semiring;
pub use cdb_storage as storage;
