//! Sharded serving: the database partitioned by hierarchical key range
//! into independent shards, each with its own WAL and checkpoint store.
//!
//! Curated databases grow write traffic with curator head-count, and a
//! single WAL serializes every durability wait behind one device. A
//! [`ShardedDb`] splits the entry space by key range ([`ShardMap`])
//! across N [`SharedDb`] shards:
//!
//! * **Single-shard transactions** (the overwhelming majority: §1's
//!   curation loop edits one entry at a time) route to their shard and
//!   commit under that shard's lock and group-commit WAL only — no
//!   global lock, no cross-shard coordination, write throughput scales
//!   with shards.
//! * **Cross-shard transactions** (fusion/fission across a shard
//!   boundary — §6.2's merge and split) run a lightweight two-phase
//!   commit journaled in *both* participants' WALs as
//!   `FRAME_PREPARE`/`FRAME_DECIDE` records (see [`cdb_storage::twopc`]):
//!
//!   1. apply the op in memory on every participant (under all
//!      participant locks, acquired in shard-index order), with
//!      persistence deferred;
//!   2. seal each shard's WAL frames inside a PREPARE frame, append and
//!      **sync** it on every participant;
//!   3. append and **sync** DECIDE(commit) on the coordinator (the
//!      lowest participant index) — this is the commit point and the
//!      ack gate;
//!   4. append DECIDE on the other participants (synced lazily by their
//!      next group sync — a crash first leaves exactly the in-doubt
//!      window [`cdb_storage::recover_shards`] resolves from the
//!      coordinator's decision record).
//!
//!   Any failure before step 3 completes rolls the in-memory state back
//!   from a pre-taken [`crate::db`] backup and journals DECIDE(abort)
//!   best-effort; recovery presumes abort for undecided PREPAREs, so a
//!   torn abort record is harmless.
//! * **Atomic visibility**: participant snapshots are published while
//!   all participant locks are held, bracketed by a seqlock
//!   ([`ShardedDb::snapshot`] retries while a cross-shard publication
//!   is in flight), so a reader never observes one half of a
//!   cross-shard transaction.
//! * **Recovery** ([`ShardedDb::open`]) runs per-shard recovery in
//!   parallel with a shared decision context: phase one scans every
//!   WAL for decision records (plus decisions carried by checkpoints,
//!   which survive WAL truncation), phase two recovers all shards
//!   concurrently under that fixed context — deterministic and
//!   byte-identical to sequential recovery.
//!
//! Cross-shard *copy-paste* (§3) needs no 2PC: the copy is a snapshot
//! read on the source shard and the paste a single-shard transaction on
//! the destination ([`ShardedDb::copy_paste`]). [`ShardedDb::publish`]
//! fans out per shard and is documented non-atomic across shards.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, MutexGuard};
use std::time::Duration;

use cdb_archive::VersionId;
use cdb_curation::provstore::StoreMode;
use cdb_curation::NodeId;
use cdb_model::Atom;
use cdb_storage::{
    encode_decide, encode_prepare, recover_shards, CheckpointStore, DecideRecord, Io,
    PrepareRecord, StorageError, FRAME_DECIDE, FRAME_PREPARE,
};

use crate::db::{CuratedDatabase, DbError};
use crate::durable::{decode_aux, AuxRecord};
use crate::lifecycle::{EntryEvent, EntryRegistry, Fate, LifecycleError};
use crate::shared::{SharedDb, Snapshot};

/// One shard's durable devices for a paged open: `(WAL device,
/// checkpoint store, page heap)` — see [`ShardedDb::open_paged`].
pub type PagedShardDevices = (Box<dyn Io>, CheckpointStore, Box<dyn Io>);

/// A range partition of the entry key space: `bounds` holds the N−1
/// sorted boundary keys of an N-shard map, and key `k` routes to the
/// number of bounds ≤ `k` (so shard `i` owns `[bounds[i-1], bounds[i])`,
/// with open ends). Range — not hash — partitioning keeps each shard a
/// contiguous hierarchical subtree of the key space, so prefix scans
/// and published versions stay shard-local.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    bounds: Vec<String>,
}

impl ShardMap {
    /// A single-shard map (everything routes to shard 0).
    pub fn single() -> Self {
        ShardMap { bounds: Vec::new() }
    }

    /// An N-shard map with bounds evenly spaced over the printable
    /// ASCII range — a reasonable default for human-assigned entry
    /// keys. Skewed key distributions should use
    /// [`ShardMap::with_bounds`].
    pub fn uniform(n: usize) -> Self {
        assert!(n >= 1, "a shard map needs at least one shard");
        let (lo, hi) = (0x20u32, 0x7fu32);
        let bounds = (1..n as u32)
            .map(|i| {
                char::from_u32(lo + (hi - lo) * i / n as u32)
                    .expect("printable ASCII")
                    .to_string()
            })
            .collect();
        ShardMap { bounds }
    }

    /// A map with explicit boundary keys (must be strictly increasing);
    /// `bounds.len() + 1` shards.
    pub fn with_bounds(bounds: Vec<String>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "shard bounds must be strictly increasing"
        );
        ShardMap { bounds }
    }

    /// The number of shards this map routes across.
    pub fn shards(&self) -> usize {
        self.bounds.len() + 1
    }

    /// The boundary keys.
    pub fn bounds(&self) -> &[String] {
        &self.bounds
    }

    /// The shard owning `key`.
    pub fn route(&self, key: &str) -> usize {
        self.bounds.partition_point(|b| b.as_str() <= key)
    }
}

/// Pre-resolved sharded-layer instruments.
#[derive(Debug)]
struct ShardedInstruments {
    /// Acknowledged single-shard writes, per shard
    /// (`core.sharded.shard.N.writes`).
    shard_writes: Vec<cdb_obs::Counter>,
    /// Committed cross-shard (2PC) transactions.
    cross_commits: cdb_obs::Counter,
    /// Aborted cross-shard transactions (validation or journal failure).
    cross_aborts: cdb_obs::Counter,
    /// Cross-shard transactions currently between lock acquisition and
    /// publication.
    cross_inflight: cdb_obs::Gauge,
    /// Per-participant PREPARE latency (append + sync on one shard's
    /// WAL) — `core.twopc.prepare_ns`.
    twopc_prepare: cdb_obs::HistogramHandle,
    /// Coordinator DECIDE latency (the commit-point sync) —
    /// `core.twopc.decide_ns`.
    twopc_decide: cdb_obs::HistogramHandle,
}

impl ShardedInstruments {
    fn resolve(m: &cdb_obs::Metrics, shards: usize) -> Self {
        ShardedInstruments {
            shard_writes: (0..shards)
                .map(|i| m.counter(&format!("core.sharded.shard.{i}.writes")))
                .collect(),
            cross_commits: m.counter("core.sharded.cross.commits"),
            cross_aborts: m.counter("core.sharded.cross.aborts"),
            cross_inflight: m.gauge("core.sharded.cross.inflight"),
            twopc_prepare: m.histogram("core.twopc.prepare_ns"),
            twopc_decide: m.histogram("core.twopc.decide_ns"),
        }
    }
}

#[derive(Debug)]
struct ShardedInner {
    map: ShardMap,
    shards: Vec<SharedDb>,
    /// Global transaction id allocator for 2PC; seeded past every gid
    /// recovery saw, so a stale decision record can never resolve a new
    /// transaction.
    gid: AtomicU64,
    /// Cross-shard publication seqlock: odd while participant snapshots
    /// are being replaced, bumped to even when all are published.
    xver: AtomicU64,
    metrics: cdb_obs::Metrics,
    instr: ShardedInstruments,
}

/// A cloneable handle to a range-sharded curated database. See the
/// module docs for the commit and visibility protocol.
#[derive(Debug, Clone)]
pub struct ShardedDb {
    inner: Arc<ShardedInner>,
}

/// A cross-shard-coherent set of per-shard snapshots: taken under the
/// publication seqlock, so it never contains one half of a cross-shard
/// transaction.
#[derive(Debug, Clone)]
pub struct ShardedSnapshot {
    map: ShardMap,
    shards: Vec<Snapshot>,
}

impl ShardedSnapshot {
    /// The sum of the per-shard commit epochs — monotone across
    /// successive snapshots from one handle.
    pub fn epoch(&self) -> u64 {
        self.shards.iter().map(Snapshot::epoch).sum()
    }

    /// The per-shard snapshots, in shard order.
    pub fn shards(&self) -> &[Snapshot] {
        &self.shards
    }

    /// The snapshot of one shard.
    pub fn shard(&self, i: usize) -> &Snapshot {
        &self.shards[i]
    }

    /// The snapshot of the shard owning `key`.
    pub fn for_key(&self, key: &str) -> &Snapshot {
        &self.shards[self.map.route(key)]
    }

    /// Reads a field of an entry (routed).
    pub fn field(&self, key: &str, field: &str) -> Result<Atom, DbError> {
        self.for_key(key).field(key, field)
    }

    /// The keys of all current entries, across all shards, in key
    /// order (shards are contiguous ranges, so concatenation sorts).
    pub fn entry_keys(&self) -> Result<Vec<String>, DbError> {
        let mut out = Vec::new();
        for s in &self.shards {
            let mut keys = s.entry_keys()?;
            keys.sort();
            out.append(&mut keys);
        }
        Ok(out)
    }

    /// Resolves an identifier — active or retired — to the current
    /// entries holding its data, following merges and splits *across
    /// shards*: each step of the walk consults every shard's lifecycle
    /// registry (a cross-shard fusion/fission records its event on all
    /// participants, so any one shard may know only its side of a
    /// lineage; the federated walk reassembles it).
    pub fn resolve_id(&self, id: &str) -> Result<Vec<String>, DbError> {
        use std::collections::BTreeSet;
        if !self.shards.iter().any(|s| s.lifecycle.fate(id).is_ok()) {
            return Err(LifecycleError::Unknown(id.to_owned()).into());
        }
        let mut current = BTreeSet::new();
        let mut seen = BTreeSet::new();
        let mut work = vec![id.to_owned()];
        while let Some(x) = work.pop() {
            if !seen.insert(x.clone()) {
                continue;
            }
            for s in &self.shards {
                match s.lifecycle.fate(&x) {
                    Ok(Fate::Active) => {
                        current.insert(x.clone());
                    }
                    Ok(Fate::MergedInto(k)) => work.push(k.clone()),
                    Ok(Fate::SplitInto(ps)) => work.extend(ps.iter().cloned()),
                    Ok(Fate::Deleted) | Err(_) => {}
                }
            }
        }
        Ok(current.into_iter().collect())
    }
}

/// `require_active` over a shard-local registry, with the same error
/// taxonomy as the registry's own checks.
fn require_active(reg: &EntryRegistry, id: &str) -> Result<(), DbError> {
    match reg.fate(id) {
        Ok(Fate::Active) => Ok(()),
        Ok(_) => Err(LifecycleError::NotActive(id.to_owned()).into()),
        Err(e) => Err(e.into()),
    }
}

impl ShardedDb {
    /// An in-memory sharded database (no durability; cross-shard
    /// transactions skip the 2PC journal but keep atomic visibility).
    pub fn new(name: impl Into<String>, key_field: impl Into<String>, map: ShardMap) -> Self {
        let name = name.into();
        let key_field = key_field.into();
        let shards = (0..map.shards())
            .map(|_| SharedDb::new(name.clone(), key_field.clone()))
            .collect();
        Self::assemble(map, shards, 0)
    }

    /// Opens a durable sharded database over one `(WAL device,
    /// checkpoint store)` pair per shard. Recovery is parallel and
    /// 2PC-aware: decision records are gathered from every WAL *and*
    /// every checkpoint first, then all shards recover concurrently
    /// under that shared context (in-doubt PREPAREs commit iff a commit
    /// decision exists anywhere, else abort).
    pub fn open(
        name: impl Into<String>,
        key_field: impl Into<String>,
        map: ShardMap,
        devices: Vec<(Box<dyn Io>, CheckpointStore)>,
        window: Duration,
    ) -> Result<Self, DbError> {
        assert_eq!(
            devices.len(),
            map.shards(),
            "one (WAL, checkpoint) pair per shard"
        );
        let name = name.into();
        let key_field = key_field.into();
        // Phase 0: load checkpoints and harvest the decision records
        // they carry — a checkpoint may have truncated the WAL segments
        // that held the original DECIDE frames.
        let mut extra = BTreeMap::new();
        let mut stores = Vec::with_capacity(devices.len());
        let mut to_recover = Vec::with_capacity(devices.len());
        for (io, mut store) in devices {
            let ck = store.load()?;
            if let Some(ck) = &ck {
                for bytes in &ck.aux {
                    if let AuxRecord::Decision { gid, commit } =
                        decode_aux(bytes).map_err(StorageError::Wire)?
                    {
                        extra.insert(gid, commit);
                    }
                }
            }
            stores.push(store);
            to_recover.push((io, ck));
        }
        // Phases 1–2: parallel decision scan, then parallel recovery
        // under the fixed decision context.
        let recovered = recover_shards(&name, StoreMode::Hereditary, to_recover, &extra)?;
        let mut max_gid = extra.keys().next_back().copied().unwrap_or(0);
        let mut shards = Vec::with_capacity(recovered.len());
        for ((log, rec), store) in recovered.into_iter().zip(stores) {
            max_gid = max_gid.max(rec.max_gid);
            shards.push(SharedDb::from_parts(
                name.clone(),
                key_field.clone(),
                log,
                rec,
                store,
                window,
            )?);
        }
        Ok(Self::assemble(map, shards, max_gid + 1))
    }

    /// Opens a durable sharded database in a directory: shard `i` gets
    /// segmented WAL files `<dir>/<name>.s<i>.wal.*` and checkpoint
    /// `<dir>/<name>.s<i>.ckpt`.
    pub fn open_dir(
        name: impl Into<String>,
        key_field: impl Into<String>,
        map: ShardMap,
        dir: impl AsRef<std::path::Path>,
        window: Duration,
    ) -> Result<Self, DbError> {
        let name = name.into();
        let dir = dir.as_ref();
        let mut devices: Vec<(Box<dyn Io>, CheckpointStore)> = Vec::new();
        for i in 0..map.shards() {
            let part = format!("{name}.s{i}");
            let wal = cdb_storage::SegmentedIo::open_dir(
                dir,
                &part,
                cdb_storage::SegmentConfig::default(),
            )?;
            devices.push((Box::new(wal), CheckpointStore::dir(dir, &part)));
        }
        ShardedDb::open(name, key_field, map, devices, window)
    }

    /// Opens a durable sharded database whose checkpoints are
    /// page-granular — [`ShardedDb::open`] plus a page heap per shard
    /// (see [`SharedDb::open_paged`]): each shard gets a `(WAL device,
    /// checkpoint store, page heap)` triple and a buffer pool of
    /// `pool_pages` frames, so the working set of every shard is
    /// bounded independently. Recovery keeps the 2PC decision-context
    /// protocol of [`ShardedDb::open`]: decisions are harvested from
    /// every checkpoint first, paged anchors are materialized into
    /// full checkpoints (or discarded, forcing WAL replay) per shard,
    /// then all shards recover in parallel under the shared context.
    pub fn open_paged(
        name: impl Into<String>,
        key_field: impl Into<String>,
        map: ShardMap,
        devices: Vec<PagedShardDevices>,
        pool_pages: usize,
        window: Duration,
    ) -> Result<Self, DbError> {
        assert_eq!(
            devices.len(),
            map.shards(),
            "one (WAL, checkpoint, page heap) triple per shard"
        );
        let name = name.into();
        let key_field = key_field.into();
        // Phase 0: load checkpoints, harvest their decision records,
        // and open each shard's page heap — materializing the paged
        // anchor into the effective checkpoint recovery will replay
        // from (`None` when the heap can't back it).
        let mut extra = BTreeMap::new();
        let mut stores = Vec::with_capacity(devices.len());
        let mut paged = Vec::with_capacity(devices.len());
        let mut to_recover = Vec::with_capacity(devices.len());
        for (io, mut store, page_io) in devices {
            let ck = store.load()?;
            if let Some(ck) = &ck {
                for bytes in &ck.aux {
                    if let AuxRecord::Decision { gid, commit } =
                        decode_aux(bytes).map_err(StorageError::Wire)?
                    {
                        extra.insert(gid, commit);
                    }
                }
            }
            let metrics = cdb_obs::Metrics::new();
            let (state, ck_eff, seed) =
                crate::paged::prepare_paged_open(ck, page_io, pool_pages, &metrics)?;
            stores.push(store);
            paged.push((metrics, state, seed));
            to_recover.push((io, ck_eff));
        }
        // Phases 1–2: parallel decision scan, then parallel recovery
        // under the fixed decision context.
        let recovered = recover_shards(&name, StoreMode::Hereditary, to_recover, &extra)?;
        let mut max_gid = extra.keys().next_back().copied().unwrap_or(0);
        let mut shards = Vec::with_capacity(recovered.len());
        for (((log, rec), store), (metrics, state, seed)) in
            recovered.into_iter().zip(stores).zip(paged)
        {
            max_gid = max_gid.max(rec.max_gid);
            let shared = SharedDb::from_parts_with_metrics(
                name.clone(),
                key_field.clone(),
                log,
                rec,
                store,
                window,
                metrics,
            )?;
            shared.lock_db().attach_paged(state, seed);
            shards.push(shared);
        }
        Ok(Self::assemble(map, shards, max_gid + 1))
    }

    fn assemble(map: ShardMap, shards: Vec<SharedDb>, next_gid: u64) -> Self {
        let durable = shards.iter().filter(|s| s.group().is_some()).count();
        assert!(
            durable == 0 || durable == shards.len(),
            "shards must be uniformly durable or uniformly in-memory"
        );
        let metrics = cdb_obs::Metrics::new();
        let instr = ShardedInstruments::resolve(&metrics, shards.len());
        ShardedDb {
            inner: Arc::new(ShardedInner {
                map,
                shards,
                gid: AtomicU64::new(next_gid),
                xver: AtomicU64::new(0),
                metrics,
                instr,
            }),
        }
    }

    /// The shard map.
    pub fn map(&self) -> &ShardMap {
        &self.inner.map
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// A handle to one shard's serving layer (per-shard stats, WAL
    /// introspection, direct single-shard access in tests).
    pub fn shard(&self) -> &[SharedDb] {
        &self.inner.shards
    }

    fn route(&self, key: &str) -> usize {
        self.inner.map.route(key)
    }

    /// A cross-shard-coherent snapshot: retries while a cross-shard
    /// publication is in flight (a short, bounded window — participant
    /// snapshots are cloned under already-held locks).
    pub fn snapshot(&self) -> ShardedSnapshot {
        loop {
            let v1 = self.inner.xver.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let shards: Vec<Snapshot> = self.inner.shards.iter().map(SharedDb::snapshot).collect();
            if self.inner.xver.load(Ordering::Acquire) == v1 {
                return ShardedSnapshot {
                    map: self.inner.map.clone(),
                    shards,
                };
            }
        }
    }

    /// The sum of per-shard commit epochs.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    // ------------------------------------------- single-shard writes

    fn routed<R>(
        &self,
        key: &str,
        op: impl FnOnce(&SharedDb) -> Result<R, DbError>,
    ) -> Result<R, DbError> {
        let s = self.route(key);
        let out = op(&self.inner.shards[s]);
        if out.is_ok() {
            self.inner.instr.shard_writes[s].inc();
        }
        out
    }

    /// Adds a freshly-authored entry on its key's shard.
    pub fn add_entry(
        &self,
        curator: &str,
        time: u64,
        key: &str,
        fields: &[(&str, Atom)],
    ) -> Result<NodeId, DbError> {
        self.routed(key, |s| s.add_entry(curator, time, key, fields))
    }

    /// Imports a copied entry on its key's shard.
    pub fn import_entry(
        &self,
        curator: &str,
        time: u64,
        key: &str,
        clip: &cdb_curation::ops::Clipboard,
    ) -> Result<NodeId, DbError> {
        self.routed(key, |s| s.import_entry(curator, time, key, clip))
    }

    /// Edits (or adds) a field on its entry's shard.
    pub fn edit_field(
        &self,
        curator: &str,
        time: u64,
        key: &str,
        field: &str,
        value: Atom,
    ) -> Result<(), DbError> {
        self.routed(key, |s| s.edit_field(curator, time, key, field, value))
    }

    /// Deletes an entry on its shard.
    pub fn delete_entry(&self, curator: &str, time: u64, key: &str) -> Result<(), DbError> {
        self.routed(key, |s| s.delete_entry(curator, time, key))
    }

    /// Attaches a superimposed annotation on the entry's shard.
    pub fn annotate(
        &self,
        key: &str,
        field: Option<&str>,
        author: &str,
        text: &str,
        time: u64,
    ) -> Result<(), DbError> {
        self.routed(key, |s| s.annotate(key, field, author, text, time))
    }

    /// The §3 copy-paste loop across shards: copy `src_key`'s subtree
    /// from its shard's snapshot (read-only — provenance rides the
    /// clipboard) and import it as `dst_key` on that key's shard. A
    /// single-shard transaction on the destination; no 2PC needed.
    pub fn copy_paste(
        &self,
        curator: &str,
        time: u64,
        src_key: &str,
        dst_key: &str,
    ) -> Result<NodeId, DbError> {
        let snap = self.snapshot();
        let src = snap.for_key(src_key);
        let node = src.entry_node(src_key)?;
        let clip = src.curated.copy(node)?;
        self.import_entry(curator, time, dst_key, &clip)
    }

    /// Publishes every shard's current state as a new archived version,
    /// returning the per-shard version ids. Fan-out, **not** atomic
    /// across shards: a failure part-way leaves earlier shards
    /// published (each publish is durable per shard as usual).
    pub fn publish(&self, label: impl Into<String>) -> Result<Vec<VersionId>, DbError> {
        let label = label.into();
        self.inner
            .shards
            .iter()
            .map(|s| s.publish(label.clone()))
            .collect()
    }

    /// Registers a durable secondary index over `field` on **every**
    /// shard (each shard indexes its own entries; lookups fan out via
    /// the per-shard snapshots). Fan-out, not atomic across shards.
    /// Returns `true` if any shard newly created the index.
    pub fn create_index(&self, field: &str) -> Result<bool, DbError> {
        let mut created = false;
        for s in &self.inner.shards {
            created |= s.create_index(field)?;
        }
        Ok(created)
    }

    /// Drops the secondary index over `field` on every shard. Returns
    /// `true` if any shard had it.
    pub fn drop_index(&self, field: &str) -> Result<bool, DbError> {
        let mut dropped = false;
        for s in &self.inner.shards {
            dropped |= s.drop_index(field)?;
        }
        Ok(dropped)
    }

    // ------------------------------------------- cross-shard commits

    /// Fusion (§6.2), sharded: same-shard pairs delegate to the shard;
    /// cross-shard pairs run the 2PC protocol — fields `absorbed` has
    /// and `kept` lacks are carried onto `kept`'s shard, `absorbed`'s
    /// node is deleted on its shard, and both lifecycle registries
    /// record the fusion (so "what happened to X?" answers on either
    /// side).
    pub fn merge_entries(
        &self,
        curator: &str,
        time: u64,
        kept: &str,
        absorbed: &str,
    ) -> Result<(), DbError> {
        let (ks, os) = (self.route(kept), self.route(absorbed));
        if ks == os {
            return self.routed(kept, |s| s.merge_entries(curator, time, kept, absorbed));
        }
        self.cross_commit(&[ks, os], |guards| {
            let (g0, g1) = guards.split_at_mut(1);
            let (k, a) = (&mut g0[0], &mut g1[0]);
            let kept_node = k.entry_node(kept)?;
            let absorbed_node = a.entry_node(absorbed)?;
            require_active(&k.lifecycle, kept)?;
            require_active(&a.lifecycle, absorbed)?;
            let mut carry: Vec<(String, Option<Atom>)> = Vec::new();
            for &c in a.curated.tree.children(absorbed_node)? {
                let label = a.curated.tree.label(c)?.to_owned();
                if label != a.key_field
                    && k.curated.tree.child_by_label(kept_node, &label)?.is_none()
                {
                    carry.push((label, a.curated.tree.value(c)?.cloned()));
                }
            }
            let event = EntryEvent::Merged {
                kept: kept.to_owned(),
                absorbed: absorbed.to_owned(),
                time,
            };
            let mut t = k.curated.begin(curator, time);
            for (label, value) in carry {
                t.insert(kept_node, label, value)?;
            }
            t.commit();
            k.lifecycle.replay_event(&event);
            let mut t = a.curated.begin(curator, time);
            t.delete(absorbed_node)?;
            t.commit();
            a.lifecycle.replay_event(&event);
            Ok(())
        })
    }

    /// Fission (§6.2), sharded: parts route to their own shards.
    /// All-on-one-shard splits delegate; otherwise every shard gaining
    /// a part creates it in one local transaction, the original's shard
    /// deletes the original, and each registry records its side of the
    /// fission — all under the 2PC protocol.
    pub fn split_entry(
        &self,
        curator: &str,
        time: u64,
        original: &str,
        parts: &[(&str, Vec<(&str, Atom)>)],
    ) -> Result<(), DbError> {
        let os = self.route(original);
        let mut by_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, (key, _)) in parts.iter().enumerate() {
            by_shard.entry(self.route(key)).or_default().push(i);
        }
        if by_shard.keys().all(|&s| s == os) {
            return self.routed(original, |s| s.split_entry(curator, time, original, parts));
        }
        let mut participants: Vec<usize> = by_shard.keys().copied().collect();
        if !participants.contains(&os) {
            participants.push(os);
        }
        let part_keys: Vec<String> = parts.iter().map(|(k, _)| (*k).to_string()).collect();
        self.cross_commit(&participants.clone(), |guards| {
            // Validate everywhere before mutating anywhere.
            let opos = participants.iter().position(|&s| s == os).unwrap();
            guards[opos].entry_node(original)?;
            require_active(&guards[opos].lifecycle, original)?;
            for (pos, &s) in participants.iter().enumerate() {
                for &pi in by_shard.get(&s).map(Vec::as_slice).unwrap_or(&[]) {
                    guards[pos].lifecycle.check_create(parts[pi].0)?;
                }
            }
            for (pos, &s) in participants.iter().enumerate() {
                let g = &mut guards[pos];
                let local: &[usize] = by_shard.get(&s).map(Vec::as_slice).unwrap_or(&[]);
                let original_node = (s == os).then(|| g.entry_node(original)).transpose()?;
                if local.is_empty() && original_node.is_none() {
                    continue;
                }
                let root = g.curated.tree.root();
                let key_field = g.key_field.clone();
                let mut t = g.curated.begin(curator, time);
                for &pi in local {
                    let (key, fields) = &parts[pi];
                    let entry = t.insert(root, "entry", None)?;
                    t.insert(entry, key_field.clone(), Some(Atom::Str((*key).to_owned())))?;
                    for (label, value) in fields {
                        t.insert(entry, (*label).to_owned(), Some(value.clone()))?;
                    }
                }
                if let Some(node) = original_node {
                    t.delete(node)?;
                }
                t.commit();
                for &pi in local {
                    g.lifecycle.replay_event(&EntryEvent::Created {
                        id: parts[pi].0.to_owned(),
                        from_split: Some(original.to_owned()),
                        time,
                    });
                }
                if s == os {
                    g.lifecycle.replay_event(&EntryEvent::Split {
                        original: original.to_owned(),
                        parts: part_keys.clone(),
                        time,
                    });
                }
            }
            Ok(())
        })
    }

    /// The 2PC engine (see the module docs for the protocol and the
    /// crash-safety argument). `participants` are distinct shard
    /// indices; `apply` receives the participant databases, locked, in
    /// the same order, and must either fully apply the transaction or
    /// return `Err` without caring about partial mutations — the engine
    /// rolls back from backups.
    fn cross_commit(
        &self,
        participants: &[usize],
        apply: impl FnOnce(&mut [MutexGuard<'_, CuratedDatabase>]) -> Result<(), DbError>,
    ) -> Result<(), DbError> {
        let _trace = cdb_obs::trace_root();
        let _span = cdb_obs::SpanGuard::enter("core.sharded.cross_commit");
        self.inner.instr.cross_inflight.inc();
        let out = self.cross_commit_inner(participants, apply);
        self.inner.instr.cross_inflight.dec();
        match &out {
            Ok(()) => self.inner.instr.cross_commits.inc(),
            Err(_) => self.inner.instr.cross_aborts.inc(),
        }
        out
    }

    fn cross_commit_inner(
        &self,
        participants: &[usize],
        apply: impl FnOnce(&mut [MutexGuard<'_, CuratedDatabase>]) -> Result<(), DbError>,
    ) -> Result<(), DbError> {
        debug_assert!(participants.len() >= 2);
        // Acquire participant locks in shard-index order (deadlock
        // freedom), then present guards in the caller's order.
        let mut order: Vec<usize> = (0..participants.len()).collect();
        order.sort_by_key(|&p| participants[p]);
        debug_assert!(order
            .windows(2)
            .all(|w| participants[w[0]] != participants[w[1]]));
        let mut acquired: Vec<(usize, MutexGuard<'_, CuratedDatabase>)> = order
            .iter()
            .map(|&p| (p, self.inner.shards[participants[p]].lock_db()))
            .collect();
        acquired.sort_by_key(|&(p, _)| p);
        let mut guards: Vec<MutexGuard<'_, CuratedDatabase>> =
            acquired.into_iter().map(|(_, g)| g).collect();

        let backups: Vec<_> = guards.iter().map(|g| g.backup_for_txn()).collect();
        for g in guards.iter_mut() {
            g.defer_persist = true;
        }
        let applied = apply(&mut guards);
        for g in guards.iter_mut() {
            g.defer_persist = false;
        }
        if let Err(e) = applied {
            for (g, b) in guards.iter_mut().zip(backups) {
                g.restore_from_backup(b);
            }
            return Err(e);
        }
        let frames: Vec<Vec<(u8, Vec<u8>)>> =
            guards.iter_mut().map(|g| g.encode_unpersisted()).collect();

        let gid = self.inner.gid.fetch_add(1, Ordering::Relaxed);
        // The coordinator is the lowest participant index: recovery
        // looks there (and at every decision record) for the outcome.
        let coordinator = *participants.iter().min().unwrap();
        let decided = if self.inner.shards[coordinator].group().is_some() {
            self.journal(participants, &frames, gid, coordinator)
        } else {
            Ok(()) // in-memory: commit is just the publication below
        };
        if let Err(e) = decided {
            // PREPAREs may be durable on some shards; roll the memory
            // back and journal abort decisions best-effort — recovery
            // presumes abort for undecided PREPAREs anyway. A failed
            // decision sync is one of the black-box triggers: snapshot
            // the flight recorder (no-op unless installed).
            let _ = cdb_obs::flight::snap("core.twopc.decision_failed");
            for (g, b) in guards.iter_mut().zip(backups) {
                g.restore_from_backup(b);
            }
            let abort = encode_decide(&DecideRecord { gid, commit: false });
            for (pos, &s) in participants.iter().enumerate() {
                if let Some(group) = self.inner.shards[s].group() {
                    let _ = group.append(FRAME_DECIDE, &abort);
                }
                guards[pos].decisions.insert(gid, false);
            }
            return Err(e.into());
        }
        for g in guards.iter_mut() {
            g.decisions.insert(gid, true);
        }
        // Publish all participants inside the seqlock's odd window:
        // readers retry rather than observe half a transaction.
        self.inner.xver.fetch_add(1, Ordering::AcqRel);
        for (pos, &s) in participants.iter().enumerate() {
            self.inner.shards[s].publish_snapshot(&guards[pos]);
        }
        self.inner.xver.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// The durable half of the protocol: PREPARE (append + sync) on
    /// every participant, then DECIDE(commit) synced on the coordinator
    /// — the commit point — then DECIDE appended (lazily synced) on the
    /// rest. Called with all participant locks held, so per shard the
    /// PREPARE→DECIDE window admits no interleaved frames.
    fn journal(
        &self,
        participants: &[usize],
        frames: &[Vec<(u8, Vec<u8>)>],
        gid: u64,
        coordinator: usize,
    ) -> Result<(), StorageError> {
        let parts_u32: Vec<u32> = participants.iter().map(|&s| s as u32).collect();
        for (pos, &s) in participants.iter().enumerate() {
            let rec = PrepareRecord {
                gid,
                coordinator: coordinator as u32,
                participants: parts_u32.clone(),
                frames: frames[pos].clone(),
            };
            let span = cdb_obs::SpanGuard::with_attr("core.twopc.prepare", s as u64);
            let group = self.inner.shards[s].group().expect("uniformly durable");
            let seq = group.append(FRAME_PREPARE, &encode_prepare(&rec))?;
            group.commit(seq)?;
            self.inner.instr.twopc_prepare.observe(span.elapsed());
        }
        let decide = encode_decide(&DecideRecord { gid, commit: true });
        let span = cdb_obs::SpanGuard::with_attr("core.twopc.decide", coordinator as u64);
        let coord = self.inner.shards[coordinator].group().expect("durable");
        let seq = coord.append(FRAME_DECIDE, &decide)?;
        coord.commit(seq)?; // the commit point: ack gates on this sync
        self.inner.instr.twopc_decide.observe(span.elapsed());
        drop(span);
        for &s in participants {
            if s != coordinator {
                let group = self.inner.shards[s].group().expect("durable");
                let _ = group.append(FRAME_DECIDE, &decide)?;
            }
        }
        Ok(())
    }

    // ---------------------------------------------------- durability

    /// Forces every shard's committed state to durable storage.
    pub fn sync(&self) -> Result<(), DbError> {
        for s in &self.inner.shards {
            s.sync()?;
        }
        Ok(())
    }

    /// Checkpoints every shard (each checkpoint carries the shard's
    /// decision records, so 2PC outcomes survive WAL truncation).
    pub fn checkpoint(&self) -> Result<Vec<crate::durable::CheckpointStats>, DbError> {
        self.inner.shards.iter().map(SharedDb::checkpoint).collect()
    }

    // -------------------------------------------------- observability

    /// The sharded layer's own metric registry (cross-shard counters,
    /// per-shard write counters).
    pub fn metrics(&self) -> &cdb_obs::Metrics {
        &self.inner.metrics
    }

    /// Every metric the sharded database can see: its own registry,
    /// every shard's registry (each prefixed `shard.<i>.` so two
    /// shards' identically-named instruments stay distinguishable —
    /// per-shard WAL sync counts, buffer-pool hit rates), and the
    /// process-global one, merged.
    pub fn metrics_snapshot(&self) -> cdb_obs::MetricsSnapshot {
        let mut snap = self.inner.metrics.snapshot();
        for (i, s) in self.inner.shards.iter().enumerate() {
            snap.merge_prefixed(&format!("shard.{i}."), &s.metrics().snapshot());
        }
        snap.merge(&cdb_obs::global().snapshot());
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_storage::MemIo;

    fn mem_devices(n: usize) -> Vec<(Box<dyn Io>, CheckpointStore)> {
        (0..n)
            .map(|_| {
                (
                    Box::new(MemIo::new()) as Box<dyn Io>,
                    CheckpointStore::mem(),
                )
            })
            .collect()
    }

    fn ab_map() -> ShardMap {
        // Keys < "M" on shard 0, the rest on shard 1.
        ShardMap::with_bounds(vec!["M".into()])
    }

    fn paged_mem_devices(n: usize) -> Vec<PagedShardDevices> {
        (0..n)
            .map(|_| {
                (
                    Box::new(MemIo::new()) as Box<dyn Io>,
                    CheckpointStore::mem(),
                    Box::new(MemIo::new()) as Box<dyn Io>,
                )
            })
            .collect()
    }

    /// Differential smoke: the same curation script against a paged
    /// open (tiny pool, heavy eviction) and a resident open must agree
    /// on every observable — keys, fields, lineage — including across
    /// a mid-script checkpoint (page-granular on one side, full-state
    /// on the other).
    #[test]
    fn paged_open_matches_resident_shards_differentially() {
        let window = Duration::from_micros(50);
        let resident = ShardedDb::open("iuphar", "name", ab_map(), mem_devices(2), window).unwrap();
        let paged =
            ShardedDb::open_paged("iuphar", "name", ab_map(), paged_mem_devices(2), 2, window)
                .unwrap();
        for db in [&resident, &paged] {
            db.add_entry("alice", 1, "GABA-A", &[("tm", Atom::Int(4))])
                .unwrap();
            db.add_entry("bob", 2, "P2X", &[("ligand", Atom::Str("ATP".into()))])
                .unwrap();
            db.merge_entries("carol", 3, "GABA-A", "P2X").unwrap();
            db.copy_paste("dave", 4, "GABA-A", "Z-copy").unwrap();
            db.checkpoint().unwrap();
            db.edit_field("erin", 5, "Z-copy", "tm", Atom::Int(7))
                .unwrap();
            db.sync().unwrap();
        }
        let (r, p) = (resident.snapshot(), paged.snapshot());
        assert_eq!(r.entry_keys().unwrap(), p.entry_keys().unwrap());
        for key in r.entry_keys().unwrap() {
            for field in ["tm", "ligand"] {
                assert_eq!(
                    r.field(&key, field).ok(),
                    p.field(&key, field).ok(),
                    "{key}.{field} diverged between paged and resident"
                );
            }
        }
        assert_eq!(
            r.resolve_id("P2X").unwrap(),
            p.resolve_id("P2X").unwrap(),
            "lineage diverged"
        );
        // The paged side's pool counters surface, shard-prefixed, in
        // the merged snapshot.
        let m = paged.metrics_snapshot();
        assert!(
            m.counters.keys().any(|k| k.starts_with("shard.0.storage.")),
            "expected shard-prefixed storage metrics, got: {:?}",
            m.counters.keys().take(8).collect::<Vec<_>>()
        );
    }

    /// A key exactly equal to a boundary belongs to the *higher* shard:
    /// shard `i` owns `[bounds[i-1], bounds[i])`, half-open on the
    /// right, so every key routes to exactly one shard and adjacent
    /// ranges never overlap.
    #[test]
    fn shard_map_boundary_keys_route_to_the_higher_shard() {
        let m = ShardMap::with_bounds(vec!["b".into(), "m".into(), "t".into()]);
        assert_eq!(m.shards(), 4);
        // Exactly on each bound.
        assert_eq!(m.route("b"), 1);
        assert_eq!(m.route("m"), 2);
        assert_eq!(m.route("t"), 3);
        // One step either side of a bound.
        assert_eq!(m.route("a\u{10FFFF}"), 0, "just below the first bound");
        assert_eq!(m.route("b\u{0}"), 1, "just above the first bound");
        assert_eq!(m.route("lzzz"), 1);
        assert_eq!(m.route("m\u{0}"), 2);
        // Open ends.
        assert_eq!(m.route(""), 0);
        assert_eq!(m.route("\u{10FFFF}"), 3);
    }

    /// A split that leaves a range empty (adjacent bounds with no key
    /// between them in practice) still routes every key to a valid
    /// shard, and only the boundary key itself lands in the pinched
    /// range.
    #[test]
    fn shard_map_empty_ranges_after_split_still_route_validly() {
        // Shard 1 owns exactly ["m", "m\u{0}") — the single key "m".
        let m = ShardMap::with_bounds(vec!["m".into(), "m\u{0}".into()]);
        assert_eq!(m.shards(), 3);
        assert_eq!(m.route("m"), 1);
        assert_eq!(m.route("l"), 0);
        assert_eq!(m.route("m\u{0}"), 2);
        assert_eq!(m.route("ma"), 2);
        for k in ["", "a", "m", "m\u{0}", "ma", "z"] {
            assert!(m.route(k) < m.shards(), "key {k:?} routed out of range");
        }
    }

    /// Hierarchical path keys: a parent path sorts before its
    /// descendants, so a bound on the parent key puts the parent at
    /// the start of the higher shard and every deeper path follows it
    /// — the contiguous-subtree property the range partitioning is
    /// chosen for.
    #[test]
    fn shard_map_routes_deepest_paths_with_their_subtree() {
        let m = ShardMap::with_bounds(vec!["proteins".into(), "species".into()]);
        assert_eq!(m.route("proteins"), 1, "bound key starts its shard");
        assert_eq!(m.route("proteins/Q04917"), 1);
        assert_eq!(m.route("proteins/Q04917/de"), 1);
        assert_eq!(m.route("proteins\u{10FFFF}"), 1);
        assert_eq!(m.route("protein"), 0, "strict prefix sorts lower");
        assert_eq!(m.route("species/human"), 2);
        // Every descendant of a routed key routes to the same shard
        // unless a bound falls inside the subtree.
        for leaf in ["a", "a/b", "a/b/c/d/e"] {
            assert_eq!(m.route(leaf), 0);
        }
    }

    /// `uniform(n)` produces strictly increasing printable bounds and a
    /// monotone routing function covering all n shards.
    #[test]
    fn shard_map_uniform_bounds_are_monotone_and_total() {
        assert_eq!(ShardMap::single().shards(), 1);
        assert_eq!(ShardMap::single().route("anything"), 0);
        for n in 1..12 {
            let m = ShardMap::uniform(n);
            assert_eq!(m.shards(), n);
            assert!(m.bounds().windows(2).all(|w| w[0] < w[1]));
            // Monotone over a sorted key sweep, hitting every shard.
            let mut last = 0;
            let mut seen = std::collections::BTreeSet::new();
            for c in 0x20u8..0x7f {
                let s = m.route(&(c as char).to_string());
                assert!(s >= last, "routing must be monotone in the key");
                assert!(s < n);
                seen.insert(s);
                last = s;
            }
            assert_eq!(seen.len(), n, "uniform({n}) left a shard unreachable");
            // Each bound is the first key of its shard.
            for (i, b) in m.bounds().iter().enumerate() {
                assert_eq!(m.route(b), i + 1);
            }
        }
    }

    #[test]
    fn shard_map_routes_ranges() {
        let m = ShardMap::uniform(4);
        assert_eq!(m.shards(), 4);
        let mut seen = std::collections::BTreeSet::new();
        for k in ["Alanine", "Glycine", "Serine", "Zyxin", "0x", "~tail"] {
            seen.insert(m.route(k));
            assert!(m.route(k) < 4);
        }
        assert!(seen.len() > 1, "uniform map should spread ASCII keys");
        let c = ShardMap::with_bounds(vec!["H".into(), "P".into()]);
        assert_eq!(c.route("Alanine"), 0);
        assert_eq!(c.route("Histidine"), 1);
        assert_eq!(c.route("Proline"), 2);
        assert_eq!(ShardMap::single().route("anything"), 0);
    }

    #[test]
    fn single_shard_writes_route_and_read_back() {
        let db = ShardedDb::new("iuphar", "name", ab_map());
        db.add_entry("alice", 1, "GABA-A", &[("tm", Atom::Int(4))])
            .unwrap();
        db.add_entry("bob", 2, "P2X", &[("tm", Atom::Int(2))])
            .unwrap();
        let snap = db.snapshot();
        assert_eq!(snap.field("GABA-A", "tm").unwrap(), Atom::Int(4));
        assert_eq!(snap.field("P2X", "tm").unwrap(), Atom::Int(2));
        assert_eq!(snap.entry_keys().unwrap(), vec!["GABA-A", "P2X"]);
        // Each write landed on its own shard.
        assert_eq!(snap.shard(0).entry_keys().unwrap(), vec!["GABA-A"]);
        assert_eq!(snap.shard(1).entry_keys().unwrap(), vec!["P2X"]);
    }

    #[test]
    fn cross_shard_merge_carries_fields_and_resolves_on_both_sides() {
        let db = ShardedDb::new("iuphar", "name", ab_map());
        db.add_entry("alice", 1, "GABA-A", &[("tm", Atom::Int(4))])
            .unwrap();
        db.add_entry("bob", 2, "P2X", &[("ligand", Atom::Str("ATP".into()))])
            .unwrap();
        db.merge_entries("carol", 3, "GABA-A", "P2X").unwrap();
        let snap = db.snapshot();
        assert_eq!(
            snap.field("GABA-A", "ligand").unwrap(),
            Atom::Str("ATP".into())
        );
        assert!(snap.field("P2X", "ligand").is_err(), "absorbed is gone");
        assert_eq!(snap.resolve_id("P2X").unwrap(), vec!["GABA-A"]);
        assert_eq!(snap.resolve_id("GABA-A").unwrap(), vec!["GABA-A"]);
    }

    #[test]
    fn cross_shard_split_places_parts_on_their_shards() {
        let db = ShardedDb::new("iuphar", "name", ab_map());
        db.add_entry("alice", 1, "ACh", &[("kind", Atom::Str("both".into()))])
            .unwrap();
        db.split_entry(
            "bob",
            2,
            "ACh",
            &[
                ("AChE", vec![("kind", Atom::Str("enzyme".into()))]),
                ("nAChR", vec![("kind", Atom::Str("receptor".into()))]),
            ],
        )
        .unwrap();
        let snap = db.snapshot();
        assert_eq!(snap.shard(0).entry_keys().unwrap(), vec!["AChE"]);
        assert_eq!(snap.shard(1).entry_keys().unwrap(), vec!["nAChR"]);
        let mut resolved = snap.resolve_id("ACh").unwrap();
        resolved.sort();
        assert_eq!(resolved, vec!["AChE", "nAChR"]);
    }

    #[test]
    fn cross_shard_abort_rolls_both_sides_back() {
        let db = ShardedDb::new("iuphar", "name", ab_map());
        db.add_entry("alice", 1, "GABA-A", &[]).unwrap();
        db.add_entry("bob", 2, "P2X", &[]).unwrap();
        db.delete_entry("bob", 3, "P2X").unwrap();
        let before = db.snapshot();
        // Absorbed is deleted: validation fails on shard 1 after shard
        // 0 was locked; nothing may stick anywhere.
        assert!(db.merge_entries("carol", 4, "GABA-A", "P2X").is_err());
        let after = db.snapshot();
        assert_eq!(after.epoch(), before.epoch(), "no publication on abort");
        assert_eq!(after.entry_keys().unwrap(), vec!["GABA-A"]);
        let m = db.metrics_snapshot();
        assert_eq!(m.counters.get("core.sharded.cross.aborts"), Some(&1));
        assert_eq!(
            m.counters
                .get("core.sharded.cross.commits")
                .copied()
                .unwrap_or(0),
            0
        );
    }

    #[test]
    fn copy_paste_across_shards_preserves_provenance() {
        let db = ShardedDb::new("iuphar", "name", ab_map());
        db.add_entry("alice", 1, "GABA-A", &[("tm", Atom::Int(4))])
            .unwrap();
        db.copy_paste("bob", 2, "GABA-A", "P2X-like").unwrap();
        let snap = db.snapshot();
        assert_eq!(snap.field("P2X-like", "tm").unwrap(), Atom::Int(4));
        assert_eq!(snap.for_key("P2X-like").epoch(), 1);
    }

    #[test]
    fn durable_open_over_mem_devices_journals_cross_commits() {
        let db = ShardedDb::open(
            "iuphar",
            "name",
            ab_map(),
            mem_devices(2),
            Duration::from_micros(50),
        )
        .unwrap();
        db.add_entry("alice", 1, "GABA-A", &[]).unwrap();
        db.add_entry("bob", 2, "P2X", &[("ligand", Atom::Str("ATP".into()))])
            .unwrap();
        db.merge_entries("carol", 3, "GABA-A", "P2X").unwrap();
        db.sync().unwrap();
        // The 2PC frames landed in both shards' WALs.
        for s in db.shard() {
            assert!(s.wal_len().unwrap() > 0);
        }
        let m = db.metrics_snapshot();
        assert_eq!(m.counters.get("core.sharded.cross.commits"), Some(&1));
    }

    #[test]
    fn durable_cross_shard_commit_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("cdb-sharded-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let window = Duration::from_micros(50);
        {
            let db = ShardedDb::open_dir("iuphar", "name", ab_map(), &dir, window).unwrap();
            db.add_entry("alice", 1, "GABA-A", &[]).unwrap();
            db.add_entry("bob", 2, "P2X", &[("ligand", Atom::Str("ATP".into()))])
                .unwrap();
            db.merge_entries("carol", 3, "GABA-A", "P2X").unwrap();
            db.split_entry("dave", 4, "GABA-A", &[("A1", vec![]), ("Z9", vec![])])
                .unwrap();
            db.sync().unwrap();
        }
        let db = ShardedDb::open_dir("iuphar", "name", ab_map(), &dir, window).unwrap();
        let snap = db.snapshot();
        assert_eq!(snap.entry_keys().unwrap(), vec!["A1", "Z9"]);
        // The merged-then-split lineage resolves through both hops.
        assert_eq!(snap.resolve_id("P2X").unwrap(), vec!["A1", "Z9"]);
        assert_eq!(snap.resolve_id("GABA-A").unwrap(), vec!["A1", "Z9"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
