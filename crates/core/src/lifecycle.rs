//! Entry lifecycle: fission, fusion, and retired identifiers (§6.2).
//!
//! > "To deal with this phenomenon, UniProt introduces and 'retires'
//! > object identifiers, but records the retired identifiers along with
//! > the new, primary, identifier. … Given that fission and fusion are
//! > so fundamental to the evolution of databases, they deserve better
//! > treatment in data models, which should support, at least,
//! > provenance queries of the general form: 'What happened to X?' or
//! > 'How did Y come about?'"
//!
//! The [`EntryRegistry`] is that better treatment: a complete event
//! graph over entry identifiers, answering both questions exactly.

use std::collections::BTreeMap;
use std::fmt;

/// What ultimately became of an identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fate {
    /// Still the primary identifier of a live entry.
    Active,
    /// Merged into another entry; this identifier is retired but
    /// recorded as secondary on the survivor.
    MergedInto(String),
    /// Split into several successor entries.
    SplitInto(Vec<String>),
    /// Deleted outright.
    Deleted,
}

/// A lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryEvent {
    /// The identifier was created (optionally from a split of another).
    Created {
        /// The new identifier.
        id: String,
        /// The predecessor it split from, if any.
        from_split: Option<String>,
        /// Logical time.
        time: u64,
    },
    /// `absorbed` was merged into `kept`.
    Merged {
        /// The surviving identifier.
        kept: String,
        /// The retired identifier.
        absorbed: String,
        /// Logical time.
        time: u64,
    },
    /// `original` split into `parts`.
    Split {
        /// The retired identifier.
        original: String,
        /// The successors.
        parts: Vec<String>,
        /// Logical time.
        time: u64,
    },
    /// The identifier was deleted.
    Deleted {
        /// The deleted identifier.
        id: String,
        /// Logical time.
        time: u64,
    },
}

/// Lifecycle errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LifecycleError {
    /// The identifier is unknown.
    Unknown(String),
    /// The identifier is not active (already retired/deleted).
    NotActive(String),
    /// The identifier already exists.
    Duplicate(String),
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::Unknown(id) => write!(f, "unknown entry id {id:?}"),
            LifecycleError::NotActive(id) => write!(f, "entry id {id:?} is not active"),
            LifecycleError::Duplicate(id) => write!(f, "entry id {id:?} already exists"),
        }
    }
}

impl std::error::Error for LifecycleError {}

/// The identifier registry: every id ever issued, its fate, and the full
/// event log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EntryRegistry {
    fates: BTreeMap<String, Fate>,
    events: Vec<EntryEvent>,
}

impl EntryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        EntryRegistry::default()
    }

    /// Whether the identifier is currently active.
    pub fn is_active(&self, id: &str) -> bool {
        matches!(self.fates.get(id), Some(Fate::Active))
    }

    /// The fate of an identifier.
    pub fn fate(&self, id: &str) -> Result<&Fate, LifecycleError> {
        self.fates
            .get(id)
            .ok_or_else(|| LifecycleError::Unknown(id.to_owned()))
    }

    /// All events, in order.
    pub fn events(&self) -> &[EntryEvent] {
        &self.events
    }

    /// Requires `id` to be active, reporting why when it is not.
    fn require_active(&self, id: &str) -> Result<(), LifecycleError> {
        if self.is_active(id) {
            Ok(())
        } else if self.fates.contains_key(id) {
            Err(LifecycleError::NotActive(id.to_owned()))
        } else {
            Err(LifecycleError::Unknown(id.to_owned()))
        }
    }

    /// Whether [`EntryRegistry::create`] would accept `id`. Identifiers
    /// are never reissued (§6.2: retired ids stay resolvable forever),
    /// so a previously deleted/merged/split id is a `Duplicate` even
    /// though no live entry carries it. Callers that pair a registry
    /// update with another mutation (e.g. a curation transaction) must
    /// check *before* committing the other mutation.
    pub fn check_create(&self, id: &str) -> Result<(), LifecycleError> {
        if self.fates.contains_key(id) {
            return Err(LifecycleError::Duplicate(id.to_owned()));
        }
        Ok(())
    }

    /// Whether [`EntryRegistry::merge`] would accept this fusion.
    pub fn check_merge(&self, kept: &str, absorbed: &str) -> Result<(), LifecycleError> {
        self.require_active(kept)?;
        self.require_active(absorbed)
    }

    /// Whether [`EntryRegistry::split`] would accept this fission.
    pub fn check_split(&self, original: &str, parts: &[String]) -> Result<(), LifecycleError> {
        self.require_active(original)?;
        for p in parts {
            if self.fates.contains_key(p) {
                return Err(LifecycleError::Duplicate(p.clone()));
            }
        }
        Ok(())
    }

    /// Whether [`EntryRegistry::delete`] would accept this deletion.
    pub fn check_delete(&self, id: &str) -> Result<(), LifecycleError> {
        self.require_active(id)
    }

    /// Registers a fresh identifier.
    pub fn create(&mut self, id: impl Into<String>, time: u64) -> Result<(), LifecycleError> {
        let id = id.into();
        self.check_create(&id)?;
        self.fates.insert(id.clone(), Fate::Active);
        self.events.push(EntryEvent::Created {
            id,
            from_split: None,
            time,
        });
        Ok(())
    }

    /// Records a fusion: `absorbed` is retired into `kept`.
    pub fn merge(&mut self, kept: &str, absorbed: &str, time: u64) -> Result<(), LifecycleError> {
        self.check_merge(kept, absorbed)?;
        self.fates
            .insert(absorbed.to_owned(), Fate::MergedInto(kept.to_owned()));
        self.events.push(EntryEvent::Merged {
            kept: kept.to_owned(),
            absorbed: absorbed.to_owned(),
            time,
        });
        Ok(())
    }

    /// Records a fission: `original` is retired; `parts` are created.
    pub fn split(
        &mut self,
        original: &str,
        parts: &[String],
        time: u64,
    ) -> Result<(), LifecycleError> {
        self.check_split(original, parts)?;
        self.fates
            .insert(original.to_owned(), Fate::SplitInto(parts.to_vec()));
        for p in parts {
            self.fates.insert(p.clone(), Fate::Active);
            self.events.push(EntryEvent::Created {
                id: p.clone(),
                from_split: Some(original.to_owned()),
                time,
            });
        }
        self.events.push(EntryEvent::Split {
            original: original.to_owned(),
            parts: parts.to_vec(),
            time,
        });
        Ok(())
    }

    /// Records a deletion.
    pub fn delete(&mut self, id: &str, time: u64) -> Result<(), LifecycleError> {
        self.check_delete(id)?;
        self.fates.insert(id.to_owned(), Fate::Deleted);
        self.events.push(EntryEvent::Deleted {
            id: id.to_owned(),
            time,
        });
        Ok(())
    }

    /// Re-applies one recorded event during crash recovery. Events
    /// must be replayed in their original order; each call updates the
    /// fate map exactly as the original operation did and re-appends
    /// the event. (A `Split` relies on its parts' `Created` events —
    /// which the original operation also emitted — for the parts'
    /// `Active` fates.)
    pub fn replay_event(&mut self, event: &EntryEvent) {
        match event {
            EntryEvent::Created { id, .. } => {
                self.fates.insert(id.clone(), Fate::Active);
            }
            EntryEvent::Merged { kept, absorbed, .. } => {
                self.fates
                    .insert(absorbed.clone(), Fate::MergedInto(kept.clone()));
            }
            EntryEvent::Split {
                original, parts, ..
            } => {
                self.fates
                    .insert(original.clone(), Fate::SplitInto(parts.clone()));
            }
            EntryEvent::Deleted { id, .. } => {
                self.fates.insert(id.clone(), Fate::Deleted);
            }
        }
        self.events.push(event.clone());
    }

    /// "What happened to X?" — follows merges and splits forward to the
    /// set of *currently active* identifiers descending from `id`
    /// (empty if the line died out), plus the trail of events involved.
    pub fn what_happened_to(
        &self,
        id: &str,
    ) -> Result<(Vec<String>, Vec<&EntryEvent>), LifecycleError> {
        self.fate(id)?;
        let mut current = Vec::new();
        let mut trail = Vec::new();
        let mut work = vec![id.to_owned()];
        let mut seen = std::collections::BTreeSet::new();
        while let Some(x) = work.pop() {
            if !seen.insert(x.clone()) {
                continue;
            }
            match self.fates.get(&x) {
                Some(Fate::Active) => current.push(x.clone()),
                Some(Fate::MergedInto(k)) => work.push(k.clone()),
                Some(Fate::SplitInto(ps)) => work.extend(ps.iter().cloned()),
                Some(Fate::Deleted) | None => {}
            }
            for e in &self.events {
                let involved = match e {
                    EntryEvent::Merged { absorbed, .. } => absorbed == &x,
                    EntryEvent::Split { original, .. } => original == &x,
                    EntryEvent::Deleted { id, .. } => id == &x,
                    EntryEvent::Created { .. } => false,
                };
                if involved && !trail.iter().any(|t: &&EntryEvent| std::ptr::eq(*t, e)) {
                    trail.push(e);
                }
            }
        }
        current.sort();
        Ok((current, trail))
    }

    /// "How did Y come about?" — follows provenance backward to the
    /// roots: all retired/ancestor identifiers that contributed to `id`.
    pub fn how_did_come_about(&self, id: &str) -> Result<Vec<String>, LifecycleError> {
        self.fate(id)?;
        let mut ancestors = Vec::new();
        let mut work = vec![id.to_owned()];
        let mut seen = std::collections::BTreeSet::new();
        while let Some(x) = work.pop() {
            if !seen.insert(x.clone()) {
                continue;
            }
            // Who merged into x?
            for e in &self.events {
                match e {
                    EntryEvent::Merged { kept, absorbed, .. } if kept == &x => {
                        ancestors.push(absorbed.clone());
                        work.push(absorbed.clone());
                    }
                    EntryEvent::Created {
                        id: cid,
                        from_split: Some(orig),
                        ..
                    } if cid == &x => {
                        ancestors.push(orig.clone());
                        work.push(orig.clone());
                    }
                    _ => {}
                }
            }
        }
        ancestors.sort();
        ancestors.dedup();
        Ok(ancestors)
    }

    /// The retired (secondary) identifiers that resolve to `id` — the
    /// UniProt secondary-accession list.
    pub fn secondary_ids(&self, id: &str) -> Vec<String> {
        self.secondary_ids_at(id, u64::MAX)
    }

    /// The secondary identifiers of `id` *as of* logical time `time`
    /// (merges recorded later are invisible). Used by log replay to
    /// reconstruct historical published versions exactly.
    pub fn secondary_ids_at(&self, id: &str, time: u64) -> Vec<String> {
        let mut out: Vec<String> = self
            .events
            .iter()
            .filter_map(|e| match e {
                EntryEvent::Merged {
                    kept,
                    absorbed,
                    time: t,
                } if kept == id && *t <= time => Some(absorbed.clone()),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_merge_split_delete() {
        let mut r = EntryRegistry::new();
        r.create("A", 1).unwrap();
        r.create("B", 1).unwrap();
        r.merge("A", "B", 2).unwrap();
        assert!(r.is_active("A"));
        assert!(!r.is_active("B"));
        assert_eq!(r.fate("B").unwrap(), &Fate::MergedInto("A".into()));
        r.split("A", &["A1".into(), "A2".into()], 3).unwrap();
        assert!(r.is_active("A1") && r.is_active("A2"));
        r.delete("A2", 4).unwrap();
        assert_eq!(r.fate("A2").unwrap(), &Fate::Deleted);
    }

    #[test]
    fn what_happened_to_follows_chains() {
        let mut r = EntryRegistry::new();
        r.create("X", 1).unwrap();
        r.create("Y", 1).unwrap();
        r.merge("Y", "X", 2).unwrap(); // X → Y
        r.split("Y", &["Y1".into(), "Y2".into()], 3).unwrap();
        r.delete("Y2", 4).unwrap();
        let (current, trail) = r.what_happened_to("X").unwrap();
        assert_eq!(current, vec!["Y1".to_string()]);
        assert!(trail.len() >= 3, "merge, split, delete all on the trail");
    }

    #[test]
    fn how_did_come_about_collects_ancestry() {
        let mut r = EntryRegistry::new();
        r.create("A", 1).unwrap();
        r.create("B", 1).unwrap();
        r.merge("A", "B", 2).unwrap();
        r.split("A", &["C".into()], 3).unwrap();
        let anc = r.how_did_come_about("C").unwrap();
        assert_eq!(anc, vec!["A".to_string(), "B".to_string()]);
    }

    #[test]
    fn secondary_ids_list_retired_accessions() {
        let mut r = EntryRegistry::new();
        r.create("A", 1).unwrap();
        r.create("B", 1).unwrap();
        r.create("C", 1).unwrap();
        r.merge("A", "B", 2).unwrap();
        r.merge("A", "C", 3).unwrap();
        assert_eq!(r.secondary_ids("A"), vec!["B".to_string(), "C".to_string()]);
        assert!(r.secondary_ids("B").is_empty());
    }

    #[test]
    fn errors_on_bad_operations() {
        let mut r = EntryRegistry::new();
        r.create("A", 1).unwrap();
        assert!(matches!(
            r.create("A", 2),
            Err(LifecycleError::Duplicate(_))
        ));
        assert!(matches!(
            r.merge("A", "Z", 2),
            Err(LifecycleError::Unknown(_))
        ));
        r.delete("A", 3).unwrap();
        assert!(matches!(
            r.delete("A", 4),
            Err(LifecycleError::NotActive(_))
        ));
        assert!(matches!(
            r.split("A", &["B".into()], 5),
            Err(LifecycleError::NotActive(_))
        ));
    }

    #[test]
    fn replaying_the_event_log_reconstructs_the_registry() {
        let mut r = EntryRegistry::new();
        r.create("A", 1).unwrap();
        r.create("B", 1).unwrap();
        r.merge("A", "B", 2).unwrap();
        r.split("A", &["A1".into(), "A2".into()], 3).unwrap();
        r.delete("A2", 4).unwrap();
        let mut rebuilt = EntryRegistry::new();
        for e in r.events() {
            rebuilt.replay_event(e);
        }
        assert_eq!(rebuilt, r);
    }

    #[test]
    fn dead_lines_report_empty_current() {
        let mut r = EntryRegistry::new();
        r.create("A", 1).unwrap();
        r.delete("A", 2).unwrap();
        let (current, trail) = r.what_happened_to("A").unwrap();
        assert!(current.is_empty());
        assert_eq!(trail.len(), 1);
    }
}
