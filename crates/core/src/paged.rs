//! Page-granular checkpointing: the paged backing store behind
//! [`CuratedDatabase`].
//!
//! A database opened with [`CuratedDatabase::open_paged`] keeps a
//! third device besides the WAL and the checkpoint store: a page heap
//! (see `cdb_storage::page`) holding the tree arena, per-node
//! provenance records, and archive snapshot fat-nodes as chunked
//! objects behind a buffer pool. Checkpoints then stop serializing
//! the whole state: they write only the pages of objects *dirtied
//! since the last anchor*, flush the heap, and install a small v3
//! anchor checkpoint carrying a [`PagedRef`] watermark instead of the
//! tree body.
//!
//! The crash argument, in order:
//!
//! 1. the WAL sync happens first — the watermark the anchor claims is
//!    durable before anything else moves;
//! 2. dirty pages are appended (never overwritten) and the heap is
//!    flushed *before* the anchor installs, so a durable anchor always
//!    references a durable heap prefix; a crash mid-capture leaves the
//!    previous anchor pointing at its own intact prefix;
//! 3. the anchor install is the existing two-slot / rename protocol —
//!    crash-atomic on its own;
//! 4. only after the install does WAL retirement run.
//!
//! If an anchor ever references heap bytes that did not survive (a
//! lying disk), recovery falls back to full WAL replay — the WAL stays
//! authoritative, which is exactly what
//! `crates/storage/tests/buffer_faults.rs` drives at every byte
//! offset.
//!
//! Dirty tracking is log-positional: the backing remembers the
//! in-memory log length at the last capture and derives the dirty
//! object set from the transactions after it (insert/modify/paste
//! touch the node and its parent; delete tombstones a whole subtree,
//! walked through raw links because the live-only API can no longer
//! see it), plus every arena slot allocated since. After recovery the
//! seed is an explicit diff of the materialized anchor state against
//! the replayed state, so tail-replayed effects are recaptured without
//! rewriting the whole heap.

use std::collections::BTreeSet;

use cdb_curation::provstore::StoreMode;
use cdb_curation::wire::{self, Checkpoint, PagedRef};
use cdb_curation::CurationOp;
use cdb_storage::{recover, BufferStats, CheckpointStore, Io, PagedState, StorageError};

use crate::db::{CuratedDatabase, DbError};
use crate::durable::WalRef;

/// The paged backing store plus its dirty-tracking cursors.
#[derive(Debug)]
pub(crate) struct PagedBacking {
    /// The page heap behind its buffer pool.
    pub(crate) state: PagedState<Box<dyn Io>>,
    /// In-memory log length at the last successful capture: dirty
    /// objects are derived from the transactions after this prefix.
    clean_txns: usize,
    /// Arena length at the last successful capture: every slot at or
    /// past it is new and captured wholesale.
    clean_arena: usize,
    /// Published versions whose snapshot fat-nodes are captured.
    clean_versions: usize,
    /// Explicitly-seeded stale objects (recovery diff, or capture
    /// retries after a failed checkpoint). Cleared only when a capture
    /// fully succeeds.
    dirty: BTreeSet<usize>,
}

/// What [`prepare_paged_open`] hands back: the opened page state, the
/// effective checkpoint for recovery (`None` forces full WAL replay),
/// and the anchor seed for dirty-diff tracking.
pub(crate) type PreparedOpen = (
    PagedState<Box<dyn Io>>,
    Option<Checkpoint>,
    Option<AnchorSeed>,
);

/// Anchor-time state kept aside during a paged open, to seed dirty
/// tracking by diffing against the post-replay state.
pub(crate) struct AnchorSeed {
    tree: cdb_curation::TreeDb,
    prov: cdb_curation::ProvStore,
    versions: usize,
}

impl CuratedDatabase {
    /// Opens a durable database whose checkpoints are page-granular:
    /// `wal_io` and `ckpt` work exactly as in
    /// [`CuratedDatabase::open`], and `page_io` holds the page heap
    /// served through a pool of `pool_pages` frames.
    ///
    /// Recovery first tries the newest checkpoint anchor: if it
    /// carries a [`PagedRef`] whose heap prefix survived, the tree /
    /// provenance / snapshots are materialized from pages and handed
    /// to the ordinary recovery path (the `replay_and_verify` oracle
    /// runs unchanged against the materialized state). If the heap
    /// cannot serve the anchor, recovery falls back to full WAL
    /// replay — the WAL stays authoritative.
    pub fn open_paged(
        name: impl Into<String>,
        key_field: impl Into<String>,
        wal_io: Box<dyn Io>,
        mut ckpt: CheckpointStore,
        page_io: Box<dyn Io>,
        pool_pages: usize,
    ) -> Result<Self, DbError> {
        let name = name.into();
        let metrics = cdb_obs::Metrics::new();
        let anchor = ckpt.load()?;
        let (state, ck_eff, seed) = prepare_paged_open(anchor, page_io, pool_pages, &metrics)?;
        let (log, rec) = recover(&name, StoreMode::Hereditary, wal_io, ck_eff)?;
        let mut db = Self::from_recovered_with_metrics(
            name,
            key_field,
            rec,
            WalRef::Owned(log),
            ckpt,
            metrics,
        )?;
        db.attach_paged(state, seed);
        Ok(db)
    }

    /// Wires a paged backing onto a just-recovered database, seeding
    /// dirty tracking. With an anchor seed, only objects the tail
    /// replay actually changed are marked; without one (fresh heap,
    /// fallback recovery, migration) everything is dirty and the first
    /// capture writes the full state.
    pub(crate) fn attach_paged(
        &mut self,
        state: PagedState<Box<dyn Io>>,
        seed: Option<AnchorSeed>,
    ) {
        let mut backing = PagedBacking {
            state,
            clean_txns: self.curated.log.len(),
            clean_arena: 0,
            clean_versions: 0,
            dirty: BTreeSet::new(),
        };
        if let Some(seed) = seed {
            let anchor_arena = wire::arena_len(&seed.tree);
            let now_arena = wire::arena_len(&self.curated.tree);
            backing.clean_arena = anchor_arena.min(now_arena);
            for i in 0..backing.clean_arena {
                let node_changed = wire::encode_tree_node(&seed.tree, i)
                    != wire::encode_tree_node(&self.curated.tree, i);
                let prov_changed = wire::direct_prov_records(&seed.prov, i)
                    != wire::direct_prov_records(&self.curated.prov, i);
                if node_changed || prov_changed {
                    backing.dirty.insert(i);
                }
            }
            backing.clean_versions = seed.versions.min(self.archive.version_count() as usize);
        }
        self.paged = Some(backing);
    }

    /// Whether this instance checkpoints through a paged backing.
    pub fn is_paged(&self) -> bool {
        self.paged.is_some()
    }

    /// Buffer-pool statistics of the paged backing, when present.
    pub fn paged_stats(&self) -> Option<BufferStats> {
        self.paged.as_ref().map(|b| b.state.stats())
    }

    /// Captures every dirty object into the page heap and flushes it,
    /// returning the anchor reference for the checkpoint about to
    /// install. Cursors advance only on full success: a failed capture
    /// leaves every object marked dirty for the next attempt.
    pub(crate) fn capture_paged(&mut self) -> Result<PagedRef, DbError> {
        let mut backing = self
            .paged
            .take()
            .expect("capture_paged is only called on paged databases");
        let result = capture_into(&mut backing, self);
        let pages = backing.dirty.len() as u64;
        self.paged = Some(backing);
        let pref = result?;
        // Success: advance the cursors and clear the dirty set.
        let backing = self.paged.as_mut().expect("reinstalled above");
        backing.clean_txns = self.curated.log.len();
        backing.clean_arena = wire::arena_len(&self.curated.tree);
        backing.clean_versions = self.archive.version_count() as usize;
        backing.dirty.clear();
        self.metrics.counter("storage.page.captured").add(pages);
        self.metrics
            .gauge("storage.page.heap_bytes")
            .set(backing.state.heap_len());
        Ok(pref)
    }
}

/// Derives the dirty object set from the log suffix, captures it plus
/// new snapshots, and flushes the heap. On entry `backing.dirty` may
/// already hold seeds; on exit it holds the full set that was (or
/// failed to be) captured.
fn capture_into(backing: &mut PagedBacking, db: &CuratedDatabase) -> Result<PagedRef, DbError> {
    let tree = &db.curated.tree;
    let arena = wire::arena_len(tree);
    let clean_txns = backing.clean_txns.min(db.curated.log.len());
    let clean_arena = backing.clean_arena.min(arena);
    for txn in &db.curated.log[clean_txns..] {
        for op in &txn.ops {
            match op {
                CurationOp::Insert { node, parent, .. }
                | CurationOp::Paste { node, parent, .. } => {
                    backing.dirty.insert(node.index());
                    backing.dirty.insert(parent.index());
                }
                CurationOp::Modify { node, .. } => {
                    backing.dirty.insert(node.index());
                }
                CurationOp::Delete { node } => {
                    // The deletion unlinked `node` from its parent's
                    // child list and tombstoned the whole subtree;
                    // walk it through raw links (the live-only API
                    // refuses to see dead nodes).
                    if let Some((Some(p), _, _)) = wire::node_links(tree, node.index()) {
                        backing.dirty.insert(p);
                    }
                    let mut stack = vec![node.index()];
                    while let Some(i) = stack.pop() {
                        backing.dirty.insert(i);
                        if let Some((_, children, _)) = wire::node_links(tree, i) {
                            stack.extend(children);
                        }
                    }
                }
            }
        }
    }
    backing.dirty.extend(clean_arena..arena);
    for &i in &backing.dirty {
        if i >= arena {
            // A rolled-back 2PC transaction can shrink nothing today
            // (arena ids are never reused), but stay defensive.
            continue;
        }
        backing.state.capture_node(tree, i)?;
        backing.state.capture_prov(&db.curated.prov, i)?;
    }
    let count = db.archive.version_count() as usize;
    for v in backing.clean_versions.min(count)..count {
        let val = db.archive.retrieve(v as u32)?;
        backing
            .state
            .capture_snapshot(v, &cdb_archive::codec::encode_value(&val))?;
    }
    // The heap must be durable before the anchor that references it.
    backing.state.flush()?;
    Ok(PagedRef {
        heap_len: backing.state.heap_len(),
        arena_len: arena as u64,
        root: tree.root().index() as u64,
    })
}

/// Opens the page heap and, when the newest anchor is paged and its
/// heap prefix survived, rebuilds the full checkpoint it stands for —
/// the front half of every paged open ([`CuratedDatabase::open_paged`]
/// and `SharedDb::open_paged` share it). Returns the opened state, the
/// checkpoint to hand to `recover` (`None` forces full WAL replay),
/// and the anchor seed for dirty-diff tracking.
pub(crate) fn prepare_paged_open(
    anchor: Option<Checkpoint>,
    page_io: Box<dyn Io>,
    pool_pages: usize,
    metrics: &cdb_obs::Metrics,
) -> Result<PreparedOpen, DbError> {
    let mut seed: Option<AnchorSeed> = None;
    let (state, ck_eff) = match anchor {
        Some(ck) => match ck.paged {
            Some(pref) => {
                let mut state =
                    PagedState::open(page_io, pool_pages, Some(pref.heap_len), metrics)?;
                if state.heap_len() >= pref.heap_len {
                    match materialize_anchor(&mut state, &ck, pref) {
                        Ok(full) => {
                            seed = Some(AnchorSeed {
                                tree: full.tree.clone(),
                                prov: full.prov.clone(),
                                versions: full.snapshots.len(),
                            });
                            (state, Some(full))
                        }
                        Err(_) => {
                            metrics.counter("storage.page.anchor_unusable").inc();
                            (state, None)
                        }
                    }
                } else {
                    // The heap lost bytes the anchor claims (torn
                    // below the watermark): the anchor is unusable;
                    // replay the whole WAL.
                    metrics.counter("storage.page.anchor_unusable").inc();
                    (state, None)
                }
            }
            // A non-paged checkpoint (migration from a classic
            // database): use it as-is; the heap starts cold and the
            // first capture writes everything.
            None => (
                PagedState::open(page_io, pool_pages, None, metrics)?,
                Some(ck),
            ),
        },
        None => (PagedState::open(page_io, pool_pages, None, metrics)?, None),
    };
    Ok((state, ck_eff, seed))
}

/// Rebuilds the full checkpoint an anchor stands for by materializing
/// tree, provenance, and snapshots from the page heap.
fn materialize_anchor(
    state: &mut PagedState<Box<dyn Io>>,
    anchor: &Checkpoint,
    pref: PagedRef,
) -> Result<Checkpoint, StorageError> {
    let tree = state.materialize_tree(anchor.tree.name(), pref.root, pref.arena_len)?;
    let prov = state.materialize_prov(anchor.prov.mode(), pref.arena_len)?;
    let snapshots = state.materialize_snapshots(anchor.publishes.len())?;
    let mut full = anchor.clone();
    full.tree = tree;
    full.prov = prov;
    full.snapshots = snapshots;
    full.paged = None;
    Ok(full)
}
