//! The concurrent serving layer: snapshot-isolated readers over a
//! group-committed writer path.
//!
//! Curated databases are read-mostly (§1, §5 of the paper: a handful
//! of curators write, everyone else queries the published versions),
//! so the serving layer is built around that asymmetry:
//!
//! * **Readers** call [`SharedDb::snapshot`] and get an immutable
//!   [`Snapshot`] — a frozen copy of the entire curated state (tree,
//!   provenance, transaction log, lifecycle registry, archive, notes).
//!   Every read — queries, provenance lookups, archive citations,
//!   version retrieval, annotation reads — runs against the snapshot
//!   with **no locks at all**; taking the snapshot itself is one
//!   mutex-protected `Arc::clone`.
//! * **Writers** serialize through the database mutex for the
//!   in-memory commit, then wait for durability through the WAL's
//!   group commit ([`cdb_storage::GroupWal`]) *outside* the lock, so
//!   one writer's `fdatasync` never blocks another writer's in-memory
//!   commit — concurrent commits share a single sync.
//!
//! # Protocol
//!
//! A write does, in order:
//!
//! 1. lock the database, run the curation op (which appends its WAL
//!    frames, unsynced — the inner database runs at
//!    [`Durability::Batched`]);
//! 2. still under the lock, record the WAL sequence number of its
//!    frames and **publish a fresh snapshot** (epoch `e+1`);
//! 3. unlock, then [`GroupWal::commit`] the recorded sequence number —
//!    block until a batch leader's single sync covers it.
//!
//! Publishing under the lock means snapshots are created in commit
//! order: epoch `e`'s transaction log is always a prefix of epoch
//! `e+1`'s (the `stress` feature compiles an assertion of exactly
//! this). A snapshot can expose a commit whose sync is still in
//! flight — readers see their own cluster's writes immediately, and
//! durability lags by at most the batch window — but never a torn or
//! reordered one.
//!
//! # Ack rule
//!
//! A write method returning `Ok` means the commit is durable: its
//! frames were covered by a WAL sync that reported success. Because
//! frames are appended in commit order under the database lock, the
//! durable log is always a gap-free prefix of the acknowledged commit
//! order — a crash may cut acknowledged commits off the end (a lying
//! disk), never punch holes in the middle. `tests/concurrent_serving.rs`
//! checks this against scripted fault schedules.
//!
//! # Epoch reclamation
//!
//! Snapshots are reference-counted, nothing more: the cache holds the
//! newest epoch, each reader holds the epochs it is still using, and
//! an old epoch's memory is freed the moment its last `Arc` drops. No
//! global epoch tracking, no grace periods — the cost is that each
//! commit clones the curated state for its snapshot, which the
//! read-mostly workload amortizes (and the writer is paying a device
//! sync anyway).

use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use cdb_archive::VersionId;
use cdb_curation::ops::Clipboard;
use cdb_curation::provstore::StoreMode;
use cdb_curation::NodeId;
use cdb_model::Atom;
use cdb_storage::{recover, CheckpointStore, GroupCommitStats, GroupWal, Io};

use crate::db::{CuratedDatabase, DbError};
use crate::durable::{CheckpointStats, Durability, WalRef};

/// Default group-commit batch window for shared databases: long enough
/// for concurrent writers to pile into one sync, short enough to be
/// invisible next to the sync itself.
pub const DEFAULT_BATCH_WINDOW: Duration = Duration::from_micros(200);

/// Pre-resolved serving-layer instruments (one registry lookup at
/// construction; the write path touches only atomics).
#[derive(Debug, Clone)]
struct ServeInstruments {
    writes: cdb_obs::Counter,
    write_ns: cdb_obs::HistogramHandle,
    snapshots: cdb_obs::Counter,
}

impl ServeInstruments {
    fn resolve(m: &cdb_obs::Metrics) -> Self {
        ServeInstruments {
            writes: m.counter("core.shared.writes"),
            write_ns: m.histogram("core.shared.write_ns"),
            snapshots: m.counter("core.shared.snapshots"),
        }
    }
}

/// A periodic metrics export hook: invoked with a fresh snapshot every
/// `every` acknowledged writes. Count-based rather than timer-based so
/// it needs no background thread and stays deterministic under test.
struct FlushHook {
    every: u64,
    hook: Box<dyn Fn(&cdb_obs::MetricsSnapshot) + Send + Sync>,
}

impl fmt::Debug for FlushHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FlushHook {{ every: {} }}", self.every)
    }
}

#[derive(Debug)]
struct SharedInner {
    db: Mutex<CuratedDatabase>,
    /// The newest snapshot and its epoch, replaced on every commit.
    /// Readers clone the `Arc` out; old epochs die by refcount.
    cache: Mutex<(u64, Arc<CuratedDatabase>)>,
    /// The group-commit handle, when the database is durable.
    group: Option<GroupWal>,
    /// The database's metric registry (shared with the inner
    /// [`CuratedDatabase`]), kept here so [`SharedDb::metrics_snapshot`]
    /// never has to take the database lock.
    metrics: cdb_obs::Metrics,
    instr: ServeInstruments,
    flush: Mutex<Option<FlushHook>>,
}

/// A cloneable, thread-safe handle to a curated database. All clones
/// refer to the same database; see the module docs for the protocol.
#[derive(Debug, Clone)]
pub struct SharedDb {
    inner: Arc<SharedInner>,
}

/// An immutable, lock-free view of the database as of one commit
/// epoch. Dereferences to [`CuratedDatabase`], so every read method —
/// and the relational [`crate::views`] — works unchanged. The
/// snapshot owns its state outright (including the notes map, so
/// [`CuratedDatabase::notes_on`] borrows from the snapshot, not the
/// live database — a concurrent `annotate` cannot be observed
/// half-applied).
#[derive(Debug, Clone)]
pub struct Snapshot {
    state: Arc<CuratedDatabase>,
    epoch: u64,
}

impl Deref for Snapshot {
    type Target = CuratedDatabase;
    fn deref(&self) -> &CuratedDatabase {
        &self.state
    }
}

impl Snapshot {
    /// The commit epoch this snapshot froze (0 = before any commit).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl SharedDb {
    /// Wraps a fresh in-memory database for concurrent use.
    pub fn new(name: impl Into<String>, key_field: impl Into<String>) -> Self {
        Self::from_db(CuratedDatabase::new(name, key_field))
    }

    /// Wraps an existing database. A durable database's WAL is
    /// converted to group commit (with [`DEFAULT_BATCH_WINDOW`]) and
    /// its durability set to [`Durability::Batched`] — the write path
    /// here acknowledges durability through the group, per-commit
    /// inline syncs would defeat it.
    pub fn from_db(mut db: CuratedDatabase) -> Self {
        let group = match db.wal.take() {
            Some(WalRef::Owned(log)) => {
                let group = GroupWal::with_metrics(log, DEFAULT_BATCH_WINDOW, db.metrics());
                db.wal = Some(WalRef::Shared(group.clone()));
                Some(group)
            }
            Some(WalRef::Shared(group)) => {
                let handle = group.clone();
                db.wal = Some(WalRef::Shared(group));
                Some(handle)
            }
            None => None,
        };
        if group.is_some() {
            db.set_durability(Durability::Batched);
        }
        let metrics = db.metrics().clone();
        let instr = ServeInstruments::resolve(&metrics);
        let snapshot = Arc::new(db.clone_state());
        SharedDb {
            inner: Arc::new(SharedInner {
                db: Mutex::new(db),
                cache: Mutex::new((0, snapshot)),
                group,
                metrics,
                instr,
                flush: Mutex::new(None),
            }),
        }
    }

    /// Opens a durable shared database over a WAL device and a
    /// checkpoint device (see [`CuratedDatabase::open`] for recovery
    /// semantics), with group commit at the given batch window.
    pub fn open(
        name: impl Into<String>,
        key_field: impl Into<String>,
        wal_io: Box<dyn Io>,
        mut ckpt: CheckpointStore,
        window: Duration,
    ) -> Result<Self, DbError> {
        let name = name.into();
        let ck = ckpt.load()?;
        let (log, rec) = recover(&name, StoreMode::Hereditary, wal_io, ck)?;
        Self::from_parts(name, key_field, log, rec, ckpt, window)
    }

    /// Assembles a shared database from an already-recovered log — the
    /// tail of [`SharedDb::open`], split out so the sharded layer can
    /// run its own (parallel, decision-context-aware) recovery first
    /// and still get the standard serving assembly per shard.
    pub(crate) fn from_parts(
        name: String,
        key_field: impl Into<String>,
        log: cdb_storage::DurableLog<Box<dyn Io>>,
        rec: cdb_storage::Recovered,
        ckpt: CheckpointStore,
        window: Duration,
    ) -> Result<Self, DbError> {
        Self::from_parts_with_metrics(
            name,
            key_field,
            log,
            rec,
            ckpt,
            window,
            cdb_obs::Metrics::new(),
        )
    }

    /// [`SharedDb::from_parts`] with an explicit metrics registry, so
    /// a paged open can resolve its buffer-pool counters against the
    /// same registry the serving layer reports from.
    pub(crate) fn from_parts_with_metrics(
        name: String,
        key_field: impl Into<String>,
        log: cdb_storage::DurableLog<Box<dyn Io>>,
        rec: cdb_storage::Recovered,
        ckpt: CheckpointStore,
        window: Duration,
        metrics: cdb_obs::Metrics,
    ) -> Result<Self, DbError> {
        let group = GroupWal::with_metrics(log, window, &metrics);
        let mut db = CuratedDatabase::from_recovered_with_metrics(
            name,
            key_field,
            rec,
            WalRef::Shared(group.clone()),
            ckpt,
            metrics.clone(),
        )?;
        db.set_durability(Durability::Batched);
        let instr = ServeInstruments::resolve(&metrics);
        let snapshot = Arc::new(db.clone_state());
        Ok(SharedDb {
            inner: Arc::new(SharedInner {
                db: Mutex::new(db),
                cache: Mutex::new((0, snapshot)),
                group: Some(group),
                metrics,
                instr,
                flush: Mutex::new(None),
            }),
        })
    }

    /// Opens a durable shared database whose checkpoints are
    /// page-granular — [`SharedDb::open`] plus the page heap of
    /// [`CuratedDatabase::open_paged`]: `page_io` holds the heap,
    /// served through a pool of `pool_pages` frames.
    pub fn open_paged(
        name: impl Into<String>,
        key_field: impl Into<String>,
        wal_io: Box<dyn Io>,
        mut ckpt: CheckpointStore,
        page_io: Box<dyn Io>,
        pool_pages: usize,
        window: Duration,
    ) -> Result<Self, DbError> {
        let name = name.into();
        let metrics = cdb_obs::Metrics::new();
        let anchor = ckpt.load()?;
        let (state, ck_eff, seed) =
            crate::paged::prepare_paged_open(anchor, page_io, pool_pages, &metrics)?;
        let (log, rec) = recover(&name, StoreMode::Hereditary, wal_io, ck_eff)?;
        let shared =
            Self::from_parts_with_metrics(name, key_field, log, rec, ckpt, window, metrics)?;
        shared.lock_db().attach_paged(state, seed);
        Ok(shared)
    }

    /// Opens a durable shared database backed by segmented WAL files
    /// `<dir>/<name>.wal.<seq>` and the atomically-installed checkpoint
    /// `<dir>/<name>.ckpt` (created if absent).
    pub fn open_dir(
        name: impl Into<String>,
        key_field: impl Into<String>,
        dir: impl AsRef<std::path::Path>,
        window: Duration,
    ) -> Result<Self, DbError> {
        let name = name.into();
        let dir = dir.as_ref();
        let wal =
            cdb_storage::SegmentedIo::open_dir(dir, &name, cdb_storage::SegmentConfig::default())?;
        let ckpt = CheckpointStore::dir(dir, &name);
        SharedDb::open(name, key_field, Box::new(wal), ckpt, window)
    }

    pub(crate) fn lock_db(&self) -> MutexGuard<'_, CuratedDatabase> {
        self.inner
            .db
            .lock()
            .expect("a writer panicked while holding the database lock")
    }

    /// Publishes the current state as the next snapshot epoch. Called
    /// under the database lock, so epochs are assigned in commit order.
    pub(crate) fn publish_snapshot(&self, db: &CuratedDatabase) {
        let fresh = Arc::new(db.clone_state());
        let mut cache = self
            .inner
            .cache
            .lock()
            .expect("a writer panicked while publishing a snapshot");
        #[cfg(feature = "stress")]
        assert_snapshot_extends(&cache.1, &fresh);
        cache.0 += 1;
        let displaced = std::mem::replace(&mut cache.1, fresh);
        drop(cache);
        // If this writer held the last reference to the displaced
        // epoch, its deallocation happens here — after the cache lock
        // is released — so readers taking snapshots never wait on it.
        drop(displaced);
    }

    /// The write path: in-memory commit and snapshot publication under
    /// the lock, durability wait outside it (see module docs).
    fn write<R>(
        &self,
        op: impl FnOnce(&mut CuratedDatabase) -> Result<R, DbError>,
    ) -> Result<R, DbError> {
        // Every write is a trace root: the spans the op opens below —
        // persist, group commit, device sync — inherit this id, so
        // `cdbsh profile` can cut one transaction's path out of the
        // ring buffers.
        let _trace = cdb_obs::trace_root();
        let span = cdb_obs::SpanGuard::enter("core.shared.write");
        let mut db = self.lock_db();
        let out = op(&mut db);
        let seq = self.inner.group.as_ref().map(|g| g.appended_seq());
        self.publish_snapshot(&db);
        drop(db);
        if out.is_ok() {
            if let (Some(group), Some(seq)) = (self.inner.group.as_ref(), seq) {
                group.commit(seq)?;
            }
            self.inner.instr.writes.inc();
            self.inner.instr.write_ns.observe(span.elapsed());
            self.maybe_flush();
        }
        out
    }

    /// Runs the periodic flush hook if one is due (see
    /// [`SharedDb::set_metrics_flush`]).
    fn maybe_flush(&self) {
        let guard = self
            .inner
            .flush
            .lock()
            .expect("a writer panicked inside a metrics flush hook");
        if let Some(fh) = guard.as_ref() {
            let writes = self.inner.instr.writes.get();
            if fh.every > 0 && writes.is_multiple_of(fh.every) {
                (fh.hook)(&self.metrics_snapshot());
            }
        }
    }

    /// An immutable view of the latest committed state. O(1): one
    /// lock-protected `Arc` clone, no copying. Reads on the returned
    /// snapshot take no locks and are never blocked by writers.
    pub fn snapshot(&self) -> Snapshot {
        let _span = cdb_obs::SpanGuard::enter("core.shared.snapshot");
        self.inner.instr.snapshots.inc();
        let cache = self
            .inner
            .cache
            .lock()
            .expect("a writer panicked while publishing a snapshot");
        Snapshot {
            epoch: cache.0,
            state: cache.1.clone(),
        }
    }

    /// The current commit epoch (0 = nothing committed through this
    /// handle yet).
    pub fn epoch(&self) -> u64 {
        self.inner
            .cache
            .lock()
            .expect("a writer panicked while publishing a snapshot")
            .0
    }

    // ------------------------------------------------- curation ops
    // Each mirrors the `CuratedDatabase` method of the same name.

    /// Adds a freshly-authored entry. See [`CuratedDatabase::add_entry`].
    pub fn add_entry(
        &self,
        curator: &str,
        time: u64,
        key: &str,
        fields: &[(&str, Atom)],
    ) -> Result<NodeId, DbError> {
        self.write(|db| db.add_entry(curator, time, key, fields))
    }

    /// Imports a copied entry. See [`CuratedDatabase::import_entry`].
    pub fn import_entry(
        &self,
        curator: &str,
        time: u64,
        key: &str,
        clip: &Clipboard,
    ) -> Result<NodeId, DbError> {
        self.write(|db| db.import_entry(curator, time, key, clip))
    }

    /// Edits (or adds) a field. See [`CuratedDatabase::edit_field`].
    pub fn edit_field(
        &self,
        curator: &str,
        time: u64,
        key: &str,
        field: &str,
        value: Atom,
    ) -> Result<(), DbError> {
        self.write(|db| db.edit_field(curator, time, key, field, value))
    }

    /// Deletes an entry. See [`CuratedDatabase::delete_entry`].
    pub fn delete_entry(&self, curator: &str, time: u64, key: &str) -> Result<(), DbError> {
        self.write(|db| db.delete_entry(curator, time, key))
    }

    /// Fuses two entries. See [`CuratedDatabase::merge_entries`].
    pub fn merge_entries(
        &self,
        curator: &str,
        time: u64,
        kept: &str,
        absorbed: &str,
    ) -> Result<(), DbError> {
        self.write(|db| db.merge_entries(curator, time, kept, absorbed))
    }

    /// Splits an entry. See [`CuratedDatabase::split_entry`].
    pub fn split_entry(
        &self,
        curator: &str,
        time: u64,
        original: &str,
        parts: &[(&str, Vec<(&str, Atom)>)],
    ) -> Result<(), DbError> {
        self.write(|db| db.split_entry(curator, time, original, parts))
    }

    /// Attaches a superimposed annotation. See
    /// [`CuratedDatabase::annotate`].
    pub fn annotate(
        &self,
        key: &str,
        field: Option<&str>,
        author: &str,
        text: &str,
        time: u64,
    ) -> Result<(), DbError> {
        self.write(|db| db.annotate(key, field, author, text, time))
    }

    /// Publishes the current state as a new archived version. See
    /// [`CuratedDatabase::publish`]. Publishes sync the WAL inline
    /// (regardless of batching), so `Ok` means the publish point is
    /// durable.
    pub fn publish(&self, label: impl Into<String>) -> Result<VersionId, DbError> {
        let label = label.into();
        self.write(|db| db.publish(label))
    }

    /// Registers a durable secondary index over `field`. See
    /// [`CuratedDatabase::create_index`]. The index is visible to every
    /// snapshot taken after this returns.
    pub fn create_index(&self, field: &str) -> Result<bool, DbError> {
        self.write(|db| db.create_index(field))
    }

    /// Drops the secondary index over `field`. See
    /// [`CuratedDatabase::drop_index`].
    pub fn drop_index(&self, field: &str) -> Result<bool, DbError> {
        self.write(|db| db.drop_index(field))
    }

    // ---------------------------------------------------- durability

    /// Forces everything committed so far to durable storage.
    pub fn sync(&self) -> Result<(), DbError> {
        let mut db = self.lock_db();
        db.sync()
    }

    /// Writes a checkpoint (see [`CuratedDatabase::checkpoint`]). Safe
    /// to race with concurrent writers: the checkpoint holds the
    /// database lock, so the coverage watermark it records is exactly
    /// the synced log, and recovery replays whatever the WAL holds
    /// past it.
    pub fn checkpoint(&self) -> Result<CheckpointStats, DbError> {
        let mut db = self.lock_db();
        db.checkpoint()
    }

    /// Sets the segment-retention policy for future checkpoints (see
    /// [`CuratedDatabase::set_retention`]).
    pub fn set_retention(&self, retention: cdb_storage::Retention) {
        self.lock_db().set_retention(retention);
    }

    /// Group-commit counters, when durable (`None` for in-memory).
    pub fn group_stats(&self) -> Option<GroupCommitStats> {
        self.inner.group.as_ref().map(|g| g.stats())
    }

    /// The group-commit handle, when durable. The sharded layer uses
    /// this to journal 2PC PREPARE/DECIDE frames directly.
    pub(crate) fn group(&self) -> Option<&GroupWal> {
        self.inner.group.as_ref()
    }

    /// The number of frames in the write-ahead log, when durable
    /// (`None` for in-memory). Used by the serving layer's admission
    /// tests to prove that load-shed requests never reached the log.
    pub fn wal_len(&self) -> Option<u64> {
        self.inner.group.as_ref().and_then(|g| g.log_len().ok())
    }

    // -------------------------------------------------- observability

    /// The metric registry shared with the inner database. The network
    /// serving layer registers its per-endpoint instruments here so
    /// `metrics_snapshot` (and every exporter downstream of it) sees
    /// storage, curation, and server counters in one place.
    pub fn metrics(&self) -> &cdb_obs::Metrics {
        &self.inner.metrics
    }

    /// A point-in-time view of every metric this database can see (its
    /// registry merged with the process-global one), without taking
    /// the database lock.
    pub fn metrics_snapshot(&self) -> cdb_obs::MetricsSnapshot {
        let mut snap = self.inner.metrics.snapshot();
        snap.merge(&cdb_obs::global().snapshot());
        snap
    }

    /// Installs (or, with `every == 0`, removes) the periodic metrics
    /// flush hook: after every `every`-th acknowledged write, `hook` is
    /// called with a fresh [`cdb_obs::MetricsSnapshot`] — the intended
    /// place to ship line-JSON (`cdb_obs::export::line_json`) to a
    /// collector. Runs on the committing writer's thread, outside the
    /// database lock.
    pub fn set_metrics_flush(
        &self,
        every: u64,
        hook: impl Fn(&cdb_obs::MetricsSnapshot) + Send + Sync + 'static,
    ) {
        let mut guard = self
            .inner
            .flush
            .lock()
            .expect("a writer panicked inside a metrics flush hook");
        *guard = (every > 0).then(|| FlushHook {
            every,
            hook: Box::new(hook),
        });
    }

    /// The group-commit batch window, when durable.
    pub fn batch_window(&self) -> Option<Duration> {
        self.inner.group.as_ref().map(|g| g.window())
    }

    /// Adjusts the group-commit batch window for future batches.
    pub fn set_batch_window(&self, window: Duration) {
        if let Some(g) = &self.inner.group {
            g.set_window(window);
        }
    }

    /// Unwraps the database, restoring single-threaded use. Fails
    /// (returning `self`) while other handles to the database exist;
    /// outstanding [`Snapshot`]s don't count — they own copies. A
    /// durable database comes back with an owned WAL at
    /// [`Durability::Always`], everything already synced.
    pub fn into_inner(self) -> Result<CuratedDatabase, SharedDb> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => {
                drop(inner.cache);
                let mut db = inner
                    .db
                    .into_inner()
                    .expect("a writer panicked while holding the database lock");
                // Two group handles remain: `inner.group` and the
                // database's own WalRef. Drop the former, unwrap the
                // latter back into the owned log.
                drop(inner.group);
                if let Some(WalRef::Shared(group)) = db.wal.take() {
                    group.sync_all().ok();
                    let log = group
                        .try_into_log()
                        .expect("into_inner holds the only remaining group handle");
                    db.wal = Some(WalRef::Owned(log));
                    db.set_durability(Durability::Always);
                }
                Ok(db)
            }
            Err(inner) => Err(SharedDb { inner }),
        }
    }
}

/// Stress-mode invariant: each published snapshot's transaction log
/// extends the previous one — commit order and snapshot order agree.
#[cfg(feature = "stress")]
fn assert_snapshot_extends(prev: &CuratedDatabase, next: &CuratedDatabase) {
    let p = &prev.curated.log;
    let n = &next.curated.log;
    assert!(
        p.len() <= n.len(),
        "snapshot regressed: {} -> {} transactions",
        p.len(),
        n.len()
    );
    for (a, b) in p.iter().zip(n.iter()) {
        assert_eq!(
            a.id, b.id,
            "snapshot log diverged from its predecessor at txn {:?}",
            a.id
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_are_isolated_from_later_writes() {
        let db = SharedDb::new("iuphar", "name");
        db.add_entry("alice", 1, "GABA-A", &[("tm", Atom::Int(4))])
            .unwrap();
        let snap = db.snapshot();
        assert_eq!(snap.epoch(), 1);
        db.edit_field("bob", 2, "GABA-A", "tm", Atom::Int(5))
            .unwrap();
        db.add_entry("bob", 3, "5-HT3", &[]).unwrap();
        // The old snapshot still shows the old world.
        assert_eq!(snap.field("GABA-A", "tm").unwrap(), Atom::Int(4));
        assert_eq!(snap.entry_keys().unwrap().len(), 1);
        // A fresh snapshot shows the new one.
        let now = db.snapshot();
        assert_eq!(now.epoch(), 3);
        assert_eq!(now.field("GABA-A", "tm").unwrap(), Atom::Int(5));
    }

    #[test]
    fn snapshot_notes_survive_concurrent_annotate() {
        // Satellite fix: notes_on borrows from the snapshot's own
        // notes map, so later annotates are invisible to it.
        let db = SharedDb::new("iuphar", "name");
        db.add_entry("alice", 1, "GABA-A", &[]).unwrap();
        db.annotate("GABA-A", None, "carol", "first", 2).unwrap();
        let snap = db.snapshot();
        db.annotate("GABA-A", None, "dave", "second", 3).unwrap();
        assert_eq!(snap.notes_on("GABA-A", None).len(), 1);
        assert_eq!(db.snapshot().notes_on("GABA-A", None).len(), 2);
    }

    #[test]
    fn into_inner_round_trips() {
        let db = SharedDb::new("d", "name");
        db.add_entry("a", 1, "K", &[]).unwrap();
        let clone = db.clone();
        let db = db.into_inner().unwrap_err(); // clone alive
        drop(clone);
        let inner = db.into_inner().unwrap();
        assert_eq!(inner.entry_keys().unwrap(), vec!["K".to_string()]);
    }
}
