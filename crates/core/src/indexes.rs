//! Durable secondary indexes over entry fields.
//!
//! A [`FieldIndex`] maps each value of one entry field to the set of
//! entry keys holding it — the curated-database analogue of
//! `cdb_relalg`'s column index, keyed by entry instead of row offset
//! because entries move (merge, split, delete) while a curated database
//! evolves. [`CuratedDatabase::create_index`] registers one; the
//! registration is written to the WAL as an `AUX` frame (tag
//! [`crate::durable::AUX_INDEX`]), carried by every checkpoint, and
//! replayed on recovery, where the postings are rebuilt from the
//! recovered tree — postings themselves are derived state and are never
//! serialized. Every committing curation operation reconciles the
//! touched keys, so postings are transactionally consistent with the
//! tree (2PC rollback restores them via the transaction backup).
//!
//! The planner-facing view: [`CuratedDatabase::relalg_index_set`]
//! converts postings to row offsets of the entries relation, and
//! [`CuratedDatabase::planner_stats`] derives row counts and per-field
//! distinct counts without scanning — the durable engine's answer to
//! `DbStats::analyze`.
//!
//! [`CuratedDatabase::create_index`]: crate::db::CuratedDatabase::create_index
//! [`CuratedDatabase::relalg_index_set`]: crate::db::CuratedDatabase::relalg_index_set
//! [`CuratedDatabase::planner_stats`]: crate::db::CuratedDatabase::planner_stats

use std::collections::{BTreeMap, BTreeSet};

use cdb_model::Atom;

/// A secondary index over one entry field.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FieldIndex {
    field: String,
    /// Value → keys of the entries holding it.
    by_value: BTreeMap<Atom, BTreeSet<String>>,
    /// Key → the value currently indexed for it (the reverse map that
    /// makes reconciliation O(log n) instead of a full-index sweep).
    by_key: BTreeMap<String, Atom>,
}

impl FieldIndex {
    pub(crate) fn new(field: impl Into<String>) -> FieldIndex {
        FieldIndex {
            field: field.into(),
            ..FieldIndex::default()
        }
    }

    /// The indexed field name.
    pub fn field(&self) -> &str {
        &self.field
    }

    /// Keys of the entries whose field equals `value`, in key order.
    pub fn lookup(&self, value: &Atom) -> Vec<String> {
        self.by_value
            .get(value)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of distinct indexed values.
    pub fn distinct(&self) -> u64 {
        self.by_value.len() as u64
    }

    /// Number of entries indexed.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether no entries are indexed.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Iterates `(value, keys)` postings in value order.
    pub fn postings(&self) -> impl Iterator<Item = (&Atom, &BTreeSet<String>)> {
        self.by_value.iter()
    }

    /// Points `key` at `value`, unlinking any previous value.
    pub(crate) fn set(&mut self, key: &str, value: Atom) {
        self.remove(key);
        self.by_value
            .entry(value.clone())
            .or_default()
            .insert(key.to_owned());
        self.by_key.insert(key.to_owned(), value);
    }

    /// Unlinks `key` entirely (entry deleted or absorbed).
    pub(crate) fn remove(&mut self, key: &str) {
        if let Some(old) = self.by_key.remove(key) {
            if let Some(set) = self.by_value.get_mut(&old) {
                set.remove(key);
                if set.is_empty() {
                    self.by_value.remove(&old);
                }
            }
        }
    }
}

/// The registered secondary indexes of a curated database.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FieldIndexes {
    map: BTreeMap<String, FieldIndex>,
}

impl FieldIndexes {
    /// The index on `field`, if registered.
    pub fn get(&self, field: &str) -> Option<&FieldIndex> {
        self.map.get(field)
    }

    /// The registered field names, in order.
    pub fn fields(&self) -> Vec<String> {
        self.map.keys().cloned().collect()
    }

    /// Iterates the registered indexes in field order.
    pub fn iter(&self) -> impl Iterator<Item = &FieldIndex> {
        self.map.values()
    }

    /// Number of registered indexes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no indexes are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Registers an empty index; `false` if one already existed.
    pub(crate) fn register(&mut self, field: &str) -> bool {
        if self.map.contains_key(field) {
            return false;
        }
        self.map.insert(field.to_owned(), FieldIndex::new(field));
        true
    }

    /// Drops an index; `false` if none was registered.
    pub(crate) fn unregister(&mut self, field: &str) -> bool {
        self.map.remove(field).is_some()
    }

    /// Mutable access for reconciliation.
    pub(crate) fn get_mut(&mut self, field: &str) -> Option<&mut FieldIndex> {
        self.map.get_mut(field)
    }

    /// Unlinks a key from every index.
    pub(crate) fn remove_key(&mut self, key: &str) {
        for idx in self.map.values_mut() {
            idx.remove(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_moves_postings_between_values() {
        let mut idx = FieldIndex::new("tm");
        idx.set("P1", Atom::Int(7));
        idx.set("P2", Atom::Int(7));
        assert_eq!(idx.lookup(&Atom::Int(7)), ["P1", "P2"]);
        idx.set("P1", Atom::Int(9));
        assert_eq!(idx.lookup(&Atom::Int(7)), ["P2"]);
        assert_eq!(idx.lookup(&Atom::Int(9)), ["P1"]);
        assert_eq!(idx.distinct(), 2);
        idx.remove("P2");
        assert!(idx.lookup(&Atom::Int(7)).is_empty());
        assert_eq!(idx.distinct(), 1, "empty postings are pruned");
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn registry_registers_once() {
        let mut set = FieldIndexes::default();
        assert!(set.register("tm"));
        assert!(!set.register("tm"));
        assert_eq!(set.fields(), ["tm"]);
        assert!(set.unregister("tm"));
        assert!(!set.unregister("tm"));
        assert!(set.is_empty());
    }
}
