//! Relational views over a curated database, with annotation
//! propagation in both directions (§2).
//!
//! Users see curated data through *views* — here, flat relations over
//! entry fields. Annotations made on a view must be carried **back** to
//! the source (reverse propagation, §2.2) and **forward** to other
//! views. [`annotate_through_view`] implements the full loop: find a
//! side-effect-free placement for the view annotation (via
//! `cdb-annotation`), and attach the note to the placed source field.

use cdb_annotation::colored::{ColoredRelation, ColoredTuple, Scheme};
use cdb_annotation::reverse::{find_placements, Target};
use cdb_model::Atom;
use cdb_relalg::{Database, RaExpr, RelalgError, Relation, Schema, Tuple};

use crate::db::{CuratedDatabase, DbError};

/// The flat relation of all entries over the given fields: schema is
/// `[key_field, fields…]`; entries missing a field get `Unit`.
pub fn entry_relation(db: &CuratedDatabase, fields: &[&str]) -> Result<Relation, DbError> {
    let mut attrs = vec![db.key_field().to_owned()];
    attrs.extend(fields.iter().map(|f| (*f).to_owned()));
    let schema = Schema::new(attrs).map_err(relalg_to_db)?;
    let mut rel = Relation::empty(schema);
    for key in db.entry_keys()? {
        let mut row: Tuple = vec![Atom::Str(key.clone())];
        for f in fields {
            row.push(db.field(&key, f).unwrap_or(Atom::Unit));
        }
        rel.insert(row).map_err(relalg_to_db)?;
    }
    Ok(rel)
}

/// Plans and runs a query over the entries relation with the cost-based
/// planner: statistics come from [`CuratedDatabase::planner_stats`]
/// (entry counts, per-indexed-field distincts — no scan), access paths
/// from the registered durable indexes via
/// [`CuratedDatabase::relalg_index_set`]. Returns the canonical result
/// plus the physical plan and its per-operator actuals, so callers
/// (cdbsh `explain`) can show estimates against reality.
///
/// The query sees one relation named `entries` with schema
/// `[key_field, fields…]`, exactly as [`entry_relation`] builds it.
///
/// [`CuratedDatabase::planner_stats`]: crate::db::CuratedDatabase::planner_stats
/// [`CuratedDatabase::relalg_index_set`]: crate::db::CuratedDatabase::relalg_index_set
pub fn query_entries_planned(
    db: &CuratedDatabase,
    fields: &[&str],
    q: &RaExpr,
) -> Result<(Relation, cdb_relalg::PhysPlan, Vec<cdb_relalg::PlanRun>), DbError> {
    let rel = entry_relation(db, fields)?;
    let rdb = Database::new().with("entries", rel);
    let stats = db.planner_stats(fields);
    let indexes = db.relalg_index_set(fields)?;
    let plan = cdb_relalg::plan::plan(&rdb, &stats, &indexes, q);
    let (out, runs) =
        cdb_relalg::plan::eval_plan(&rdb, &plan, &indexes, &cdb_relalg::ExecConfig::default())
            .map_err(relalg_to_db)?;
    Ok((out, plan, runs))
}

/// The same relation with every cell distinctly colored `key/field`, so
/// view outputs carry readable where-provenance.
pub fn colored_entry_relation(
    db: &CuratedDatabase,
    fields: &[&str],
) -> Result<ColoredRelation, DbError> {
    let plain = entry_relation(db, fields)?;
    let key_field = db.key_field().to_owned();
    let mut out = ColoredRelation::empty(plain.schema().clone());
    for row in plain.tuples() {
        let key = match &row[0] {
            Atom::Str(s) => s.clone(),
            other => other.to_string(),
        };
        let colors: Vec<String> = std::iter::once(format!("{key}/{key_field}"))
            .chain(fields.iter().map(|f| format!("{key}/{f}")))
            .collect();
        out.insert(ColoredTuple::with_colors(row.clone(), colors))
            .map_err(relalg_to_db)?;
    }
    Ok(out)
}

/// The result of annotating through a view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewAnnotation {
    /// The annotation was placed on this source `(entry key, field)`.
    Placed {
        /// The entry the note landed on.
        key: String,
        /// The field the note landed on.
        field: String,
    },
    /// No side-effect-free placement exists (§2.2's hard case); the note
    /// was not attached.
    NoCleanPlacement,
    /// Multiple equally-valid placements; the note was attached to all.
    PlacedMultiple(Vec<(String, String)>),
}

/// Annotates a cell of the view `q(entries)`: finds side-effect-free
/// source placements by reverse propagation and attaches the note to the
/// placed source field(s).
///
/// The view `q` must reference the entry relation by the name
/// `"entries"` with schema `[key_field, fields…]`.
pub fn annotate_through_view(
    db: &mut CuratedDatabase,
    fields: &[&str],
    q: &RaExpr,
    target: &Target,
    author: &str,
    text: &str,
    time: u64,
) -> Result<ViewAnnotation, DbError> {
    let rel = entry_relation(db, fields)?;
    let rdb = Database::new().with("entries", rel.clone());
    let (placements, _stats) = find_placements(&rdb, q, target).map_err(relalg_to_db)?;
    if placements.is_empty() {
        return Ok(ViewAnnotation::NoCleanPlacement);
    }
    let mut placed = Vec::new();
    for p in &placements {
        // Recover (key, field) from the placement tuple.
        let key = match &p.tuple[0] {
            Atom::Str(s) => s.clone(),
            other => other.to_string(),
        };
        let field = p.attr.clone();
        if field == db.key_field() {
            db.annotate(&key, None, author, text, time)?;
            placed.push((key, "<entry>".to_owned()));
        } else {
            db.annotate(&key, Some(&field), author, text, time)?;
            placed.push((key, field));
        }
    }
    Ok(match placed.len() {
        1 => {
            let (key, field) = placed.remove(0);
            ViewAnnotation::Placed { key, field }
        }
        _ => ViewAnnotation::PlacedMultiple(placed),
    })
}

/// Evaluates a view over the colored entry relation so the output cells
/// carry `key/field` where-provenance.
pub fn colored_view(
    db: &CuratedDatabase,
    fields: &[&str],
    q: &RaExpr,
    scheme: &Scheme,
) -> Result<ColoredRelation, DbError> {
    let colored = colored_entry_relation(db, fields)?;
    let mut cdb = cdb_annotation::colored::ColoredDatabase::new();
    cdb.insert("entries", colored);
    cdb_annotation::colored::eval_colored(&cdb, q, scheme).map_err(relalg_to_db)
}

fn relalg_to_db(e: RelalgError) -> DbError {
    DbError::NoSuchEntry(format!("relational view error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_relalg::Pred;

    fn sample() -> CuratedDatabase {
        let mut db = CuratedDatabase::new("iuphar", "name");
        db.add_entry(
            "GABA-A",
            1,
            "GABA-A",
            &[("kind", Atom::Str("receptor".into())), ("tm", Atom::Int(4))],
        )
        .unwrap();
        db.add_entry(
            "alice",
            2,
            "5-HT3",
            &[("kind", Atom::Str("channel".into())), ("tm", Atom::Int(4))],
        )
        .unwrap();
        db
    }

    #[test]
    fn entry_relation_flattens_entries() {
        let db = sample();
        let rel = entry_relation(&db, &["kind", "tm"]).unwrap();
        assert_eq!(rel.schema().attrs(), ["name", "kind", "tm"]);
        assert_eq!(rel.len(), 2);
        // Missing fields come out as Unit.
        let rel2 = entry_relation(&db, &["nope"]).unwrap();
        assert!(rel2.tuples().iter().all(|t| t[1] == Atom::Unit));
    }

    #[test]
    fn colored_view_carries_readable_provenance() {
        let db = sample();
        let q = RaExpr::scan("entries")
            .select(Pred::col_eq_const("kind", "receptor"))
            .project_cols(["tm"]);
        let out = colored_view(&db, &["kind", "tm"], &q, &Scheme::Default).unwrap();
        let cs = out.cell_colors(&vec![Atom::Int(4)], "tm").unwrap();
        assert_eq!(
            cs.iter().cloned().collect::<Vec<_>>(),
            vec!["GABA-A/tm".to_string()],
            "the 4 came from GABA-A's tm field, not 5-HT3's"
        );
    }

    #[test]
    fn annotating_through_a_selection_view_lands_on_the_source() {
        let mut db = sample();
        let q = RaExpr::scan("entries").select(Pred::col_eq_const("name", "GABA-A"));
        let target = Target {
            tuple: vec![
                Atom::Str("GABA-A".into()),
                Atom::Str("receptor".into()),
                Atom::Int(4),
            ],
            attr: "kind".into(),
        };
        let r = annotate_through_view(
            &mut db,
            &["kind", "tm"],
            &q,
            &target,
            "carol",
            "check this",
            9,
        )
        .unwrap();
        assert_eq!(
            r,
            ViewAnnotation::Placed {
                key: "GABA-A".into(),
                field: "kind".into()
            }
        );
        assert_eq!(db.notes_on("GABA-A", Some("kind")).len(), 1);
        assert_eq!(db.notes_on("5-HT3", Some("kind")).len(), 0);
    }

    #[test]
    fn annotation_with_spread_reports_no_clean_placement() {
        let mut db = sample();
        // π_tm merges the two entries' equal tm values: annotating the
        // merged output cell cannot be placed side-effect-free on one
        // source… actually placing on either source colors the single
        // merged cell exactly — both placements are clean. Force a
        // spread instead: a product duplicating a cell.
        let q = RaExpr::ScanAs("entries".into(), "a".into())
            .product(RaExpr::ScanAs("entries".into(), "b".into()))
            .project(vec![
                cdb_relalg::ProjItem::col("a.name", "name"),
                cdb_relalg::ProjItem::col("b.tm", "tm"),
            ]);
        // Output tuple (GABA-A, 4): its name cell is copied into rows
        // paired with both b-tuples, but projection merges them…
        // target the name cell of a *specific* row.
        let target = Target {
            tuple: vec![Atom::Str("GABA-A".into()), Atom::Int(4)],
            attr: "name".into(),
        };
        let r = annotate_through_view(&mut db, &["tm"], &q, &target, "x", "y", 1).unwrap();
        // GABA-A's name colors the (GABA-A, 4) row's name cell only —
        // both b-rows have tm = 4, so the projection merges to a single
        // output tuple and the placement is clean.
        assert!(matches!(r, ViewAnnotation::Placed { .. }));
        // Now make the tm values differ so the spread is real.
        db.edit_field("e", 2, "5-HT3", "tm", Atom::Int(9)).unwrap();
        let target2 = Target {
            tuple: vec![Atom::Str("GABA-A".into()), Atom::Int(4)],
            attr: "name".into(),
        };
        let r2 = annotate_through_view(&mut db, &["tm"], &q, &target2, "x", "y", 1).unwrap();
        assert_eq!(
            r2,
            ViewAnnotation::NoCleanPlacement,
            "GABA-A's name now spreads to (GABA-A,4) and (GABA-A,9)"
        );
    }

    #[test]
    fn union_merge_annotates_all_sources() {
        let mut db = sample();
        // π_tm over both entries with equal tm: both placements clean.
        let q = RaExpr::scan("entries").project_cols(["tm"]);
        let target = Target {
            tuple: vec![Atom::Int(4)],
            attr: "tm".into(),
        };
        let r = annotate_through_view(&mut db, &["tm"], &q, &target, "x", "note", 1).unwrap();
        match r {
            ViewAnnotation::PlacedMultiple(ps) => {
                assert_eq!(ps.len(), 2);
            }
            other => panic!("expected multiple placements, got {other:?}"),
        }
        assert_eq!(db.notes_on("GABA-A", Some("tm")).len(), 1);
        assert_eq!(db.notes_on("5-HT3", Some("tm")).len(), 1);
    }
}
