//! End-to-end durability for the integrated database: open → curate →
//! crash/reopen → identical state, across file, memory, and
//! fault-injected devices.

use std::sync::{Arc, Mutex};

use cdb_core::storage::{CheckpointStore, FaultPlan, FaultyIo, Io, MemIo, StorageError};
use cdb_core::{CuratedDatabase, Durability, Fate};
use cdb_model::{Atom, Value};

/// A fault-injected device the test keeps a handle on after the
/// database takes ownership, so it can crash it post-drop. (`Mutex`
/// rather than `RefCell` because `Io` is `Send + Sync` — devices can
/// be shared with concurrent databases.)
#[derive(Debug, Clone)]
struct SharedFaulty(Arc<Mutex<Option<FaultyIo>>>);

impl SharedFaulty {
    fn new(plan: FaultPlan) -> Self {
        SharedFaulty(Arc::new(Mutex::new(Some(FaultyIo::new(plan)))))
    }

    fn crash(&self) -> Vec<u8> {
        self.0
            .lock()
            .unwrap()
            .take()
            .expect("device already crashed")
            .crash()
    }
}

/// After [`SharedFaulty::crash`] the device is gone: every operation
/// errors (it does not panic — the database's best-effort drop flush
/// may still run against it).
fn crashed() -> StorageError {
    StorageError::Io("device crashed".into())
}

impl Io for SharedFaulty {
    fn len(&self) -> Result<u64, StorageError> {
        self.0
            .lock()
            .unwrap()
            .as_ref()
            .map_or_else(|| Err(crashed()), Io::len)
    }
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        match self.0.lock().unwrap().as_mut() {
            Some(io) => io.read_at(offset, buf),
            None => Err(crashed()),
        }
    }
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        match self.0.lock().unwrap().as_mut() {
            Some(io) => io.append(bytes),
            None => Err(crashed()),
        }
    }
    fn flush(&mut self) -> Result<(), StorageError> {
        match self.0.lock().unwrap().as_mut() {
            Some(io) => io.flush(),
            None => Err(crashed()),
        }
    }
    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        match self.0.lock().unwrap().as_mut() {
            Some(io) => io.truncate(len),
            None => Err(crashed()),
        }
    }
}

/// Shared in-memory device for the checkpoint file, surviving the
/// database that owns the boxed handle.
#[derive(Debug, Clone)]
struct SharedMem(Arc<Mutex<MemIo>>);

impl SharedMem {
    fn new() -> Self {
        SharedMem(Arc::new(Mutex::new(MemIo::new())))
    }
}

/// A two-slot checkpoint store over shared in-memory slots, surviving
/// the database that owns the store handle — so the checkpoint
/// installed before a crash is loadable at reopen.
#[derive(Debug, Clone)]
struct SharedCkpt(SharedMem, SharedMem);

impl SharedCkpt {
    fn new() -> Self {
        SharedCkpt(SharedMem::new(), SharedMem::new())
    }

    /// A fresh store over the same underlying slots.
    fn store(&self) -> CheckpointStore {
        CheckpointStore::slots(Box::new(self.0.clone()), Box::new(self.1.clone()))
    }
}

impl Io for SharedMem {
    fn len(&self) -> Result<u64, StorageError> {
        self.0.lock().unwrap().len()
    }
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        self.0.lock().unwrap().read_at(offset, buf)
    }
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.0.lock().unwrap().append(bytes)
    }
    fn flush(&mut self) -> Result<(), StorageError> {
        self.0.lock().unwrap().flush()
    }
    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        self.0.lock().unwrap().truncate(len)
    }
}

/// Runs a representative curation career against the database: adds,
/// edits, annotations, a merge, a split, and two publishes.
fn curate(db: &mut CuratedDatabase) {
    db.add_entry(
        "alice",
        1,
        "GABA-A",
        &[("kind", Atom::Str("receptor".into())), ("tm", Atom::Int(4))],
    )
    .unwrap();
    db.add_entry("bob", 2, "5-HT3", &[("kind", Atom::Str("receptor".into()))])
        .unwrap();
    db.publish("r0").unwrap();
    db.edit_field(
        "carol",
        3,
        "GABA-A",
        "kind",
        Atom::Str("ion channel".into()),
    )
    .unwrap();
    db.annotate("GABA-A", Some("kind"), "carol", "verify vs IUPHAR", 4)
        .unwrap();
    db.add_entry("erin", 5, "NMDA", &[("tm", Atom::Int(4))])
        .unwrap();
    db.merge_entries("erin", 6, "GABA-A", "5-HT3").unwrap();
    db.split_entry("erin", 7, "NMDA", &[("NMDA-1", vec![]), ("NMDA-2", vec![])])
        .unwrap();
    db.publish("r1").unwrap();
}

/// Asserts the recovered database is observably identical to the
/// reference: tree + provenance + log, lifecycle, notes, and every
/// archived version.
fn assert_same(recovered: &CuratedDatabase, reference: &CuratedDatabase) {
    assert_eq!(recovered.curated, reference.curated);
    assert_eq!(recovered.lifecycle, reference.lifecycle);
    assert_eq!(
        recovered.notes_on("GABA-A", Some("kind")),
        reference.notes_on("GABA-A", Some("kind"))
    );
    assert_eq!(
        recovered.archive().version_count(),
        reference.archive().version_count()
    );
    for v in 0..reference.archive().version_count() {
        assert_eq!(
            recovered.version(v).unwrap(),
            reference.version(v).unwrap(),
            "archived version {v} differs"
        );
    }
    assert_eq!(recovered.export().unwrap(), reference.export().unwrap());
}

fn reference() -> CuratedDatabase {
    let mut db = CuratedDatabase::new("iuphar", "name");
    curate(&mut db);
    db
}

#[test]
fn durable_database_survives_clean_reopen_on_files() {
    let dir = std::env::temp_dir().join(format!("cdb-durable-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    {
        let mut db = CuratedDatabase::open_dir("iuphar", "name", &dir).unwrap();
        assert!(db.is_durable());
        assert!(db.recovery_stats().is_some());
        curate(&mut db);
    }
    let db = CuratedDatabase::open_dir("iuphar", "name", &dir).unwrap();
    assert_same(&db, &reference());
    let stats = db.recovery_stats().unwrap();
    assert_eq!(stats.frames_dropped, 0);
    assert!(stats.frames_scanned > 0);

    // The reopened database keeps working: ids, publishes, citations.
    let mut db = db;
    db.add_entry("fred", 8, "AMPA", &[]).unwrap();
    let v = db.publish("r2").unwrap();
    let cited = db.cite(v, "AMPA").unwrap();
    assert!(cited.authors.contains(&"fred".to_string()));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_with_always_durability_loses_nothing() {
    let wal = SharedFaulty::new(FaultPlan::default());
    let ckpt = SharedCkpt::new();
    {
        let mut db =
            CuratedDatabase::open("iuphar", "name", Box::new(wal.clone()), ckpt.store()).unwrap();
        assert_eq!(db.durability(), Durability::Always);
        curate(&mut db);
        // db dropped without any orderly shutdown.
    }
    let image = wal.crash();
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        ckpt.store(),
    )
    .unwrap();
    assert_same(&db, &reference());
}

#[test]
fn crash_with_batched_durability_loses_only_the_unsynced_tail() {
    let wal = SharedFaulty::new(FaultPlan::default());
    let image;
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            CheckpointStore::mem(),
        )
        .unwrap();
        db.set_durability(Durability::Batched);
        db.add_entry("alice", 1, "A", &[("tm", Atom::Int(1))])
            .unwrap();
        db.add_entry("bob", 2, "B", &[]).unwrap();
        db.sync().unwrap();
        db.add_entry("carol", 3, "C", &[]).unwrap(); // never synced
                                                     // The device dies while the handle is still alive — a real
                                                     // crash, so the best-effort flush on drop has nowhere to write
                                                     // and C's frames are genuinely lost.
        image = wal.crash();
    }
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        CheckpointStore::mem(),
    )
    .unwrap();
    let mut keys = db.entry_keys().unwrap();
    keys.sort();
    assert_eq!(keys, vec!["A".to_string(), "B".to_string()]);
    // The lost transaction's lifecycle event vanished with it.
    assert!(db.lifecycle.fate("C").is_err());
    // And the database keeps working from the truncated state.
    let mut db = db;
    db.add_entry("dave", 4, "D", &[]).unwrap();
    assert_eq!(db.entry_keys().unwrap().len(), 3);
}

#[test]
fn checkpoint_is_used_by_recovery_and_changes_nothing() {
    let wal = SharedFaulty::new(FaultPlan::default());
    let ckpt = SharedCkpt::new();
    {
        let mut db =
            CuratedDatabase::open("iuphar", "name", Box::new(wal.clone()), ckpt.store()).unwrap();
        db.add_entry(
            "alice",
            1,
            "GABA-A",
            &[("kind", Atom::Str("receptor".into())), ("tm", Atom::Int(4))],
        )
        .unwrap();
        db.add_entry("bob", 2, "5-HT3", &[("kind", Atom::Str("receptor".into()))])
            .unwrap();
        db.publish("r0").unwrap();
        db.checkpoint().unwrap();
        db.edit_field(
            "carol",
            3,
            "GABA-A",
            "kind",
            Atom::Str("ion channel".into()),
        )
        .unwrap();
        db.annotate("GABA-A", Some("kind"), "carol", "verify vs IUPHAR", 4)
            .unwrap();
        db.add_entry("erin", 5, "NMDA", &[("tm", Atom::Int(4))])
            .unwrap();
        db.merge_entries("erin", 6, "GABA-A", "5-HT3").unwrap();
        db.split_entry("erin", 7, "NMDA", &[("NMDA-1", vec![]), ("NMDA-2", vec![])])
            .unwrap();
        db.publish("r1").unwrap();
    }
    let image = wal.crash();
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        ckpt.store(),
    )
    .unwrap();
    assert_same(&db, &reference());
    let stats = db.recovery_stats().unwrap();
    assert!(stats.used_checkpoint);
    assert_eq!(stats.txns_adopted, 2);
    assert!(stats.txns_replayed >= 4);
}

#[test]
fn torn_wal_tail_is_truncated_and_state_rolls_back_cleanly() {
    let wal = SharedFaulty::new(FaultPlan::default());
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            CheckpointStore::mem(),
        )
        .unwrap();
        db.add_entry("alice", 1, "A", &[("tm", Atom::Int(1))])
            .unwrap();
        db.add_entry("bob", 2, "B", &[]).unwrap();
    }
    let mut image = wal.crash();
    // Tear mid-frame: chop the last 3 bytes of the final frame.
    image.truncate(image.len() - 3);
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        CheckpointStore::mem(),
    )
    .unwrap();
    let stats = db.recovery_stats().unwrap();
    assert_eq!(stats.frames_dropped, 1);
    assert!(stats.bytes_dropped > 0);
    let keys = db.entry_keys().unwrap();
    assert_eq!(keys, vec!["A".to_string()]);
    // B's lifecycle creation rode in a frame after B's transaction —
    // both were torn, so the registry is consistent with the tree.
    assert!(db.lifecycle.fate("B").is_err());
    assert!(db.lifecycle.is_active("A"));
}

/// Reusing a retired identifier is rejected before anything commits,
/// so the WAL never develops a gap. (Before this was enforced, the
/// rejected op left a committed-but-never-persisted transaction in the
/// in-memory log; the next commit skipped it in the WAL forever, and
/// every later reopen failed verification — permanent data loss.)
#[test]
fn rejected_retired_id_reuse_leaves_the_wal_recoverable() {
    let wal = SharedFaulty::new(FaultPlan::default());
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            CheckpointStore::mem(),
        )
        .unwrap();
        db.add_entry("alice", 1, "A", &[]).unwrap();
        db.delete_entry("alice", 2, "A").unwrap();
        // "A" is retired: recreating it fails cleanly, committing nothing.
        assert!(db.add_entry("bob", 3, "A", &[]).is_err());
        // Follow-on commits persist fine.
        db.add_entry("bob", 4, "B", &[]).unwrap();
    }
    let image = wal.crash();
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        CheckpointStore::mem(),
    )
    .unwrap();
    assert_eq!(db.entry_keys().unwrap(), vec!["B".to_string()]);
    assert_eq!(db.lifecycle.fate("A").unwrap(), &Fate::Deleted);
    assert!(db.lifecycle.is_active("B"));
}

/// A transient WAL append failure delays persistence of that commit —
/// the next successful commit writes every unpersisted transaction, in
/// order, rather than skipping the failed one forever.
#[test]
fn failed_wal_append_is_retried_by_the_next_commit() {
    // Append #1 is the WAL header; #2 is A's commit frame; #3 (B's
    // commit frame) fails once.
    let wal = SharedFaulty::new(FaultPlan {
        fail_append: Some(3),
        ..FaultPlan::default()
    });
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            CheckpointStore::mem(),
        )
        .unwrap();
        db.add_entry("alice", 1, "A", &[]).unwrap();
        assert!(db.add_entry("bob", 2, "B", &[]).is_err(), "append fails");
        // C's commit drains B's queued frame first, then its own.
        db.add_entry("carol", 3, "C", &[]).unwrap();
    }
    let image = wal.crash();
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        CheckpointStore::mem(),
    )
    .unwrap();
    let mut keys = db.entry_keys().unwrap();
    keys.sort();
    assert_eq!(
        keys,
        vec!["A".to_string(), "B".to_string(), "C".to_string()],
        "the commit whose append failed was retried, not skipped"
    );
    assert!(db.lifecycle.is_active("B"));
    assert_eq!(db.recovery_stats().unwrap().frames_dropped, 0);
}

/// An explicit sync with nothing pending — before any commit, and
/// again after everything is already synced — is a harmless no-op:
/// no error, no effect on what recovery sees.
#[test]
fn empty_batch_sync_is_a_no_op() {
    let wal = SharedFaulty::new(FaultPlan::default());
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            CheckpointStore::mem(),
        )
        .unwrap();
        db.set_durability(Durability::Batched);
        db.sync().unwrap(); // nothing has ever been appended
        db.add_entry("alice", 1, "A", &[]).unwrap();
        db.sync().unwrap();
        db.sync().unwrap(); // batch already empty again
    }
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(wal.crash())),
        CheckpointStore::mem(),
    )
    .unwrap();
    assert_eq!(db.entry_keys().unwrap(), vec!["A".to_string()]);
}

/// A checkpoint taken while a batch is still pending must sync that
/// batch first — otherwise the checkpoint could capture state whose
/// WAL frames a crash then loses, and recovery would see a checkpoint
/// "from the future" relative to its log.
#[test]
fn checkpoint_racing_a_pending_batch_syncs_it_first() {
    let wal = SharedFaulty::new(FaultPlan::default());
    let ckpt = SharedCkpt::new();
    let image;
    {
        let mut db =
            CuratedDatabase::open("iuphar", "name", Box::new(wal.clone()), ckpt.store()).unwrap();
        db.set_durability(Durability::Batched);
        db.add_entry("alice", 1, "A", &[]).unwrap(); // pending, unsynced
        db.checkpoint().unwrap(); // must flush A before snapshotting
        db.add_entry("bob", 2, "B", &[]).unwrap(); // unsynced, lost in crash
        image = wal.crash(); // crash, not a clean drop — B is gone
    }
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        ckpt.store(),
    )
    .unwrap();
    assert_eq!(db.entry_keys().unwrap(), vec!["A".to_string()]);
    let stats = db.recovery_stats().unwrap();
    assert!(stats.used_checkpoint);
    assert_eq!(
        stats.frames_dropped, 0,
        "checkpoint state is all in the WAL"
    );
}

/// `fail_append` under group commit: one writer's append fails during
/// the window another commit's flush covers. The failed op reports the
/// error, its frames stay queued, and the next commit drains them —
/// the WAL stays gap-free through the shared group-commit path just as
/// it does through the owned path.
#[test]
fn fail_append_during_group_commit_is_retried_not_skipped() {
    use cdb_core::SharedDb;
    use std::time::Duration;

    // Append #1 is the WAL header; #2 is A's frame; #3 (B) fails once.
    let wal = SharedFaulty::new(FaultPlan {
        fail_append: Some(3),
        ..FaultPlan::default()
    });
    let db = SharedDb::open(
        "iuphar",
        "name",
        Box::new(wal.clone()),
        CheckpointStore::mem(),
        Duration::ZERO,
    )
    .unwrap();
    db.add_entry("alice", 1, "A", &[]).unwrap();
    assert!(db.add_entry("bob", 2, "B", &[]).is_err(), "append fails");
    db.add_entry("carol", 3, "C", &[]).unwrap(); // drains B's frame first
    let stats = db.group_stats().unwrap();
    assert_eq!(stats.failed_syncs, 0, "the fault was in append, not sync");
    drop(db);
    let recovered = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(wal.crash())),
        CheckpointStore::mem(),
    )
    .unwrap();
    let mut keys = recovered.entry_keys().unwrap();
    keys.sort();
    assert_eq!(
        keys,
        vec!["A".to_string(), "B".to_string(), "C".to_string()],
        "the commit whose append failed was retried, not skipped"
    );
}

/// Dropping a batched database without a final explicit sync flushes
/// the tail best-effort: a clean shutdown loses nothing.
#[test]
fn clean_drop_with_batched_durability_flushes_the_tail() {
    let wal = SharedFaulty::new(FaultPlan::default());
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            CheckpointStore::mem(),
        )
        .unwrap();
        db.set_durability(Durability::Batched);
        db.add_entry("alice", 1, "A", &[]).unwrap();
        db.add_entry("bob", 2, "B", &[]).unwrap();
        // No sync: the drop must flush what recovery will need.
    }
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(wal.crash())),
        CheckpointStore::mem(),
    )
    .unwrap();
    let mut keys = db.entry_keys().unwrap();
    keys.sort();
    assert_eq!(keys, vec!["A".to_string(), "B".to_string()]);
}

/// When the drop-time flush cannot reach the device, the failure is
/// counted (`storage.error.dropped_unsynced`) instead of panicking in
/// a destructor.
#[test]
fn failed_drop_flush_is_counted_not_fatal() {
    let counter = cdb_obs::global().counter("storage.error.dropped_unsynced");
    let before = counter.get();
    let wal = SharedFaulty::new(FaultPlan::default());
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            CheckpointStore::mem(),
        )
        .unwrap();
        db.set_durability(Durability::Batched);
        db.add_entry("alice", 1, "A", &[]).unwrap();
        let _ = wal.crash(); // device gone before the handle drops
    }
    assert!(
        counter.get() > before,
        "a failed drop flush must bump storage.error.dropped_unsynced"
    );
}

/// A device whose appends can be gated shut, to build an arbitrarily
/// large queued-frame backlog without one-shot fault plans.
#[derive(Debug, Clone)]
struct GatedIo(Arc<Mutex<(MemIo, bool)>>);

impl GatedIo {
    fn new() -> Self {
        GatedIo(Arc::new(Mutex::new((MemIo::new(), true))))
    }

    fn set_open(&self, open: bool) {
        self.0.lock().unwrap().1 = open;
    }

    fn bytes(&self) -> Vec<u8> {
        self.0.lock().unwrap().0.bytes().to_vec()
    }
}

impl Io for GatedIo {
    fn len(&self) -> Result<u64, StorageError> {
        self.0.lock().unwrap().0.len()
    }
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        self.0.lock().unwrap().0.read_at(offset, buf)
    }
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        let mut inner = self.0.lock().unwrap();
        if !inner.1 {
            return Err(StorageError::Io("append gate closed".into()));
        }
        inner.0.append(bytes)
    }
    fn flush(&mut self) -> Result<(), StorageError> {
        self.0.lock().unwrap().0.flush()
    }
    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        self.0.lock().unwrap().0.truncate(len)
    }
}

/// Ten thousand commits' worth of frames queue up behind a dead device
/// and then drain in one linear pass once it heals — the deque-backed
/// queue makes the drain O(n), and recovery sees every transaction.
#[test]
fn ten_thousand_frame_backlog_drains_in_one_pass() {
    let dev = GatedIo::new();
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(dev.clone()),
            CheckpointStore::mem(),
        )
        .unwrap();
        dev.set_open(false);
        for i in 0..10_000u64 {
            // Each add commits in memory and queues its frame; the
            // append error is reported but nothing is lost.
            assert!(db.add_entry("alice", i, &format!("E{i:05}"), &[]).is_err());
        }
        dev.set_open(true);
        db.sync().unwrap();
    }
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(dev.bytes())),
        CheckpointStore::mem(),
    )
    .unwrap();
    assert_eq!(db.entry_keys().unwrap().len(), 10_000);
    assert_eq!(db.recovery_stats().unwrap().frames_dropped, 0);
}

#[test]
fn recovered_export_matches_value_level_snapshot() {
    let wal = SharedFaulty::new(FaultPlan::default());
    let snapshot: Value;
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            CheckpointStore::mem(),
        )
        .unwrap();
        curate(&mut db);
        snapshot = db.export().unwrap();
    }
    let image = wal.crash();
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        CheckpointStore::mem(),
    )
    .unwrap();
    assert_eq!(db.export().unwrap(), snapshot);
}

/// The on-disk sharded stack end to end: per-shard segmented WALs and
/// directory checkpoint stores under one directory, a cross-shard 2PC
/// merge, a checkpoint, a live tail past it — then a clean reopen that
/// must recover every shard and the merge atomically.
#[test]
fn sharded_database_survives_clean_reopen_on_files() {
    use cdb_core::{ShardMap, ShardedDb};
    use std::time::Duration;

    let dir = std::env::temp_dir().join(format!("cdb-sharded-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let map = ShardMap::uniform(2);
    // One key per shard, probed from the map.
    let key_on = |shard: usize| {
        (b'A'..=b'z')
            .map(|b| format!("{}R", b as char))
            .find(|k| map.route(k) == shard)
            .unwrap()
    };
    let (a, z) = (key_on(0), key_on(1));
    {
        let db = ShardedDb::open_dir("iuphar", "name", map.clone(), &dir, Duration::ZERO).unwrap();
        db.add_entry("alice", 1, &a, &[("tm", Atom::Int(4))])
            .unwrap();
        db.add_entry("bob", 2, &z, &[("pore", Atom::Int(3))])
            .unwrap();
        db.merge_entries("carol", 3, &a, &z).unwrap(); // cross-shard 2PC
        db.checkpoint().unwrap();
        db.edit_field("dave", 4, &a, "tm", Atom::Int(5)).unwrap(); // live tail
    }
    let db = ShardedDb::open_dir("iuphar", "name", map, &dir, Duration::ZERO).unwrap();
    let snap = db.snapshot();
    assert_eq!(snap.entry_keys().unwrap(), vec![a.clone()]);
    assert_eq!(snap.field(&a, "tm").unwrap(), Atom::Int(5));
    // The merge carried the absorbed entry's field across shards.
    assert_eq!(snap.field(&a, "pore").unwrap(), Atom::Int(3));
    assert_eq!(snap.resolve_id(&z).unwrap(), vec![a.clone()]);

    // The reopened registry remembers z is retired (§6.2) …
    assert!(db.add_entry("erin", 5, &z, &[]).is_err());
    // … and the shards keep serving writes, including another 2PC.
    let z2 = format!("{z}2");
    assert_ne!(db.map().route(&a), db.map().route(&z2));
    db.add_entry("erin", 5, &z2, &[("tm", Atom::Int(7))])
        .unwrap();
    db.merge_entries("fred", 6, &a, &z2).unwrap();
    assert_eq!(db.snapshot().entry_keys().unwrap(), vec![a]);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Index registrations ride the WAL (AUX tag 4); postings are derived
/// state rebuilt from the recovered tree. After a crash the recovered
/// indexes must be observably identical to indexes built from scratch
/// over the same final tree — the live per-commit reconcile and the
/// recovery-time rebuild must agree.
#[test]
fn indexes_survive_crash_and_equal_a_fresh_rebuild() {
    let wal = SharedFaulty::new(FaultPlan::default());
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            CheckpointStore::mem(),
        )
        .unwrap();
        assert!(db.create_index("kind").unwrap());
        assert!(db.create_index("tm").unwrap());
        assert!(!db.create_index("tm").unwrap(), "second create is a no-op");
        curate(&mut db); // adds, edits, merge, split — all reconciled live
    }
    let image = wal.crash();
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        CheckpointStore::mem(),
    )
    .unwrap();
    // From-scratch reference: curate first, index after — postings are
    // built in one pass over the final tree, no incremental reconcile.
    let mut fresh = reference();
    fresh.create_index("kind").unwrap();
    fresh.create_index("tm").unwrap();
    assert_eq!(
        db.index_fields(),
        vec!["kind".to_string(), "tm".to_string()]
    );
    assert_eq!(db.field_index("kind"), fresh.field_index("kind"));
    assert_eq!(db.field_index("tm"), fresh.field_index("tm"));
    // Spot-check through the lookup API: the merge folded 5-HT3 into
    // GABA-A, the split retired NMDA for NMDA-1/NMDA-2 (tm-less).
    assert_eq!(
        db.index_lookup("tm", &Atom::Int(4)).unwrap(),
        vec!["GABA-A".to_string()]
    );
    assert!(db.index_lookup("tm", &Atom::Int(9)).unwrap().is_empty());
}

/// Dropping an index is as durable as creating one: after a crash the
/// dropped field stays unindexed while the surviving one still answers.
#[test]
fn drop_index_is_durable() {
    let wal = SharedFaulty::new(FaultPlan::default());
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            CheckpointStore::mem(),
        )
        .unwrap();
        db.create_index("kind").unwrap();
        db.create_index("tm").unwrap();
        curate(&mut db);
        assert!(db.drop_index("kind").unwrap());
        assert!(!db.drop_index("kind").unwrap(), "second drop is a no-op");
    }
    let image = wal.crash();
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        CheckpointStore::mem(),
    )
    .unwrap();
    assert_eq!(db.index_fields(), vec!["tm".to_string()]);
    assert!(db.field_index("kind").is_none());
    assert!(db.field_index("tm").is_some());
}

/// A checkpoint re-encodes the surviving registrations, so recovery
/// that adopts the checkpoint (and never sees the original create
/// frames) still rebuilds the indexes.
#[test]
fn checkpoint_carries_index_registrations() {
    let wal = SharedFaulty::new(FaultPlan::default());
    let ckpt = SharedCkpt::new();
    {
        let mut db =
            CuratedDatabase::open("iuphar", "name", Box::new(wal.clone()), ckpt.store()).unwrap();
        db.create_index("tm").unwrap();
        db.add_entry("alice", 1, "GABA-A", &[("tm", Atom::Int(4))])
            .unwrap();
        db.checkpoint().unwrap();
        // Tail past the checkpoint: the recovered index must cover this
        // entry too, proving rebuild runs over the fully recovered tree.
        db.add_entry("bob", 2, "5-HT3", &[("tm", Atom::Int(4))])
            .unwrap();
    }
    let image = wal.crash();
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        ckpt.store(),
    )
    .unwrap();
    assert!(db.recovery_stats().unwrap().used_checkpoint);
    assert_eq!(db.index_fields(), vec!["tm".to_string()]);
    assert_eq!(
        db.index_lookup("tm", &Atom::Int(4)).unwrap(),
        vec!["5-HT3".to_string(), "GABA-A".to_string()]
    );
}

/// The live reconcile keeps postings exact through the full curation
/// vocabulary: edits move keys between values, merges drop the absorbed
/// key everywhere, splits retire the original and index the parts, and
/// deletes unlink the key.
#[test]
fn index_reconcile_tracks_edits_merges_splits_and_deletes() {
    let mut db = CuratedDatabase::new("iuphar", "name");
    db.create_index("kind").unwrap();
    let receptor = || Atom::Str("receptor".into());
    let channel = || Atom::Str("channel".into());
    db.add_entry("a", 1, "GABA-A", &[("kind", receptor())])
        .unwrap();
    db.add_entry("a", 2, "5-HT3", &[("kind", receptor())])
        .unwrap();
    db.add_entry("a", 3, "NMDA", &[("kind", channel())])
        .unwrap();
    assert_eq!(
        db.index_lookup("kind", &receptor()).unwrap(),
        vec!["5-HT3".to_string(), "GABA-A".to_string()]
    );
    // Edit: GABA-A moves from receptor to channel.
    db.edit_field("a", 4, "GABA-A", "kind", channel()).unwrap();
    assert_eq!(
        db.index_lookup("kind", &receptor()).unwrap(),
        vec!["5-HT3".to_string()]
    );
    assert_eq!(
        db.index_lookup("kind", &channel()).unwrap(),
        vec!["GABA-A".to_string(), "NMDA".to_string()]
    );
    // Merge: 5-HT3 is absorbed — gone from every posting list.
    db.merge_entries("a", 5, "GABA-A", "5-HT3").unwrap();
    assert!(db.index_lookup("kind", &receptor()).unwrap().is_empty());
    // Split: NMDA retires; its kind-less parts index under Unit.
    db.split_entry("a", 6, "NMDA", &[("NMDA-1", vec![]), ("NMDA-2", vec![])])
        .unwrap();
    assert_eq!(
        db.index_lookup("kind", &channel()).unwrap(),
        vec!["GABA-A".to_string()]
    );
    assert_eq!(
        db.index_lookup("kind", &Atom::Unit).unwrap(),
        vec!["NMDA-1".to_string(), "NMDA-2".to_string()]
    );
    // Delete: the key is unlinked.
    db.delete_entry("a", 7, "NMDA-1").unwrap();
    assert_eq!(
        db.index_lookup("kind", &Atom::Unit).unwrap(),
        vec!["NMDA-2".to_string()]
    );
    // A failed transaction (2PC backup/restore path) leaves the index
    // exactly as before: merging with a nonexistent entry errors out.
    let before = db.field_index("kind").cloned();
    assert!(db.merge_entries("a", 8, "GABA-A", "nope").is_err());
    assert_eq!(db.field_index("kind").cloned(), before);
}

/// A planned query over an indexed field compiles to an `IndexLookup`
/// access path (visible in the plan cdbsh's `explain` renders) and
/// returns exactly the rows the naive entries view yields.
#[test]
fn planned_query_uses_the_durable_index() {
    use cdb_core::relalg::{PlanOp, Pred, RaExpr};
    use cdb_core::views::{entry_relation, query_entries_planned};

    let mut db = CuratedDatabase::new("iuphar", "name");
    db.create_index("kind").unwrap();
    for (i, (name, kind)) in [
        ("GABA-A", "receptor"),
        ("5-HT3", "receptor"),
        ("Kv1.1", "channel"),
        ("NMDA", "receptor"),
    ]
    .iter()
    .enumerate()
    {
        db.add_entry("a", i as u64, name, &[("kind", Atom::Str((*kind).into()))])
            .unwrap();
    }
    let q = RaExpr::scan("entries").select(Pred::col_eq_const("kind", "receptor"));
    let (rows, plan, runs) = query_entries_planned(&db, &["kind"], &q).unwrap();
    assert!(
        plan.ops()
            .iter()
            .any(|op| matches!(op, PlanOp::IndexLookup { col, .. } if col == "kind")),
        "expected an index scan in:\n{plan}"
    );
    assert_eq!(runs.len(), plan.operator_count());
    // Byte-identical to the naive view filtered the slow way (planned
    // results come out canonical — sorted tuple order).
    let naive = entry_relation(&db, &["kind"]).unwrap();
    let receptor = Atom::Str("receptor".into());
    let mut expect: Vec<_> = naive
        .tuples()
        .iter()
        .filter(|t| t[1] == receptor)
        .cloned()
        .collect();
    expect.sort();
    assert_eq!(rows.tuples().to_vec(), expect);
}
