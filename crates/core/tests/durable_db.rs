//! End-to-end durability for the integrated database: open → curate →
//! crash/reopen → identical state, across file, memory, and
//! fault-injected devices.

use std::sync::{Arc, Mutex};

use cdb_core::storage::{FaultPlan, FaultyIo, Io, MemIo, StorageError};
use cdb_core::{CuratedDatabase, Durability, Fate};
use cdb_model::{Atom, Value};

/// A fault-injected device the test keeps a handle on after the
/// database takes ownership, so it can crash it post-drop. (`Mutex`
/// rather than `RefCell` because `Io` is `Send + Sync` — devices can
/// be shared with concurrent databases.)
#[derive(Debug, Clone)]
struct SharedFaulty(Arc<Mutex<Option<FaultyIo>>>);

impl SharedFaulty {
    fn new(plan: FaultPlan) -> Self {
        SharedFaulty(Arc::new(Mutex::new(Some(FaultyIo::new(plan)))))
    }

    fn crash(&self) -> Vec<u8> {
        self.0
            .lock()
            .unwrap()
            .take()
            .expect("device already crashed")
            .crash()
    }
}

impl Io for SharedFaulty {
    fn len(&self) -> Result<u64, StorageError> {
        self.0.lock().unwrap().as_ref().unwrap().len()
    }
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        self.0
            .lock()
            .unwrap()
            .as_mut()
            .unwrap()
            .read_at(offset, buf)
    }
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.0.lock().unwrap().as_mut().unwrap().append(bytes)
    }
    fn flush(&mut self) -> Result<(), StorageError> {
        self.0.lock().unwrap().as_mut().unwrap().flush()
    }
    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        self.0.lock().unwrap().as_mut().unwrap().truncate(len)
    }
}

/// Shared in-memory device for the checkpoint file, surviving the
/// database that owns the boxed handle.
#[derive(Debug, Clone)]
struct SharedMem(Arc<Mutex<MemIo>>);

impl SharedMem {
    fn new() -> Self {
        SharedMem(Arc::new(Mutex::new(MemIo::new())))
    }
}

impl Io for SharedMem {
    fn len(&self) -> Result<u64, StorageError> {
        self.0.lock().unwrap().len()
    }
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        self.0.lock().unwrap().read_at(offset, buf)
    }
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.0.lock().unwrap().append(bytes)
    }
    fn flush(&mut self) -> Result<(), StorageError> {
        self.0.lock().unwrap().flush()
    }
    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        self.0.lock().unwrap().truncate(len)
    }
}

/// Runs a representative curation career against the database: adds,
/// edits, annotations, a merge, a split, and two publishes.
fn curate(db: &mut CuratedDatabase) {
    db.add_entry(
        "alice",
        1,
        "GABA-A",
        &[("kind", Atom::Str("receptor".into())), ("tm", Atom::Int(4))],
    )
    .unwrap();
    db.add_entry("bob", 2, "5-HT3", &[("kind", Atom::Str("receptor".into()))])
        .unwrap();
    db.publish("r0").unwrap();
    db.edit_field(
        "carol",
        3,
        "GABA-A",
        "kind",
        Atom::Str("ion channel".into()),
    )
    .unwrap();
    db.annotate("GABA-A", Some("kind"), "carol", "verify vs IUPHAR", 4)
        .unwrap();
    db.add_entry("erin", 5, "NMDA", &[("tm", Atom::Int(4))])
        .unwrap();
    db.merge_entries("erin", 6, "GABA-A", "5-HT3").unwrap();
    db.split_entry("erin", 7, "NMDA", &[("NMDA-1", vec![]), ("NMDA-2", vec![])])
        .unwrap();
    db.publish("r1").unwrap();
}

/// Asserts the recovered database is observably identical to the
/// reference: tree + provenance + log, lifecycle, notes, and every
/// archived version.
fn assert_same(recovered: &CuratedDatabase, reference: &CuratedDatabase) {
    assert_eq!(recovered.curated, reference.curated);
    assert_eq!(recovered.lifecycle, reference.lifecycle);
    assert_eq!(
        recovered.notes_on("GABA-A", Some("kind")),
        reference.notes_on("GABA-A", Some("kind"))
    );
    assert_eq!(
        recovered.archive().version_count(),
        reference.archive().version_count()
    );
    for v in 0..reference.archive().version_count() {
        assert_eq!(
            recovered.version(v).unwrap(),
            reference.version(v).unwrap(),
            "archived version {v} differs"
        );
    }
    assert_eq!(recovered.export().unwrap(), reference.export().unwrap());
}

fn reference() -> CuratedDatabase {
    let mut db = CuratedDatabase::new("iuphar", "name");
    curate(&mut db);
    db
}

#[test]
fn durable_database_survives_clean_reopen_on_files() {
    let dir = std::env::temp_dir().join(format!("cdb-durable-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    {
        let mut db = CuratedDatabase::open_dir("iuphar", "name", &dir).unwrap();
        assert!(db.is_durable());
        assert!(db.recovery_stats().is_some());
        curate(&mut db);
    }
    let db = CuratedDatabase::open_dir("iuphar", "name", &dir).unwrap();
    assert_same(&db, &reference());
    let stats = db.recovery_stats().unwrap();
    assert_eq!(stats.frames_dropped, 0);
    assert!(stats.frames_scanned > 0);

    // The reopened database keeps working: ids, publishes, citations.
    let mut db = db;
    db.add_entry("fred", 8, "AMPA", &[]).unwrap();
    let v = db.publish("r2").unwrap();
    let cited = db.cite(v, "AMPA").unwrap();
    assert!(cited.authors.contains(&"fred".to_string()));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_with_always_durability_loses_nothing() {
    let wal = SharedFaulty::new(FaultPlan::default());
    let ckpt = SharedMem::new();
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            Box::new(ckpt.clone()),
        )
        .unwrap();
        assert_eq!(db.durability(), Durability::Always);
        curate(&mut db);
        // db dropped without any orderly shutdown.
    }
    let image = wal.crash();
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        Box::new(ckpt),
    )
    .unwrap();
    assert_same(&db, &reference());
}

#[test]
fn crash_with_batched_durability_loses_only_the_unsynced_tail() {
    let wal = SharedFaulty::new(FaultPlan::default());
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            Box::new(MemIo::new()),
        )
        .unwrap();
        db.set_durability(Durability::Batched);
        db.add_entry("alice", 1, "A", &[("tm", Atom::Int(1))])
            .unwrap();
        db.add_entry("bob", 2, "B", &[]).unwrap();
        db.sync().unwrap();
        db.add_entry("carol", 3, "C", &[]).unwrap(); // never synced
    }
    let image = wal.crash();
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        Box::new(MemIo::new()),
    )
    .unwrap();
    let mut keys = db.entry_keys().unwrap();
    keys.sort();
    assert_eq!(keys, vec!["A".to_string(), "B".to_string()]);
    // The lost transaction's lifecycle event vanished with it.
    assert!(db.lifecycle.fate("C").is_err());
    // And the database keeps working from the truncated state.
    let mut db = db;
    db.add_entry("dave", 4, "D", &[]).unwrap();
    assert_eq!(db.entry_keys().unwrap().len(), 3);
}

#[test]
fn checkpoint_is_used_by_recovery_and_changes_nothing() {
    let wal = SharedFaulty::new(FaultPlan::default());
    let ckpt = SharedMem::new();
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            Box::new(ckpt.clone()),
        )
        .unwrap();
        db.add_entry(
            "alice",
            1,
            "GABA-A",
            &[("kind", Atom::Str("receptor".into())), ("tm", Atom::Int(4))],
        )
        .unwrap();
        db.add_entry("bob", 2, "5-HT3", &[("kind", Atom::Str("receptor".into()))])
            .unwrap();
        db.publish("r0").unwrap();
        db.checkpoint().unwrap();
        db.edit_field(
            "carol",
            3,
            "GABA-A",
            "kind",
            Atom::Str("ion channel".into()),
        )
        .unwrap();
        db.annotate("GABA-A", Some("kind"), "carol", "verify vs IUPHAR", 4)
            .unwrap();
        db.add_entry("erin", 5, "NMDA", &[("tm", Atom::Int(4))])
            .unwrap();
        db.merge_entries("erin", 6, "GABA-A", "5-HT3").unwrap();
        db.split_entry("erin", 7, "NMDA", &[("NMDA-1", vec![]), ("NMDA-2", vec![])])
            .unwrap();
        db.publish("r1").unwrap();
    }
    let image = wal.crash();
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        Box::new(ckpt),
    )
    .unwrap();
    assert_same(&db, &reference());
    let stats = db.recovery_stats().unwrap();
    assert!(stats.used_checkpoint);
    assert_eq!(stats.txns_adopted, 2);
    assert!(stats.txns_replayed >= 4);
}

#[test]
fn torn_wal_tail_is_truncated_and_state_rolls_back_cleanly() {
    let wal = SharedFaulty::new(FaultPlan::default());
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            Box::new(MemIo::new()),
        )
        .unwrap();
        db.add_entry("alice", 1, "A", &[("tm", Atom::Int(1))])
            .unwrap();
        db.add_entry("bob", 2, "B", &[]).unwrap();
    }
    let mut image = wal.crash();
    // Tear mid-frame: chop the last 3 bytes of the final frame.
    image.truncate(image.len() - 3);
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        Box::new(MemIo::new()),
    )
    .unwrap();
    let stats = db.recovery_stats().unwrap();
    assert_eq!(stats.frames_dropped, 1);
    assert!(stats.bytes_dropped > 0);
    let keys = db.entry_keys().unwrap();
    assert_eq!(keys, vec!["A".to_string()]);
    // B's lifecycle creation rode in a frame after B's transaction —
    // both were torn, so the registry is consistent with the tree.
    assert!(db.lifecycle.fate("B").is_err());
    assert!(db.lifecycle.is_active("A"));
}

/// Reusing a retired identifier is rejected before anything commits,
/// so the WAL never develops a gap. (Before this was enforced, the
/// rejected op left a committed-but-never-persisted transaction in the
/// in-memory log; the next commit skipped it in the WAL forever, and
/// every later reopen failed verification — permanent data loss.)
#[test]
fn rejected_retired_id_reuse_leaves_the_wal_recoverable() {
    let wal = SharedFaulty::new(FaultPlan::default());
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            Box::new(MemIo::new()),
        )
        .unwrap();
        db.add_entry("alice", 1, "A", &[]).unwrap();
        db.delete_entry("alice", 2, "A").unwrap();
        // "A" is retired: recreating it fails cleanly, committing nothing.
        assert!(db.add_entry("bob", 3, "A", &[]).is_err());
        // Follow-on commits persist fine.
        db.add_entry("bob", 4, "B", &[]).unwrap();
    }
    let image = wal.crash();
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        Box::new(MemIo::new()),
    )
    .unwrap();
    assert_eq!(db.entry_keys().unwrap(), vec!["B".to_string()]);
    assert_eq!(db.lifecycle.fate("A").unwrap(), &Fate::Deleted);
    assert!(db.lifecycle.is_active("B"));
}

/// A transient WAL append failure delays persistence of that commit —
/// the next successful commit writes every unpersisted transaction, in
/// order, rather than skipping the failed one forever.
#[test]
fn failed_wal_append_is_retried_by_the_next_commit() {
    // Append #1 is the WAL header; #2 is A's commit frame; #3 (B's
    // commit frame) fails once.
    let wal = SharedFaulty::new(FaultPlan {
        fail_append: Some(3),
        ..FaultPlan::default()
    });
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            Box::new(MemIo::new()),
        )
        .unwrap();
        db.add_entry("alice", 1, "A", &[]).unwrap();
        assert!(db.add_entry("bob", 2, "B", &[]).is_err(), "append fails");
        // C's commit drains B's queued frame first, then its own.
        db.add_entry("carol", 3, "C", &[]).unwrap();
    }
    let image = wal.crash();
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        Box::new(MemIo::new()),
    )
    .unwrap();
    let mut keys = db.entry_keys().unwrap();
    keys.sort();
    assert_eq!(
        keys,
        vec!["A".to_string(), "B".to_string(), "C".to_string()],
        "the commit whose append failed was retried, not skipped"
    );
    assert!(db.lifecycle.is_active("B"));
    assert_eq!(db.recovery_stats().unwrap().frames_dropped, 0);
}

/// An explicit sync with nothing pending — before any commit, and
/// again after everything is already synced — is a harmless no-op:
/// no error, no effect on what recovery sees.
#[test]
fn empty_batch_sync_is_a_no_op() {
    let wal = SharedFaulty::new(FaultPlan::default());
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            Box::new(MemIo::new()),
        )
        .unwrap();
        db.set_durability(Durability::Batched);
        db.sync().unwrap(); // nothing has ever been appended
        db.add_entry("alice", 1, "A", &[]).unwrap();
        db.sync().unwrap();
        db.sync().unwrap(); // batch already empty again
    }
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(wal.crash())),
        Box::new(MemIo::new()),
    )
    .unwrap();
    assert_eq!(db.entry_keys().unwrap(), vec!["A".to_string()]);
}

/// A checkpoint taken while a batch is still pending must sync that
/// batch first — otherwise the checkpoint could capture state whose
/// WAL frames a crash then loses, and recovery would see a checkpoint
/// "from the future" relative to its log.
#[test]
fn checkpoint_racing_a_pending_batch_syncs_it_first() {
    let wal = SharedFaulty::new(FaultPlan::default());
    let ckpt = SharedMem::new();
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            Box::new(ckpt.clone()),
        )
        .unwrap();
        db.set_durability(Durability::Batched);
        db.add_entry("alice", 1, "A", &[]).unwrap(); // pending, unsynced
        db.checkpoint().unwrap(); // must flush A before snapshotting
        db.add_entry("bob", 2, "B", &[]).unwrap(); // unsynced, lost in crash
    }
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(wal.crash())),
        Box::new(ckpt),
    )
    .unwrap();
    assert_eq!(db.entry_keys().unwrap(), vec!["A".to_string()]);
    let stats = db.recovery_stats().unwrap();
    assert!(stats.used_checkpoint);
    assert_eq!(
        stats.frames_dropped, 0,
        "checkpoint state is all in the WAL"
    );
}

/// `fail_append` under group commit: one writer's append fails during
/// the window another commit's flush covers. The failed op reports the
/// error, its frames stay queued, and the next commit drains them —
/// the WAL stays gap-free through the shared group-commit path just as
/// it does through the owned path.
#[test]
fn fail_append_during_group_commit_is_retried_not_skipped() {
    use cdb_core::SharedDb;
    use std::time::Duration;

    // Append #1 is the WAL header; #2 is A's frame; #3 (B) fails once.
    let wal = SharedFaulty::new(FaultPlan {
        fail_append: Some(3),
        ..FaultPlan::default()
    });
    let db = SharedDb::open(
        "iuphar",
        "name",
        Box::new(wal.clone()),
        Box::new(MemIo::new()),
        Duration::ZERO,
    )
    .unwrap();
    db.add_entry("alice", 1, "A", &[]).unwrap();
    assert!(db.add_entry("bob", 2, "B", &[]).is_err(), "append fails");
    db.add_entry("carol", 3, "C", &[]).unwrap(); // drains B's frame first
    let stats = db.group_stats().unwrap();
    assert_eq!(stats.failed_syncs, 0, "the fault was in append, not sync");
    drop(db);
    let recovered = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(wal.crash())),
        Box::new(MemIo::new()),
    )
    .unwrap();
    let mut keys = recovered.entry_keys().unwrap();
    keys.sort();
    assert_eq!(
        keys,
        vec!["A".to_string(), "B".to_string(), "C".to_string()],
        "the commit whose append failed was retried, not skipped"
    );
}

#[test]
fn recovered_export_matches_value_level_snapshot() {
    let wal = SharedFaulty::new(FaultPlan::default());
    let snapshot: Value;
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            Box::new(MemIo::new()),
        )
        .unwrap();
        curate(&mut db);
        snapshot = db.export().unwrap();
    }
    let image = wal.crash();
    let db = CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        Box::new(MemIo::new()),
    )
    .unwrap();
    assert_eq!(db.export().unwrap(), snapshot);
}
