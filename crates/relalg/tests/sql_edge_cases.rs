//! SQL front-end edge cases: precedence, parenthesization, aliasing,
//! literals, and error positions.

use cdb_model::Atom;
use cdb_relalg::sql::{execute, parse, parse_script, Statement};
use cdb_relalg::{Database, Relation};

fn int(i: i64) -> Atom {
    Atom::Int(i)
}

fn db() -> Database {
    Database::new().with(
        "T",
        Relation::table(
            ["a", "b", "c"],
            [
                vec![int(1), int(1), int(0)],
                vec![int(1), int(0), int(1)],
                vec![int(0), int(1), int(1)],
                vec![int(0), int(0), int(0)],
            ],
        )
        .unwrap(),
    )
}

#[test]
fn and_binds_tighter_than_or() {
    let mut d = db();
    // a=1 OR b=1 AND c=1  ≡  a=1 OR (b=1 AND c=1)
    let r = execute(&mut d, "SELECT * FROM T WHERE a = 1 OR b = 1 AND c = 1").unwrap();
    assert_eq!(r.len(), 3, "rows 1,2 (a=1) and row 3 (b=1∧c=1)");
    // Parenthesized the other way gives a different result.
    let r2 = execute(&mut d, "SELECT * FROM T WHERE (a = 1 OR b = 1) AND c = 1").unwrap();
    assert_eq!(r2.len(), 2, "rows with c=1 among a=1∨b=1");
}

#[test]
fn not_and_nested_parens() {
    let mut d = db();
    let r = execute(&mut d, "SELECT * FROM T WHERE NOT (a = 1 OR b = 1)").unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.tuples()[0], vec![int(0), int(0), int(0)]);
    let r2 = execute(&mut d, "SELECT * FROM T WHERE NOT NOT a = 1").unwrap();
    assert_eq!(r2.len(), 2);
}

#[test]
fn comparison_operators() {
    let mut d = db();
    for (q, n) in [
        ("SELECT * FROM T WHERE a <= 0", 2),
        ("SELECT * FROM T WHERE a >= 1", 2),
        ("SELECT * FROM T WHERE a < b", 1),
        ("SELECT * FROM T WHERE a > b", 1),
        ("SELECT * FROM T WHERE a <> b", 2),
    ] {
        let r = execute(&mut d, q).unwrap();
        assert_eq!(r.len(), n, "{q}");
    }
}

#[test]
fn implicit_alias_without_as() {
    let mut d = db();
    let r = execute(&mut d, "SELECT x.a FROM T x WHERE x.b = 1").unwrap();
    assert_eq!(r.len(), 2);
}

#[test]
fn distinct_keyword_is_accepted() {
    let mut d = db();
    let r = execute(&mut d, "SELECT DISTINCT a FROM T").unwrap();
    assert_eq!(r.len(), 2, "set semantics anyway");
}

#[test]
fn boolean_and_null_literals() {
    let mut d = Database::new().with(
        "U",
        Relation::table(["x", "flag"], [vec![int(1), Atom::Bool(true)]]).unwrap(),
    );
    let r = execute(&mut d, "SELECT * FROM U WHERE flag = true").unwrap();
    assert_eq!(r.len(), 1);
    let stmt = parse("INSERT INTO U VALUES (2, null)").unwrap();
    match stmt {
        Statement::Insert { rows, .. } => assert_eq!(rows[0][1], Atom::Unit),
        _ => panic!(),
    }
}

#[test]
fn negative_numbers() {
    let mut d = Database::new().with(
        "N",
        Relation::table(["x"], [vec![int(-5)], vec![int(5)]]).unwrap(),
    );
    let r = execute(&mut d, "SELECT * FROM N WHERE x = -5").unwrap();
    assert_eq!(r.len(), 1);
    let r2 = execute(&mut d, "SELECT * FROM N WHERE x < -4").unwrap();
    assert_eq!(r2.len(), 1);
}

#[test]
fn triple_union_and_except_chain() {
    let mut d = db();
    let r = execute(
        &mut d,
        "SELECT a FROM T WHERE a = 1 UNION SELECT b AS a FROM T \
         UNION SELECT c AS a FROM T EXCEPT SELECT a FROM T WHERE a = 0",
    )
    .unwrap();
    // Left-assoc: (((a=1) ∪ b ∪ c) − {0}) = {1}.
    assert_eq!(r.tuples(), &[vec![int(1)]]);
}

#[test]
fn error_positions_point_into_the_input() {
    for (q, min_at) in [
        ("SELECT", 6),
        ("SELECT a FROM", 13),
        ("SELECT a FROM T WHERE", 21),
        ("SELECT a FROM T WHERE a ==", 25),
    ] {
        match parse(q) {
            Err(cdb_relalg::RelalgError::Parse { at, .. }) => {
                assert!(at >= min_at.min(q.len()), "{q}: at={at}")
            }
            other => panic!("{q}: expected parse error, got {other:?}"),
        }
    }
}

#[test]
fn scripts_tolerate_blank_statements_and_trailing_semis() {
    let s = parse_script(";;SELECT a FROM T;;;DELETE FROM T;;").unwrap();
    assert_eq!(s.len(), 2);
    assert!(parse_script("SELECT a FROM T DELETE").is_err());
}

#[test]
fn update_multiple_assignments() {
    let mut d = db();
    // Rows (1,1,0) and (0,0,0) both become (7,8,0): under set semantics
    // they merge into one tuple.
    execute(&mut d, "UPDATE T SET a = 7, b = 8 WHERE c = 0").unwrap();
    let r = execute(&mut d, "SELECT * FROM T WHERE a = 7 AND b = 8").unwrap();
    assert_eq!(r.tuples(), &[vec![int(7), int(8), int(0)]]);
    assert_eq!(d.get("T").unwrap().len(), 3, "4 rows collapsed to 3");
}

#[test]
fn keywords_case_insensitive() {
    let mut d = db();
    let r = execute(
        &mut d,
        "select a from T where a = 1 union select b as a from T",
    )
    .unwrap();
    assert_eq!(r.tuple_set().len(), 2);
}
