//! Property-based tests: algebraic laws of the evaluator on random
//! relations, and parser/printer coherence.

use cdb_model::Atom;
use cdb_relalg::eval::eval;
use cdb_relalg::{Database, Pred, RaExpr, Relation};
use proptest::prelude::*;

/// Random two-column relations with small integer domains (to force
/// collisions, joins and duplicates).
fn rel() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..6, 0i64..6), 0..10)
}

fn build(r: &[(i64, i64)], s: &[(i64, i64)]) -> Database {
    let mk = |rows: &[(i64, i64)], attrs: [&str; 2]| {
        Relation::table(
            attrs,
            rows.iter().map(|(a, b)| vec![Atom::Int(*a), Atom::Int(*b)]),
        )
        .unwrap()
    };
    Database::new()
        .with("R", mk(r, ["A", "B"]))
        .with("S", mk(s, ["B", "C"]))
        .with("T", mk(s, ["A", "B"]))
}

proptest! {
    /// Union is commutative and associative (as sets), and idempotent.
    #[test]
    fn union_laws(r in rel(), s in rel()) {
        let db = build(&r, &s);
        let ru_t = eval(&db, &RaExpr::scan("R").union(RaExpr::scan("T"))).unwrap();
        let tu_r = eval(&db, &RaExpr::scan("T").union(RaExpr::scan("R"))).unwrap();
        prop_assert!(ru_t.set_eq(&tu_r));
        let r_twice = eval(&db, &RaExpr::scan("R").union(RaExpr::scan("R"))).unwrap();
        let r_once = eval(&db, &RaExpr::scan("R")).unwrap();
        prop_assert!(r_twice.set_eq(&r_once));
    }

    /// Selections commute, and conjunction equals composition.
    #[test]
    fn selection_laws(r in rel(), s in rel()) {
        let db = build(&r, &s);
        let p = Pred::col_eq_const("A", 2);
        let q = Pred::col_eq_const("B", 3);
        let pq = eval(&db, &RaExpr::scan("R").select(p.clone()).select(q.clone())).unwrap();
        let qp = eval(&db, &RaExpr::scan("R").select(q.clone()).select(p.clone())).unwrap();
        let conj = eval(&db, &RaExpr::scan("R").select(p.clone().and(q.clone()))).unwrap();
        prop_assert!(pq.set_eq(&qp));
        prop_assert!(pq.set_eq(&conj));
    }

    /// Difference laws: R − S ⊆ R; R − R = ∅; (R − T) ∪ (R ∩ T) = R.
    #[test]
    fn difference_laws(r in rel(), s in rel()) {
        let db = build(&r, &s);
        let diff = eval(&db, &RaExpr::scan("R").diff(RaExpr::scan("T"))).unwrap();
        let r_rel = eval(&db, &RaExpr::scan("R")).unwrap();
        for t in diff.tuples() {
            prop_assert!(r_rel.contains(t));
        }
        let self_diff = eval(&db, &RaExpr::scan("R").diff(RaExpr::scan("R"))).unwrap();
        prop_assert!(self_diff.is_empty());
        // R ∩ T via double difference.
        let inter = eval(
            &db,
            &RaExpr::scan("R").diff(RaExpr::scan("R").diff(RaExpr::scan("T"))),
        )
        .unwrap();
        let rebuilt = {
            let mut u = diff.clone();
            for t in inter.tuples() {
                u.insert(t.clone()).unwrap();
            }
            u
        };
        prop_assert!(rebuilt.set_eq(&r_rel));
    }

    /// The natural join is contained in the product filtered on equal
    /// shared attributes, and join with a full-domain relation is lossless.
    #[test]
    fn join_agrees_with_filtered_product(r in rel(), s in rel()) {
        let db = build(&r, &s);
        let join = eval(&db, &RaExpr::scan("R").natural_join(RaExpr::scan("S"))).unwrap();
        let prod = eval(
            &db,
            &RaExpr::ScanAs("R".into(), "r".into())
                .product(RaExpr::ScanAs("S".into(), "s".into()))
                .select(Pred::col_eq_col("r.B", "s.B"))
                .project(vec![
                    cdb_relalg::ProjItem::col("r.A", "A"),
                    cdb_relalg::ProjItem::col("r.B", "B"),
                    cdb_relalg::ProjItem::col("s.C", "C"),
                ]),
        )
        .unwrap();
        prop_assert!(join.set_eq(&prod));
    }

    /// Projection is monotone and never increases cardinality.
    #[test]
    fn projection_cardinality(r in rel(), s in rel()) {
        let db = build(&r, &s);
        let base = eval(&db, &RaExpr::scan("R")).unwrap();
        let proj = eval(&db, &RaExpr::scan("R").project_cols(["A"])).unwrap();
        prop_assert!(proj.len() <= base.len());
    }

    /// Queries built by the SQL parser agree with hand-built algebra.
    #[test]
    fn sql_agrees_with_algebra(r in rel(), s in rel(), k in 0i64..6) {
        let mut db = build(&r, &s);
        let via_sql = cdb_relalg::sql::execute(
            &mut db,
            &format!("SELECT A FROM R WHERE B = {k}"),
        )
        .unwrap();
        let via_ra = eval(
            &db,
            &RaExpr::scan("R")
                .select(Pred::col_eq_const("B", k))
                .project_cols(["A"]),
        )
        .unwrap();
        prop_assert!(via_sql.set_eq(&via_ra));
    }
}
