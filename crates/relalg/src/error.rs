//! Errors produced by the relational algebra engine.

use std::fmt;

/// Errors from building, parsing or evaluating relational queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelalgError {
    /// A scanned relation is not in the database.
    NoSuchRelation(String),
    /// An attribute reference did not resolve against a schema.
    NoSuchAttribute {
        /// The attribute that failed to resolve.
        attr: String,
        /// The schema it was resolved against, for diagnostics.
        schema: Vec<String>,
    },
    /// An attribute reference resolved to more than one column.
    AmbiguousAttribute {
        /// The ambiguous attribute.
        attr: String,
        /// The columns it could mean.
        candidates: Vec<String>,
    },
    /// Union/difference of relations with different arities or attribute
    /// names.
    SchemaMismatch {
        /// Left schema.
        left: Vec<String>,
        /// Right schema.
        right: Vec<String>,
    },
    /// A duplicate attribute name would be produced.
    DuplicateAttribute(String),
    /// A comparison was applied to incomparable atoms.
    TypeError(String),
    /// A syntax error from the SQL-ish parser.
    Parse {
        /// Byte offset of the error in the input.
        at: usize,
        /// Description of what went wrong.
        msg: String,
    },
    /// An update statement was applied to a missing relation, or had the
    /// wrong arity.
    UpdateError(String),
}

impl fmt::Display for RelalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelalgError::NoSuchRelation(r) => write!(f, "no such relation {r:?}"),
            RelalgError::NoSuchAttribute { attr, schema } => {
                write!(f, "no attribute {attr:?} in schema {schema:?}")
            }
            RelalgError::AmbiguousAttribute { attr, candidates } => {
                write!(f, "ambiguous attribute {attr:?}: could be {candidates:?}")
            }
            RelalgError::SchemaMismatch { left, right } => {
                write!(f, "schema mismatch: {left:?} vs {right:?}")
            }
            RelalgError::DuplicateAttribute(a) => {
                write!(f, "duplicate attribute {a:?}")
            }
            RelalgError::TypeError(m) => write!(f, "type error: {m}"),
            RelalgError::Parse { at, msg } => write!(f, "parse error at byte {at}: {msg}"),
            RelalgError::UpdateError(m) => write!(f, "update error: {m}"),
        }
    }
}

impl std::error::Error for RelalgError {}
