//! Conjunctive queries / Datalog rules.
//!
//! Figure 4 of the paper derives semiring provenance for the program
//!
//! ```text
//! V(X, Z) :- R(X, _, Z)
//! V(X, Z) :- R(X, Y, _), R(_, Y, Z)
//! ```
//!
//! This module provides the rule representation and the matching
//! machinery. Evaluation returns, for every derived head tuple, the list
//! of *derivations* — for each rule match, the base tuples used — which
//! is exactly the information a provenance semiring interprets: each
//! derivation becomes a product (`·`) of the base-tuple annotations, and
//! alternative derivations are summed (`+`). The semiring interpretation
//! itself lives in `cdb-semiring`.
//!
//! Recursive programs are supported via naive fixpoint iteration, which
//! §6.3 notes is what the "recursive querying of hierarchical data"
//! needed by ontologies comes down to.

use std::collections::BTreeMap;
use std::fmt;

use cdb_model::Atom;

use crate::database::Database;
use crate::error::RelalgError;
use crate::relation::{Relation, Schema, Tuple};

/// A term in an atom pattern.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Term {
    /// A variable.
    Var(String),
    /// A constant.
    Const(Atom),
    /// An anonymous variable (`_`), matching anything.
    Wildcard,
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(a) => write!(f, "{a}"),
            Term::Wildcard => write!(f, "_"),
        }
    }
}

/// An atom pattern `R(t1, …, tn)` in a rule body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomPattern {
    /// The relation name.
    pub relation: String,
    /// The terms, positionally matched against tuples.
    pub terms: Vec<Term>,
}

impl AtomPattern {
    /// Builds an atom pattern.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        AtomPattern {
            relation: relation.into(),
            terms,
        }
    }
}

impl fmt::Display for AtomPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ts: Vec<String> = self.terms.iter().map(|t| t.to_string()).collect();
        write!(f, "{}({})", self.relation, ts.join(", "))
    }
}

/// A Datalog rule `H(x̄) :- B1, …, Bn`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The head relation name.
    pub head: String,
    /// The head terms (variables or constants; no wildcards).
    pub head_terms: Vec<Term>,
    /// The body atoms.
    pub body: Vec<AtomPattern>,
}

impl Rule {
    /// Builds a rule, rejecting unsafe heads (head variables must occur
    /// in the body; wildcards are not allowed in heads).
    pub fn new(
        head: impl Into<String>,
        head_terms: Vec<Term>,
        body: Vec<AtomPattern>,
    ) -> Result<Self, RelalgError> {
        for t in &head_terms {
            match t {
                Term::Wildcard => {
                    return Err(RelalgError::UpdateError("wildcard in rule head".to_owned()))
                }
                Term::Var(v) => {
                    let bound = body
                        .iter()
                        .flat_map(|a| a.terms.iter())
                        .any(|bt| matches!(bt, Term::Var(bv) if bv == v));
                    if !bound {
                        return Err(RelalgError::UpdateError(format!(
                            "unsafe rule: head variable {v} not bound in body"
                        )));
                    }
                }
                Term::Const(_) => {}
            }
        }
        Ok(Rule {
            head: head.into(),
            head_terms,
            body,
        })
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hs: Vec<String> = self.head_terms.iter().map(|t| t.to_string()).collect();
        let bs: Vec<String> = self.body.iter().map(|a| a.to_string()).collect();
        write!(f, "{}({}) :- {}", self.head, hs.join(", "), bs.join(", "))
    }
}

/// A variable substitution.
pub type Substitution = BTreeMap<String, Atom>;

/// One body match: the substitution and the base tuples used per atom.
pub type BodyMatch = (Substitution, Vec<(String, Tuple)>);

/// The derivations of every derived tuple, keyed by `(relation, tuple)`.
pub type DerivationMap = BTreeMap<(String, Tuple), Vec<Derivation>>;

/// One way of deriving a head tuple: the rule index in the program and
/// the base tuples matched by each body atom, in body order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Derivation {
    /// Index of the rule in the program.
    pub rule: usize,
    /// For each body atom, `(relation, matched tuple)`.
    pub uses: Vec<(String, Tuple)>,
}

/// All matches of a rule body against a database: for each complete
/// substitution, the substitution and the tuples used.
pub fn body_matches(db: &Database, body: &[AtomPattern]) -> Result<Vec<BodyMatch>, RelalgError> {
    let mut results = Vec::new();
    match_from(
        db,
        body,
        0,
        &mut Substitution::new(),
        &mut Vec::new(),
        &mut results,
    )?;
    Ok(results)
}

fn match_from(
    db: &Database,
    body: &[AtomPattern],
    idx: usize,
    subst: &mut Substitution,
    uses: &mut Vec<(String, Tuple)>,
    out: &mut Vec<BodyMatch>,
) -> Result<(), RelalgError> {
    if idx == body.len() {
        out.push((subst.clone(), uses.clone()));
        return Ok(());
    }
    let pat = &body[idx];
    let rel = db.get(&pat.relation)?;
    if rel.schema().arity() != pat.terms.len() {
        return Err(RelalgError::UpdateError(format!(
            "pattern {pat} has arity {} but relation has arity {}",
            pat.terms.len(),
            rel.schema().arity()
        )));
    }
    // Deduplicate candidate tuples (set semantics at the base).
    for tuple in rel.tuple_set() {
        let mut bound_here: Vec<String> = Vec::new();
        let mut ok = true;
        for (term, atom) in pat.terms.iter().zip(&tuple) {
            match term {
                Term::Wildcard => {}
                Term::Const(c) => {
                    if c != atom {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match subst.get(v) {
                    Some(bound) => {
                        if bound != atom {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        subst.insert(v.clone(), atom.clone());
                        bound_here.push(v.clone());
                    }
                },
            }
        }
        if ok {
            uses.push((pat.relation.clone(), tuple.clone()));
            match_from(db, body, idx + 1, subst, uses, out)?;
            uses.pop();
        }
        for v in bound_here {
            subst.remove(&v);
        }
    }
    Ok(())
}

/// Evaluates a program (a set of rules, possibly with several rules per
/// head and possibly recursive) to a fixpoint, returning the derived
/// database (head relations only). Head relation schemas are synthesized
/// as `c0, c1, …`.
pub fn eval_program(db: &Database, rules: &[Rule]) -> Result<Database, RelalgError> {
    Ok(eval_with_derivations(db, rules)?.0)
}

/// Like [`eval_program`], but also returns, for every derived tuple of
/// every head relation, the set of derivations that produce it. A
/// derivation's `uses` refer to tuples of the *input* database only for
/// non-recursive programs; for recursive programs intermediate head
/// tuples can appear, and the caller (the semiring fixpoint in
/// `cdb-semiring`) is expected to iterate.
pub fn eval_with_derivations(
    db: &Database,
    rules: &[Rule],
) -> Result<(Database, DerivationMap), RelalgError> {
    let mut work = db.clone();
    // Ensure head relations exist (possibly empty) so bodies that
    // reference them (recursion) resolve.
    for rule in rules {
        let arity = rule.head_terms.len();
        if work.get(&rule.head).is_err() {
            let schema = Schema::new((0..arity).map(|i| format!("c{i}")))?;
            work.insert(rule.head.clone(), Relation::empty(schema));
        }
    }
    let mut derivs: DerivationMap = BTreeMap::new();
    loop {
        let mut changed = false;
        for (ri, rule) in rules.iter().enumerate() {
            for (subst, uses) in body_matches(&work, &rule.body)? {
                let head_tuple: Tuple = rule
                    .head_terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => subst[v].clone(),
                        Term::Const(a) => a.clone(),
                        Term::Wildcard => unreachable!("rejected at construction"),
                    })
                    .collect();
                let key = (rule.head.clone(), head_tuple.clone());
                let d = Derivation { rule: ri, uses };
                let entry = derivs.entry(key).or_default();
                if !entry.contains(&d) {
                    entry.push(d);
                    changed = true;
                }
                let rel = work.get_mut(&rule.head)?;
                if !rel.contains(&head_tuple) {
                    rel.insert(head_tuple)?;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Return only the head relations.
    let mut out = Database::new();
    for rule in rules {
        if out.get(&rule.head).is_err() {
            out.insert(rule.head.clone(), work.get(&rule.head)?.clone());
        }
    }
    Ok((out, derivs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> Atom {
        Atom::Str(x.into())
    }

    /// The R instance of Figure 4: rows (a,b,c), (d,b,e), (f,g,e).
    pub(crate) fn figure4_db() -> Database {
        Database::new().with(
            "R",
            Relation::table(
                ["X", "Y", "Z"],
                [
                    vec![s("a"), s("b"), s("c")],
                    vec![s("d"), s("b"), s("e")],
                    vec![s("f"), s("g"), s("e")],
                ],
            )
            .unwrap(),
        )
    }

    fn figure4_rules() -> Vec<Rule> {
        vec![
            // V(X,Z) :- R(X,_,Z)
            Rule::new(
                "V",
                vec![Term::var("X"), Term::var("Z")],
                vec![AtomPattern::new(
                    "R",
                    vec![Term::var("X"), Term::Wildcard, Term::var("Z")],
                )],
            )
            .unwrap(),
            // V(X,Z) :- R(X,Y,_), R(_,Y,Z)
            Rule::new(
                "V",
                vec![Term::var("X"), Term::var("Z")],
                vec![
                    AtomPattern::new("R", vec![Term::var("X"), Term::var("Y"), Term::Wildcard]),
                    AtomPattern::new("R", vec![Term::Wildcard, Term::var("Y"), Term::var("Z")]),
                ],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn figure4_derives_the_papers_v() {
        let (out, _) = eval_with_derivations(&figure4_db(), &figure4_rules()).unwrap();
        let v = out.get("V").unwrap();
        let expect: Vec<Tuple> = vec![
            vec![s("a"), s("c")],
            vec![s("a"), s("e")],
            vec![s("d"), s("c")],
            vec![s("d"), s("e")],
            vec![s("f"), s("e")],
        ];
        assert_eq!(v.tuple_set(), expect.into_iter().collect());
    }

    #[test]
    fn figure4_rule_derivation_counts() {
        // Derivations of the two Datalog rules alone (the full Figure 4
        // polynomials, which also involve the disjunctive C=C join, are
        // reproduced in cdb-semiring): (a,c) has the copy derivation p
        // plus the self-join p·p; (d,e) has r plus r·r; (f,e) s plus s·s.
        let (_, derivs) = eval_with_derivations(&figure4_db(), &figure4_rules()).unwrap();
        let count = |x: &str, z: &str| derivs[&("V".to_string(), vec![s(x), s(z)])].len();
        assert_eq!(count("a", "c"), 2);
        assert_eq!(count("a", "e"), 1);
        assert_eq!(count("d", "c"), 1);
        assert_eq!(count("d", "e"), 2);
        assert_eq!(count("f", "e"), 2);
        // Each derivation records the base tuples it used.
        let d_ac = &derivs[&("V".to_string(), vec![s("a"), s("c")])];
        assert!(d_ac.iter().any(|d| d.rule == 0 && d.uses.len() == 1));
        assert!(d_ac.iter().any(|d| d.rule == 1 && d.uses.len() == 2));
    }

    #[test]
    fn unsafe_rules_are_rejected() {
        assert!(Rule::new("H", vec![Term::var("X")], vec![]).is_err());
        assert!(Rule::new(
            "H",
            vec![Term::Wildcard],
            vec![AtomPattern::new("R", vec![Term::var("X")])]
        )
        .is_err());
    }

    #[test]
    fn constants_in_patterns_filter() {
        let db = figure4_db();
        let rule = Rule::new(
            "V",
            vec![Term::var("Z")],
            vec![AtomPattern::new(
                "R",
                vec![Term::Const(s("a")), Term::Wildcard, Term::var("Z")],
            )],
        )
        .unwrap();
        let out = eval_program(&db, &[rule]).unwrap();
        assert_eq!(out.get("V").unwrap().tuples(), &[vec![s("c")]]);
    }

    #[test]
    fn recursive_transitive_closure() {
        // §6.3: recursive querying of hierarchies (ancestor relation).
        let db = Database::new().with(
            "edge",
            Relation::table(
                ["F", "T"],
                [
                    vec![s("a"), s("b")],
                    vec![s("b"), s("c")],
                    vec![s("c"), s("d")],
                ],
            )
            .unwrap(),
        );
        let rules = vec![
            Rule::new(
                "tc",
                vec![Term::var("X"), Term::var("Y")],
                vec![AtomPattern::new(
                    "edge",
                    vec![Term::var("X"), Term::var("Y")],
                )],
            )
            .unwrap(),
            Rule::new(
                "tc",
                vec![Term::var("X"), Term::var("Z")],
                vec![
                    AtomPattern::new("edge", vec![Term::var("X"), Term::var("Y")]),
                    AtomPattern::new("tc", vec![Term::var("Y"), Term::var("Z")]),
                ],
            )
            .unwrap(),
        ];
        let out = eval_program(&db, &rules).unwrap();
        assert_eq!(out.get("tc").unwrap().tuple_set().len(), 6);
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let db = figure4_db();
        // R(X, Y, Y): no row has equal 2nd and 3rd columns.
        let rule = Rule::new(
            "V",
            vec![Term::var("X")],
            vec![AtomPattern::new(
                "R",
                vec![Term::var("X"), Term::var("Y"), Term::var("Y")],
            )],
        )
        .unwrap();
        let out = eval_program(&db, &[rule]).unwrap();
        assert!(out.get("V").unwrap().is_empty());
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let db = figure4_db();
        let rule = Rule::new(
            "V",
            vec![Term::var("X")],
            vec![AtomPattern::new("R", vec![Term::var("X")])],
        )
        .unwrap();
        assert!(eval_program(&db, &[rule]).is_err());
    }
}
