//! The physical execution layer: hash joins, parallel partitioned
//! probing, and per-operator execution statistics.
//!
//! The interpreter in [`crate::eval`] is deliberately naive — nested-loop
//! joins keep the annotation semantics auditable. This module adds a
//! second engine over the *same* AST with three physical improvements,
//! all verified equivalent to the naive engine by differential tests:
//!
//! * **Hash joins.** [`RaExpr::NaturalJoin`] builds a hash table over the
//!   smaller-side key columns and probes with the other side. A
//!   recognizer ([`recognize_equi_join`]) additionally rewrites
//!   `σ[a.x = b.y ∧ rest](A × B)` — the shape every `SELECT … FROM A, B
//!   WHERE a.x = b.y` compiles to — into a hash join on the equated
//!   column pairs with the full predicate re-checked on matches, so
//!   residual (non-equality) conjuncts still apply.
//! * **Parallel partitioned probing.** When the probe side is at least
//!   [`ExecConfig::parallel_threshold`] tuples, it is split into
//!   [`ExecConfig::partitions`] chunks probed concurrently under
//!   [`std::thread::scope`]. Chunk results are concatenated in chunk
//!   order, so the output is byte-identical to a sequential probe
//!   regardless of the partition count.
//! * **Statistics.** [`eval_with_stats`] returns an [`ExecStats`]
//!   operator tree recording rows in/out, build/probe sizes, partition
//!   counts and wall time per operator; its `Display` impl renders the
//!   table printed by `cdbsh` and the join benchmarks.
//!
//! The kernel at the bottom of the stack, [`join_matches`], works on
//! borrowed key columns and returns `(probe, build)` index pairs. The
//! K-relation and colored evaluators (`cdb-semiring`, `cdb-annotation`)
//! reuse it and combine the matched rows under their own semantics.

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

use cdb_obs::SpanGuard;

use cdb_model::Atom;

use crate::database::Database;
use crate::error::RelalgError;
use crate::expr::{ProjSource, RaExpr};
use crate::pred::{CmpOp, Operand, Pred};
use crate::relation::{Relation, Schema, Tuple};

/// Tuning knobs for the physical engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Use hash joins for natural joins and recognized equi-joins.
    /// When `false` the engine mirrors the naive interpreter (useful as
    /// a differential baseline that still collects statistics).
    pub hash_join: bool,
    /// Number of probe partitions; `0` means one per available core.
    /// `1` forces a sequential probe.
    pub partitions: usize,
    /// Probe sides smaller than this many tuples are probed
    /// sequentially — thread spawning costs more than it saves on
    /// small inputs.
    pub parallel_threshold: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            hash_join: true,
            partitions: 0,
            parallel_threshold: 4096,
        }
    }
}

impl ExecConfig {
    /// Hash joins with a strictly sequential probe.
    pub fn sequential() -> Self {
        ExecConfig {
            partitions: 1,
            ..ExecConfig::default()
        }
    }

    /// Hash joins probing across exactly `n` partitions (subject to the
    /// parallel threshold); `0` means one per available core.
    pub fn with_partitions(n: usize) -> Self {
        ExecConfig {
            partitions: n,
            ..ExecConfig::default()
        }
    }

    /// The partition count to use for a probe side of `probe_rows`
    /// tuples: `1` below the threshold, otherwise the configured count
    /// (resolving `0` to the number of available cores).
    pub fn partitions_for(&self, probe_rows: usize) -> usize {
        if probe_rows < self.parallel_threshold.max(1) {
            return 1;
        }
        match self.partitions {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }
}

/// The result of a [`join_matches`] kernel invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinMatches {
    /// Matching `(probe_index, build_index)` pairs, ordered by probe
    /// index, then by build insertion order within a key bucket. This is
    /// exactly the order a probe-major nested loop would discover them
    /// in, which is what makes the hash engine's output byte-identical
    /// to the naive engine's.
    pub pairs: Vec<(usize, usize)>,
    /// How many probe partitions actually ran.
    pub partitions: usize,
}

/// The shared hash-join kernel: builds a hash table over `build` keys
/// and probes it with `probe` keys, in parallel when `cfg` allows.
///
/// Each key is the projection of one tuple onto the join columns; rows
/// with equal keys match. All three evaluators (plain, K-relation,
/// colored) call this and then combine the matched rows under their own
/// semantics (concatenation, semiring multiplication, color merging).
pub fn join_matches(build: &[Vec<&Atom>], probe: &[Vec<&Atom>], cfg: &ExecConfig) -> JoinMatches {
    let mut table: HashMap<&[&Atom], Vec<usize>> = HashMap::with_capacity(build.len());
    for (i, key) in build.iter().enumerate() {
        table.entry(key.as_slice()).or_default().push(i);
    }
    let parts = cfg.partitions_for(probe.len()).max(1);
    if parts == 1 || probe.len() < 2 {
        let mut pairs = Vec::new();
        probe_chunk(&table, probe, 0, &mut pairs);
        return JoinMatches {
            pairs,
            partitions: 1,
        };
    }
    let chunk = probe.len().div_ceil(parts);
    std::thread::scope(|s| {
        let table = &table;
        let handles: Vec<_> = probe
            .chunks(chunk)
            .enumerate()
            .map(|(ci, rows)| {
                s.spawn(move || {
                    let mut pairs = Vec::new();
                    probe_chunk(table, rows, ci * chunk, &mut pairs);
                    pairs
                })
            })
            .collect();
        let partitions = handles.len();
        let mut pairs = Vec::new();
        for h in handles {
            // Chunks concatenate in order: determinism does not depend
            // on which worker finishes first.
            pairs.extend(h.join().expect("join probe worker panicked"));
        }
        JoinMatches { pairs, partitions }
    })
}

fn probe_chunk(
    table: &HashMap<&[&Atom], Vec<usize>>,
    probe: &[Vec<&Atom>],
    base: usize,
    out: &mut Vec<(usize, usize)>,
) {
    for (off, key) in probe.iter().enumerate() {
        if let Some(bucket) = table.get(key.as_slice()) {
            out.extend(bucket.iter().map(|&bi| (base + off, bi)));
        }
    }
}

/// Projects each tuple onto the given columns, borrowing the atoms —
/// the key extraction step in front of [`join_matches`].
pub fn extract_keys<'a>(
    rows: impl IntoIterator<Item = &'a Tuple>,
    cols: &[usize],
) -> Vec<Vec<&'a Atom>> {
    rows.into_iter()
        .map(|t| cols.iter().map(|&c| &t[c]).collect())
        .collect()
}

/// A recognized equi-join within `σ_pred(A × B)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquiJoin {
    /// `(left column, right column)` pairs the predicate equates across
    /// the two sides — the hash keys.
    pub keys: Vec<(usize, usize)>,
    /// How many predicate conjuncts are *not* pure cross-side column
    /// equalities. The full predicate is re-applied to matched rows, so
    /// these still filter; this count exists for statistics.
    pub residual_conjuncts: usize,
}

/// Whether every column reference inside a predicate resolves against
/// the given schema (descending through And/Or/Not). Resolution errors
/// are row-independent, so this exactly predicts whether evaluating the
/// predicate on *any* row would surface one.
pub(crate) fn pred_resolves(schema: &Schema, p: &Pred) -> bool {
    match p {
        Pred::True => true,
        Pred::Cmp { left, right, .. } => [left, right].iter().all(|o| match o {
            Operand::Col(c) => schema.resolve(c).is_ok(),
            Operand::Const(_) => true,
        }),
        Pred::And(a, b) | Pred::Or(a, b) => pred_resolves(schema, a) && pred_resolves(schema, b),
        Pred::Not(a) => pred_resolves(schema, a),
    }
}

/// Recognizes `σ_pred(A × B)` as an equi-join: scans the predicate's
/// top-level conjuncts for `col = col` comparisons whose operands
/// resolve to opposite sides of the product. Returns `None` when no
/// conjunct qualifies (the caller falls back to product-then-filter).
///
/// Two correctness rules shape what becomes a hash key:
///
/// * **Duplicate equalities are collapsed.** `r.a = s.a AND r.a = s.a`
///   (or the flipped `s.a = r.a`) contributes one key pair, not two —
///   the duplicate would widen every extracted key and double the
///   comparison work without changing the match set.
/// * **An unresolvable conjunct poisons everything after it.** The
///   naive engine evaluates conjuncts left to right with short-circuit,
///   so a resolution error in conjunct *i* surfaces exactly when some
///   row passes conjuncts `1..i`. A key extracted from a conjunct
///   *after* i could filter out precisely that row and hide the error.
///   Keys gathered *before* i stay valid — a row they reject would have
///   short-circuited at that earlier conjunct anyway — and the full
///   predicate re-check on matched rows surfaces the error in the same
///   left-to-right order the naive engine uses.
pub fn recognize_equi_join(combined: &Schema, left_arity: usize, pred: &Pred) -> Option<EquiJoin> {
    let mut keys: Vec<(usize, usize)> = Vec::new();
    let mut residual_conjuncts = 0;
    let conjuncts = pred.conjuncts();
    for (ci, conjunct) in conjuncts.iter().enumerate() {
        if !pred_resolves(combined, conjunct) {
            residual_conjuncts += conjuncts.len() - ci;
            break;
        }
        if let Pred::Cmp {
            left: Operand::Col(l),
            op: CmpOp::Eq,
            right: Operand::Col(r),
        } = conjunct
        {
            let li = combined.resolve(l).expect("checked by pred_resolves");
            let ri = combined.resolve(r).expect("checked by pred_resolves");
            let pair = match (li < left_arity, ri < left_arity) {
                (true, false) => Some((li, ri - left_arity)),
                (false, true) => Some((ri, li - left_arity)),
                _ => None, // same-side equality: plain filter
            };
            if let Some(pair) = pair {
                if !keys.contains(&pair) {
                    keys.push(pair);
                }
                continue;
            }
        }
        residual_conjuncts += 1;
    }
    if keys.is_empty() {
        None
    } else {
        Some(EquiJoin {
            keys,
            residual_conjuncts,
        })
    }
}

/// Per-operator execution statistics, forming a tree that mirrors the
/// physical plan.
#[derive(Debug, Clone)]
pub struct OpStats {
    /// Operator label, e.g. `HashJoin[r.A=s.A]` or `Scan R`.
    pub op: String,
    /// Rows produced by this operator (before any final dedup).
    pub rows_out: usize,
    /// Hash-table size for join operators.
    pub build_rows: Option<usize>,
    /// Probe-side size for join operators.
    pub probe_rows: Option<usize>,
    /// Probe partitions actually used, for join operators.
    pub partitions: Option<usize>,
    /// Wall time spent in this operator, including its children.
    pub elapsed: Duration,
    /// Wall time spent in this operator *excluding* its children —
    /// summing `self_elapsed` over a tree gives the root's `elapsed`
    /// (up to clock granularity) instead of double-counting every
    /// subtree once per ancestor.
    pub self_elapsed: Duration,
    /// Child operators.
    pub children: Vec<OpStats>,
}

impl OpStats {
    fn leaf(op: impl Into<String>, rows_out: usize, span: &mut SpanGuard) -> Self {
        span.set_attr(rows_out as u64);
        let elapsed = span.elapsed();
        OpStats {
            op: op.into(),
            rows_out,
            build_rows: None,
            probe_rows: None,
            partitions: None,
            elapsed,
            self_elapsed: elapsed,
            children: Vec::new(),
        }
    }

    fn with_children(mut self, children: Vec<OpStats>) -> Self {
        let nested: Duration = children.iter().map(|c| c.elapsed).sum();
        self.self_elapsed = self.elapsed.saturating_sub(nested);
        self.children = children;
        self
    }

    fn unary(op: impl Into<String>, rows_out: usize, span: &mut SpanGuard, child: OpStats) -> Self {
        OpStats::leaf(op, rows_out, span).with_children(vec![child])
    }

    fn binary(
        op: impl Into<String>,
        rows_out: usize,
        span: &mut SpanGuard,
        l: OpStats,
        r: OpStats,
    ) -> Self {
        OpStats::leaf(op, rows_out, span).with_children(vec![l, r])
    }

    /// Total number of operators in this subtree.
    pub fn operator_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(OpStats::operator_count)
            .sum::<usize>()
    }
}

/// The statistics of one [`eval_with_stats`] run.
#[derive(Debug, Clone)]
pub struct ExecStats {
    /// The root of the physical operator tree.
    pub root: OpStats,
}

impl ExecStats {
    /// Finds the first operator (preorder) whose label starts with the
    /// given prefix — convenient for asserting on join stats in tests.
    pub fn find(&self, prefix: &str) -> Option<&OpStats> {
        fn go<'a>(n: &'a OpStats, prefix: &str) -> Option<&'a OpStats> {
            if n.op.starts_with(prefix) {
                return Some(n);
            }
            n.children.iter().find_map(|c| go(c, prefix))
        }
        go(&self.root, prefix)
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn width(n: &OpStats, depth: usize) -> usize {
            let own = depth * 2 + n.op.chars().count();
            n.children
                .iter()
                .map(|c| width(c, depth + 1))
                .fold(own, usize::max)
        }
        fn row(f: &mut fmt::Formatter<'_>, n: &OpStats, depth: usize, opw: usize) -> fmt::Result {
            let pad = " ".repeat(depth * 2);
            let opt = |v: Option<usize>| v.map_or(String::from("-"), |v| v.to_string());
            let label: String = format!("{pad}{}", n.op);
            let fill = opw.saturating_sub(label.chars().count());
            writeln!(
                f,
                "{label}{}  {:>9}  {:>9}  {:>9}  {:>4}  {:>9.3}  {:>9.3}",
                " ".repeat(fill),
                n.rows_out,
                opt(n.build_rows),
                opt(n.probe_rows),
                opt(n.partitions),
                n.elapsed.as_secs_f64() * 1e3,
                n.self_elapsed.as_secs_f64() * 1e3,
            )?;
            for c in &n.children {
                row(f, c, depth + 1, opw)?;
            }
            Ok(())
        }
        let opw = width(&self.root, 0).max("operator".len());
        writeln!(
            f,
            "{:<opw$}  {:>9}  {:>9}  {:>9}  {:>4}  {:>9}  {:>9}",
            "operator", "rows", "build", "probe", "part", "ms", "self ms"
        )?;
        row(f, &self.root, 0, opw)
    }
}

/// Evaluates under set semantics with the physical engine, returning the
/// result and the operator statistics tree.
pub fn eval_with_stats(
    db: &Database,
    expr: &RaExpr,
    cfg: &ExecConfig,
) -> Result<(Relation, ExecStats), RelalgError> {
    let mut span = SpanGuard::enter("relalg.eval");
    let (mut rel, root) = eval_node(db, expr, cfg)?;
    rel.dedup();
    span.set_attr(rel.len() as u64);
    let m = cdb_obs::global();
    m.counter("relalg.eval.count").inc();
    m.histogram("relalg.eval.ns").observe(span.elapsed());
    Ok((rel, ExecStats { root }))
}

/// Evaluates under set semantics with the physical engine (hash joins,
/// parallel probing), discarding statistics. Produces exactly the same
/// relation as [`crate::eval::eval`].
pub fn eval_hash(db: &Database, expr: &RaExpr, cfg: &ExecConfig) -> Result<Relation, RelalgError> {
    eval_with_stats(db, expr, cfg).map(|(rel, _)| rel)
}

/// The span name for a node — span names are interned `&'static str`
/// literals, so the dynamic operator label lives only in [`OpStats`].
/// Shared with the set-semantics interpreter in `eval.rs` so both
/// engines profile under the same taxonomy.
pub(crate) fn span_name(expr: &RaExpr) -> &'static str {
    match expr {
        RaExpr::Scan(_) => "relalg.op.scan",
        RaExpr::ScanAs(..) => "relalg.op.scan_as",
        RaExpr::Select(..) => "relalg.op.select",
        RaExpr::Project(..) => "relalg.op.project",
        RaExpr::Product(..) => "relalg.op.product",
        RaExpr::NaturalJoin(..) => "relalg.op.join",
        RaExpr::Union(..) => "relalg.op.union",
        RaExpr::Diff(..) => "relalg.op.diff",
        RaExpr::Rename(..) => "relalg.op.rename",
    }
}

fn eval_node(
    db: &Database,
    expr: &RaExpr,
    cfg: &ExecConfig,
) -> Result<(Relation, OpStats), RelalgError> {
    let mut span = SpanGuard::enter(span_name(expr));
    match expr {
        RaExpr::Scan(name) => {
            let rel = db.get(name)?.clone();
            let stats = OpStats::leaf(format!("Scan {name}"), rel.len(), &mut span);
            Ok((rel, stats))
        }
        RaExpr::ScanAs(name, alias) => {
            let base = db.get(name)?;
            let schema = base.schema().qualified(alias);
            let rel = Relation::from_rows(schema, base.tuples().iter().cloned())?;
            let stats = OpStats::leaf(format!("Scan {name} AS {alias}"), rel.len(), &mut span);
            Ok((rel, stats))
        }
        RaExpr::Select(e, pred) => {
            // The equi-join rewrite: σ over a product whose predicate
            // equates columns across the two sides becomes a hash join.
            if cfg.hash_join {
                if let RaExpr::Product(a, b) = e.as_ref() {
                    let (left, lstats) = eval_node(db, a, cfg)?;
                    let (right, rstats) = eval_node(db, b, cfg)?;
                    let combined = Schema::new(
                        left.schema()
                            .attrs()
                            .iter()
                            .chain(right.schema().attrs())
                            .cloned(),
                    )?;
                    if let Some(ej) = recognize_equi_join(&combined, left.schema().arity(), pred) {
                        return hash_equi_join(
                            &left, &right, combined, pred, &ej, cfg, &mut span, lstats, rstats,
                        );
                    }
                    // No cross-side equality: plain product, then filter.
                    let (prod, pstats) =
                        product_of(&left, &right, combined, &mut span, lstats, rstats)?;
                    return filter_of(prod, pred, &mut span, pstats);
                }
            }
            let (input, istats) = eval_node(db, e, cfg)?;
            filter_of(input, pred, &mut span, istats)
        }
        RaExpr::Project(e, items) => {
            let (input, istats) = eval_node(db, e, cfg)?;
            let schema = Schema::new(items.iter().map(|i| i.name.clone()))?;
            let mut out = Relation::empty(schema);
            for t in input.tuples() {
                let mut row: Tuple = Vec::with_capacity(items.len());
                for item in items {
                    match &item.source {
                        ProjSource::Col(c) => row.push(t[input.schema().resolve(c)?].clone()),
                        ProjSource::Const(a) => row.push(a.clone()),
                    }
                }
                out.insert(row)?;
            }
            let stats = OpStats::unary("Project π", out.len(), &mut span, istats);
            Ok((out, stats))
        }
        RaExpr::Product(a, b) => {
            let (left, lstats) = eval_node(db, a, cfg)?;
            let (right, rstats) = eval_node(db, b, cfg)?;
            let combined = Schema::new(
                left.schema()
                    .attrs()
                    .iter()
                    .chain(right.schema().attrs())
                    .cloned(),
            )?;
            product_of(&left, &right, combined, &mut span, lstats, rstats)
        }
        RaExpr::NaturalJoin(a, b) => {
            let (left, lstats) = eval_node(db, a, cfg)?;
            let (right, rstats) = eval_node(db, b, cfg)?;
            let shared = crate::eval::shared_attrs(left.schema(), right.schema());
            if cfg.hash_join && !shared.is_empty() {
                hash_natural_join(&left, &right, &shared, cfg, &mut span, lstats, rstats)
            } else {
                loop_natural_join(&left, &right, &shared, &mut span, lstats, rstats)
            }
        }
        RaExpr::Union(a, b) => {
            let (left, lstats) = eval_node(db, a, cfg)?;
            let (right, rstats) = eval_node(db, b, cfg)?;
            if !left.schema().union_compatible(right.schema()) {
                return Err(RelalgError::SchemaMismatch {
                    left: left.schema().attrs().to_vec(),
                    right: right.schema().attrs().to_vec(),
                });
            }
            let mut out = left;
            for t in right.tuples() {
                out.insert(t.clone())?;
            }
            let stats = OpStats::binary("Union ∪", out.len(), &mut span, lstats, rstats);
            Ok((out, stats))
        }
        RaExpr::Diff(a, b) => {
            let (left, lstats) = eval_node(db, a, cfg)?;
            let (right, rstats) = eval_node(db, b, cfg)?;
            if !left.schema().union_compatible(right.schema()) {
                return Err(RelalgError::SchemaMismatch {
                    left: left.schema().attrs().to_vec(),
                    right: right.schema().attrs().to_vec(),
                });
            }
            let rset = right.tuple_set();
            let mut out = Relation::empty(left.schema().clone());
            for t in left.tuples() {
                if !rset.contains(t) {
                    out.insert(t.clone())?;
                }
            }
            let stats = OpStats::binary("Diff −", out.len(), &mut span, lstats, rstats);
            Ok((out, stats))
        }
        RaExpr::Rename(e, pairs) => {
            let (input, istats) = eval_node(db, e, cfg)?;
            let mut attrs: Vec<String> = input.schema().attrs().to_vec();
            for (old, new) in pairs {
                let i = input.schema().resolve(old)?;
                attrs[i] = new.clone();
            }
            let rel = Relation::from_rows(Schema::new(attrs)?, input.tuples().iter().cloned())?;
            let stats = OpStats::unary("Rename ρ", rel.len(), &mut span, istats);
            Ok((rel, stats))
        }
    }
}

fn filter_of(
    input: Relation,
    pred: &Pred,
    span: &mut SpanGuard,
    istats: OpStats,
) -> Result<(Relation, OpStats), RelalgError> {
    let mut out = Relation::empty(input.schema().clone());
    for t in input.tuples() {
        if pred.eval(input.schema(), t)? {
            out.insert(t.clone())?;
        }
    }
    let stats = OpStats::unary(format!("Select σ[{pred}]"), out.len(), span, istats);
    Ok((out, stats))
}

fn product_of(
    left: &Relation,
    right: &Relation,
    combined: Schema,
    span: &mut SpanGuard,
    lstats: OpStats,
    rstats: OpStats,
) -> Result<(Relation, OpStats), RelalgError> {
    let mut out = Relation::empty(combined);
    for lt in left.tuples() {
        for rt in right.tuples() {
            let mut row = lt.clone();
            row.extend(rt.iter().cloned());
            out.insert(row)?;
        }
    }
    let stats = OpStats::binary("Product ×", out.len(), span, lstats, rstats);
    Ok((out, stats))
}

#[allow(clippy::too_many_arguments)]
fn hash_equi_join(
    left: &Relation,
    right: &Relation,
    combined: Schema,
    pred: &Pred,
    ej: &EquiJoin,
    cfg: &ExecConfig,
    span: &mut SpanGuard,
    lstats: OpStats,
    rstats: OpStats,
) -> Result<(Relation, OpStats), RelalgError> {
    let lcols: Vec<usize> = ej.keys.iter().map(|&(l, _)| l).collect();
    let rcols: Vec<usize> = ej.keys.iter().map(|&(_, r)| r).collect();
    let build = extract_keys(right.tuples(), &rcols);
    let probe = extract_keys(left.tuples(), &lcols);
    let matches = join_matches(&build, &probe, cfg);
    let mut out = Relation::empty(combined);
    for &(li, ri) in &matches.pairs {
        let mut row = left.tuples()[li].clone();
        row.extend(right.tuples()[ri].iter().cloned());
        // Re-check the whole predicate: residual conjuncts (and
        // same-side equalities) still filter the matched pairs.
        if pred.eval(out.schema(), &row)? {
            out.insert(row)?;
        }
    }
    let label = format!(
        "HashJoin[{}]{}",
        ej.keys
            .iter()
            .map(|&(l, r)| {
                format!("{}={}", left.schema().attrs()[l], right.schema().attrs()[r])
            })
            .collect::<Vec<_>>()
            .join(","),
        if ej.residual_conjuncts > 0 {
            format!(" +{} residual", ej.residual_conjuncts)
        } else {
            String::new()
        }
    );
    let stats = OpStats {
        build_rows: Some(right.len()),
        probe_rows: Some(left.len()),
        partitions: Some(matches.partitions),
        ..OpStats::binary(label, out.len(), span, lstats, rstats)
    };
    Ok((out, stats))
}

fn natural_join_layout(
    left: &Relation,
    right: &Relation,
    shared: &[(usize, usize)],
) -> Result<(Schema, Vec<usize>), RelalgError> {
    let right_kept: Vec<usize> = (0..right.schema().arity())
        .filter(|j| !shared.iter().any(|(_, sj)| sj == j))
        .collect();
    let attrs: Vec<String> = left
        .schema()
        .attrs()
        .iter()
        .cloned()
        .chain(
            right_kept
                .iter()
                .map(|&j| right.schema().attrs()[j].clone()),
        )
        .collect();
    Ok((Schema::new(attrs)?, right_kept))
}

fn hash_natural_join(
    left: &Relation,
    right: &Relation,
    shared: &[(usize, usize)],
    cfg: &ExecConfig,
    span: &mut SpanGuard,
    lstats: OpStats,
    rstats: OpStats,
) -> Result<(Relation, OpStats), RelalgError> {
    let (schema, right_kept) = natural_join_layout(left, right, shared)?;
    let lcols: Vec<usize> = shared.iter().map(|&(i, _)| i).collect();
    let rcols: Vec<usize> = shared.iter().map(|&(_, j)| j).collect();
    let build = extract_keys(right.tuples(), &rcols);
    let probe = extract_keys(left.tuples(), &lcols);
    let matches = join_matches(&build, &probe, cfg);
    let mut out = Relation::empty(schema);
    for &(li, ri) in &matches.pairs {
        let rt = &right.tuples()[ri];
        let mut row = left.tuples()[li].clone();
        row.extend(right_kept.iter().map(|&j| rt[j].clone()));
        out.insert(row)?;
    }
    let keys: Vec<&str> = shared
        .iter()
        .map(|&(i, _)| left.schema().attrs()[i].as_str())
        .collect();
    let stats = OpStats {
        build_rows: Some(right.len()),
        probe_rows: Some(left.len()),
        partitions: Some(matches.partitions),
        ..OpStats::binary(
            format!("HashNaturalJoin[{}]", keys.join(",")),
            out.len(),
            span,
            lstats,
            rstats,
        )
    };
    Ok((out, stats))
}

fn loop_natural_join(
    left: &Relation,
    right: &Relation,
    shared: &[(usize, usize)],
    span: &mut SpanGuard,
    lstats: OpStats,
    rstats: OpStats,
) -> Result<(Relation, OpStats), RelalgError> {
    let (schema, right_kept) = natural_join_layout(left, right, shared)?;
    let mut out = Relation::empty(schema);
    for lt in left.tuples() {
        for rt in right.tuples() {
            if shared.iter().all(|&(i, j)| lt[i] == rt[j]) {
                let mut row = lt.clone();
                row.extend(right_kept.iter().map(|&j| rt[j].clone()));
                out.insert(row)?;
            }
        }
    }
    let stats = OpStats::binary("NaturalJoin ⋈ (loop)", out.len(), span, lstats, rstats);
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::expr::ProjItem;

    fn int(i: i64) -> Atom {
        Atom::Int(i)
    }

    fn join_db(n: i64) -> Database {
        // R(A,B) with B = A % 7; S(B,C): join on B fans out.
        let r = Relation::table(["A", "B"], (0..n).map(|i| vec![int(i), int(i % 7)])).unwrap();
        let s =
            Relation::table(["B", "C"], (0..20).map(|i| vec![int(i % 7), int(100 + i)])).unwrap();
        Database::new().with("R", r).with("S", s)
    }

    #[test]
    fn kernel_matches_are_probe_ordered() {
        let a1 = int(1);
        let a2 = int(2);
        let build = vec![vec![&a1], vec![&a2], vec![&a1]];
        let probe = vec![vec![&a2], vec![&a1]];
        let m = join_matches(&build, &probe, &ExecConfig::sequential());
        assert_eq!(m.pairs, vec![(0, 1), (1, 0), (1, 2)]);
        assert_eq!(m.partitions, 1);
    }

    #[test]
    fn kernel_is_partition_invariant() {
        let atoms: Vec<Atom> = (0..500).map(|i| int(i % 13)).collect();
        let keys: Vec<Vec<&Atom>> = atoms.iter().map(|a| vec![a]).collect();
        let seq = join_matches(&keys, &keys, &ExecConfig::sequential());
        for parts in [2, 3, 8] {
            let mut cfg = ExecConfig::with_partitions(parts);
            cfg.parallel_threshold = 1;
            let par = join_matches(&keys, &keys, &cfg);
            assert_eq!(par.pairs, seq.pairs, "{parts} partitions");
            assert_eq!(par.partitions, parts);
        }
    }

    #[test]
    fn natural_join_agrees_with_naive_engine() {
        let db = join_db(50);
        let q = RaExpr::scan("R").natural_join(RaExpr::scan("S"));
        let naive = eval(&db, &q).unwrap();
        let (hashed, stats) = eval_with_stats(&db, &q, &ExecConfig::default()).unwrap();
        assert_eq!(naive, hashed, "byte-identical, not just set-equal");
        let join = stats.find("HashNaturalJoin").expect("hash join in plan");
        assert_eq!(join.build_rows, Some(20));
        assert_eq!(join.probe_rows, Some(50));
    }

    #[test]
    fn select_product_is_recognized_as_equi_join() {
        let db = join_db(30);
        let q = RaExpr::ScanAs("R".into(), "r".into())
            .product(RaExpr::ScanAs("S".into(), "s".into()))
            .select(Pred::col_eq_col("r.B", "s.B").and(Pred::col_eq_const("r.A", 3)));
        let naive = eval(&db, &q).unwrap();
        let (hashed, stats) = eval_with_stats(&db, &q, &ExecConfig::default()).unwrap();
        assert_eq!(naive, hashed);
        let join = stats
            .find("HashJoin[r.B=s.B]")
            .expect("equi-join recognized");
        assert!(
            join.op.contains("+1 residual"),
            "constant filter is residual"
        );
    }

    #[test]
    fn non_equi_select_falls_back_to_product() {
        let db = join_db(10);
        let q = RaExpr::ScanAs("R".into(), "r".into())
            .product(RaExpr::ScanAs("S".into(), "s".into()))
            .select(Pred::cmp(
                Operand::col("r.B"),
                CmpOp::Lt,
                Operand::col("s.B"),
            ));
        let naive = eval(&db, &q).unwrap();
        let (hashed, stats) = eval_with_stats(&db, &q, &ExecConfig::default()).unwrap();
        assert_eq!(naive, hashed);
        assert!(stats.find("HashJoin").is_none());
        assert!(stats.find("Product ×").is_some());
    }

    #[test]
    fn parallel_probe_equals_sequential() {
        let db = join_db(2000);
        let q = RaExpr::scan("R").natural_join(RaExpr::scan("S"));
        let seq = eval_hash(&db, &q, &ExecConfig::sequential()).unwrap();
        for parts in [2, 8] {
            let mut cfg = ExecConfig::with_partitions(parts);
            cfg.parallel_threshold = 1;
            let par = eval_hash(&db, &q, &cfg).unwrap();
            assert_eq!(seq, par, "{parts} partitions");
        }
    }

    #[test]
    fn threshold_keeps_small_probes_sequential() {
        let db = join_db(100);
        let q = RaExpr::scan("R").natural_join(RaExpr::scan("S"));
        let cfg = ExecConfig::with_partitions(8); // threshold 4096 > 100
        let (_, stats) = eval_with_stats(&db, &q, &cfg).unwrap();
        let join = stats.find("HashNaturalJoin").unwrap();
        assert_eq!(join.partitions, Some(1));
    }

    #[test]
    fn whole_algebra_matches_on_a_mixed_query() {
        let db = join_db(40);
        let q = RaExpr::scan("R")
            .natural_join(RaExpr::scan("S"))
            .select(Pred::col_eq_const("C", 103))
            .project(vec![ProjItem::col("A", "A"), ProjItem::constant(1, "One")])
            .union(
                RaExpr::scan("R")
                    .project(vec![ProjItem::col("A", "A"), ProjItem::constant(1, "One")])
                    .diff(
                        RaExpr::scan("R")
                            .project(vec![ProjItem::col("B", "A"), ProjItem::constant(1, "One")]),
                    ),
            );
        let naive = eval(&db, &q).unwrap();
        let hashed = eval_hash(&db, &q, &ExecConfig::default()).unwrap();
        assert_eq!(naive, hashed);
    }

    #[test]
    fn stats_render_a_table() {
        let db = join_db(30);
        let q = RaExpr::scan("R").natural_join(RaExpr::scan("S"));
        let (_, stats) = eval_with_stats(&db, &q, &ExecConfig::default()).unwrap();
        let table = stats.to_string();
        assert!(table.contains("operator"), "{table}");
        assert!(table.contains("HashNaturalJoin[B]"), "{table}");
        assert!(table.contains("  Scan R"), "children indented: {table}");
        assert_eq!(stats.root.operator_count(), 3);
    }

    #[test]
    fn repeated_equality_conjuncts_dedup_to_one_key() {
        let db = join_db(30);
        let schema = Schema::new(["r.A", "r.B", "s.B", "s.C"].map(String::from)).unwrap();
        // r.B = s.B stated three times, once flipped: still one key pair.
        let pred = Pred::col_eq_col("r.B", "s.B")
            .and(Pred::col_eq_col("r.B", "s.B"))
            .and(Pred::col_eq_col("s.B", "r.B"));
        let ej = recognize_equi_join(&schema, 2, &pred).expect("equi-join");
        assert_eq!(ej.keys, vec![(1, 0)], "duplicates collapsed");
        assert_eq!(ej.residual_conjuncts, 0);
        // End to end the duplicated predicate still matches the naive
        // engine byte for byte.
        let q = RaExpr::ScanAs("R".into(), "r".into())
            .product(RaExpr::ScanAs("S".into(), "s".into()))
            .select(pred);
        let naive = eval(&db, &q).unwrap();
        let (hashed, stats) = eval_with_stats(&db, &q, &ExecConfig::default()).unwrap();
        assert_eq!(naive, hashed);
        assert!(
            stats.find("HashJoin[r.B=s.B]").is_some(),
            "single-key join label"
        );
    }

    #[test]
    fn unresolvable_residual_keeps_valid_keys() {
        let db = join_db(30);
        // A valid equi-join key followed by a conjunct over a missing
        // column: the join must still hash on r.B = s.B, and the error
        // must surface exactly as the naive engine surfaces it.
        let q = RaExpr::ScanAs("R".into(), "r".into())
            .product(RaExpr::ScanAs("S".into(), "s".into()))
            .select(Pred::col_eq_col("r.B", "s.B").and(Pred::col_eq_const("r.nope", 1)));
        let naive = eval(&db, &q);
        let hashed = eval_hash(&db, &q, &ExecConfig::default());
        assert!(naive.is_err());
        assert_eq!(naive.unwrap_err(), hashed.unwrap_err());
        // The recognizer itself keeps the resolvable key.
        let schema = Schema::new(["r.A", "r.B", "s.B", "s.C"].map(String::from)).unwrap();
        let pred = Pred::col_eq_col("r.B", "s.B").and(Pred::col_eq_const("r.nope", 1));
        let ej = recognize_equi_join(&schema, 2, &pred).expect("valid key survives");
        assert_eq!(ej.keys, vec![(1, 0)]);
        assert_eq!(ej.residual_conjuncts, 1);
    }

    #[test]
    fn unresolvable_conjunct_poisons_later_keys() {
        // The error conjunct comes FIRST: a key taken from the later
        // r.B = s.B equality could filter away the row on which the
        // naive engine errors, so no keys may be extracted at all.
        let schema = Schema::new(["r.A", "r.B", "s.B", "s.C"].map(String::from)).unwrap();
        let pred = Pred::col_eq_const("r.nope", 1).and(Pred::col_eq_col("r.B", "s.B"));
        assert!(recognize_equi_join(&schema, 2, &pred).is_none());
        // End to end: both engines surface the same resolution error.
        let db = join_db(10);
        let q = RaExpr::ScanAs("R".into(), "r".into())
            .product(RaExpr::ScanAs("S".into(), "s".into()))
            .select(pred);
        let naive = eval(&db, &q);
        let hashed = eval_hash(&db, &q, &ExecConfig::default());
        assert!(naive.is_err());
        assert_eq!(naive.unwrap_err(), hashed.unwrap_err());
    }

    #[test]
    fn empty_side_suppresses_residual_errors_in_both_engines() {
        // With an empty S, no row ever reaches the bad conjunct: both
        // engines return an empty relation rather than an error.
        let r = Relation::table(["A", "B"], (0..5).map(|i| vec![int(i), int(i)])).unwrap();
        let s = Relation::empty(Schema::new(["B", "C"].map(String::from)).unwrap());
        let db = Database::new().with("R", r).with("S", s);
        let q = RaExpr::ScanAs("R".into(), "r".into())
            .product(RaExpr::ScanAs("S".into(), "s".into()))
            .select(Pred::col_eq_col("r.B", "s.B").and(Pred::col_eq_const("r.nope", 1)));
        let naive = eval(&db, &q).unwrap();
        let hashed = eval_hash(&db, &q, &ExecConfig::default()).unwrap();
        assert_eq!(naive, hashed);
        assert!(naive.is_empty());
    }

    #[test]
    fn self_elapsed_excludes_children() {
        let db = join_db(200);
        let q = RaExpr::scan("R")
            .natural_join(RaExpr::scan("S"))
            .select(Pred::col_eq_const("C", 103));
        let (_, stats) = eval_with_stats(&db, &q, &ExecConfig::default()).unwrap();
        fn check(n: &OpStats) -> Duration {
            let nested: Duration = n.children.iter().map(|c| c.elapsed).sum();
            assert!(
                n.self_elapsed <= n.elapsed,
                "{}: self {:?} > total {:?}",
                n.op,
                n.self_elapsed,
                n.elapsed
            );
            assert_eq!(
                n.self_elapsed,
                n.elapsed.saturating_sub(nested),
                "{}: self time is total minus children",
                n.op
            );
            for c in &n.children {
                check(c);
            }
            nested
        }
        check(&stats.root);
        // The rendered table exposes both columns.
        let table = stats.to_string();
        assert!(table.contains("self ms"), "{table}");
        // Summing self times over the tree reproduces the root total
        // (children run strictly inside their parent's span).
        fn sum_self(n: &OpStats) -> Duration {
            n.self_elapsed + n.children.iter().map(sum_self).sum::<Duration>()
        }
        let total = sum_self(&stats.root);
        assert!(
            total <= stats.root.elapsed + Duration::from_micros(10),
            "self times sum to at most the root total: {total:?} vs {:?}",
            stats.root.elapsed
        );
    }

    #[test]
    fn disabling_hash_join_still_collects_stats() {
        let db = join_db(25);
        let q = RaExpr::scan("R").natural_join(RaExpr::scan("S"));
        let cfg = ExecConfig {
            hash_join: false,
            ..ExecConfig::default()
        };
        let (rel, stats) = eval_with_stats(&db, &q, &cfg).unwrap();
        assert_eq!(rel, eval(&db, &q).unwrap());
        assert!(stats.find("NaturalJoin ⋈ (loop)").is_some());
    }
}
