//! Set-semantics evaluation of relational algebra expressions.

use crate::database::Database;
use crate::error::RelalgError;
use crate::expr::{ProjSource, RaExpr};
use crate::relation::{Relation, Schema, Tuple};

/// Evaluates an expression against a database under set semantics.
pub fn eval(db: &Database, expr: &RaExpr) -> Result<Relation, RelalgError> {
    let mut rel = eval_raw(db, expr)?;
    rel.dedup();
    Ok(rel)
}

/// Recursive entry point: wraps every node in a `relalg.op.*` span (the
/// same taxonomy the hash-join engine uses), carrying the output row
/// count as the span attribute.
fn eval_raw(db: &Database, expr: &RaExpr) -> Result<Relation, RelalgError> {
    let mut span = cdb_obs::SpanGuard::enter(crate::exec::span_name(expr));
    let rel = eval_node(db, expr)?;
    span.set_attr(rel.len() as u64);
    Ok(rel)
}

fn eval_node(db: &Database, expr: &RaExpr) -> Result<Relation, RelalgError> {
    match expr {
        RaExpr::Scan(name) => Ok(db.get(name)?.clone()),
        RaExpr::ScanAs(name, alias) => {
            let base = db.get(name)?;
            let schema = base.schema().qualified(alias);
            Relation::from_rows(schema, base.tuples().iter().cloned())
        }
        RaExpr::Select(e, pred) => {
            let input = eval_raw(db, e)?;
            let mut out = Relation::empty(input.schema().clone());
            for t in input.tuples() {
                if pred.eval(input.schema(), t)? {
                    out.insert(t.clone())?;
                }
            }
            Ok(out)
        }
        RaExpr::Project(e, items) => {
            let input = eval_raw(db, e)?;
            let schema = Schema::new(items.iter().map(|i| i.name.clone()))?;
            let mut out = Relation::empty(schema);
            for t in input.tuples() {
                let mut row: Tuple = Vec::with_capacity(items.len());
                for item in items {
                    match &item.source {
                        ProjSource::Col(c) => row.push(t[input.schema().resolve(c)?].clone()),
                        ProjSource::Const(a) => row.push(a.clone()),
                    }
                }
                out.insert(row)?;
            }
            Ok(out)
        }
        RaExpr::Product(a, b) => {
            let left = eval_raw(db, a)?;
            let right = eval_raw(db, b)?;
            let schema = Schema::new(
                left.schema()
                    .attrs()
                    .iter()
                    .chain(right.schema().attrs())
                    .cloned(),
            )?;
            let mut out = Relation::empty(schema);
            for lt in left.tuples() {
                for rt in right.tuples() {
                    let mut row = lt.clone();
                    row.extend(rt.iter().cloned());
                    out.insert(row)?;
                }
            }
            Ok(out)
        }
        RaExpr::NaturalJoin(a, b) => {
            let left = eval_raw(db, a)?;
            let right = eval_raw(db, b)?;
            natural_join(&left, &right)
        }
        RaExpr::Union(a, b) => {
            let left = eval_raw(db, a)?;
            let right = eval_raw(db, b)?;
            require_compatible(&left, &right)?;
            let mut out = left;
            for t in right.tuples() {
                out.insert(t.clone())?;
            }
            Ok(out)
        }
        RaExpr::Diff(a, b) => {
            let left = eval_raw(db, a)?;
            let right = eval_raw(db, b)?;
            require_compatible(&left, &right)?;
            let rset = right.tuple_set();
            let mut out = Relation::empty(left.schema().clone());
            for t in left.tuples() {
                if !rset.contains(t) {
                    out.insert(t.clone())?;
                }
            }
            Ok(out)
        }
        RaExpr::Rename(e, pairs) => {
            let input = eval_raw(db, e)?;
            let mut attrs: Vec<String> = input.schema().attrs().to_vec();
            for (old, new) in pairs {
                let i = input.schema().resolve(old)?;
                attrs[i] = new.clone();
            }
            Relation::from_rows(Schema::new(attrs)?, input.tuples().iter().cloned())
        }
    }
}

fn require_compatible(left: &Relation, right: &Relation) -> Result<(), RelalgError> {
    if left.schema().union_compatible(right.schema()) {
        Ok(())
    } else {
        Err(RelalgError::SchemaMismatch {
            left: left.schema().attrs().to_vec(),
            right: right.schema().attrs().to_vec(),
        })
    }
}

/// The shared-attribute positions `(left_idx, right_idx)` a natural join
/// matches on, by unqualified base name.
pub fn shared_attrs(left: &Schema, right: &Schema) -> Vec<(usize, usize)> {
    let base = |a: &str| a.rsplit('.').next().unwrap_or(a).to_owned();
    let mut out = Vec::new();
    for (i, la) in left.attrs().iter().enumerate() {
        for (j, ra) in right.attrs().iter().enumerate() {
            if base(la) == base(ra) {
                out.push((i, j));
            }
        }
    }
    out
}

fn natural_join(left: &Relation, right: &Relation) -> Result<Relation, RelalgError> {
    let shared = shared_attrs(left.schema(), right.schema());
    let right_kept: Vec<usize> = (0..right.schema().arity())
        .filter(|j| !shared.iter().any(|(_, sj)| sj == j))
        .collect();
    let attrs: Vec<String> = left
        .schema()
        .attrs()
        .iter()
        .cloned()
        .chain(
            right_kept
                .iter()
                .map(|&j| right.schema().attrs()[j].clone()),
        )
        .collect();
    let mut out = Relation::empty(Schema::new(attrs)?);
    for lt in left.tuples() {
        for rt in right.tuples() {
            if shared.iter().all(|&(i, j)| lt[i] == rt[j]) {
                let mut row: Tuple = lt.clone();
                row.extend(right_kept.iter().map(|&j| rt[j].clone()));
                out.insert(row)?;
            }
        }
    }
    Ok(out)
}

/// Builds the two-table join query of the paper's §2.1 example:
/// `SELECT <cols> FROM R, S WHERE R.A = S.A AND R.B = 50` — used by both
/// the plain tests here and the annotated evaluation in `cdb-annotation`.
pub fn paper_q(cols: Vec<crate::expr::ProjItem>) -> RaExpr {
    use crate::pred::Pred;
    RaExpr::ScanAs("R".into(), "R".into())
        .product(RaExpr::ScanAs("S".into(), "S".into()))
        .select(Pred::col_eq_col("R.A", "S.A").and(Pred::col_eq_const("R.B", 50)))
        .project(cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ProjItem;
    use crate::pred::Pred;
    use cdb_model::Atom;

    fn int(i: i64) -> Atom {
        Atom::Int(i)
    }

    /// The R and S instances from §2.1 of the paper.
    fn paper_db() -> Database {
        Database::new()
            .with(
                "R",
                Relation::table(["A", "B"], [vec![int(10), int(49)], vec![int(12), int(50)]])
                    .unwrap(),
            )
            .with(
                "S",
                Relation::table(["A", "B"], [vec![int(11), int(49)], vec![int(12), int(50)]])
                    .unwrap(),
            )
    }

    #[test]
    fn q1_and_q2_are_classically_equivalent() {
        // Q1: SELECT R.A, R.B ...; Q2: SELECT S.A, 50 AS B ...
        let db = paper_db();
        let q1 = paper_q(vec![ProjItem::col("R.A", "A"), ProjItem::col("R.B", "B")]);
        let q2 = paper_q(vec![ProjItem::col("S.A", "A"), ProjItem::constant(50, "B")]);
        let r1 = eval(&db, &q1).unwrap();
        let r2 = eval(&db, &q2).unwrap();
        assert!(r1.set_eq(&r2), "Q1 and Q2 agree on ordinary output");
        assert_eq!(r1.tuples(), &[vec![int(12), int(50)]]);
    }

    #[test]
    fn selection_filters() {
        let db = paper_db();
        let q = RaExpr::scan("R").select(Pred::col_eq_const("A", 10));
        let r = eval(&db, &q).unwrap();
        assert_eq!(r.tuples(), &[vec![int(10), int(49)]]);
    }

    #[test]
    fn projection_merges_duplicates() {
        let db = Database::new().with(
            "T",
            Relation::table(["A", "B"], [vec![int(1), int(5)], vec![int(2), int(5)]]).unwrap(),
        );
        let q = RaExpr::scan("T").project_cols(["B"]);
        let r = eval(&db, &q).unwrap();
        assert_eq!(r.tuples(), &[vec![int(5)]], "set semantics merges");
    }

    #[test]
    fn natural_join_on_shared_names() {
        let db = Database::new()
            .with(
                "R",
                Relation::table(["A", "B"], [vec![int(1), int(2)], vec![int(3), int(4)]]).unwrap(),
            )
            .with(
                "S",
                Relation::table(["B", "C"], [vec![int(2), int(7)], vec![int(9), int(8)]]).unwrap(),
            );
        let q = RaExpr::scan("R").natural_join(RaExpr::scan("S"));
        let r = eval(&db, &q).unwrap();
        assert_eq!(r.schema().attrs(), ["A", "B", "C"]);
        assert_eq!(r.tuples(), &[vec![int(1), int(2), int(7)]]);
    }

    #[test]
    fn union_requires_compatibility() {
        let db = Database::new()
            .with("R", Relation::table(["A"], [vec![int(1)]]).unwrap())
            .with("S", Relation::table(["B"], [vec![int(2)]]).unwrap());
        let q = RaExpr::scan("R").union(RaExpr::scan("S"));
        assert!(matches!(
            eval(&db, &q),
            Err(RelalgError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn union_and_diff() {
        let db = Database::new()
            .with(
                "R",
                Relation::table(["A"], [vec![int(1)], vec![int(2)]]).unwrap(),
            )
            .with(
                "S",
                Relation::table(["A"], [vec![int(2)], vec![int(3)]]).unwrap(),
            );
        let u = eval(&db, &RaExpr::scan("R").union(RaExpr::scan("S"))).unwrap();
        assert_eq!(u.tuple_set().len(), 3);
        let d = eval(&db, &RaExpr::scan("R").diff(RaExpr::scan("S"))).unwrap();
        assert_eq!(d.tuples(), &[vec![int(1)]]);
    }

    #[test]
    fn rename_changes_schema_only() {
        let db = Database::new().with("R", Relation::table(["A"], [vec![int(1)]]).unwrap());
        let q = RaExpr::Rename(
            Box::new(RaExpr::scan("R")),
            vec![("A".to_string(), "X".to_string())],
        );
        let r = eval(&db, &q).unwrap();
        assert_eq!(r.schema().attrs(), ["X"]);
        assert_eq!(r.tuples(), &[vec![int(1)]]);
    }

    #[test]
    fn product_concatenates_qualified_schemas() {
        let db = paper_db();
        let q =
            RaExpr::ScanAs("R".into(), "r".into()).product(RaExpr::ScanAs("S".into(), "s".into()));
        let r = eval(&db, &q).unwrap();
        assert_eq!(r.schema().attrs(), ["r.A", "r.B", "s.A", "s.B"]);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn unaliased_self_product_is_a_duplicate_error() {
        let db = paper_db();
        let q = RaExpr::scan("R").product(RaExpr::scan("R"));
        assert!(matches!(
            eval(&db, &q),
            Err(RelalgError::DuplicateAttribute(_))
        ));
    }
}
