//! A small SQL-ish surface syntax.
//!
//! Covers exactly the fragment the paper's worked examples are written
//! in, so the examples can be transcribed verbatim:
//!
//! ```text
//! SELECT R.A, R.B FROM R, S WHERE R.A = S.A AND R.B = 50
//! SELECT S.A, 50 AS B FROM R, S WHERE R.A = S.A AND R.B = 50
//! SELECT R.A, 55 AS B FROM R WHERE A <> 10 UNION SELECT * FROM R WHERE A = 10
//! DELETE FROM R WHERE A = 10
//! INSERT INTO R VALUES (10, 55)
//! UPDATE R SET B = 55 WHERE A = 10
//! ```
//!
//! Queries compile to [`RaExpr`]; update statements compile to a
//! [`Statement`] AST that both the plain executor here and the
//! provenance-aware executors in `cdb-annotation`/`cdb-curation`
//! interpret.

use cdb_model::Atom;

use crate::database::Database;
use crate::error::RelalgError;
use crate::eval::eval;
use crate::expr::{ProjItem, RaExpr};
use crate::pred::{CmpOp, Operand, Pred};
use crate::relation::Tuple;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// A query.
    Query(RaExpr),
    /// `INSERT INTO rel VALUES (…), (…)`.
    Insert {
        /// Target relation.
        relation: String,
        /// Rows to insert.
        rows: Vec<Tuple>,
    },
    /// `DELETE FROM rel WHERE pred`.
    Delete {
        /// Target relation.
        relation: String,
        /// Which tuples to delete.
        pred: Pred,
    },
    /// `UPDATE rel SET col = const, … WHERE pred`.
    Update {
        /// Target relation.
        relation: String,
        /// Assignments (column, new constant value).
        sets: Vec<(String, Atom)>,
        /// Which tuples to update.
        pred: Pred,
    },
}

/// Parses a single statement.
pub fn parse(input: &str) -> Result<Statement, RelalgError> {
    let mut p = Parser::new(input)?;
    let stmt = p.statement()?;
    p.expect_end()?;
    Ok(stmt)
}

/// Parses a `;`-separated script of statements.
pub fn parse_script(input: &str) -> Result<Vec<Statement>, RelalgError> {
    let mut p = Parser::new(input)?;
    let mut out = Vec::new();
    loop {
        while p.eat_symbol(";") {}
        if p.at_end() {
            break;
        }
        out.push(p.statement()?);
        if !p.eat_symbol(";") && !p.at_end() {
            return Err(p.err("expected ';' between statements"));
        }
    }
    Ok(out)
}

/// Parses and runs a statement against a database. Queries return the
/// result relation; updates mutate the database in place and return the
/// relation's new state.
pub fn execute(db: &mut Database, input: &str) -> Result<crate::Relation, RelalgError> {
    let stmt = parse(input)?;
    run(db, &stmt)
}

/// Runs a parsed statement.
pub fn run(db: &mut Database, stmt: &Statement) -> Result<crate::Relation, RelalgError> {
    match stmt {
        Statement::Query(q) => eval(db, q),
        Statement::Insert { relation, rows } => {
            let rel = db.get_mut(relation)?;
            for row in rows {
                rel.insert(row.clone())?;
            }
            rel.dedup();
            Ok(rel.clone())
        }
        Statement::Delete { relation, pred } => {
            let rel = db.get_mut(relation)?;
            let schema = rel.schema().clone();
            let mut kept = Vec::new();
            for t in rel.tuples() {
                if !pred.eval(&schema, t)? {
                    kept.push(t.clone());
                }
            }
            *rel = crate::Relation::from_rows(schema, kept)?;
            Ok(rel.clone())
        }
        Statement::Update {
            relation,
            sets,
            pred,
        } => {
            let rel = db.get_mut(relation)?;
            let schema = rel.schema().clone();
            let mut idx_sets: Vec<(usize, Atom)> = Vec::new();
            for (col, val) in sets {
                idx_sets.push((schema.resolve(col)?, val.clone()));
            }
            let mut rows = Vec::new();
            for t in rel.tuples() {
                let mut t = t.clone();
                if pred.eval(&schema, &t)? {
                    for (i, v) in &idx_sets {
                        t[*i] = v.clone();
                    }
                }
                rows.push(t);
            }
            *rel = crate::Relation::from_rows(schema, rows)?;
            rel.dedup();
            Ok(rel.clone())
        }
    }
}

// ---------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Sym(String),
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    input_len: usize,
}

fn lex(input: &str) -> Result<Vec<(usize, Tok)>, RelalgError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            toks.push((start, Tok::Ident(input[start..i].to_owned())));
        } else if c.is_ascii_digit()
            || (c == '-' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit())
        {
            let start = i;
            if c == '-' {
                i += 1;
            }
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let n: i64 = input[start..i].parse().map_err(|_| RelalgError::Parse {
                at: start,
                msg: "integer out of range".to_owned(),
            })?;
            toks.push((start, Tok::Int(n)));
        } else if c == '\'' {
            let start = i;
            i += 1;
            let mut s = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(RelalgError::Parse {
                        at: start,
                        msg: "unterminated string literal".to_owned(),
                    });
                }
                if bytes[i] == b'\'' {
                    // '' is an escaped quote.
                    if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                        s.push('\'');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    s.push(bytes[i] as char);
                    i += 1;
                }
            }
            toks.push((start, Tok::Str(s)));
        } else {
            let start = i;
            // Multi-char symbols first.
            let rest = &input[i..];
            let sym = ["<>", "<=", ">=", "="]
                .iter()
                .chain(["<", ">", ",", "(", ")", "*", ".", ";"].iter())
                .find(|s| rest.starts_with(**s));
            match sym {
                Some(s) => {
                    toks.push((start, Tok::Sym((*s).to_owned())));
                    i += s.len();
                }
                None => {
                    return Err(RelalgError::Parse {
                        at: start,
                        msg: format!("unexpected character {c:?}"),
                    })
                }
            }
        }
    }
    Ok(toks)
}

impl Parser {
    fn new(input: &str) -> Result<Self, RelalgError> {
        Ok(Parser {
            toks: lex(input)?,
            pos: 0,
            input_len: input.len(),
        })
    }

    fn err(&self, msg: &str) -> RelalgError {
        let at = self
            .toks
            .get(self.pos)
            .map(|(o, _)| *o)
            .unwrap_or(self.input_len);
        RelalgError::Parse {
            at,
            msg: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn expect_end(&self) -> Result<(), RelalgError> {
        // A trailing semicolon is tolerated.
        let mut p = self.pos;
        while let Some((_, Tok::Sym(s))) = self.toks.get(p) {
            if s == ";" {
                p += 1;
            } else {
                break;
            }
        }
        if p >= self.toks.len() {
            Ok(())
        } else {
            Err(self.err("unexpected trailing input"))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(id)) = self.peek() {
            if id.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), RelalgError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected keyword {kw}")))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if let Some(Tok::Sym(s)) = self.peek() {
            if s == sym {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), RelalgError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {sym:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, RelalgError> {
        match self.peek() {
            Some(Tok::Ident(id)) => {
                let id = id.clone();
                self.pos += 1;
                Ok(id)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    /// A possibly-qualified column name: `a` or `r.a`.
    fn column(&mut self) -> Result<String, RelalgError> {
        let first = self.ident()?;
        if self.eat_symbol(".") {
            let second = self.ident()?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    fn constant(&mut self) -> Result<Atom, RelalgError> {
        match self.peek().cloned() {
            Some(Tok::Int(n)) => {
                self.pos += 1;
                Ok(Atom::Int(n))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Atom::Str(s))
            }
            Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("true") => {
                self.pos += 1;
                Ok(Atom::Bool(true))
            }
            Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("false") => {
                self.pos += 1;
                Ok(Atom::Bool(false))
            }
            Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("null") => {
                self.pos += 1;
                Ok(Atom::Unit)
            }
            _ => Err(self.err("expected constant")),
        }
    }

    fn is_keyword(id: &str) -> bool {
        const KW: [&str; 16] = [
            "select", "from", "where", "union", "except", "and", "or", "not", "as", "insert",
            "into", "values", "delete", "update", "set", "distinct",
        ];
        KW.iter().any(|k| id.eq_ignore_ascii_case(k))
    }

    // ------------------------------------------------------- statements

    fn statement(&mut self) -> Result<Statement, RelalgError> {
        match self.peek() {
            Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("select") => {
                Ok(Statement::Query(self.query()?))
            }
            Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("insert") => self.insert(),
            Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("delete") => self.delete(),
            Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("update") => self.update(),
            _ => Err(self.err("expected SELECT, INSERT, DELETE or UPDATE")),
        }
    }

    fn insert(&mut self) -> Result<Statement, RelalgError> {
        self.expect_keyword("insert")?;
        self.expect_keyword("into")?;
        let relation = self.ident()?;
        self.expect_keyword("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.constant()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            rows.push(row);
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(Statement::Insert { relation, rows })
    }

    fn delete(&mut self) -> Result<Statement, RelalgError> {
        self.expect_keyword("delete")?;
        self.expect_keyword("from")?;
        let relation = self.ident()?;
        let pred = if self.eat_keyword("where") {
            self.pred()?
        } else {
            Pred::True
        };
        Ok(Statement::Delete { relation, pred })
    }

    fn update(&mut self) -> Result<Statement, RelalgError> {
        self.expect_keyword("update")?;
        let relation = self.ident()?;
        // The paper's Figure 3 writes `UPDATE R WHERE A = 10; SET B = 55`
        // with the clauses transposed; accept both orders.
        let mut pred = Pred::True;
        let mut sets = Vec::new();
        let mut saw_set = false;
        loop {
            if self.eat_keyword("set") {
                saw_set = true;
                loop {
                    let col = self.column()?;
                    self.expect_symbol("=")?;
                    let val = self.constant()?;
                    sets.push((col, val));
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
            } else if self.eat_keyword("where") {
                pred = self.pred()?;
                // Tolerate the paper's stray ';' between clauses.
                let _ = self.eat_symbol(";");
            } else {
                break;
            }
            let _ = self.eat_symbol(";");
            if saw_set
                && !matches!(self.peek(), Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("where"))
            {
                break;
            }
        }
        if !saw_set {
            return Err(self.err("UPDATE requires a SET clause"));
        }
        Ok(Statement::Update {
            relation,
            sets,
            pred,
        })
    }

    // ---------------------------------------------------------- queries

    fn query(&mut self) -> Result<RaExpr, RelalgError> {
        let mut left = self.select_query()?;
        loop {
            if self.eat_keyword("union") {
                let right = self.select_query()?;
                left = left.union(right);
            } else if self.eat_keyword("except") {
                let right = self.select_query()?;
                left = left.diff(right);
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn select_query(&mut self) -> Result<RaExpr, RelalgError> {
        self.expect_keyword("select")?;
        let _ = self.eat_keyword("distinct"); // set semantics anyway
        let star = self.eat_symbol("*");
        let mut items: Vec<ProjItem> = Vec::new();
        if !star {
            loop {
                items.push(self.proj_item()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        self.expect_keyword("from")?;
        let mut sources: Vec<RaExpr> = Vec::new();
        loop {
            let name = self.ident()?;
            let alias = match self.peek() {
                Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("as") => {
                    self.pos += 1;
                    Some(self.ident()?)
                }
                Some(Tok::Ident(id)) if !Self::is_keyword(id) => {
                    let a = id.clone();
                    self.pos += 1;
                    Some(a)
                }
                _ => None,
            };
            // Tables are always scanned under an alias (defaulting to the
            // table name) so that qualified references like `R.A` resolve
            // even in single-table FROM clauses.
            let alias = alias.unwrap_or_else(|| name.clone());
            sources.push(RaExpr::ScanAs(name, alias));
            if !self.eat_symbol(",") {
                break;
            }
        }
        let mut from = None;
        for src in sources {
            from = Some(match from {
                None => src,
                Some(f) => RaExpr::Product(Box::new(f), Box::new(src)),
            });
        }
        let mut q = from.expect("at least one source");
        if self.eat_keyword("where") {
            q = q.select(self.pred()?);
        }
        if !star {
            q = q.project(items);
        }
        Ok(q)
    }

    fn proj_item(&mut self) -> Result<ProjItem, RelalgError> {
        // Constant or column, optionally AS name.
        let (source_col, source_const) = match self.peek() {
            Some(Tok::Ident(id)) if !Self::is_keyword(id) => (Some(self.column()?), None),
            _ => (None, Some(self.constant()?)),
        };
        let name = if self.eat_keyword("as") {
            self.ident()?
        } else {
            match &source_col {
                Some(c) => c.rsplit('.').next().unwrap_or(c).to_owned(),
                None => return Err(self.err("constant projection requires AS name")),
            }
        };
        Ok(match (source_col, source_const) {
            (Some(c), _) => ProjItem::col(c, name),
            (_, Some(a)) => ProjItem {
                source: crate::expr::ProjSource::Const(a),
                name,
            },
            _ => unreachable!(),
        })
    }

    // ------------------------------------------------------- predicates

    fn pred(&mut self) -> Result<Pred, RelalgError> {
        self.or_pred()
    }

    fn or_pred(&mut self) -> Result<Pred, RelalgError> {
        let mut left = self.and_pred()?;
        while self.eat_keyword("or") {
            let right = self.and_pred()?;
            left = Pred::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_pred(&mut self) -> Result<Pred, RelalgError> {
        let mut left = self.unary_pred()?;
        while self.eat_keyword("and") {
            let right = self.unary_pred()?;
            left = Pred::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_pred(&mut self) -> Result<Pred, RelalgError> {
        if self.eat_keyword("not") {
            return Ok(Pred::Not(Box::new(self.unary_pred()?)));
        }
        if self.eat_symbol("(") {
            let p = self.pred()?;
            self.expect_symbol(")")?;
            return Ok(p);
        }
        let left = self.operand()?;
        let op = self.cmp_op()?;
        let right = self.operand()?;
        Ok(Pred::Cmp { left, op, right })
    }

    fn operand(&mut self) -> Result<Operand, RelalgError> {
        match self.peek() {
            Some(Tok::Ident(id))
                if !Self::is_keyword(id)
                    && !id.eq_ignore_ascii_case("true")
                    && !id.eq_ignore_ascii_case("false")
                    && !id.eq_ignore_ascii_case("null") =>
            {
                Ok(Operand::Col(self.column()?))
            }
            _ => Ok(Operand::Const(self.constant()?)),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, RelalgError> {
        for (sym, op) in [
            ("<>", CmpOp::Ne),
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("=", CmpOp::Eq),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.eat_symbol(sym) {
                return Ok(op);
            }
        }
        Err(self.err("expected comparison operator"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;

    fn int(i: i64) -> Atom {
        Atom::Int(i)
    }

    fn paper_db() -> Database {
        Database::new()
            .with(
                "R",
                Relation::table(["A", "B"], [vec![int(10), int(49)], vec![int(12), int(50)]])
                    .unwrap(),
            )
            .with(
                "S",
                Relation::table(["A", "B"], [vec![int(11), int(49)], vec![int(12), int(50)]])
                    .unwrap(),
            )
    }

    #[test]
    fn parses_and_runs_q1() {
        let mut db = paper_db();
        let r = execute(
            &mut db,
            "SELECT R.A, R.B FROM R, S WHERE R.A = S.A AND R.B = 50",
        )
        .unwrap();
        assert_eq!(r.schema().attrs(), ["A", "B"]);
        assert_eq!(r.tuples(), &[vec![int(12), int(50)]]);
    }

    #[test]
    fn parses_and_runs_q2_with_constant() {
        let mut db = paper_db();
        let r = execute(
            &mut db,
            "SELECT S.A, 50 AS B FROM R, S WHERE R.A = S.A AND R.B = 50",
        )
        .unwrap();
        assert_eq!(r.tuples(), &[vec![int(12), int(50)]]);
    }

    #[test]
    fn select_star_single_table() {
        let mut db = paper_db();
        let r = execute(&mut db, "SELECT * FROM R WHERE A = 10").unwrap();
        assert_eq!(r.tuples(), &[vec![int(10), int(49)]]);
    }

    #[test]
    fn figure3_first_program_is_a_query() {
        let mut db = paper_db();
        let r = execute(
            &mut db,
            "SELECT R.A, 55 AS B FROM R WHERE A <> 10 \
             UNION SELECT * FROM R WHERE A = 10",
        )
        .unwrap();
        let expect: std::collections::BTreeSet<Tuple> =
            [vec![int(12), int(55)], vec![int(10), int(49)]]
                .into_iter()
                .collect();
        assert_eq!(r.tuple_set(), expect);
    }

    #[test]
    fn figure3_delete_insert() {
        let mut db = paper_db();
        execute(&mut db, "DELETE FROM R WHERE A = 10").unwrap();
        execute(&mut db, "INSERT INTO R VALUES (10, 55)").unwrap();
        let expect: std::collections::BTreeSet<Tuple> =
            [vec![int(10), int(55)], vec![int(12), int(50)]]
                .into_iter()
                .collect();
        assert_eq!(db.get("R").unwrap().tuple_set(), expect);
    }

    #[test]
    fn figure3_update_both_clause_orders() {
        // Standard order.
        let mut db = paper_db();
        execute(&mut db, "UPDATE R SET B = 55 WHERE A = 10").unwrap();
        assert!(db.get("R").unwrap().contains(&vec![int(10), int(55)]));
        // The paper's transposed order with stray semicolon.
        let mut db2 = paper_db();
        execute(&mut db2, "UPDATE R WHERE A = 10; SET B = 55").unwrap();
        assert_eq!(
            db.get("R").unwrap().tuple_set(),
            db2.get("R").unwrap().tuple_set()
        );
    }

    #[test]
    fn except_and_parens_and_strings() {
        let mut db = Database::new().with(
            "T",
            Relation::table(
                ["name", "n"],
                [
                    vec![Atom::Str("a".into()), int(1)],
                    vec![Atom::Str("b".into()), int(2)],
                ],
            )
            .unwrap(),
        );
        let r = execute(
            &mut db,
            "SELECT * FROM T WHERE (name = 'a' OR name = 'b') AND NOT n = 2",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        let r2 = execute(
            &mut db,
            "SELECT name FROM T EXCEPT SELECT name FROM T WHERE n = 2",
        )
        .unwrap();
        assert_eq!(r2.tuples(), &[vec![Atom::Str("a".into())]]);
    }

    #[test]
    fn aliases_resolve() {
        let mut db = paper_db();
        let r = execute(&mut db, "SELECT x.A FROM R AS x, S AS y WHERE x.A = y.A").unwrap();
        assert_eq!(r.tuples(), &[vec![int(12)]]);
    }

    #[test]
    fn script_parsing() {
        let stmts =
            parse_script("DELETE FROM R WHERE A = 10; INSERT INTO R VALUES (10, 55);").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn parse_errors_carry_position() {
        match parse("SELECT FROM R") {
            Err(RelalgError::Parse { at, .. }) => assert!(at > 0),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(parse("SELECT * FROM R WHERE A ~ 3").is_err());
        assert!(parse("SELECT 5 FROM R").is_err(), "constant needs AS");
        assert!(parse("SELECT * FROM R extra garbage +").is_err());
    }

    #[test]
    fn string_escapes() {
        let stmts = parse("INSERT INTO R VALUES ('it''s', 1)").unwrap();
        match stmts {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows[0][0], Atom::Str("it's".into()));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn multi_row_insert_and_delete_all() {
        let mut db = paper_db();
        execute(&mut db, "INSERT INTO R VALUES (1,1), (2,2)").unwrap();
        assert_eq!(db.get("R").unwrap().len(), 4);
        execute(&mut db, "DELETE FROM R").unwrap();
        assert!(db.get("R").unwrap().is_empty());
    }
}
