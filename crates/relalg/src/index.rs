//! In-memory secondary indexes over relation columns.
//!
//! A [`ColumnIndex`] maps each value of one column to the row offsets
//! holding it, in row order — so an index scan yields exactly the rows a
//! full scan plus filter would, in the same order, and the planner's
//! byte-identical guarantee is preserved. [`IndexSet`] is the catalog the
//! planner consults; `cdb-core` maintains the durable analogue (postings
//! keyed by entry, registered through the WAL) and rebuilds a fresh
//! `IndexSet` for the entries view, while ad-hoc callers can
//! [`IndexSet::build`] one straight from a [`Database`].

use std::collections::{BTreeMap, HashMap};

use cdb_model::Atom;

use crate::database::Database;
use crate::error::RelalgError;
use crate::relation::Relation;
use crate::stats::base_name;

/// A hash index over one column of one relation.
#[derive(Debug, Clone, Default)]
pub struct ColumnIndex {
    /// Relation the index covers.
    pub rel: String,
    /// Unqualified column name.
    pub col: String,
    /// Column position in the relation's schema.
    pub col_idx: usize,
    /// Value → offsets of the rows holding it, ascending.
    postings: HashMap<Atom, Vec<usize>>,
}

impl ColumnIndex {
    /// Builds an index over `col` of `rel`. Fails if the column does not
    /// resolve in the relation's schema.
    pub fn build(rel_name: &str, rel: &Relation, col: &str) -> Result<ColumnIndex, RelalgError> {
        let col_idx = rel.schema().resolve(col)?;
        let mut postings: HashMap<Atom, Vec<usize>> = HashMap::new();
        for (row, t) in rel.tuples().iter().enumerate() {
            postings.entry(t[col_idx].clone()).or_default().push(row);
        }
        Ok(ColumnIndex {
            rel: rel_name.to_owned(),
            col: base_name(col).to_owned(),
            col_idx,
            postings,
        })
    }

    /// Assembles an index from precomputed postings — the durable
    /// engine's path: `cdb-core` maintains postings keyed by entry and
    /// converts them to row offsets per snapshot. Offsets must be
    /// ascending per value for the row-order guarantee to hold.
    pub fn from_postings(
        rel: impl Into<String>,
        col: impl Into<String>,
        col_idx: usize,
        postings: impl IntoIterator<Item = (Atom, Vec<usize>)>,
    ) -> ColumnIndex {
        let col = col.into();
        ColumnIndex {
            rel: rel.into(),
            col: base_name(&col).to_owned(),
            col_idx,
            postings: postings.into_iter().collect(),
        }
    }

    /// Row offsets holding `key`, in row order.
    pub fn lookup(&self, key: &Atom) -> &[usize] {
        self.postings.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct values indexed.
    pub fn distinct(&self) -> u64 {
        self.postings.len() as u64
    }
}

/// The catalog of column indexes the planner may use.
#[derive(Debug, Clone, Default)]
pub struct IndexSet {
    map: BTreeMap<(String, String), ColumnIndex>,
}

impl IndexSet {
    /// An empty catalog: every access path is a full scan.
    pub fn new() -> IndexSet {
        IndexSet::default()
    }

    /// Builds indexes for the given `(relation, column)` specs from a
    /// database. Unknown relations or columns are errors.
    pub fn build<'a>(
        db: &Database,
        specs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Result<IndexSet, RelalgError> {
        let mut set = IndexSet::new();
        for (rel, col) in specs {
            set.add(ColumnIndex::build(rel, db.get(rel)?, col)?);
        }
        Ok(set)
    }

    /// Registers an index, replacing any previous one on the same
    /// relation and column.
    pub fn add(&mut self, idx: ColumnIndex) {
        self.map.insert((idx.rel.clone(), idx.col.clone()), idx);
    }

    /// Index on `(rel, col)` if one exists; `col` may be qualified.
    pub fn get(&self, rel: &str, col: &str) -> Option<&ColumnIndex> {
        self.map.get(&(rel.to_owned(), base_name(col).to_owned()))
    }

    /// Iterates registered indexes in `(relation, column)` order.
    pub fn iter(&self) -> impl Iterator<Item = &ColumnIndex> {
        self.map.values()
    }

    /// Number of registered indexes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        Relation::table(
            ["K", "A"],
            (0..10).map(|i| vec![Atom::Int(i % 3), Atom::Int(i)]),
        )
        .unwrap()
    }

    #[test]
    fn lookup_returns_rows_in_row_order() {
        let idx = ColumnIndex::build("R", &rel(), "K").unwrap();
        assert_eq!(idx.lookup(&Atom::Int(0)), &[0, 3, 6, 9]);
        assert_eq!(idx.lookup(&Atom::Int(2)), &[2, 5, 8]);
        assert!(idx.lookup(&Atom::Int(7)).is_empty());
        assert_eq!(idx.distinct(), 3);
    }

    #[test]
    fn build_rejects_unknown_column_and_relation() {
        assert!(ColumnIndex::build("R", &rel(), "Z").is_err());
        let db = Database::new().with("R", rel());
        assert!(IndexSet::build(&db, [("Q", "K")]).is_err());
        let set = IndexSet::build(&db, [("R", "K")]).unwrap();
        assert_eq!(set.len(), 1);
        assert!(set.get("R", "K").is_some());
        assert!(set.get("R", "r.K").is_some(), "qualified lookup works");
        assert!(set.get("R", "A").is_none());
    }
}
