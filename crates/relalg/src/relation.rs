//! Flat relations: schemas, tuples, and relation values.

use std::collections::BTreeSet;
use std::fmt;

use cdb_model::Atom;

use crate::error::RelalgError;

/// A tuple: a fixed-arity vector of atoms, positionally matched to a
/// [`Schema`].
pub type Tuple = Vec<Atom>;

/// A relation schema: an ordered list of attribute names.
///
/// Attribute references may be qualified (`"R.A"`). Resolution of an
/// unqualified name succeeds iff exactly one column matches either the
/// whole name or its unqualified suffix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    attrs: Vec<String>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate attribute names.
    pub fn new<S: Into<String>>(attrs: impl IntoIterator<Item = S>) -> Result<Self, RelalgError> {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        let mut seen = BTreeSet::new();
        for a in &attrs {
            if !seen.insert(a.clone()) {
                return Err(RelalgError::DuplicateAttribute(a.clone()));
            }
        }
        Ok(Schema { attrs })
    }

    /// The attribute names, in order.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// The arity of the schema.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The unqualified part of an attribute name (`"R.A"` → `"A"`).
    fn base_name(attr: &str) -> &str {
        attr.rsplit('.').next().unwrap_or(attr)
    }

    /// Resolves an attribute reference to a column index.
    ///
    /// A reference matches a column if it equals the column name exactly,
    /// or if it equals the column's unqualified base name. Ambiguity and
    /// absence are errors.
    pub fn resolve(&self, attr: &str) -> Result<usize, RelalgError> {
        let exact: Vec<usize> = self
            .attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.as_str() == attr)
            .map(|(i, _)| i)
            .collect();
        let matches = if exact.is_empty() {
            self.attrs
                .iter()
                .enumerate()
                .filter(|(_, a)| Self::base_name(a) == attr)
                .map(|(i, _)| i)
                .collect()
        } else {
            exact
        };
        match matches.as_slice() {
            [i] => Ok(*i),
            [] => Err(RelalgError::NoSuchAttribute {
                attr: attr.to_owned(),
                schema: self.attrs.clone(),
            }),
            many => Err(RelalgError::AmbiguousAttribute {
                attr: attr.to_owned(),
                candidates: many.iter().map(|&i| self.attrs[i].clone()).collect(),
            }),
        }
    }

    /// Prefixes every attribute with a qualifier: `A` → `q.A`. Existing
    /// qualifiers are replaced (`R.A` → `q.A`), matching SQL aliasing.
    pub fn qualified(&self, q: &str) -> Schema {
        Schema {
            attrs: self
                .attrs
                .iter()
                .map(|a| format!("{q}.{}", Self::base_name(a)))
                .collect(),
        }
    }

    /// Strips qualifiers from every attribute, failing on collisions.
    pub fn unqualified(&self) -> Result<Schema, RelalgError> {
        Schema::new(self.attrs.iter().map(|a| Self::base_name(a).to_owned()))
    }

    /// Whether two schemas are union-compatible (same base names in the
    /// same order — qualifiers are ignored, as SQL does).
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.arity() == other.arity()
            && self
                .attrs
                .iter()
                .zip(&other.attrs)
                .all(|(a, b)| Self::base_name(a) == Self::base_name(b))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.attrs.join(", "))
    }
}

/// A relation value: a schema plus a sequence of tuples.
///
/// Tuples are kept in insertion order and may contain duplicates; most
/// operations are set-semantics and call [`Relation::dedup`] at the end,
/// matching the paper's use of set-based relational algebra. (Bag
/// semantics lives in `cdb-semiring` as the ℕ-instantiation of
/// K-relations, where it belongs.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Creates a relation from rows, checking arity.
    pub fn from_rows(
        schema: Schema,
        rows: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, RelalgError> {
        let mut rel = Relation::empty(schema);
        for row in rows {
            rel.insert(row)?;
        }
        Ok(rel)
    }

    /// Convenience constructor: `Relation::table(["A","B"], [...rows])`.
    pub fn table<S: Into<String>>(
        attrs: impl IntoIterator<Item = S>,
        rows: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, RelalgError> {
        Relation::from_rows(Schema::new(attrs)?, rows)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The tuples, in order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of tuples (counting duplicates).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple, checking arity.
    pub fn insert(&mut self, tuple: Tuple) -> Result<(), RelalgError> {
        if tuple.len() != self.schema.arity() {
            return Err(RelalgError::UpdateError(format!(
                "arity mismatch: tuple has {} fields, schema {} has {}",
                tuple.len(),
                self.schema,
                self.schema.arity()
            )));
        }
        self.tuples.push(tuple);
        Ok(())
    }

    /// Whether the relation contains the tuple.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.iter().any(|t| t == tuple)
    }

    /// Removes duplicate tuples, keeping first occurrences in order.
    pub fn dedup(&mut self) {
        let mut seen: BTreeSet<Tuple> = BTreeSet::new();
        self.tuples.retain(|t| seen.insert(t.clone()));
    }

    /// Returns the deduplicated set of tuples.
    pub fn tuple_set(&self) -> BTreeSet<Tuple> {
        self.tuples.iter().cloned().collect()
    }

    /// Set-equality: same schema base names and same tuple sets,
    /// ignoring order and duplicates.
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.schema.union_compatible(&other.schema) && self.tuple_set() == other.tuple_set()
    }

    /// The canonical form: tuples deduplicated and sorted. The planned
    /// evaluator ([`crate::plan::eval_plan`]) reorders joins, which
    /// permutes tuple *discovery* order, so its outputs are normalized to
    /// this form — two canonical relations are `==` iff they are
    /// set-equal with identical schemas.
    pub fn canonical(&self) -> Relation {
        Relation {
            schema: self.schema.clone(),
            tuples: self.tuple_set().into_iter().collect(),
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.tuples {
            let cells: Vec<String> = t.iter().map(|a| a.to_string()).collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> Relation {
        Relation::table(
            ["A", "B"],
            [
                vec![Atom::Int(10), Atom::Int(49)],
                vec![Atom::Int(12), Atom::Int(50)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn schema_rejects_duplicates() {
        assert!(matches!(
            Schema::new(["A", "A"]),
            Err(RelalgError::DuplicateAttribute(_))
        ));
    }

    #[test]
    fn resolve_prefers_exact_then_base_name() {
        let s = Schema::new(["R.A", "S.A", "B"]).unwrap();
        assert_eq!(s.resolve("R.A").unwrap(), 0);
        assert_eq!(s.resolve("B").unwrap(), 2);
        assert!(matches!(
            s.resolve("A"),
            Err(RelalgError::AmbiguousAttribute { .. })
        ));
        assert!(matches!(
            s.resolve("C"),
            Err(RelalgError::NoSuchAttribute { .. })
        ));
    }

    #[test]
    fn qualification_round_trip() {
        let s = Schema::new(["A", "B"]).unwrap();
        let q = s.qualified("r");
        assert_eq!(q.attrs(), ["r.A", "r.B"]);
        assert_eq!(q.unqualified().unwrap(), s);
        // Re-qualifying replaces the qualifier.
        assert_eq!(q.qualified("x").attrs(), ["x.A", "x.B"]);
    }

    #[test]
    fn union_compatibility_ignores_qualifiers() {
        let a = Schema::new(["R.A", "R.B"]).unwrap();
        let b = Schema::new(["A", "B"]).unwrap();
        let c = Schema::new(["A", "C"]).unwrap();
        assert!(a.union_compatible(&b));
        assert!(!a.union_compatible(&c));
    }

    #[test]
    fn insert_checks_arity() {
        let mut rel = r();
        assert!(rel.insert(vec![Atom::Int(1)]).is_err());
        assert!(rel.insert(vec![Atom::Int(1), Atom::Int(2)]).is_ok());
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn dedup_and_set_eq() {
        let mut rel = r();
        rel.insert(vec![Atom::Int(10), Atom::Int(49)]).unwrap();
        assert_eq!(rel.len(), 3);
        rel.dedup();
        assert_eq!(rel.len(), 2);
        assert!(rel.set_eq(&r()));
    }

    #[test]
    fn display_renders_rows() {
        let s = r().to_string();
        assert!(s.contains("(A, B)"));
        assert!(s.contains("10 | 49"));
    }
}
