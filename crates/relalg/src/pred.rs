//! Selection predicates.

use std::fmt;

use cdb_model::Atom;

use crate::error::RelalgError;
use crate::relation::{Schema, Tuple};

/// An operand of a comparison: a column reference or a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A (possibly qualified) attribute reference.
    Col(String),
    /// A constant atom.
    Const(Atom),
}

impl Operand {
    /// Convenience constructor for a column operand.
    pub fn col(name: impl Into<String>) -> Self {
        Operand::Col(name.into())
    }

    /// Convenience constructor for a constant operand.
    pub fn constant(a: impl Into<Atom>) -> Self {
        Operand::Const(a.into())
    }

    /// Evaluates the operand against a tuple.
    pub fn eval<'a>(&'a self, schema: &Schema, tuple: &'a Tuple) -> Result<&'a Atom, RelalgError> {
        match self {
            Operand::Col(name) => Ok(&tuple[schema.resolve(name)?]),
            Operand::Const(a) => Ok(a),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Col(c) => write!(f, "{c}"),
            Operand::Const(a) => write!(f, "{a}"),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less.
    Lt,
    /// Less or equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    /// Applies the operator to two atoms. Ordered comparisons require the
    /// atoms to be of the same constructor.
    pub fn apply(self, l: &Atom, r: &Atom) -> Result<bool, RelalgError> {
        match self {
            CmpOp::Eq => Ok(l == r),
            CmpOp::Ne => Ok(l != r),
            _ => {
                if std::mem::discriminant(l) != std::mem::discriminant(r) {
                    return Err(RelalgError::TypeError(format!(
                        "cannot order {l} against {r}"
                    )));
                }
                Ok(match self {
                    CmpOp::Lt => l < r,
                    CmpOp::Le => l <= r,
                    CmpOp::Gt => l > r,
                    CmpOp::Ge => l >= r,
                    CmpOp::Eq | CmpOp::Ne => unreachable!(),
                })
            }
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A selection predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// Always true.
    True,
    /// A comparison between two operands.
    Cmp {
        /// Left operand.
        left: Operand,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: Operand,
    },
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// `left op right` convenience constructor.
    pub fn cmp(left: Operand, op: CmpOp, right: Operand) -> Self {
        Pred::Cmp { left, op, right }
    }

    /// `col = const` convenience constructor.
    pub fn col_eq_const(col: impl Into<String>, a: impl Into<Atom>) -> Self {
        Pred::cmp(Operand::col(col), CmpOp::Eq, Operand::constant(a))
    }

    /// `col1 = col2` convenience constructor.
    pub fn col_eq_col(l: impl Into<String>, r: impl Into<String>) -> Self {
        Pred::cmp(Operand::col(l), CmpOp::Eq, Operand::col(r))
    }

    /// Conjunction convenience constructor.
    pub fn and(self, other: Pred) -> Self {
        Pred::And(Box::new(self), Box::new(other))
    }

    /// Evaluates the predicate against a tuple.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<bool, RelalgError> {
        match self {
            Pred::True => Ok(true),
            Pred::Cmp { left, op, right } => {
                let l = left.eval(schema, tuple)?;
                let r = right.eval(schema, tuple)?;
                op.apply(l, r)
            }
            Pred::And(a, b) => Ok(a.eval(schema, tuple)? && b.eval(schema, tuple)?),
            Pred::Or(a, b) => Ok(a.eval(schema, tuple)? || b.eval(schema, tuple)?),
            Pred::Not(p) => Ok(!p.eval(schema, tuple)?),
        }
    }

    /// The top-level conjuncts of the predicate, flattening nested
    /// `And` (a single non-conjunctive predicate is its own conjunct).
    /// `True` contributes nothing. Used by the equi-join recognizer in
    /// [`crate::exec`] to pull hash keys out of a selection.
    pub fn conjuncts(&self) -> Vec<&Pred> {
        match self {
            Pred::True => Vec::new(),
            Pred::And(a, b) => {
                let mut v = a.conjuncts();
                v.extend(b.conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// The pairs of operands this predicate *explicitly equates* at the
    /// top level (under conjunction only). Used by the DEFAULT-ALL
    /// annotation-propagation scheme of §2.1, which merges the
    /// annotations of base values "explicitly found to be equal in a
    /// selection".
    pub fn equated_pairs(&self) -> Vec<(Operand, Operand)> {
        match self {
            Pred::Cmp {
                left,
                op: CmpOp::Eq,
                right,
            } => {
                vec![(left.clone(), right.clone())]
            }
            Pred::And(a, b) => {
                let mut v = a.equated_pairs();
                v.extend(b.equated_pairs());
                v
            }
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::Cmp { left, op, right } => write!(f, "{left} {op} {right}"),
            Pred::And(a, b) => write!(f, "({a} AND {b})"),
            Pred::Or(a, b) => write!(f, "({a} OR {b})"),
            Pred::Not(p) => write!(f, "NOT {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(["A", "B"]).unwrap()
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let t = vec![Atom::Int(10), Atom::Int(50)];
        assert!(Pred::col_eq_const("A", 10).eval(&s, &t).unwrap());
        assert!(!Pred::col_eq_const("A", 11).eval(&s, &t).unwrap());
        assert!(
            Pred::cmp(Operand::col("B"), CmpOp::Gt, Operand::constant(49))
                .eval(&s, &t)
                .unwrap()
        );
    }

    #[test]
    fn boolean_connectives() {
        let s = schema();
        let t = vec![Atom::Int(10), Atom::Int(50)];
        let p = Pred::col_eq_const("A", 10).and(Pred::col_eq_const("B", 50));
        assert!(p.eval(&s, &t).unwrap());
        let q = Pred::Or(
            Box::new(Pred::col_eq_const("A", 99)),
            Box::new(Pred::col_eq_const("B", 50)),
        );
        assert!(q.eval(&s, &t).unwrap());
        assert!(!Pred::Not(Box::new(q)).eval(&s, &t).unwrap());
    }

    #[test]
    fn ordering_mixed_types_is_an_error() {
        let s = schema();
        let t = vec![Atom::Int(10), Atom::Str("x".into())];
        let p = Pred::cmp(Operand::col("A"), CmpOp::Lt, Operand::col("B"));
        assert!(matches!(p.eval(&s, &t), Err(RelalgError::TypeError(_))));
        // Equality across types is fine (just false).
        let q = Pred::col_eq_col("A", "B");
        assert!(!q.eval(&s, &t).unwrap());
    }

    #[test]
    fn equated_pairs_sees_through_conjunction_only() {
        let p = Pred::col_eq_col("R.A", "S.A").and(Pred::col_eq_const("R.B", 50));
        assert_eq!(p.equated_pairs().len(), 2);
        let q = Pred::Or(
            Box::new(Pred::col_eq_col("R.A", "S.A")),
            Box::new(Pred::True),
        );
        assert!(q.equated_pairs().is_empty());
    }
}
