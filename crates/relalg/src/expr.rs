//! The relational algebra AST.

use std::fmt;

use cdb_model::Atom;

use crate::pred::Pred;

/// One item of a projection list: what to output, and the output name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjItem {
    /// The source: a column reference or a constant. Constants are how
    /// queries *invent* values — the `50 AS B` of the paper's Q2, whose
    /// output carries the ⊥ annotation.
    pub source: ProjSource,
    /// The output attribute name.
    pub name: String,
}

/// The source of a projection item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProjSource {
    /// Copy a column.
    Col(String),
    /// Emit a constant.
    Const(Atom),
}

impl ProjItem {
    /// `col AS name` (or just `col`, reusing its base name).
    pub fn col(col: impl Into<String>, name: impl Into<String>) -> Self {
        ProjItem {
            source: ProjSource::Col(col.into()),
            name: name.into(),
        }
    }

    /// `const AS name`.
    pub fn constant(a: impl Into<Atom>, name: impl Into<String>) -> Self {
        ProjItem {
            source: ProjSource::Const(a.into()),
            name: name.into(),
        }
    }
}

impl fmt::Display for ProjItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.source {
            ProjSource::Col(c) if c == &self.name => write!(f, "{c}"),
            ProjSource::Col(c) => write!(f, "{c} AS {}", self.name),
            ProjSource::Const(a) => write!(f, "{a} AS {}", self.name),
        }
    }
}

/// A relational algebra expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaExpr {
    /// Scan a named base relation.
    Scan(String),
    /// Scan a named base relation under an alias: attributes become
    /// `alias.A`. (SQL `FROM R AS x`.)
    ScanAs(String, String),
    /// Selection σ_pred.
    Select(Box<RaExpr>, Pred),
    /// Projection π with optional renaming and constants. Set semantics:
    /// duplicates produced by the projection are merged.
    Project(Box<RaExpr>, Vec<ProjItem>),
    /// Cartesian product.
    Product(Box<RaExpr>, Box<RaExpr>),
    /// Natural join on shared base attribute names.
    NaturalJoin(Box<RaExpr>, Box<RaExpr>),
    /// Union (set semantics; schemas must be union-compatible).
    Union(Box<RaExpr>, Box<RaExpr>),
    /// Set difference.
    Diff(Box<RaExpr>, Box<RaExpr>),
    /// Attribute renaming: pairs of (old, new).
    Rename(Box<RaExpr>, Vec<(String, String)>),
}

impl RaExpr {
    /// Scan convenience constructor.
    pub fn scan(name: impl Into<String>) -> Self {
        RaExpr::Scan(name.into())
    }

    /// Selection convenience constructor.
    pub fn select(self, pred: Pred) -> Self {
        RaExpr::Select(Box::new(self), pred)
    }

    /// Projection convenience constructor.
    pub fn project(self, items: Vec<ProjItem>) -> Self {
        RaExpr::Project(Box::new(self), items)
    }

    /// Projection onto named columns (no renaming).
    pub fn project_cols<S: Into<String> + Clone>(self, cols: impl IntoIterator<Item = S>) -> Self {
        let items = cols
            .into_iter()
            .map(|c| {
                let name: String = c.into();
                // Output name is the unqualified base name.
                let base = name.rsplit('.').next().unwrap_or(&name).to_owned();
                ProjItem::col(name, base)
            })
            .collect();
        RaExpr::Project(Box::new(self), items)
    }

    /// Product convenience constructor.
    pub fn product(self, other: RaExpr) -> Self {
        RaExpr::Product(Box::new(self), Box::new(other))
    }

    /// Natural join convenience constructor.
    pub fn natural_join(self, other: RaExpr) -> Self {
        RaExpr::NaturalJoin(Box::new(self), Box::new(other))
    }

    /// Union convenience constructor.
    pub fn union(self, other: RaExpr) -> Self {
        RaExpr::Union(Box::new(self), Box::new(other))
    }

    /// Difference convenience constructor.
    pub fn diff(self, other: RaExpr) -> Self {
        RaExpr::Diff(Box::new(self), Box::new(other))
    }

    /// Rename convenience constructor: each pair is `(old, new)`.
    pub fn rename<S: Into<String>>(self, pairs: impl IntoIterator<Item = (S, S)>) -> Self {
        RaExpr::Rename(
            Box::new(self),
            pairs
                .into_iter()
                .map(|(o, n)| (o.into(), n.into()))
                .collect(),
        )
    }

    /// Whether the expression is *positive* (monotone): no difference.
    /// The provenance semiring semantics of §4.1 and the reverse
    /// annotation propagation of §2.2 are defined for positive queries.
    pub fn is_positive(&self) -> bool {
        match self {
            RaExpr::Scan(_) | RaExpr::ScanAs(_, _) => true,
            RaExpr::Select(e, _) | RaExpr::Project(e, _) | RaExpr::Rename(e, _) => e.is_positive(),
            RaExpr::Product(a, b) | RaExpr::NaturalJoin(a, b) | RaExpr::Union(a, b) => {
                a.is_positive() && b.is_positive()
            }
            RaExpr::Diff(_, _) => false,
        }
    }

    /// The names of the base relations scanned by this expression.
    pub fn base_relations(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_bases(&mut out);
        out
    }

    fn collect_bases(&self, out: &mut Vec<String>) {
        match self {
            RaExpr::Scan(n) | RaExpr::ScanAs(n, _) => out.push(n.clone()),
            RaExpr::Select(e, _) | RaExpr::Project(e, _) | RaExpr::Rename(e, _) => {
                e.collect_bases(out)
            }
            RaExpr::Product(a, b)
            | RaExpr::NaturalJoin(a, b)
            | RaExpr::Union(a, b)
            | RaExpr::Diff(a, b) => {
                a.collect_bases(out);
                b.collect_bases(out);
            }
        }
    }
}

impl fmt::Display for RaExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaExpr::Scan(n) => write!(f, "{n}"),
            RaExpr::ScanAs(n, a) => write!(f, "{n} AS {a}"),
            RaExpr::Select(e, p) => write!(f, "σ[{p}]({e})"),
            RaExpr::Project(e, items) => {
                let cols: Vec<String> = items.iter().map(|i| i.to_string()).collect();
                write!(f, "π[{}]({e})", cols.join(", "))
            }
            RaExpr::Product(a, b) => write!(f, "({a} × {b})"),
            RaExpr::NaturalJoin(a, b) => write!(f, "({a} ⋈ {b})"),
            RaExpr::Union(a, b) => write!(f, "({a} ∪ {b})"),
            RaExpr::Diff(a, b) => write!(f, "({a} − {b})"),
            RaExpr::Rename(e, pairs) => {
                let ps: Vec<String> = pairs.iter().map(|(o, n)| format!("{o}→{n}")).collect();
                write!(f, "ρ[{}]({e})", ps.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positivity() {
        let q = RaExpr::scan("R")
            .natural_join(RaExpr::scan("S"))
            .select(Pred::col_eq_const("A", 1))
            .project_cols(["A"]);
        assert!(q.is_positive());
        let d = q.clone().diff(RaExpr::scan("T"));
        assert!(!d.is_positive());
        assert!(!d.clone().project_cols(["A"]).is_positive());
    }

    #[test]
    fn base_relations_collects_scans() {
        let q = RaExpr::scan("R").union(RaExpr::ScanAs("S".into(), "x".into()));
        assert_eq!(q.base_relations(), vec!["R".to_string(), "S".to_string()]);
    }

    #[test]
    fn display_uses_algebra_notation() {
        let q = RaExpr::scan("R").select(Pred::col_eq_const("A", 10));
        assert_eq!(q.to_string(), "σ[A = 10](R)");
        let p = RaExpr::scan("R").project_cols(["B"]);
        assert_eq!(p.to_string(), "π[B](R)");
    }

    #[test]
    fn project_cols_strips_qualifiers_in_output() {
        let p = RaExpr::scan("R").project_cols(["r.A"]);
        match p {
            RaExpr::Project(_, items) => {
                assert_eq!(items[0].name, "A");
            }
            _ => unreachable!(),
        }
    }
}
