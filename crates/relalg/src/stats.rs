//! Per-relation statistics feeding the cost-based planner.
//!
//! The planner in [`crate::plan`] needs three numbers to order joins and
//! choose access paths: how many rows a relation has, how many distinct
//! values each column holds, and — for integer columns — roughly how
//! those values are distributed. [`DbStats::analyze`] computes all three
//! in one pass over a [`Database`]; the durable engine in `cdb-core`
//! instead maintains the same shape incrementally on commit (entry
//! counts and per-indexed-field distincts fall out of its transactional
//! secondary indexes) and hands the planner a ready-made [`DbStats`].
//!
//! Estimates are heuristics, never semantics: a wildly wrong histogram
//! can only produce a slower plan, not a wrong answer — every physical
//! plan is proven byte-identical to the reference evaluator by the
//! differential suites.

use std::collections::{BTreeMap, BTreeSet};

use cdb_model::Atom;

use crate::database::Database;
use crate::pred::CmpOp;
use crate::relation::Relation;

/// Bucket count for the per-column equi-width histograms.
pub const HIST_BUCKETS: usize = 8;

/// Join/filter selectivity assumed when no statistics are available.
pub const DEFAULT_DISTINCT: f64 = 10.0;

/// The unqualified base name of an attribute (`"r.A"` → `"A"`).
pub(crate) fn base_name(attr: &str) -> &str {
    attr.rsplit('.').next().unwrap_or(attr)
}

/// A small equi-width histogram over a column's integer values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Smallest observed value.
    pub min: i64,
    /// Largest observed value.
    pub max: i64,
    /// Row counts per equi-width bucket spanning `[min, max]`.
    pub buckets: Vec<u64>,
}

impl Histogram {
    /// Builds a histogram from integer values; `None` when empty.
    pub fn build(values: &[i64]) -> Option<Histogram> {
        let (&min, &max) = (values.iter().min()?, values.iter().max()?);
        let mut h = Histogram {
            min,
            max,
            buckets: vec![0; HIST_BUCKETS],
        };
        for &v in values {
            let b = h.bucket_of(v);
            h.buckets[b] += 1;
        }
        Some(h)
    }

    fn bucket_of(&self, v: i64) -> usize {
        if self.max <= self.min {
            return 0;
        }
        // Widths in u128: the value range may span the whole i64 line.
        let span = (self.max as i128 - self.min as i128) as u128 + 1;
        let off = (v as i128 - self.min as i128) as u128;
        ((off * self.buckets.len() as u128) / span) as usize
    }

    fn rows(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Estimated fraction of rows with value `≤ v`, linearly
    /// interpolating inside `v`'s bucket.
    pub fn le_fraction(&self, v: i64) -> f64 {
        if v < self.min {
            return 0.0;
        }
        if v >= self.max {
            return 1.0;
        }
        let rows = self.rows().max(1) as f64;
        let b = self.bucket_of(v);
        let below: u64 = self.buckets[..b].iter().sum();
        // Fraction of bucket b at or below v, assuming uniform spread.
        let span = (self.max as i128 - self.min as i128) as f64 + 1.0;
        let width = span / self.buckets.len() as f64;
        let bucket_lo = self.min as f64 + b as f64 * width;
        let inside = ((v as f64 - bucket_lo + 1.0) / width).clamp(0.0, 1.0);
        (below as f64 + inside * self.buckets[b] as f64) / rows
    }

    /// Estimated fraction of rows in `v`'s bucket (0 outside the range).
    pub fn bucket_fraction(&self, v: i64) -> f64 {
        if v < self.min || v > self.max {
            return 0.0;
        }
        self.buckets[self.bucket_of(v)] as f64 / self.rows().max(1) as f64
    }
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColStats {
    /// Number of distinct values.
    pub distinct: u64,
    /// Equi-width histogram, present when every value is an integer.
    pub hist: Option<Histogram>,
}

impl ColStats {
    /// Statistics for a column with `distinct` values and no histogram.
    pub fn distinct_only(distinct: u64) -> ColStats {
        ColStats {
            distinct,
            hist: None,
        }
    }

    /// Estimated selectivity of `col = v`.
    pub fn eq_selectivity(&self, v: &Atom) -> f64 {
        if let (Some(h), Atom::Int(i)) = (&self.hist, v) {
            if *i < h.min || *i > h.max {
                return 0.0;
            }
            // Rows in the bucket, spread over the bucket's share of the
            // column's distinct values.
            let per_bucket = (self.distinct as f64 / h.buckets.len() as f64).max(1.0);
            return (h.bucket_fraction(*i) / per_bucket).min(1.0);
        }
        1.0 / self.distinct.max(1) as f64
    }

    /// Estimated selectivity of `col <op> v` for an ordered comparison.
    pub fn range_selectivity(&self, op: CmpOp, v: &Atom) -> f64 {
        if let (Some(h), Atom::Int(i)) = (&self.hist, v) {
            let le = h.le_fraction(*i);
            let eq = self.eq_selectivity(v);
            return match op {
                CmpOp::Le => le,
                CmpOp::Lt => (le - eq).max(0.0),
                CmpOp::Ge => (1.0 - le + eq).min(1.0),
                CmpOp::Gt => 1.0 - le,
                CmpOp::Eq => eq,
                CmpOp::Ne => 1.0 - eq,
            };
        }
        match op {
            CmpOp::Eq => self.eq_selectivity(v),
            CmpOp::Ne => 1.0 - self.eq_selectivity(v),
            _ => 1.0 / 3.0,
        }
    }
}

/// Statistics for one relation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RelStats {
    /// Row count.
    pub rows: u64,
    /// Per-column statistics, keyed by unqualified attribute name.
    pub cols: BTreeMap<String, ColStats>,
}

impl RelStats {
    /// Analyzes one relation: row count, per-column distincts, and an
    /// integer histogram per all-integer column.
    pub fn analyze(rel: &Relation) -> RelStats {
        let mut cols = BTreeMap::new();
        for (i, attr) in rel.schema().attrs().iter().enumerate() {
            let mut seen: BTreeSet<&Atom> = BTreeSet::new();
            let mut ints: Vec<i64> = Vec::with_capacity(rel.len());
            let mut all_int = true;
            for t in rel.tuples() {
                seen.insert(&t[i]);
                match &t[i] {
                    Atom::Int(v) => ints.push(*v),
                    _ => all_int = false,
                }
            }
            cols.insert(
                base_name(attr).to_owned(),
                ColStats {
                    distinct: seen.len() as u64,
                    hist: if all_int {
                        Histogram::build(&ints)
                    } else {
                        None
                    },
                },
            );
        }
        RelStats {
            rows: rel.len() as u64,
            cols,
        }
    }

    /// Column statistics by (possibly qualified) attribute name.
    pub fn col(&self, attr: &str) -> Option<&ColStats> {
        self.cols.get(base_name(attr))
    }
}

/// Statistics for a whole database, keyed by relation name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DbStats {
    /// Per-relation statistics.
    pub rels: BTreeMap<String, RelStats>,
}

impl DbStats {
    /// Empty statistics: the planner falls back to default heuristics.
    pub fn none() -> DbStats {
        DbStats::default()
    }

    /// Analyzes every relation in one pass.
    pub fn analyze(db: &Database) -> DbStats {
        DbStats {
            rels: db
                .iter()
                .map(|(n, r)| (n.to_owned(), RelStats::analyze(r)))
                .collect(),
        }
    }

    /// Statistics for one relation.
    pub fn rel(&self, name: &str) -> Option<&RelStats> {
        self.rels.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(i: i64) -> Atom {
        Atom::Int(i)
    }

    #[test]
    fn analyze_counts_rows_distincts_and_buckets() {
        let rel = Relation::table(["A", "B"], (0..40).map(|i| vec![int(i), int(i % 4)])).unwrap();
        let db = Database::new().with("R", rel);
        let st = DbStats::analyze(&db);
        let r = st.rel("R").unwrap();
        assert_eq!(r.rows, 40);
        assert_eq!(r.col("A").unwrap().distinct, 40);
        assert_eq!(r.col("B").unwrap().distinct, 4);
        let h = r.col("A").unwrap().hist.as_ref().unwrap();
        assert_eq!(h.rows(), 40);
        assert_eq!((h.min, h.max), (0, 39));
        // Qualified lookups hit the same column.
        assert_eq!(r.col("r.A").unwrap().distinct, 40);
    }

    #[test]
    fn eq_selectivity_tracks_distincts_and_range() {
        let rel = Relation::table(["A"], (0..100).map(|i| vec![int(i)])).unwrap();
        let st = RelStats::analyze(&rel);
        let c = st.col("A").unwrap();
        let sel = c.eq_selectivity(&int(50));
        assert!(sel > 0.0 && sel < 0.1, "point lookup is selective: {sel}");
        assert_eq!(c.eq_selectivity(&int(1000)), 0.0, "out of range");
        let le = c.range_selectivity(CmpOp::Le, &int(49));
        assert!((le - 0.5).abs() < 0.1, "half the range: {le}");
    }

    #[test]
    fn non_integer_columns_fall_back_to_distinct() {
        let rel = Relation::table(
            ["S"],
            ["a", "b", "a", "c"].map(|s| vec![Atom::Str(s.into())]),
        )
        .unwrap();
        let st = RelStats::analyze(&rel);
        let c = st.col("S").unwrap();
        assert_eq!(c.distinct, 3);
        assert!(c.hist.is_none());
        assert!((c.eq_selectivity(&Atom::Str("a".into())) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_single_value_and_extremes() {
        let h = Histogram::build(&[7, 7, 7]).unwrap();
        assert_eq!(h.bucket_fraction(7), 1.0);
        assert_eq!(h.le_fraction(7), 1.0);
        assert_eq!(h.le_fraction(6), 0.0);
        let wide = Histogram::build(&[i64::MIN, 0, i64::MAX]).unwrap();
        assert_eq!(wide.rows(), 3);
        assert!(wide.le_fraction(i64::MAX) == 1.0);
    }
}
