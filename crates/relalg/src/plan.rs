//! The cost-based planner: normalization, cardinality estimation, greedy
//! join ordering, and physical operator selection.
//!
//! [`plan`] compiles an [`RaExpr`] into a [`PhysPlan`] tree:
//!
//! 1. **Normalize.** Maximal σ/× subtrees are flattened into *join
//!    blocks* — a set of leaf inputs plus the split conjuncts of every
//!    selection in the block. Conjuncts that mention a single leaf and
//!    use only `=`/`<>` comparisons are pushed to that leaf (descending
//!    through ∪ and π); `col = col` conjuncts across two leaves become
//!    join edges; everything else stays as a residual filter above the
//!    joins.
//! 2. **Estimate.** Cardinalities come from [`DbStats`]: row counts,
//!    per-column distinct counts and small equi-width histograms.
//! 3. **Order.** Components are joined greedily, smallest estimated
//!    output first, always preferring edge-connected pairs over cross
//!    products. The smaller side of each join becomes the hash build
//!    side.
//! 4. **Choose physical operators.** Equi-join edges execute as hash
//!    joins ([`crate::exec::join_matches`]); a pushed `col = const` on a
//!    base-table leaf with a registered [`IndexSet`] entry becomes an
//!    [`PlanOp::IndexLookup`]; an [`PlanOp::Arrange`] restores the
//!    query's original column order after reordering.
//!
//! # Correctness contract
//!
//! The planner must be *provenance-preserving*: for every semiring the
//! planned result equals the reference evaluator's result — not just
//! set-equal, but with identical annotations. Three arguments carry
//! this (spelled out in DESIGN.md §S30):
//!
//! * Join reordering re-associates/commutes the semiring products that
//!   annotate joined tuples; semiring `·` is commutative and
//!   associative, so annotations are unchanged. Tuple *order* does
//!   change, so planned set-semantics output is normalized with
//!   [`Relation::canonical`] (K-relations are canonical already).
//! * Pushdown through π is the substitution σ_p(π(E)) = π(σ_p′(E)) with
//!   p′ mapping output names to their sources; through ∪ it distributes
//!   over both branches. Both commute with annotation sums because the
//!   predicate depends only on tuple values.
//! * **Errors.** Resolution errors are row-independent: the planner
//!   checks every conjunct against its scope schema at plan time and
//!   falls back to a whole-query [`PlanOp::Naive`] node on any failure,
//!   so malformed queries surface *exactly* the reference error. Pushed
//!   conjuncts are restricted to `=`/`<>`, which never raise the
//!   row-dependent mixed-type ordering error — so early filtering can
//!   only *mask* such an error from a residual (by removing a row the
//!   reference engine would have errored on), never introduce one. This
//!   matches the contract the PR-1 hash path already established.

use std::fmt;
use std::time::Duration;

use cdb_model::Atom;
use cdb_obs::SpanGuard;

use crate::database::Database;
use crate::error::RelalgError;
use crate::exec::{eval_hash, extract_keys, join_matches, pred_resolves, ExecConfig};
use crate::expr::{ProjItem, ProjSource, RaExpr};
use crate::index::IndexSet;
use crate::pred::{CmpOp, Operand, Pred};
use crate::relation::{Relation, Schema, Tuple};
use crate::stats::{DbStats, DEFAULT_DISTINCT};

/// A physical operator.
#[derive(Debug, Clone)]
pub enum PlanOp {
    /// Full scan of a base relation.
    Scan {
        /// Relation name.
        rel: String,
    },
    /// Full scan under an alias (attributes re-qualified).
    ScanAs {
        /// Relation name.
        rel: String,
        /// The alias.
        alias: String,
    },
    /// Point lookup through a secondary index: yields exactly the rows
    /// whose indexed column equals `key`, in row order. Falls back to a
    /// scan-and-filter at execution time if the index is absent.
    IndexLookup {
        /// Relation name.
        rel: String,
        /// Alias, when the leaf was an aliased scan.
        alias: Option<String>,
        /// Unqualified indexed column name.
        col: String,
        /// Column position in the relation.
        col_idx: usize,
        /// The looked-up constant.
        key: Atom,
    },
    /// Row filter.
    Filter {
        /// The predicate, with column references rewritten to exact
        /// attribute names of this node's schema.
        pred: Pred,
    },
    /// Hash equi-join: builds over the right child, probes with the
    /// left, concatenates left ++ right columns.
    HashJoin {
        /// `(left column, right column)` key pairs, child-local.
        keys: Vec<(usize, usize)>,
    },
    /// Hash natural join on shared base attribute names.
    HashNaturalJoin {
        /// `(left column, right column)` shared-attribute pairs.
        shared: Vec<(usize, usize)>,
        /// Right columns kept in the output (the non-shared ones).
        right_kept: Vec<usize>,
    },
    /// Cartesian product (left ++ right columns).
    Product,
    /// Column permutation restoring the query's original column order
    /// after join reordering: output column `i` is input column
    /// `perm[i]`.
    Arrange {
        /// Source position of each output column.
        perm: Vec<usize>,
    },
    /// Projection (with renaming and constants).
    Project {
        /// The projection list.
        items: Vec<ProjItem>,
    },
    /// Set union of two union-compatible children.
    Union,
    /// Set difference of two union-compatible children.
    Diff,
    /// Schema renaming; the new attribute names live in the node schema.
    Rename,
    /// Whole-query fallback: the expression could not be planned (an
    /// unresolvable predicate, a missing relation, a schema conflict)
    /// and is handed verbatim to the PR-1 engine, which surfaces exactly
    /// the reference evaluator's result or error. Only ever the root.
    Naive {
        /// The original expression.
        expr: RaExpr,
    },
}

/// The span name a physical operator executes under — the `relalg.op.*`
/// taxonomy shared with both interpreter engines (`index_scan`,
/// `arrange` and `naive` are planner-only).
pub fn plan_span_name(op: &PlanOp) -> &'static str {
    match op {
        PlanOp::Scan { .. } => "relalg.op.scan",
        PlanOp::ScanAs { .. } => "relalg.op.scan_as",
        PlanOp::IndexLookup { .. } => "relalg.op.index_scan",
        PlanOp::Filter { .. } => "relalg.op.select",
        PlanOp::HashJoin { .. } | PlanOp::HashNaturalJoin { .. } => "relalg.op.join",
        PlanOp::Product => "relalg.op.product",
        PlanOp::Arrange { .. } => "relalg.op.arrange",
        PlanOp::Project { .. } => "relalg.op.project",
        PlanOp::Union => "relalg.op.union",
        PlanOp::Diff => "relalg.op.diff",
        PlanOp::Rename => "relalg.op.rename",
        PlanOp::Naive { .. } => "relalg.op.naive",
    }
}

/// A physical plan node: operator, output schema, cardinality estimate,
/// children.
#[derive(Debug, Clone)]
pub struct PhysPlan {
    /// The operator.
    pub op: PlanOp,
    /// The output schema (exact attribute names and order).
    pub schema: Schema,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Child plans (join children are `[probe, build]`).
    pub children: Vec<PhysPlan>,
}

impl PhysPlan {
    fn node(op: PlanOp, schema: Schema, est_rows: f64, children: Vec<PhysPlan>) -> PhysPlan {
        PhysPlan {
            op,
            schema,
            est_rows,
            children,
        }
    }

    /// The display label of this node, e.g. `HashJoin[r.K=s.K]`.
    pub fn label(&self) -> String {
        match &self.op {
            PlanOp::Scan { rel } => format!("Scan {rel}"),
            PlanOp::ScanAs { rel, alias } => format!("Scan {rel} AS {alias}"),
            PlanOp::IndexLookup {
                rel,
                alias,
                col,
                key,
                ..
            } => match alias {
                Some(a) => format!("IndexScan {rel} AS {a} [{col} = {key}]"),
                None => format!("IndexScan {rel} [{col} = {key}]"),
            },
            PlanOp::Filter { pred } => format!("Filter σ[{pred}]"),
            PlanOp::HashJoin { keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|&(l, r)| {
                        format!(
                            "{}={}",
                            self.children[0].schema.attrs()[l],
                            self.children[1].schema.attrs()[r]
                        )
                    })
                    .collect();
                format!("HashJoin[{}]", ks.join(","))
            }
            PlanOp::HashNaturalJoin { shared, .. } => {
                let ks: Vec<&str> = shared
                    .iter()
                    .map(|&(i, _)| self.children[0].schema.attrs()[i].as_str())
                    .collect();
                format!("HashNaturalJoin[{}]", ks.join(","))
            }
            PlanOp::Product => "Product ×".into(),
            PlanOp::Arrange { .. } => "Arrange".into(),
            PlanOp::Project { items } => {
                let ps: Vec<String> = items.iter().map(|i| i.to_string()).collect();
                format!("Project π[{}]", ps.join(", "))
            }
            PlanOp::Union => "Union ∪".into(),
            PlanOp::Diff => "Diff −".into(),
            PlanOp::Rename => "Rename ρ".into(),
            PlanOp::Naive { expr } => format!("Naive {expr}"),
        }
    }

    /// All operators in preorder (the order [`eval_plan`] fills its
    /// [`PlanRun`] slots in).
    pub fn ops(&self) -> Vec<&PlanOp> {
        let mut out = Vec::new();
        fn go<'a>(p: &'a PhysPlan, out: &mut Vec<&'a PlanOp>) {
            out.push(&p.op);
            for c in &p.children {
                go(c, out);
            }
        }
        go(self, &mut out);
        out
    }

    /// Total number of operators in the plan.
    pub fn operator_count(&self) -> usize {
        self.ops().len()
    }

    /// Renders the plan as an indented table; with `actuals` from an
    /// [`eval_plan`] run, each row shows estimated vs actual rows and
    /// per-operator wall time (cdbsh `explain`).
    pub fn render(&self, actuals: Option<&[PlanRun]>) -> String {
        fn width(p: &PhysPlan, depth: usize) -> usize {
            let own = depth * 2 + p.label().chars().count();
            p.children
                .iter()
                .map(|c| width(c, depth + 1))
                .fold(own, usize::max)
        }
        fn walk(
            p: &PhysPlan,
            depth: usize,
            idx: &mut usize,
            actuals: Option<&[PlanRun]>,
            opw: usize,
            out: &mut String,
        ) {
            let label = format!("{}{}", " ".repeat(depth * 2), p.label());
            let fill = opw.saturating_sub(label.chars().count());
            let (rows, ms) = match actuals.and_then(|a| a.get(*idx)) {
                Some(r) => (
                    r.rows.to_string(),
                    format!("{:.3}", r.elapsed.as_secs_f64() * 1e3),
                ),
                None => ("-".into(), "-".into()),
            };
            *idx += 1;
            out.push_str(&format!(
                "{label}{}  {:>12.1}  {:>9}  {:>9}\n",
                " ".repeat(fill),
                p.est_rows,
                rows,
                ms
            ));
            for c in &p.children {
                walk(c, depth + 1, idx, actuals, opw, out);
            }
        }
        let opw = width(self, 0).max("operator".len());
        let mut out = format!(
            "{:<opw$}  {:>12}  {:>9}  {:>9}\n",
            "operator", "est rows", "rows", "ms"
        );
        let mut idx = 0;
        walk(self, 0, &mut idx, actuals, opw, &mut out);
        out
    }
}

impl fmt::Display for PhysPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(None))
    }
}

/// Per-operator actuals from one [`eval_plan`] run, in plan preorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanRun {
    /// Rows the operator produced.
    pub rows: usize,
    /// Wall time including children.
    pub elapsed: Duration,
}

/// Plans a query. Never fails: anything the planner cannot handle —
/// unresolvable predicates, missing relations, schema conflicts —
/// becomes a root [`PlanOp::Naive`] node so execution surfaces exactly
/// the reference evaluator's behaviour.
pub fn plan(db: &Database, stats: &DbStats, indexes: &IndexSet, expr: &RaExpr) -> PhysPlan {
    let p = Planner { db, stats, indexes };
    match p.plan_expr(expr) {
        Some(plan) => plan,
        None => PhysPlan::node(
            PlanOp::Naive { expr: expr.clone() },
            Schema::new(std::iter::empty::<String>()).expect("empty schema"),
            0.0,
            Vec::new(),
        ),
    }
}

/// Plans and executes in one call, returning the canonical result.
pub fn eval_planned(
    db: &Database,
    stats: &DbStats,
    indexes: &IndexSet,
    expr: &RaExpr,
    cfg: &ExecConfig,
) -> Result<Relation, RelalgError> {
    let p = plan(db, stats, indexes, expr);
    eval_plan(db, &p, indexes, cfg).map(|(rel, _)| rel)
}

struct Planner<'a> {
    db: &'a Database,
    stats: &'a DbStats,
    indexes: &'a IndexSet,
}

/// One flattened input of a join block.
struct Leaf {
    plan: PhysPlan,
    /// Per column: the `(relation, base attribute)` it scans, when the
    /// leaf is a base-table scan — the hook into [`DbStats`].
    col_src: Vec<Option<(String, String)>>,
}

impl Planner<'_> {
    fn plan_expr(&self, expr: &RaExpr) -> Option<PhysPlan> {
        match expr {
            RaExpr::Scan(_) | RaExpr::ScanAs(_, _) => self.plan_leaf(expr).map(|l| l.plan),
            RaExpr::Select(_, _) | RaExpr::Product(_, _) => self.plan_block(expr),
            RaExpr::Project(e, items) => {
                let child = self.plan_expr(e)?;
                let schema = Schema::new(items.iter().map(|i| i.name.clone())).ok()?;
                for i in items {
                    if let ProjSource::Col(c) = &i.source {
                        child.schema.resolve(c).ok()?;
                    }
                }
                let est = child.est_rows;
                Some(PhysPlan::node(
                    PlanOp::Project {
                        items: items.clone(),
                    },
                    schema,
                    est,
                    vec![child],
                ))
            }
            RaExpr::NaturalJoin(a, b) => {
                let l = self.plan_expr(a)?;
                let r = self.plan_expr(b)?;
                let shared = crate::eval::shared_attrs(&l.schema, &r.schema);
                let right_kept: Vec<usize> = (0..r.schema.arity())
                    .filter(|j| !shared.iter().any(|(_, sj)| sj == j))
                    .collect();
                let attrs: Vec<String> = l
                    .schema
                    .attrs()
                    .iter()
                    .cloned()
                    .chain(right_kept.iter().map(|&j| r.schema.attrs()[j].clone()))
                    .collect();
                let schema = Schema::new(attrs).ok()?;
                if shared.is_empty() {
                    let est = l.est_rows * r.est_rows;
                    return Some(PhysPlan::node(PlanOp::Product, schema, est, vec![l, r]));
                }
                let est =
                    l.est_rows * r.est_rows / DEFAULT_DISTINCT.powi(shared.len() as i32).max(1.0);
                Some(PhysPlan::node(
                    PlanOp::HashNaturalJoin { shared, right_kept },
                    schema,
                    est,
                    vec![l, r],
                ))
            }
            RaExpr::Union(a, b) => {
                let l = self.plan_expr(a)?;
                let r = self.plan_expr(b)?;
                if !l.schema.union_compatible(&r.schema) {
                    return None;
                }
                let schema = l.schema.clone();
                let est = l.est_rows + r.est_rows;
                Some(PhysPlan::node(PlanOp::Union, schema, est, vec![l, r]))
            }
            RaExpr::Diff(a, b) => {
                let l = self.plan_expr(a)?;
                let r = self.plan_expr(b)?;
                if !l.schema.union_compatible(&r.schema) {
                    return None;
                }
                let schema = l.schema.clone();
                let est = l.est_rows;
                Some(PhysPlan::node(PlanOp::Diff, schema, est, vec![l, r]))
            }
            RaExpr::Rename(e, pairs) => {
                let child = self.plan_expr(e)?;
                let mut attrs: Vec<String> = child.schema.attrs().to_vec();
                for (old, new) in pairs {
                    let i = child.schema.resolve(old).ok()?;
                    attrs[i] = new.clone();
                }
                let schema = Schema::new(attrs).ok()?;
                let est = child.est_rows;
                Some(PhysPlan::node(PlanOp::Rename, schema, est, vec![child]))
            }
        }
    }

    fn plan_leaf(&self, expr: &RaExpr) -> Option<Leaf> {
        match expr {
            RaExpr::Scan(name) => {
                let rel = self.db.get(name).ok()?;
                let est = self
                    .stats
                    .rel(name)
                    .map_or(rel.len() as f64, |r| r.rows as f64);
                let col_src = rel
                    .schema()
                    .attrs()
                    .iter()
                    .map(|a| Some((name.clone(), crate::stats::base_name(a).to_owned())))
                    .collect();
                Some(Leaf {
                    plan: PhysPlan::node(
                        PlanOp::Scan { rel: name.clone() },
                        rel.schema().clone(),
                        est,
                        Vec::new(),
                    ),
                    col_src,
                })
            }
            RaExpr::ScanAs(name, alias) => {
                let rel = self.db.get(name).ok()?;
                let est = self
                    .stats
                    .rel(name)
                    .map_or(rel.len() as f64, |r| r.rows as f64);
                let schema = rel.schema().qualified(alias);
                let col_src = schema
                    .attrs()
                    .iter()
                    .map(|a| Some((name.clone(), crate::stats::base_name(a).to_owned())))
                    .collect();
                Some(Leaf {
                    plan: PhysPlan::node(
                        PlanOp::ScanAs {
                            rel: name.clone(),
                            alias: alias.clone(),
                        },
                        schema,
                        est,
                        Vec::new(),
                    ),
                    col_src,
                })
            }
            other => {
                let plan = self.plan_expr(other)?;
                let col_src = vec![None; plan.schema.arity()];
                Some(Leaf { plan, col_src })
            }
        }
    }

    /// Plans a maximal σ/× subtree as one join block.
    fn plan_block(&self, expr: &RaExpr) -> Option<PhysPlan> {
        let mut leaves: Vec<Leaf> = Vec::new();
        let mut conjs: Vec<(Pred, usize, usize)> = Vec::new();
        self.collect(expr, &mut leaves, &mut conjs)?;

        // The block-wide concatenated schema. Duplicate attributes here
        // mean the reference engine would also fail building some
        // pairwise product schema — fall back so it surfaces that error.
        let global = Schema::new(
            leaves
                .iter()
                .flat_map(|l| l.plan.schema.attrs().iter().cloned()),
        )
        .ok()?;
        let col_src: Vec<Option<(String, String)>> =
            leaves.iter().flat_map(|l| l.col_src.clone()).collect();
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(leaves.len());
        let mut off = 0;
        for l in &leaves {
            ranges.push((off, off + l.plan.schema.arity()));
            off += l.plan.schema.arity();
        }
        let leaf_of = |g: usize| {
            ranges
                .iter()
                .position(|&(s, e)| g >= s && g < e)
                .expect("column inside some leaf")
        };

        // Classify each conjunct against its scope (the concatenated
        // schema of the subtree its σ applied to).
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut leaf_filters: Vec<Vec<Pred>> = vec![Vec::new(); leaves.len()];
        let mut residuals: Vec<Pred> = Vec::new();
        for (c, lo, hi) in &conjs {
            let scope = Schema::new(global.attrs()[*lo..*hi].iter().cloned())
                .expect("sub-range of a duplicate-free schema");
            if !pred_resolves(&scope, c) {
                // Resolution errors are row-independent; hand the whole
                // query to the reference engine to surface the error.
                return None;
            }
            if let Pred::Cmp {
                left: Operand::Col(l),
                op: CmpOp::Eq,
                right: Operand::Col(r),
            } = c
            {
                let li = lo + scope.resolve(l).expect("resolution pre-checked");
                let ri = lo + scope.resolve(r).expect("resolution pre-checked");
                if leaf_of(li) != leaf_of(ri) {
                    let e = (li.min(ri), li.max(ri));
                    if !edges.contains(&e) {
                        edges.push(e);
                    }
                    continue;
                }
            }
            let rewritten = rewrite_cols(c, &scope, *lo, &global);
            let mut cols = Vec::new();
            pred_cols(&rewritten, &global, &mut cols);
            let one_leaf = cols
                .first()
                .map(|&g| leaf_of(g))
                .filter(|&lf| cols.iter().all(|&g| leaf_of(g) == lf));
            match one_leaf {
                // Only error-free (=/<>) predicates may run early; see
                // the module docs' error contract.
                Some(lf) if errorless(c) => leaf_filters[lf].push(rewritten),
                _ => residuals.push(rewritten),
            }
        }

        // Push the single-leaf filters down (choosing index lookups at
        // base-table leaves).
        let mut plans: Vec<PhysPlan> = Vec::with_capacity(leaves.len());
        for (i, leaf) in leaves.into_iter().enumerate() {
            let mut p = leaf.plan;
            let (s, e) = ranges[i];
            for f in &leaf_filters[i] {
                let sel = self.conjunct_selectivity(f, &p.schema, &col_src[s..e]);
                p = self.push_filter(p, f, sel);
            }
            plans.push(p);
        }

        // Greedy join ordering over the filtered components.
        struct Comp {
            plan: PhysPlan,
            cols: Vec<usize>,
        }
        let mut comps: Vec<Comp> = plans
            .into_iter()
            .zip(&ranges)
            .map(|(p, &(s, e))| Comp {
                plan: p,
                cols: (s..e).collect(),
            })
            .collect();
        while comps.len() > 1 {
            let mut best: Option<(usize, usize, f64, bool)> = None;
            for i in 0..comps.len() {
                for j in (i + 1)..comps.len() {
                    let keys = connecting(&edges, &comps[i].cols, &comps[j].cols);
                    let connected = !keys.is_empty();
                    let est = self.join_est(
                        comps[i].plan.est_rows,
                        comps[j].plan.est_rows,
                        &keys,
                        &col_src,
                    );
                    let better = match best {
                        None => true,
                        Some((_, _, b_est, b_conn)) => {
                            (connected && !b_conn) || (connected == b_conn && est < b_est)
                        }
                    };
                    if better {
                        best = Some((i, j, est, connected));
                    }
                }
            }
            let (i, j, est, _) = best.expect("two or more components");
            let cj = comps.remove(j);
            let ci = comps.remove(i);
            let keys_g = connecting(&edges, &ci.cols, &cj.cols);
            edges.retain(|e| !keys_g.contains(e));
            // The larger side probes; the smaller becomes the hash build.
            let (l, r) = if ci.plan.est_rows >= cj.plan.est_rows {
                (ci, cj)
            } else {
                (cj, ci)
            };
            let schema = Schema::new(
                l.plan
                    .schema
                    .attrs()
                    .iter()
                    .chain(r.plan.schema.attrs())
                    .cloned(),
            )
            .expect("subset of a duplicate-free schema");
            let op = if keys_g.is_empty() {
                PlanOp::Product
            } else {
                let keys = keys_g
                    .iter()
                    .map(|&(a, b)| {
                        let (gl, gr) = if l.cols.contains(&a) { (a, b) } else { (b, a) };
                        (
                            l.cols.iter().position(|&c| c == gl).expect("left key col"),
                            r.cols.iter().position(|&c| c == gr).expect("right key col"),
                        )
                    })
                    .collect();
                PlanOp::HashJoin { keys }
            };
            let mut cols = l.cols;
            let children = vec![l.plan, r.plan];
            cols.extend(r.cols);
            comps.push(Comp {
                plan: PhysPlan::node(op, schema, est, children),
                cols,
            });
        }
        let comp = comps.pop().expect("one component remains");

        // Restore the query's original column order.
        let perm: Vec<usize> = (0..global.arity())
            .map(|g| {
                comp.cols
                    .iter()
                    .position(|&c| c == g)
                    .expect("cols is a permutation")
            })
            .collect();
        let mut out = comp.plan;
        if perm.iter().enumerate().any(|(i, &p)| i != p) {
            let est = out.est_rows;
            out = PhysPlan::node(PlanOp::Arrange { perm }, global.clone(), est, vec![out]);
        }

        // Residual conjuncts, in the reference engine's evaluation order.
        if !residuals.is_empty() {
            let mut sel = 1.0;
            for r in &residuals {
                sel *= self.conjunct_selectivity(r, &global, &col_src);
            }
            let est = out.est_rows * sel;
            let pred = residuals
                .into_iter()
                .reduce(Pred::and)
                .expect("non-empty residuals");
            out = PhysPlan::node(PlanOp::Filter { pred }, global, est, vec![out]);
        }
        Some(out)
    }

    /// Flattens a σ/× subtree: leaves plus scoped conjuncts, inner
    /// selections first (matching per-row evaluation order). Returns the
    /// subtree's global column range.
    fn collect(
        &self,
        expr: &RaExpr,
        leaves: &mut Vec<Leaf>,
        conjs: &mut Vec<(Pred, usize, usize)>,
    ) -> Option<(usize, usize)> {
        match expr {
            RaExpr::Select(e, pred) => {
                let (lo, hi) = self.collect(e, leaves, conjs)?;
                for c in pred.conjuncts() {
                    conjs.push((c.clone(), lo, hi));
                }
                Some((lo, hi))
            }
            RaExpr::Product(a, b) => {
                let (alo, _) = self.collect(a, leaves, conjs)?;
                let (_, bhi) = self.collect(b, leaves, conjs)?;
                Some((alo, bhi))
            }
            other => {
                let leaf = self.plan_leaf(other)?;
                let lo: usize = leaves.iter().map(|l| l.plan.schema.arity()).sum();
                let hi = lo + leaf.plan.schema.arity();
                leaves.push(leaf);
                Some((lo, hi))
            }
        }
    }

    /// Pushes one rewritten conjunct down a leaf plan: through ∪ and π,
    /// into an index lookup at a base-table scan, or as a filter node.
    fn push_filter(&self, plan: PhysPlan, pred: &Pred, sel: f64) -> PhysPlan {
        let PhysPlan {
            op,
            schema,
            est_rows,
            children,
        } = plan;
        match op {
            PlanOp::Union => {
                let kids: Vec<PhysPlan> = children
                    .into_iter()
                    .map(|ch| {
                        let p2 = remap_by_position(pred, &schema, &ch.schema);
                        self.push_filter(ch, &p2, sel)
                    })
                    .collect();
                let est = kids.iter().map(|k| k.est_rows).sum();
                PhysPlan::node(PlanOp::Union, schema, est, kids)
            }
            PlanOp::Project { items } => {
                match remap_through_project(pred, &items, &children[0].schema) {
                    Some(inner) => {
                        let kids: Vec<PhysPlan> = children
                            .into_iter()
                            .map(|ch| self.push_filter(ch, &inner, sel))
                            .collect();
                        let est = kids[0].est_rows;
                        PhysPlan::node(PlanOp::Project { items }, schema, est, kids)
                    }
                    None => wrap_filter(
                        PhysPlan::node(PlanOp::Project { items }, schema, est_rows, children),
                        pred,
                        sel,
                    ),
                }
            }
            PlanOp::Scan { .. } | PlanOp::ScanAs { .. } => {
                let rel = match &op {
                    PlanOp::Scan { rel } => rel.clone(),
                    PlanOp::ScanAs { rel, .. } => rel.clone(),
                    _ => unreachable!(),
                };
                if let Some((col_name, key)) = eq_const_pattern(pred) {
                    if let Some(idx) = self.indexes.get(&rel, &col_name) {
                        if let Ok(ci) = schema.resolve(&col_name) {
                            let alias = match &op {
                                PlanOp::ScanAs { alias, .. } => Some(alias.clone()),
                                _ => None,
                            };
                            return PhysPlan::node(
                                PlanOp::IndexLookup {
                                    rel,
                                    alias,
                                    col: idx.col.clone(),
                                    col_idx: ci,
                                    key,
                                },
                                schema,
                                est_rows * sel,
                                children,
                            );
                        }
                    }
                }
                wrap_filter(PhysPlan::node(op, schema, est_rows, children), pred, sel)
            }
            other => wrap_filter(PhysPlan::node(other, schema, est_rows, children), pred, sel),
        }
    }

    fn distinct_of(&self, g: usize, col_src: &[Option<(String, String)>]) -> f64 {
        col_src
            .get(g)
            .and_then(|s| s.as_ref())
            .and_then(|(rel, attr)| {
                self.stats
                    .rel(rel)
                    .and_then(|r| r.col(attr))
                    .map(|c| c.distinct as f64)
            })
            .unwrap_or(DEFAULT_DISTINCT)
    }

    fn join_est(
        &self,
        a_est: f64,
        b_est: f64,
        keys: &[(usize, usize)],
        col_src: &[Option<(String, String)>],
    ) -> f64 {
        let mut est = a_est * b_est;
        for &(g1, g2) in keys {
            let d = self
                .distinct_of(g1, col_src)
                .max(self.distinct_of(g2, col_src));
            est /= d.max(1.0);
        }
        est
    }

    /// Estimated selectivity of one conjunct against a schema whose
    /// columns carry the given stats sources.
    fn conjunct_selectivity(
        &self,
        pred: &Pred,
        schema: &Schema,
        col_src: &[Option<(String, String)>],
    ) -> f64 {
        if let Pred::Cmp { left, op, right } = pred {
            let (col, konst) = match (left, right) {
                (Operand::Col(c), Operand::Const(k)) | (Operand::Const(k), Operand::Col(c)) => {
                    (c, k)
                }
                _ => {
                    return match op {
                        CmpOp::Eq => 1.0 / DEFAULT_DISTINCT,
                        CmpOp::Ne => 1.0 - 1.0 / DEFAULT_DISTINCT,
                        _ => 1.0 / 3.0,
                    }
                }
            };
            if let Ok(i) = schema.resolve(col) {
                if let Some(Some((rel, attr))) = col_src.get(i) {
                    if let Some(cs) = self.stats.rel(rel).and_then(|r| r.col(attr)) {
                        return cs.range_selectivity(*op, konst);
                    }
                }
            }
            return match op {
                CmpOp::Eq => 1.0 / DEFAULT_DISTINCT,
                CmpOp::Ne => 1.0 - 1.0 / DEFAULT_DISTINCT,
                _ => 1.0 / 3.0,
            };
        }
        0.5
    }
}

fn wrap_filter(plan: PhysPlan, pred: &Pred, sel: f64) -> PhysPlan {
    // Fold into an existing filter rather than stacking two.
    if let PlanOp::Filter { pred: p0 } = plan.op {
        let est = plan.est_rows * sel;
        return PhysPlan::node(
            PlanOp::Filter {
                pred: p0.and(pred.clone()),
            },
            plan.schema,
            est,
            plan.children,
        );
    }
    let schema = plan.schema.clone();
    let est = plan.est_rows * sel;
    PhysPlan::node(
        PlanOp::Filter { pred: pred.clone() },
        schema,
        est,
        vec![plan],
    )
}

/// `col = const` (either orientation).
fn eq_const_pattern(pred: &Pred) -> Option<(String, Atom)> {
    match pred {
        Pred::Cmp {
            left: Operand::Col(c),
            op: CmpOp::Eq,
            right: Operand::Const(k),
        }
        | Pred::Cmp {
            left: Operand::Const(k),
            op: CmpOp::Eq,
            right: Operand::Col(c),
        } => Some((c.clone(), k.clone())),
        _ => None,
    }
}

/// Only `=`/`<>` comparisons: evaluation can never raise the
/// row-dependent mixed-type ordering error once resolution is checked.
fn errorless(p: &Pred) -> bool {
    match p {
        Pred::True => true,
        Pred::Cmp { op, .. } => matches!(op, CmpOp::Eq | CmpOp::Ne),
        Pred::And(a, b) | Pred::Or(a, b) => errorless(a) && errorless(b),
        Pred::Not(a) => errorless(a),
    }
}

fn map_operands(p: &Pred, f: &impl Fn(&Operand) -> Operand) -> Pred {
    match p {
        Pred::True => Pred::True,
        Pred::Cmp { left, op, right } => Pred::Cmp {
            left: f(left),
            op: *op,
            right: f(right),
        },
        Pred::And(a, b) => Pred::And(Box::new(map_operands(a, f)), Box::new(map_operands(b, f))),
        Pred::Or(a, b) => Pred::Or(Box::new(map_operands(a, f)), Box::new(map_operands(b, f))),
        Pred::Not(a) => Pred::Not(Box::new(map_operands(a, f))),
    }
}

/// Rewrites every column reference to the *exact* attribute name of the
/// global schema it resolves to — making later resolution unambiguous no
/// matter how wide the evaluating schema is.
fn rewrite_cols(p: &Pred, scope: &Schema, lo: usize, global: &Schema) -> Pred {
    map_operands(p, &|o| match o {
        Operand::Col(c) => Operand::Col(
            global.attrs()[lo + scope.resolve(c).expect("resolution pre-checked")].clone(),
        ),
        k => k.clone(),
    })
}

/// Global column indices referenced by a rewritten predicate.
fn pred_cols(p: &Pred, schema: &Schema, out: &mut Vec<usize>) {
    match p {
        Pred::True => {}
        Pred::Cmp { left, right, .. } => {
            for o in [left, right] {
                if let Operand::Col(c) = o {
                    if let Ok(i) = schema.resolve(c) {
                        out.push(i);
                    }
                }
            }
        }
        Pred::And(a, b) | Pred::Or(a, b) => {
            pred_cols(a, schema, out);
            pred_cols(b, schema, out);
        }
        Pred::Not(a) => pred_cols(a, schema, out),
    }
}

/// Maps exact parent-schema column names to the child's attribute at the
/// same position (union branches are positionally compatible).
fn remap_by_position(p: &Pred, parent: &Schema, child: &Schema) -> Pred {
    map_operands(p, &|o| match o {
        Operand::Col(c) => {
            Operand::Col(child.attrs()[parent.resolve(c).expect("exact parent attribute")].clone())
        }
        k => k.clone(),
    })
}

/// Substitutes projection outputs by their sources: columns map to the
/// child attribute they copy, constant items map to the constant itself.
/// `None` when a referenced name is not an exact item name (filter stays
/// above the projection).
fn remap_through_project(p: &Pred, items: &[ProjItem], child: &Schema) -> Option<Pred> {
    // Pre-compute the substitution to keep map_operands total.
    let mut subst: Vec<(String, Operand)> = Vec::new();
    let mut cols = Vec::new();
    collect_col_names(p, &mut cols);
    for name in cols {
        let item = items.iter().find(|i| i.name == name)?;
        let op = match &item.source {
            ProjSource::Col(src) => {
                let i = child.resolve(src).ok()?;
                Operand::Col(child.attrs()[i].clone())
            }
            ProjSource::Const(a) => Operand::Const(a.clone()),
        };
        subst.push((name, op));
    }
    Some(map_operands(p, &|o| match o {
        Operand::Col(c) => subst
            .iter()
            .find(|(n, _)| n == c)
            .map(|(_, op)| op.clone())
            .expect("substitution covers every column"),
        k => k.clone(),
    }))
}

fn collect_col_names(p: &Pred, out: &mut Vec<String>) {
    match p {
        Pred::True => {}
        Pred::Cmp { left, right, .. } => {
            for o in [left, right] {
                if let Operand::Col(c) = o {
                    if !out.contains(c) {
                        out.push(c.clone());
                    }
                }
            }
        }
        Pred::And(a, b) | Pred::Or(a, b) => {
            collect_col_names(a, out);
            collect_col_names(b, out);
        }
        Pred::Not(a) => collect_col_names(a, out),
    }
}

fn connecting(edges: &[(usize, usize)], a: &[usize], b: &[usize]) -> Vec<(usize, usize)> {
    edges
        .iter()
        .copied()
        .filter(|&(x, y)| (a.contains(&x) && b.contains(&y)) || (a.contains(&y) && b.contains(&x)))
        .collect()
}

/// Executes a physical plan, returning the canonical result relation and
/// per-operator actuals (plan preorder) for `explain`-style rendering.
///
/// The output is [`Relation::canonical`]: join reordering permutes tuple
/// discovery order, so the planned engine fixes a canonical order instead
/// of inheriting the plan shape's.
pub fn eval_plan(
    db: &Database,
    plan: &PhysPlan,
    indexes: &IndexSet,
    cfg: &ExecConfig,
) -> Result<(Relation, Vec<PlanRun>), RelalgError> {
    let mut runs: Vec<PlanRun> = Vec::new();
    let rel = exec_node(db, plan, indexes, cfg, &mut runs)?;
    let mut rel = rel.canonical();
    rel.dedup();
    Ok((rel, runs))
}

fn exec_node(
    db: &Database,
    plan: &PhysPlan,
    indexes: &IndexSet,
    cfg: &ExecConfig,
    runs: &mut Vec<PlanRun>,
) -> Result<Relation, RelalgError> {
    let slot = runs.len();
    runs.push(PlanRun {
        rows: 0,
        elapsed: Duration::ZERO,
    });
    let mut span = SpanGuard::enter(plan_span_name(&plan.op));
    let rel = match &plan.op {
        PlanOp::Scan { rel } => db.get(rel)?.clone(),
        PlanOp::ScanAs { rel, .. } => {
            let base = db.get(rel)?;
            Relation::from_rows(plan.schema.clone(), base.tuples().iter().cloned())?
        }
        PlanOp::IndexLookup {
            rel,
            col,
            col_idx,
            key,
            ..
        } => {
            let base = db.get(rel)?;
            let rows: Vec<Tuple> = match indexes.get(rel, col) {
                Some(idx) => idx
                    .lookup(key)
                    .iter()
                    .map(|&i| base.tuples()[i].clone())
                    .collect(),
                // Index dropped since planning: degrade to scan+filter.
                None => base
                    .tuples()
                    .iter()
                    .filter(|t| t[*col_idx] == *key)
                    .cloned()
                    .collect(),
            };
            Relation::from_rows(plan.schema.clone(), rows)?
        }
        PlanOp::Filter { pred } => {
            let input = exec_node(db, &plan.children[0], indexes, cfg, runs)?;
            let mut out = Relation::empty(input.schema().clone());
            for t in input.tuples() {
                if pred.eval(input.schema(), t)? {
                    out.insert(t.clone())?;
                }
            }
            out
        }
        PlanOp::HashJoin { keys } => {
            let left = exec_node(db, &plan.children[0], indexes, cfg, runs)?;
            let right = exec_node(db, &plan.children[1], indexes, cfg, runs)?;
            let lcols: Vec<usize> = keys.iter().map(|&(l, _)| l).collect();
            let rcols: Vec<usize> = keys.iter().map(|&(_, r)| r).collect();
            let build = extract_keys(right.tuples(), &rcols);
            let probe = extract_keys(left.tuples(), &lcols);
            let matches = join_matches(&build, &probe, cfg);
            let mut out = Relation::empty(plan.schema.clone());
            for &(li, ri) in &matches.pairs {
                let mut row = left.tuples()[li].clone();
                row.extend(right.tuples()[ri].iter().cloned());
                out.insert(row)?;
            }
            out
        }
        PlanOp::HashNaturalJoin { shared, right_kept } => {
            let left = exec_node(db, &plan.children[0], indexes, cfg, runs)?;
            let right = exec_node(db, &plan.children[1], indexes, cfg, runs)?;
            let lcols: Vec<usize> = shared.iter().map(|&(i, _)| i).collect();
            let rcols: Vec<usize> = shared.iter().map(|&(_, j)| j).collect();
            let build = extract_keys(right.tuples(), &rcols);
            let probe = extract_keys(left.tuples(), &lcols);
            let matches = join_matches(&build, &probe, cfg);
            let mut out = Relation::empty(plan.schema.clone());
            for &(li, ri) in &matches.pairs {
                let rt = &right.tuples()[ri];
                let mut row = left.tuples()[li].clone();
                row.extend(right_kept.iter().map(|&j| rt[j].clone()));
                out.insert(row)?;
            }
            out
        }
        PlanOp::Product => {
            let left = exec_node(db, &plan.children[0], indexes, cfg, runs)?;
            let right = exec_node(db, &plan.children[1], indexes, cfg, runs)?;
            let mut out = Relation::empty(plan.schema.clone());
            for lt in left.tuples() {
                for rt in right.tuples() {
                    let mut row = lt.clone();
                    row.extend(rt.iter().cloned());
                    out.insert(row)?;
                }
            }
            out
        }
        PlanOp::Arrange { perm } => {
            let input = exec_node(db, &plan.children[0], indexes, cfg, runs)?;
            let rows = input
                .tuples()
                .iter()
                .map(|t| perm.iter().map(|&p| t[p].clone()).collect::<Tuple>());
            Relation::from_rows(plan.schema.clone(), rows)?
        }
        PlanOp::Project { items } => {
            let input = exec_node(db, &plan.children[0], indexes, cfg, runs)?;
            let mut out = Relation::empty(plan.schema.clone());
            for t in input.tuples() {
                let mut row: Tuple = Vec::with_capacity(items.len());
                for item in items {
                    match &item.source {
                        ProjSource::Col(c) => row.push(t[input.schema().resolve(c)?].clone()),
                        ProjSource::Const(a) => row.push(a.clone()),
                    }
                }
                out.insert(row)?;
            }
            out
        }
        PlanOp::Union => {
            let mut out = exec_node(db, &plan.children[0], indexes, cfg, runs)?;
            let right = exec_node(db, &plan.children[1], indexes, cfg, runs)?;
            for t in right.tuples() {
                out.insert(t.clone())?;
            }
            out
        }
        PlanOp::Diff => {
            let left = exec_node(db, &plan.children[0], indexes, cfg, runs)?;
            let right = exec_node(db, &plan.children[1], indexes, cfg, runs)?;
            let rset = right.tuple_set();
            let mut out = Relation::empty(left.schema().clone());
            for t in left.tuples() {
                if !rset.contains(t) {
                    out.insert(t.clone())?;
                }
            }
            out
        }
        PlanOp::Rename => {
            let input = exec_node(db, &plan.children[0], indexes, cfg, runs)?;
            Relation::from_rows(plan.schema.clone(), input.tuples().iter().cloned())?
        }
        PlanOp::Naive { expr } => eval_hash(db, expr, cfg)?,
    };
    span.set_attr(rel.len() as u64);
    runs[slot] = PlanRun {
        rows: rel.len(),
        elapsed: span.elapsed(),
    };
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;

    fn int(i: i64) -> Atom {
        Atom::Int(i)
    }

    /// R(K,A), S(K,B), T(K,C) — a classic join chain on K.
    fn chain_db(n: i64) -> Database {
        let r = Relation::table(["K", "A"], (0..n).map(|i| vec![int(i % 17), int(i)])).unwrap();
        let s = Relation::table(["K", "B"], (0..30).map(|i| vec![int(i % 17), int(i)])).unwrap();
        let t = Relation::table(["K", "C"], (0..8).map(|i| vec![int(i % 17), int(i)])).unwrap();
        Database::new().with("R", r).with("S", s).with("T", t)
    }

    fn canon(db: &Database, q: &RaExpr) -> Relation {
        let mut r = eval(db, q).unwrap().canonical();
        r.dedup();
        r
    }

    fn planned(db: &Database, idx: &IndexSet, q: &RaExpr) -> (PhysPlan, Relation) {
        let stats = DbStats::analyze(db);
        let p = plan(db, &stats, idx, q);
        let (rel, runs) = eval_plan(db, &p, idx, &ExecConfig::default()).unwrap();
        assert_eq!(runs.len(), p.operator_count(), "one actual per operator");
        (p, rel)
    }

    fn chain_query() -> RaExpr {
        RaExpr::ScanAs("R".into(), "r".into())
            .product(RaExpr::ScanAs("S".into(), "s".into()))
            .product(RaExpr::ScanAs("T".into(), "t".into()))
            .select(Pred::col_eq_col("r.K", "s.K").and(Pred::col_eq_col("s.K", "t.K")))
    }

    #[test]
    fn chain_plans_two_hash_joins_no_product() {
        let db = chain_db(50);
        let q = chain_query();
        let (p, rel) = planned(&db, &IndexSet::new(), &q);
        let ops = p.ops();
        let joins = ops
            .iter()
            .filter(|o| matches!(o, PlanOp::HashJoin { .. }))
            .count();
        assert_eq!(joins, 2, "both edges become hash joins:\n{p}");
        assert!(
            !ops.iter().any(|o| matches!(o, PlanOp::Product)),
            "no cross product in a connected chain:\n{p}"
        );
        assert_eq!(rel, canon(&db, &q), "byte-identical to canonical naive");
    }

    #[test]
    fn smallest_relation_becomes_the_build_side() {
        // T (8 rows) is smallest: the greedy planner joins it first and
        // always places the smaller side as the hash build (right child).
        let db = chain_db(200);
        let (p, _) = planned(&db, &IndexSet::new(), &chain_query());
        fn check(p: &PhysPlan) {
            if matches!(p.op, PlanOp::HashJoin { .. }) {
                assert!(
                    p.children[0].est_rows >= p.children[1].est_rows,
                    "build side (right) must be the smaller estimate:\n{p}"
                );
            }
            for c in &p.children {
                check(c);
            }
        }
        check(&p);
    }

    #[test]
    fn point_lookup_chooses_index_scan() {
        let db = chain_db(50);
        let q = RaExpr::scan("R").select(Pred::col_eq_const("K", 3));
        let idx = IndexSet::build(&db, [("R", "K")]).unwrap();
        let (p, rel) = planned(&db, &idx, &q);
        assert!(
            matches!(p.op, PlanOp::IndexLookup { .. }),
            "indexed point query is a pure index scan:\n{p}"
        );
        assert_eq!(rel, canon(&db, &q));
        // Without the index the same query is a filtered scan.
        let (p2, rel2) = planned(&db, &IndexSet::new(), &q);
        assert!(matches!(p2.op, PlanOp::Filter { .. }), "{p2}");
        assert_eq!(rel2, rel);
    }

    #[test]
    fn index_scan_inside_a_join_block() {
        let db = chain_db(50);
        let q = RaExpr::ScanAs("R".into(), "r".into())
            .product(RaExpr::ScanAs("S".into(), "s".into()))
            .select(Pred::col_eq_col("r.K", "s.K").and(Pred::col_eq_const("r.A", 7)));
        let idx = IndexSet::build(&db, [("R", "A")]).unwrap();
        let (p, rel) = planned(&db, &idx, &q);
        assert!(
            p.ops()
                .iter()
                .any(|o| matches!(o, PlanOp::IndexLookup { .. })),
            "pushed constant filter uses the index:\n{p}"
        );
        assert_eq!(rel, canon(&db, &q));
    }

    #[test]
    fn unresolvable_predicate_falls_back_to_naive() {
        let db = chain_db(10);
        let q = RaExpr::scan("R").select(Pred::col_eq_const("nope", 1));
        let stats = DbStats::analyze(&db);
        let p = plan(&db, &stats, &IndexSet::new(), &q);
        assert!(matches!(p.op, PlanOp::Naive { .. }), "{p}");
        let planned_err = eval_plan(&db, &p, &IndexSet::new(), &ExecConfig::default());
        let naive_err = eval(&db, &q);
        assert_eq!(planned_err.unwrap_err(), naive_err.unwrap_err());
    }

    #[test]
    fn partial_edges_still_avoid_full_product() {
        // Only r–s are connected; t joins by cross product, but the
        // connected pair must be joined first.
        let db = chain_db(40);
        let q = RaExpr::ScanAs("R".into(), "r".into())
            .product(RaExpr::ScanAs("T".into(), "t".into()))
            .product(RaExpr::ScanAs("S".into(), "s".into()))
            .select(Pred::col_eq_col("r.K", "s.K"));
        let (p, rel) = planned(&db, &IndexSet::new(), &q);
        let ops = p.ops();
        assert!(ops.iter().any(|o| matches!(o, PlanOp::HashJoin { .. })));
        assert!(ops.iter().any(|o| matches!(o, PlanOp::Product)));
        // The product sits above the hash join: the join ran first.
        fn depth_of(p: &PhysPlan, pick: &dyn Fn(&PlanOp) -> bool, d: usize) -> Option<usize> {
            if pick(&p.op) {
                return Some(d);
            }
            p.children.iter().find_map(|c| depth_of(c, pick, d + 1))
        }
        let dj = depth_of(&p, &|o| matches!(o, PlanOp::HashJoin { .. }), 0).unwrap();
        let dp = depth_of(&p, &|o| matches!(o, PlanOp::Product), 0).unwrap();
        assert!(dp < dj, "product above join:\n{p}");
        assert_eq!(rel, canon(&db, &q), "arrange restores the column order");
    }

    #[test]
    fn pushdown_descends_through_union_and_project() {
        let db = chain_db(30);
        let q = RaExpr::scan("R")
            .project_cols(["K"])
            .union(RaExpr::scan("S").project_cols(["K"]))
            .select(Pred::col_eq_const("K", 4));
        let (p, rel) = planned(&db, &IndexSet::new(), &q);
        assert!(
            matches!(p.op, PlanOp::Union),
            "filter fully pushed below the union:\n{p}"
        );
        fn scans_are_filtered(p: &PhysPlan) -> bool {
            match &p.op {
                PlanOp::Scan { .. } | PlanOp::ScanAs { .. } => false,
                PlanOp::Filter { .. } | PlanOp::IndexLookup { .. } => true,
                _ => p.children.iter().all(scans_are_filtered),
            }
        }
        assert!(scans_are_filtered(&p), "filters reached the scans:\n{p}");
        assert_eq!(rel, canon(&db, &q));
    }

    #[test]
    fn residual_predicates_filter_after_the_join() {
        let db = chain_db(40);
        let q = RaExpr::ScanAs("R".into(), "r".into())
            .product(RaExpr::ScanAs("S".into(), "s".into()))
            .select(Pred::col_eq_col("r.K", "s.K").and(Pred::cmp(
                Operand::col("r.A"),
                CmpOp::Lt,
                Operand::col("s.B"),
            )));
        let (p, rel) = planned(&db, &IndexSet::new(), &q);
        assert!(
            matches!(p.op, PlanOp::Filter { .. }),
            "ordered comparison stays residual:\n{p}"
        );
        assert_eq!(rel, canon(&db, &q));
    }

    #[test]
    fn whole_algebra_through_the_planner() {
        let db = chain_db(40);
        let q = RaExpr::scan("R")
            .natural_join(RaExpr::scan("S"))
            .select(Pred::col_eq_const("B", 5))
            .project(vec![ProjItem::col("A", "A"), ProjItem::constant(1, "One")])
            .union(
                RaExpr::scan("R")
                    .project(vec![ProjItem::col("A", "A"), ProjItem::constant(1, "One")])
                    .diff(
                        RaExpr::scan("R")
                            .project(vec![ProjItem::col("K", "A"), ProjItem::constant(1, "One")]),
                    ),
            )
            .rename([("A", "X")]);
        let (_, rel) = planned(&db, &IndexSet::new(), &q);
        assert_eq!(rel, canon(&db, &q));
    }

    #[test]
    fn render_shows_estimates_and_actuals() {
        let db = chain_db(30);
        let q = chain_query();
        let stats = DbStats::analyze(&db);
        let idx = IndexSet::new();
        let p = plan(&db, &stats, &idx, &q);
        let (_, runs) = eval_plan(&db, &p, &idx, &ExecConfig::default()).unwrap();
        let bare = p.render(None);
        assert!(bare.contains("est rows"), "{bare}");
        assert!(bare.contains("HashJoin"), "{bare}");
        let with = p.render(Some(&runs));
        assert!(!with.contains(" -\n"), "actuals fill every row:\n{with}");
    }

    #[test]
    fn every_plan_op_has_a_span_name() {
        // The check.sh taxonomy gate greps these names; keep the match
        // total so a new operator cannot silently skip the taxonomy.
        let ops = [
            PlanOp::Scan { rel: "R".into() },
            PlanOp::Product,
            PlanOp::Union,
            PlanOp::Naive {
                expr: RaExpr::scan("R"),
            },
            PlanOp::Arrange { perm: vec![0] },
        ];
        for op in &ops {
            assert!(plan_span_name(op).starts_with("relalg.op."));
        }
    }
}
