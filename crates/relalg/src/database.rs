//! A named collection of relations.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::RelalgError;
use crate::relation::Relation;

/// A database: a mapping from relation names to relation values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Adds (or replaces) a relation, builder-style.
    pub fn with(mut self, name: impl Into<String>, rel: Relation) -> Self {
        self.relations.insert(name.into(), rel);
        self
    }

    /// Adds (or replaces) a relation.
    pub fn insert(&mut self, name: impl Into<String>, rel: Relation) {
        self.relations.insert(name.into(), rel);
    }

    /// Looks up a relation.
    pub fn get(&self, name: &str) -> Result<&Relation, RelalgError> {
        self.relations
            .get(name)
            .ok_or_else(|| RelalgError::NoSuchRelation(name.to_owned()))
    }

    /// Looks up a relation mutably.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Relation, RelalgError> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| RelalgError::NoSuchRelation(name.to_owned()))
    }

    /// The relation names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Iterates over `(name, relation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the database has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in &self.relations {
            writeln!(f, "{name} {rel}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use cdb_model::Atom;

    #[test]
    fn lookup_and_missing() {
        let db = Database::new().with("R", Relation::table(["A"], [vec![Atom::Int(1)]]).unwrap());
        assert!(db.get("R").is_ok());
        assert!(matches!(db.get("S"), Err(RelalgError::NoSuchRelation(_))));
        assert_eq!(db.names().collect::<Vec<_>>(), vec!["R"]);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn mutation_through_get_mut() {
        let mut db =
            Database::new().with("R", Relation::table(["A"], [vec![Atom::Int(1)]]).unwrap());
        db.get_mut("R").unwrap().insert(vec![Atom::Int(2)]).unwrap();
        assert_eq!(db.get("R").unwrap().len(), 2);
    }
}
