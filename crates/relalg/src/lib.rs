//! # cdb-relalg
//!
//! A small, complete relational algebra engine. This is the substrate on
//! which the provenance and annotation machinery of the paper is built:
//!
//! * flat relations over the atoms of `cdb-model` ([`Relation`],
//!   [`Tuple`], [`Schema`]),
//! * the full relational algebra AST ([`RaExpr`]) with selection,
//!   projection (including constants — the `50 AS B` of the paper's
//!   Q1/Q2 example), natural and theta joins, product, union, difference
//!   and renaming,
//! * conjunctive queries / non-recursive Datalog rules
//!   ([`conjunctive`]) — the form used in Figure 4 of the paper,
//! * a small SQL-ish surface syntax ([`sql`]) covering the paper's
//!   examples (`SELECT`–`FROM`–`WHERE`, `UNION`, `INSERT`, `DELETE`,
//!   `UPDATE`), so that the worked examples can be written exactly as
//!   they appear in print.
//!
//! The reference interpreter ([`eval`]) is deliberately naive
//! (nested-loop joins, no optimizer): the experiments measure provenance
//! and archiving behaviour, not join performance, and a naive engine
//! keeps the provenance semantics auditable. *Not* optimizing is also
//! faithful to §2.1's point that annotation propagation breaks classical
//! rewriting: `cdb-annotation` evaluates these ASTs exactly as written.
//!
//! For large curated instances there is a second, physical engine
//! ([`exec`]): hash joins with an equi-join recognizer, parallel
//! partitioned probing, and per-operator statistics ([`ExecStats`]).
//! It is differentially tested to produce exactly the interpreter's
//! results, so either engine can serve either role.
//!
//! On top of the physical engine sits a cost-based planner ([`plan`]):
//! predicate pushdown, per-relation statistics ([`stats`]), greedy join
//! ordering and secondary-index access paths ([`index`]). Plans are
//! provenance-preserving — differentially tested byte-identical to the
//! interpreter across semirings — and anything the planner cannot prove
//! safe falls back to the reference engines wholesale.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod conjunctive;
pub mod database;
pub mod error;
pub mod eval;
pub mod exec;
pub mod expr;
pub mod index;
pub mod plan;
pub mod pred;
pub mod relation;
pub mod sql;
pub mod stats;

pub use database::Database;
pub use error::RelalgError;
pub use exec::{eval_hash, eval_with_stats, ExecConfig, ExecStats, OpStats};
pub use expr::{ProjItem, RaExpr};
pub use index::{ColumnIndex, IndexSet};
pub use plan::{eval_plan, eval_planned, plan, plan_span_name, PhysPlan, PlanOp, PlanRun};
pub use pred::{CmpOp, Operand, Pred};
pub use relation::{Relation, Schema, Tuple};
pub use stats::{ColStats, DbStats, Histogram, RelStats};
