//! Cross-crate integration: the three version stores agree on every
//! version of realistic workloads, temporal queries agree with the
//! scan-everything baseline, and citations stay resolvable forever.

use curated_db::archive::temporal;
use curated_db::archive::{Archive, Citation, DeltaStore, SnapshotStore};
use curated_db::model::keys::KeyStep;
use curated_db::workload::factbook::{FactbookConfig, FactbookSim};
use curated_db::workload::uniprot::{UniprotConfig, UniprotSim};
use curated_db::{Atom, KeyPath, Value};

fn build_all(
    spec: curated_db::KeySpec,
    versions: &[Value],
) -> (Archive, SnapshotStore, DeltaStore) {
    let mut archive = Archive::new("db", spec.clone());
    let mut snaps = SnapshotStore::new();
    let mut deltas = DeltaStore::new(spec);
    for (i, v) in versions.iter().enumerate() {
        archive.add_version(v, format!("v{i}")).unwrap();
        snaps.add_version(v, format!("v{i}"));
        deltas.add_version(v, format!("v{i}")).unwrap();
    }
    (archive, snaps, deltas)
}

#[test]
fn all_stores_reconstruct_identical_uniprot_releases() {
    let mut sim = UniprotSim::new(
        99,
        UniprotConfig {
            initial_entries: 60,
            adds_per_release: 8,
            ..Default::default()
        },
    );
    let mut versions = Vec::new();
    for _ in 0..12 {
        versions.push(sim.snapshot());
        sim.advance();
    }
    let (archive, snaps, deltas) = build_all(UniprotSim::key_spec(), &versions);
    for v in 0..versions.len() as u32 {
        let a = archive.retrieve(v).unwrap();
        assert_eq!(a, versions[v as usize], "archive v{v}");
        assert_eq!(a, snaps.retrieve(v).unwrap(), "snapshot v{v}");
        assert_eq!(a, deltas.retrieve(v).unwrap(), "delta v{v}");
    }
}

#[test]
fn archive_is_smaller_than_snapshots_on_append_mostly_data() {
    let mut sim = UniprotSim::new(
        7,
        UniprotConfig {
            initial_entries: 80,
            adds_per_release: 5,
            ..Default::default()
        },
    );
    let mut versions = Vec::new();
    for _ in 0..15 {
        versions.push(sim.snapshot());
        sim.advance();
    }
    let (archive, snaps, _) = build_all(UniprotSim::key_spec(), &versions);
    // §5.1's claim: for databases where "updates are mostly additions
    // and a node tends to persist", the merged archive is far smaller
    // than keeping all versions.
    assert!(
        archive.encoded_size() * 3 < snaps.encoded_size(),
        "archive {} B vs snapshots {} B",
        archive.encoded_size(),
        snaps.encoded_size()
    );
}

#[test]
fn temporal_series_agree_with_scan_baseline_on_factbook() {
    let mut sim = FactbookSim::new(
        11,
        FactbookConfig {
            countries: 25,
            fission_probability: 0.3,
            ..Default::default()
        },
    );
    let first_country = sim.country_name(0).to_owned();
    let mut versions = Vec::new();
    for _ in 0..10 {
        versions.push(sim.snapshot());
        sim.advance();
    }
    let (archive, snaps, _) = build_all(FactbookSim::key_spec(), &versions);
    let spec = FactbookSim::key_spec();
    let path = KeyPath::root()
        .child(KeyStep::Entry(vec![Atom::Str(first_country)]))
        .child(KeyStep::Field("people".into()))
        .child(KeyStep::Field("population".into()));
    let direct = temporal::series(&archive, &path).unwrap();
    let scanned = temporal::series_by_scan(&snaps, &spec, &path).unwrap();
    assert_eq!(direct, scanned);
    assert!(!direct.is_empty());
}

#[test]
fn fissioned_countries_have_bounded_lifespans() {
    let mut sim = FactbookSim::new(
        13,
        FactbookConfig {
            countries: 10,
            fission_probability: 1.0,
            ..Default::default()
        },
    );
    let mut versions = Vec::new();
    for _ in 0..5 {
        versions.push(sim.snapshot());
        sim.advance();
    }
    assert!(!sim.fissions.is_empty());
    let (archive, _, _) = build_all(FactbookSim::key_spec(), &versions);
    for f in &sim.fissions {
        if f.year as usize >= versions.len() {
            continue; // split after the last archived version
        }
        let kp = KeyPath::root().child(KeyStep::Entry(vec![Atom::Str(f.original.clone())]));
        let spans = archive.lifespan(&kp).unwrap();
        // The original ends exactly at its fission year.
        assert_eq!(spans.last().unwrap().1, Some(f.year));
    }
}

#[test]
fn citations_survive_database_evolution() {
    let mut sim = UniprotSim::new(
        5,
        UniprotConfig {
            initial_entries: 10,
            ..Default::default()
        },
    );
    let first = sim.snapshot();
    let ac = first
        .as_set()
        .unwrap()
        .iter()
        .next()
        .unwrap()
        .field("ac")
        .unwrap()
        .clone();
    let Value::Atom(Atom::Str(ac)) = ac else {
        panic!()
    };

    let mut archive = Archive::new("uniprot", UniprotSim::key_spec());
    archive.add_version(&first, "rel-1").unwrap();
    let path = KeyPath::root().child(KeyStep::Entry(vec![Atom::Str(ac.clone())]));
    let citation =
        Citation::cite(&archive, 0, &path, vec!["The UniProt Consortium".into()]).unwrap();
    let original_entry = citation.resolve(&archive).unwrap();

    // Twenty more releases later…
    for i in 0..20 {
        sim.advance();
        archive
            .add_version(&sim.snapshot(), format!("rel-{}", i + 2))
            .unwrap();
    }
    // …the citation still resolves to the identical entry.
    assert_eq!(citation.resolve(&archive).unwrap(), original_entry);
    assert!(citation.to_string().contains("rel-1"));
}

#[test]
fn archive_diffs_match_store_level_reconstruction() {
    let mut sim = FactbookSim::new(17, FactbookConfig::default());
    let v0 = sim.snapshot();
    sim.advance();
    let v1 = sim.snapshot();
    let (archive, _, _) = build_all(FactbookSim::key_spec(), &[v0.clone(), v1.clone()]);
    let diff = archive.diff(0, 1).unwrap();
    if v0 != v1 {
        assert!(!diff.is_empty());
    }
    // Every reported change names a key path that exists in one of the
    // versions.
    let spec = FactbookSim::key_spec();
    for (kp, _) in &diff {
        let in_v0 = spec.resolve(&v0, kp).is_ok();
        let in_v1 = spec.resolve(&v1, kp).is_ok();
        assert!(in_v0 || in_v1, "{kp} in neither version");
    }
}
