//! End-to-end integration: the full curated-database story of §1 —
//! curate (with provenance), annotate, publish, cite, time-travel,
//! merge/split — across all substrate crates at once.

use curated_db::annotation::colored::Scheme;
use curated_db::annotation::reverse::Target;
use curated_db::core::views::{
    annotate_through_view, colored_view, entry_relation, ViewAnnotation,
};
use curated_db::curation::queries;
use curated_db::relalg::{Pred, RaExpr};
use curated_db::schema::infer::infer_type;
use curated_db::{Atom, CuratedDatabase, Value};

/// Builds a small protein database curated by two people.
fn build() -> CuratedDatabase {
    let mut db = CuratedDatabase::new("proteins", "ac");
    db.add_entry(
        "alice",
        1,
        "Q04917",
        &[
            ("id", Atom::Str("143F_HUMAN".into())),
            ("de", Atom::Str("14-3-3 PROTEIN ETA".into())),
            ("organism", Atom::Str("HOMO SAPIENS".into())),
            ("aa", Atom::Int(245)),
        ],
    )
    .unwrap();
    db.add_entry(
        "bob",
        2,
        "P31946",
        &[
            ("id", Atom::Str("1433B_HUMAN".into())),
            ("de", Atom::Str("14-3-3 PROTEIN BETA".into())),
            ("organism", Atom::Str("HOMO SAPIENS".into())),
            ("aa", Atom::Int(246)),
        ],
    )
    .unwrap();
    db
}

#[test]
fn publish_cite_time_travel_loop() {
    let mut db = build();
    let v0 = db.publish("rel-27").unwrap();

    // Curation continues: an annotation update (the Figure 1 DT lines).
    db.edit_field(
        "alice",
        3,
        "Q04917",
        "de",
        Atom::Str("14-3-3 PROTEIN ETA (AS1)".into()),
    )
    .unwrap();
    let v1 = db.publish("rel-28").unwrap();

    // Series across versions.
    let series = db.field_series("Q04917", "de").unwrap();
    assert_eq!(series.len(), 2);
    assert_ne!(series[0].1, series[1].1);

    // A citation of the old release keeps resolving after publication of
    // the new one.
    let citation = db.cite(v0, "Q04917").unwrap();
    assert!(citation.authors.contains(&"alice".to_string()));
    let old_entry = citation.resolve(db.archive()).unwrap();
    assert_eq!(
        old_entry.field("de"),
        Some(&Value::str("14-3-3 PROTEIN ETA"))
    );
    let _ = v1;
}

#[test]
fn provenance_tracks_cross_database_curation() {
    // A downstream group copies an entry from `proteins` into their own
    // curated database and corrects it (§3's copy-paste loop).
    let upstream = build();
    let node = upstream.entry_node("Q04917").unwrap();
    let clip = upstream.curated.copy(node).unwrap();

    let mut mydb = CuratedDatabase::new("mylab", "ac");
    mydb.import_entry("carol", 10, "Q04917", &clip).unwrap();
    mydb.edit_field("carol", 11, "Q04917", "aa", Atom::Int(244))
        .unwrap();

    // The imported entry's provenance chain reaches back to `proteins`.
    let entry = mydb.entry_node("Q04917").unwrap();
    let chain = queries::how_arrived(&mydb.curated, entry);
    assert!(chain.iter().any(
        |o| matches!(o, curated_db::curation::Origin::CopiedFrom { db, .. } if db == "proteins")
    ));
    // The corrected field's provenance is the correction, not the copy.
    let aa = mydb
        .curated
        .tree
        .child_by_label(entry, "aa")
        .unwrap()
        .unwrap();
    let recs = mydb.curated.prov.effective(&mydb.curated.tree, aa);
    assert!(matches!(
        recs.last().unwrap().event,
        curated_db::curation::provstore::ProvEvent::Modified
    ));
}

#[test]
fn views_carry_provenance_and_annotations_round_trip() {
    let mut db = build();
    // A user queries a view and sees where every cell came from.
    let q = RaExpr::scan("entries")
        .select(Pred::col_eq_const("organism", "HOMO SAPIENS"))
        .project_cols(["ac", "aa"]);
    let view = colored_view(&db, &["organism", "aa"], &q, &Scheme::Default).unwrap();
    let cs = view
        .cell_colors(&vec![Atom::Str("Q04917".into()), Atom::Int(245)], "aa")
        .unwrap();
    assert_eq!(
        cs.iter().cloned().collect::<Vec<_>>(),
        vec!["Q04917/aa".to_string()]
    );

    // The user annotates the view cell; the note lands on the source.
    let target = Target {
        tuple: vec![
            Atom::Str("Q04917".into()),
            Atom::Str("HOMO SAPIENS".into()),
            Atom::Int(245),
        ],
        attr: "aa".into(),
    };
    let full_view = RaExpr::scan("entries").select(Pred::col_eq_const("organism", "HOMO SAPIENS"));
    let placed = annotate_through_view(
        &mut db,
        &["organism", "aa"],
        &full_view,
        &target,
        "dave",
        "recount the residues",
        20,
    )
    .unwrap();
    assert_eq!(
        placed,
        ViewAnnotation::Placed {
            key: "Q04917".into(),
            field: "aa".into()
        }
    );
    assert_eq!(
        db.notes_on("Q04917", Some("aa"))[0].text,
        "recount the residues"
    );
}

#[test]
fn lifecycle_and_schema_inference_over_published_versions() {
    let mut db = build();
    db.publish("r1").unwrap();
    // Fusion: the two 14-3-3 entries are (fictionally) unified.
    db.merge_entries("alice", 5, "Q04917", "P31946").unwrap();
    db.publish("r2").unwrap();

    assert_eq!(db.resolve_id("P31946").unwrap(), vec!["Q04917".to_string()]);
    // The published v1 carries the retired id.
    let v1 = db.version(1).unwrap();
    let entry = v1.as_set().unwrap().iter().next().unwrap().clone();
    assert!(entry
        .field("secondary_ids")
        .and_then(Value::as_set)
        .map(|s| s.contains(&Value::str("P31946")))
        .unwrap_or(false));

    // Retro-fit a schema to the published versions (§6): v0 entries and
    // v1 entries have different field sets; inference generalizes.
    let v0 = db.version(0).unwrap();
    let entries: Vec<&Value> = v0
        .as_set()
        .unwrap()
        .iter()
        .chain(v1.as_set().unwrap().iter())
        .collect();
    let t = infer_type(entries.iter().copied());
    for e in entries {
        assert!(t.check(e).is_ok());
    }
}

#[test]
fn relational_views_join_with_external_relations() {
    // Curated data exported relationally composes with ordinary RA and
    // the provenance semirings.
    use curated_db::semiring::eval::eval_k;
    use curated_db::semiring::{KDatabase, KRelation, Why};

    let db = build();
    let entries = entry_relation(&db, &["organism", "aa"]).unwrap();
    let taxa = curated_db::relalg::Relation::table(
        ["organism", "taxon"],
        [vec![Atom::Str("HOMO SAPIENS".into()), Atom::Int(9606)]],
    )
    .unwrap();

    let mut kdb: KDatabase<Why> = KDatabase::new();
    kdb.insert(
        "entries",
        KRelation::tagged(&entries, |i, _| Why::var(format!("e{i}"))).unwrap(),
    );
    kdb.insert(
        "taxa",
        KRelation::tagged(&taxa, |_, _| Why::var("ncbi")).unwrap(),
    );

    let q = RaExpr::scan("entries")
        .natural_join(RaExpr::scan("taxa"))
        .project_cols(["taxon"]);
    let out = eval_k(&kdb, &q).unwrap();
    let w = out.annotation(&vec![Atom::Int(9606)]);
    // Both entries joined with the one taxa row: two witnesses, each
    // containing the ncbi tuple.
    assert_eq!(w.witnesses().len(), 2);
    assert!(w.witnesses().iter().all(|wit| wit.contains("ncbi")));
}
