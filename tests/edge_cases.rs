//! Cross-crate edge cases: empty databases, deleted entries in old
//! versions, bounded inventing at scale, C-table possible worlds, and
//! hostile inputs.

use curated_db::annotation::nested::ColoredTable;
use curated_db::relalg::{Pred, Schema};
use curated_db::semiring::ctable::{instantiate, possible_worlds};
use curated_db::semiring::{KRelation, MinWhy, Semiring};
use curated_db::{Atom, CuratedDatabase, Value};

#[test]
fn empty_database_publishes_and_retrieves() {
    let mut db = CuratedDatabase::new("empty", "id");
    let v = db.publish("r0").unwrap();
    assert_eq!(db.version(v).unwrap(), Value::set([]));
    // Citing anything in it fails cleanly.
    assert!(db.cite(v, "nope").is_err());
    // Rebuilding from the (empty) log matches.
    let rebuilt = db.archive_from_log().unwrap();
    assert_eq!(rebuilt.retrieve(0).unwrap(), Value::set([]));
}

#[test]
fn citing_entries_that_no_longer_exist() {
    let mut db = CuratedDatabase::new("d", "id");
    db.add_entry("a", 1, "X", &[("v", Atom::Int(1))]).unwrap();
    let v0 = db.publish("r0").unwrap();
    db.delete_entry("a", 2, "X").unwrap();
    db.publish("r1").unwrap();
    // The entry is gone from the working database and from v1…
    assert!(db.entry_node("X").is_err());
    // …but the citation of v0 still resolves (authors unknown now).
    let c = db.cite(v0, "X").unwrap();
    assert_eq!(
        c.resolve(db.archive()).unwrap().field("v"),
        Some(&Value::int(1))
    );
    // And citing it in v1 fails.
    assert!(db.cite(1, "X").is_err());
}

#[test]
fn lifecycle_ids_survive_even_full_deletion() {
    let mut db = CuratedDatabase::new("d", "id");
    db.add_entry("a", 1, "X", &[]).unwrap();
    db.delete_entry("a", 2, "X").unwrap();
    assert_eq!(db.resolve_id("X").unwrap(), Vec::<String>::new());
    // Re-creating a deleted id is rejected (identifiers are permanent).
    assert!(db.add_entry("a", 3, "X", &[]).is_err());
}

#[test]
fn bounded_inventing_is_constant_in_input_size() {
    // §2.3: "A query can generate only a bounded number of base values."
    // Our σ invents exactly 1 part (the table) regardless of input size;
    // π invents 1 + one record per output tuple — bounded by a function
    // of the OUTPUT, never free invention. Verify σ's invariant:
    for n in [2usize, 8, 32, 128] {
        let rows: Vec<Vec<Atom>> = (0..n as i64)
            .map(|i| vec![Atom::Int(i), Atom::Int(i % 3)])
            .collect();
        let table = ColoredTable::figure2_style(Schema::new(["A", "B"]).unwrap(), &rows);
        let sel = table.select(&Pred::col_eq_const("B", 1)).unwrap();
        assert_eq!(
            sel.table.invented_count(),
            1,
            "only the fresh table at n={n}"
        );
    }
}

#[test]
fn ctable_worlds_scale_with_condition_variables_not_tuples() {
    let schema = Schema::new(["X"]).unwrap();
    // 6 tuples but only 2 condition variables → at most 4 worlds.
    let t = KRelation::from_pairs(
        schema,
        (0..6).map(|i| {
            let cond = match i % 3 {
                0 => MinWhy::one(),
                1 => MinWhy::var("u"),
                _ => MinWhy::var("w"),
            };
            (vec![Atom::Int(i)], cond)
        }),
    )
    .unwrap();
    let worlds = possible_worlds(&t).unwrap();
    assert!(worlds.len() <= 4);
    // The all-true world contains everything; the all-false world only
    // the certain tuples.
    let all = instantiate(&t, &|_| true);
    assert_eq!(all.len(), 6);
    let none = instantiate(&t, &|_| false);
    assert_eq!(none.len(), 2);
}

#[test]
fn hostile_path_query_inputs() {
    use curated_db::model::PathQuery;
    // Deeply nested value: no stack or logic surprises.
    let mut v = Value::int(0);
    for i in 0..200 {
        v = Value::record([(format!("l{}", i % 3), v)]);
    }
    let q = PathQuery::parse("//l0").unwrap();
    assert!(!q.values(&v).is_empty());
}

#[test]
fn archive_handles_entry_rename_as_delete_plus_add() {
    // Renaming an entry's key is fission+fusion at the data level: the
    // old key path closes, the new one opens.
    let spec = curated_db::KeySpec::new().rule(Vec::<String>::new(), ["k"]);
    let mut arch = curated_db::archive::Archive::new("d", spec);
    let e = |k: &str| Value::set([Value::record([("k", Value::str(k)), ("x", Value::int(1))])]);
    arch.add_version(&e("old"), "0").unwrap();
    arch.add_version(&e("new"), "1").unwrap();
    use curated_db::model::keys::KeyStep;
    let old_path = curated_db::KeyPath::root().child(KeyStep::Entry(vec![Atom::Str("old".into())]));
    let new_path = curated_db::KeyPath::root().child(KeyStep::Entry(vec![Atom::Str("new".into())]));
    assert_eq!(arch.lifespan(&old_path).unwrap(), vec![(0, Some(1))]);
    assert_eq!(arch.lifespan(&new_path).unwrap(), vec![(1, None)]);
}

#[test]
fn unicode_and_long_strings_round_trip_everywhere() {
    let mut db = CuratedDatabase::new("åäö-библиотека", "名前");
    let long = "◉".repeat(1000) + "— ligand-gated χ₂ channel";
    db.add_entry(
        "curator-ß",
        1,
        "GABA-α",
        &[("desc", Atom::Str(long.clone()))],
    )
    .unwrap();
    let v = db.publish("рел-1").unwrap();
    let snap = db.version(v).unwrap();
    let entry = snap.as_set().unwrap().iter().next().unwrap().clone();
    assert_eq!(entry.field("desc"), Some(&Value::str(long)));
    let c = db.cite(v, "GABA-α").unwrap();
    assert!(c.to_string().contains("GABA-α"));
}

#[test]
fn semiring_zero_annotations_never_surface() {
    use curated_db::relalg::RaExpr;
    use curated_db::semiring::eval::eval_k;
    use curated_db::semiring::{KDatabase, Nat};
    let schema = Schema::new(["A"]).unwrap();
    let rel = KRelation::from_pairs(
        schema,
        [(vec![Atom::Int(1)], Nat(0)), (vec![Atom::Int(2)], Nat(3))],
    )
    .unwrap();
    assert_eq!(rel.len(), 1, "zero-annotated tuples are pruned at insert");
    let db = KDatabase::new().with("R", rel);
    let out = eval_k(&db, &RaExpr::scan("R")).unwrap();
    assert!(out.iter().all(|(_, k)| !k.is_zero()));
}
