//! Differential tests for the physical execution engine
//! (`cdb_relalg::exec`): the hash-join engine must be observationally
//! identical to the naive nested-loop interpreter on random databases
//! and random algebra expressions, the parallel partitioned probe must
//! be indistinguishable from the sequential one, and annotated
//! evaluation (K-relations, colored tuples) must not depend on the
//! partition count. Each property runs 256 generated cases by default
//! (`PROPTEST_CASES` overrides).

use curated_db::annotation::colored::{ColoredDatabase, Scheme};
use curated_db::annotation::{eval_colored, eval_colored_with};
use curated_db::relalg::eval::eval;
use curated_db::relalg::pred::{CmpOp, Operand};
use curated_db::relalg::{eval_hash, eval_with_stats, ExecConfig, Pred, RaExpr};
use curated_db::semiring::eval::{eval_k, eval_k_with, figure4_database, figure4_query};
use curated_db::semiring::{KDatabase, KRelation, Nat, Polynomial, Semiring};
use curated_db::workload::relational::{
    join_tables, natural_join_query, select_product_query, JoinConfig,
};
use proptest::prelude::*;

/// Number of distinct query shapes produced by [`query`].
const QUERY_SHAPES: usize = 15;

/// A pool of algebra expressions over the workload tables `R(K, A)` /
/// `S(K, B)`, parameterised by a constant `c`. Covers every operator the
/// physical engine special-cases (natural join, recognised equi-join,
/// equi-join with residual conjuncts, non-equi fallback) plus the
/// pass-through operators around them.
fn query(qi: usize, c: i64) -> RaExpr {
    let sel_prod = || select_product_query();
    match qi % QUERY_SHAPES {
        // The two workload shapes themselves.
        0 => natural_join_query(),
        1 => sel_prod(),
        // Equi-join with a residual conjunct on each side's payload.
        2 => RaExpr::ScanAs("R".into(), "r".into())
            .product(RaExpr::ScanAs("S".into(), "s".into()))
            .select(Pred::col_eq_col("r.K", "s.K").and(Pred::cmp(
                Operand::col("A"),
                CmpOp::Lt,
                Operand::constant(c),
            ))),
        // Non-equi predicate: the recognizer must fall back to the
        // nested loop, still agreeing with the reference engine.
        3 => RaExpr::ScanAs("R".into(), "r".into())
            .product(RaExpr::ScanAs("S".into(), "s".into()))
            .select(Pred::cmp(Operand::col("A"), CmpOp::Le, Operand::col("B"))),
        // Projection above a join (dedup after the hash path).
        4 => natural_join_query().project_cols(["A", "B"]),
        // A join of a join: (R ⋈ S) ⋈ R shares K and A with R.
        5 => natural_join_query().natural_join(RaExpr::scan("R")),
        // Selection below the join.
        6 => RaExpr::scan("R")
            .select(Pred::col_eq_const("K", c))
            .natural_join(RaExpr::scan("S")),
        // Union and difference around joins.
        7 => natural_join_query()
            .project_cols(["K", "A"])
            .union(RaExpr::scan("R")),
        8 => RaExpr::scan("R").diff(natural_join_query().project_cols(["K", "A"])),
        // Projection over the recognised σ(×) form.
        9 => sel_prod().project_cols(["r.K", "A", "B"]),
        // Rename feeding a union: ρ[A→B](R) has S's schema (K, B).
        10 => RaExpr::scan("R")
            .rename([("A", "B")])
            .union(RaExpr::scan("S"))
            .select(Pred::cmp(
                Operand::col("B"),
                CmpOp::Lt,
                Operand::constant(c),
            )),
        // Join above a union: (R ∪ ρ[B→A](S)) ⋈ S.
        11 => RaExpr::scan("R")
            .union(RaExpr::scan("S").rename([("B", "A")]))
            .natural_join(RaExpr::scan("S")),
        // Both keys renamed K→J, then the join happens on J.
        12 => RaExpr::scan("R")
            .rename([("K", "J")])
            .natural_join(RaExpr::scan("S").rename([("K", "J")])),
        // Difference of unions over the same (K, A) schema.
        13 => natural_join_query()
            .project_cols(["K", "A"])
            .union(RaExpr::scan("R"))
            .diff(RaExpr::scan("R").select(Pred::col_eq_const("K", c))),
        // Three-way union of key projections.
        _ => RaExpr::scan("R")
            .project_cols(["K"])
            .union(RaExpr::scan("S").project_cols(["K"]))
            .union(natural_join_query().project_cols(["K"])),
    }
}

/// Random workload parameters, small enough that 256 cases stay cheap
/// but with key cardinalities low enough to force bucket collisions and
/// multi-match probes.
fn cfg_strategy() -> impl Strategy<Value = JoinConfig> {
    (0usize..40, 0usize..40, 1usize..10, 1usize..6).prop_map(
        |(left_rows, right_rows, key_cardinality, payload_values)| JoinConfig {
            left_rows,
            right_rows,
            key_cardinality,
            payload_values,
        },
    )
}

proptest! {
    /// The hash engine is *byte-identical* to the nested-loop reference
    /// engine: same tuples, same order — not merely set-equal.
    #[test]
    fn hash_engine_matches_nested_loop(
        seed in any::<u64>(),
        cfg in cfg_strategy(),
        qi in 0usize..QUERY_SHAPES,
        c in 0i64..8,
    ) {
        let db = join_tables(seed, &cfg);
        let q = query(qi, c);
        let naive = eval(&db, &q).unwrap();
        let hashed = eval_hash(&db, &q, &ExecConfig::default()).unwrap();
        prop_assert_eq!(&naive, &hashed, "query shape {}", qi % QUERY_SHAPES);
        // The stats-collecting entry point evaluates identically too.
        let (with_stats, stats) = eval_with_stats(&db, &q, &ExecConfig::default()).unwrap();
        prop_assert_eq!(&naive, &with_stats);
        // rows_out counts operator output *before* the final
        // set-semantics dedup, so it bounds the result size from above.
        prop_assert!(stats.root.rows_out >= naive.len());
    }

    /// Parallel partitioned probing returns exactly the sequential
    /// result, for any partition count.
    #[test]
    fn parallel_matches_sequential(
        seed in any::<u64>(),
        cfg in cfg_strategy(),
        qi in 0usize..QUERY_SHAPES,
        parts in 2usize..9,
    ) {
        let db = join_tables(seed, &cfg);
        let q = query(qi, 3);
        let sequential = eval_hash(&db, &q, &ExecConfig::sequential()).unwrap();
        let mut par = ExecConfig::with_partitions(parts);
        par.parallel_threshold = 1; // force the thread-scope path
        let parallel = eval_hash(&db, &q, &par).unwrap();
        prop_assert_eq!(sequential, parallel, "partitions = {}", parts);
    }

    /// Colored-annotation evaluation is engine-independent under every
    /// propagation scheme.
    #[test]
    fn colored_annotations_survive_hashing(
        seed in any::<u64>(),
        cfg in cfg_strategy(),
        qi in 0usize..QUERY_SHAPES,
    ) {
        let q = query(qi, 3);
        if !q.is_positive() {
            return Ok(()); // colored evaluation is defined for positive queries
        }
        let db = join_tables(seed, &cfg);
        let cdb = ColoredDatabase::distinctly_colored(&db);
        let mut par = ExecConfig::with_partitions(4);
        par.parallel_threshold = 1;
        for scheme in [Scheme::Default, Scheme::DefaultAll] {
            let naive = eval_colored(&cdb, &q, &scheme).unwrap();
            let hashed = eval_colored_with(&cdb, &q, &scheme, &par).unwrap();
            prop_assert_eq!(naive, hashed, "scheme {:?}", scheme);
        }
    }

    /// Explicitly-steered propagation (the paper's pSQL `PROPAGATE`
    /// clauses, [`Scheme::Custom`]) is engine-independent too, for any
    /// query shape and either steering target. Sources that do not
    /// resolve in a given shape simply contribute nothing, identically
    /// on both engines.
    #[test]
    fn custom_propagation_survives_hashing(
        seed in any::<u64>(),
        cfg in cfg_strategy(),
        qi in 0usize..QUERY_SHAPES,
        steer_b in any::<bool>(),
    ) {
        let q = query(qi, 3);
        if !q.is_positive() {
            return Ok(()); // colored evaluation is defined for positive queries
        }
        let db = join_tables(seed, &cfg);
        let cdb = ColoredDatabase::distinctly_colored(&db);
        let mut steer = std::collections::BTreeMap::new();
        if steer_b {
            steer.insert("B".to_string(), vec!["S.B".to_string(), "B".to_string()]);
        } else {
            steer.insert("A".to_string(), vec!["K".to_string(), "A".to_string()]);
        }
        let scheme = Scheme::Custom(steer);
        let naive = eval_colored(&cdb, &q, &scheme).unwrap();
        let mut par = ExecConfig::with_partitions(4);
        par.parallel_threshold = 1;
        let hashed = eval_colored_with(&cdb, &q, &scheme, &par).unwrap();
        prop_assert_eq!(naive, hashed, "shape {}", qi % QUERY_SHAPES);
    }
}

/// Annotates the workload tables with per-tuple variables (`R0`, `R1`,
/// …) so join annotations are informative products, not all-ones.
fn tagged_db<K: Semiring>(
    db: &curated_db::relalg::Database,
    var: impl Fn(String) -> K,
) -> KDatabase<K> {
    let mut out = KDatabase::new();
    for name in ["R", "S"] {
        let rel = db.get(name).unwrap();
        out.insert(
            name,
            KRelation::tagged(rel, |i, _| var(format!("{name}{i}"))).unwrap(),
        );
    }
    out
}

/// The determinism requirement: semiring annotations must be identical
/// across 1, 2, and 8 partitions — partition merge is the semiring `+`,
/// which is associative and commutative, so the partitioning must be
/// unobservable.
#[test]
fn annotations_are_partition_deterministic() {
    let configs: Vec<ExecConfig> = [1usize, 2, 8]
        .iter()
        .map(|&p| {
            let mut c = ExecConfig::with_partitions(p);
            c.parallel_threshold = 1;
            c
        })
        .collect();

    // Figure 4's polynomial query, where annotation structure is rich.
    let fig_db = figure4_database(|v| Polynomial::var(v));
    let fig_q = figure4_query();
    let reference = eval_k(&fig_db, &fig_q).unwrap();
    for cfg in &configs {
        assert_eq!(reference, eval_k_with(&fig_db, &fig_q, cfg).unwrap());
    }

    // Workload tables under Nat (bag semantics) and Polynomial
    // (provenance polynomials), across the query pool.
    let wl = JoinConfig {
        left_rows: 60,
        right_rows: 60,
        key_cardinality: 7,
        payload_values: 4,
    };
    let db = join_tables(0xD17E, &wl);
    let nat_db = tagged_db(&db, |_| Nat(1));
    let poly_db = tagged_db(&db, |v| Polynomial::var(&v));
    for qi in 0..QUERY_SHAPES {
        let q = query(qi, 3);
        if !q.is_positive() {
            continue; // K-relation semantics needs positive queries
        }
        let nat_ref = eval_k(&nat_db, &q).unwrap();
        let poly_ref = eval_k(&poly_db, &q).unwrap();
        for cfg in &configs {
            assert_eq!(
                nat_ref,
                eval_k_with(&nat_db, &q, cfg).unwrap(),
                "Nat, shape {qi}"
            );
            assert_eq!(
                poly_ref,
                eval_k_with(&poly_db, &q, cfg).unwrap(),
                "Polynomial, shape {qi}"
            );
        }
    }
}
