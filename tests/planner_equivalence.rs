//! Differential tests for the cost-based planner (`cdb_relalg::plan`)
//! and the durable secondary indexes it consumes.
//!
//! Three obligations, each checked against an independent oracle:
//!
//! 1. **Set semantics** — `eval_planned` must agree with the naive
//!    nested-loop interpreter on random databases and a pool of query
//!    shapes covering everything the planner special-cases (chain
//!    joins, index-eligible point lookups, residual conjuncts, same-side
//!    equalities, duplicate conjuncts, unresolvable attributes, set
//!    operators). The planner emits canonical (sorted, deduplicated)
//!    relations, so the naive result is canonicalised before comparing.
//!    Errors must match too, by message.
//! 2. **Annotations** — `eval_k_via_planner` must produce byte-identical
//!    K-relations to the naive `eval_k` for `Nat` and `Polynomial`:
//!    join reordering is sound precisely because semiring `+`/`·` are
//!    associative and commutative, and these tests are where that
//!    argument meets the implementation (a duplicated hash-key pair
//!    would square an annotation; a reordered join must not reassociate
//!    a polynomial observably).
//! 3. **Index durability** — a database that registered secondary
//!    indexes and then crashed mid-WAL must recover, at *every* byte
//!    offset, to indexes identical to a from-scratch rebuild of the
//!    recovered tree. Each property runs 256 generated cases by default
//!    (`PROPTEST_CASES` overrides); the WAL-cut sweep is exhaustive.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use curated_db::core::storage::{CheckpointStore, Io, MemIo, StorageError};
use curated_db::relalg::eval::eval;
use curated_db::relalg::pred::{CmpOp, Operand};
use curated_db::relalg::{
    eval_planned, plan, Database, DbStats, ExecConfig, IndexSet, PlanOp, Pred, RaExpr, Relation,
};
use curated_db::semiring::eval::eval_k;
use curated_db::semiring::planned::eval_k_via_planner;
use curated_db::semiring::{KDatabase, KRelation, Nat, Polynomial, Semiring};
use curated_db::workload::relational::{
    chain_query, chain_tables, point_lookup_query, select_product_query, JoinConfig,
};
use curated_db::{Atom, CuratedDatabase};
use proptest::prelude::*;

/// Number of distinct query shapes produced by [`query`].
const PLANNER_SHAPES: usize = 16;

/// A pool of algebra expressions over the chain workload `R(K, A)` /
/// `S(K, B)` / `T(K, C)`, parameterised by a constant `c`. Covers the
/// shapes the planner rewrites (multi-way chains, index-eligible point
/// selections, pushdown through products) and the recognizer edges
/// that historically broke it (same-side equalities, duplicated
/// conjuncts, unresolvable attributes).
fn query(qi: usize, c: i64) -> RaExpr {
    let rs =
        || RaExpr::ScanAs("R".into(), "r".into()).product(RaExpr::ScanAs("S".into(), "s".into()));
    let nat = || RaExpr::scan("R").natural_join(RaExpr::scan("S"));
    match qi % PLANNER_SHAPES {
        // The two E25 benchmark shapes themselves.
        0 => chain_query(),
        1 => point_lookup_query(c),
        // Aliased point lookup: pushdown must rewrite through ScanAs.
        2 => RaExpr::ScanAs("R".into(), "r".into()).select(Pred::col_eq_const("r.K", c)),
        3 => nat(),
        4 => select_product_query(),
        // Equi-join with a residual payload conjunct.
        5 => rs().select(Pred::col_eq_col("r.K", "s.K").and(Pred::cmp(
            Operand::col("A"),
            CmpOp::Lt,
            Operand::constant(c),
        ))),
        // Non-equi predicate: no hash join to extract.
        6 => rs().select(Pred::cmp(Operand::col("A"), CmpOp::Le, Operand::col("B"))),
        // Same-side equality: both columns come from R, so it is a
        // filter, not a join key — demoting it would be wrong twice.
        7 => rs().select(Pred::col_eq_col("r.K", "A")),
        // Duplicated conjunct: one hash-key pair, not two.
        8 => rs().select(Pred::col_eq_col("r.K", "s.K").and(Pred::col_eq_col("r.K", "s.K"))),
        // One resolvable equi-conjunct plus an unresolvable attribute:
        // the whole query must fail exactly like the naive engine.
        9 => rs().select(Pred::col_eq_col("r.K", "s.K").and(Pred::col_eq_const("Z", c))),
        // Projection above the reordered chain (dedup after joins).
        10 => chain_query().project_cols(["A", "B", "C"]),
        11 => nat().project_cols(["K", "A"]).union(RaExpr::scan("R")),
        12 => RaExpr::scan("R").diff(nat().project_cols(["K", "A"])),
        // Renamed keys: the join happens on J after ρ.
        13 => RaExpr::scan("R")
            .rename([("K", "J")])
            .natural_join(RaExpr::scan("T").rename([("K", "J")])),
        // Selection below a join: index-eligible after pushdown.
        14 => RaExpr::scan("R")
            .select(Pred::col_eq_const("K", c))
            .natural_join(RaExpr::scan("S")),
        // Three-way union of key projections.
        _ => RaExpr::scan("R")
            .project_cols(["K"])
            .union(RaExpr::scan("S").project_cols(["K"]))
            .union(RaExpr::scan("T").project_cols(["K"])),
    }
}

/// Random workload parameters, small enough that 256 cases stay cheap
/// but with key cardinalities low enough to force multi-match probes
/// and genuinely skewed statistics.
fn cfg_strategy() -> impl Strategy<Value = JoinConfig> {
    (0usize..40, 0usize..40, 1usize..10, 1usize..6).prop_map(
        |(left_rows, right_rows, key_cardinality, payload_values)| JoinConfig {
            left_rows,
            right_rows,
            key_cardinality,
            payload_values,
        },
    )
}

/// The index set every planner test offers: both big tables on the
/// join key, so index scans are available whenever pushdown exposes a
/// constant key selection.
fn workload_indexes(db: &Database) -> IndexSet {
    IndexSet::build(db, [("R", "K"), ("S", "K")]).expect("workload columns exist")
}

/// Annotates named tables with per-tuple variables (`R0`, `R1`, …) so
/// join annotations are informative products, not all-ones.
fn tagged_db<K: Semiring>(
    db: &Database,
    names: &[&str],
    var: impl Fn(String) -> K,
) -> KDatabase<K> {
    let mut out = KDatabase::new();
    for name in names {
        let rel = db.get(name).unwrap();
        out.insert(
            *name,
            KRelation::tagged(rel, |i, _| var(format!("{name}{i}"))).unwrap(),
        );
    }
    out
}

proptest! {
    /// The planned engine is observationally identical to the naive
    /// nested-loop reference: same canonical relation on success, the
    /// same error on failure.
    #[test]
    fn planner_matches_reference_engine(
        seed in any::<u64>(),
        cfg in cfg_strategy(),
        qi in 0usize..PLANNER_SHAPES,
        c in 0i64..8,
    ) {
        let db = chain_tables(seed, &cfg);
        let stats = DbStats::analyze(&db);
        let indexes = workload_indexes(&db);
        let q = query(qi, c);
        let naive = eval(&db, &q);
        let planned = eval_planned(&db, &stats, &indexes, &q, &ExecConfig::default());
        match (naive, planned) {
            (Ok(n), Ok(p)) => prop_assert_eq!(n.canonical(), p, "shape {}", qi % PLANNER_SHAPES),
            (Err(n), Err(p)) => prop_assert_eq!(
                n.to_string(),
                p.to_string(),
                "shape {} errors differ", qi % PLANNER_SHAPES
            ),
            (n, p) => prop_assert!(
                false,
                "engines disagree on failure (shape {}): naive {:?}, planned {:?}",
                qi % PLANNER_SHAPES, n.map(|r| r.len()), p.map(|r| r.len())
            ),
        }
    }

    /// Indexes are a pure access-path choice: offering them must never
    /// change a result, only how it is computed.
    #[test]
    fn indexes_do_not_change_results(
        seed in any::<u64>(),
        cfg in cfg_strategy(),
        qi in 0usize..PLANNER_SHAPES,
        c in 0i64..8,
    ) {
        let db = chain_tables(seed, &cfg);
        let stats = DbStats::analyze(&db);
        let q = query(qi, c);
        let exec = ExecConfig::default();
        let with = eval_planned(&db, &stats, &workload_indexes(&db), &q, &exec);
        let without = eval_planned(&db, &stats, &IndexSet::new(), &q, &exec);
        match (with, without) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "shape {}", qi % PLANNER_SHAPES),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            _ => prop_assert!(false, "index availability changed success/failure"),
        }
    }

    /// The planner preserves `Nat` (bag) annotations exactly: join
    /// reordering and hash-key dedup must not drop or square a
    /// multiplicity.
    #[test]
    fn planner_preserves_nat_annotations(
        seed in any::<u64>(),
        cfg in cfg_strategy(),
        qi in 0usize..PLANNER_SHAPES,
        c in 0i64..8,
    ) {
        let db = chain_tables(seed, &cfg);
        let q = query(qi, c);
        let kdb = tagged_db(&db, &["R", "S", "T"], |_| Nat(2));
        let naive = eval_k(&kdb, &q);
        let planned = eval_k_via_planner(&kdb, &q, &workload_indexes(&db), &ExecConfig::default());
        match (naive, planned) {
            (Ok(n), Ok(p)) => prop_assert_eq!(n, p, "shape {}", qi % PLANNER_SHAPES),
            (Err(n), Err(p)) => prop_assert_eq!(n.to_string(), p.to_string()),
            _ => prop_assert!(false, "Nat engines disagree on failure (shape {})", qi % PLANNER_SHAPES),
        }
    }

    /// The planner preserves provenance polynomials exactly — the
    /// K-relation analogue of byte-identical output, since `Polynomial`
    /// equality is structural over normalised monomials.
    #[test]
    fn planner_preserves_polynomial_annotations(
        seed in any::<u64>(),
        cfg in cfg_strategy(),
        qi in 0usize..PLANNER_SHAPES,
        c in 0i64..8,
    ) {
        let db = chain_tables(seed, &cfg);
        let q = query(qi, c);
        let kdb = tagged_db(&db, &["R", "S", "T"], |v| Polynomial::var(&v));
        let naive = eval_k(&kdb, &q);
        let planned = eval_k_via_planner(&kdb, &q, &workload_indexes(&db), &ExecConfig::default());
        match (naive, planned) {
            (Ok(n), Ok(p)) => prop_assert_eq!(n, p, "shape {}", qi % PLANNER_SHAPES),
            (Err(n), Err(p)) => prop_assert_eq!(n.to_string(), p.to_string()),
            _ => prop_assert!(false, "Polynomial engines disagree on failure (shape {})", qi % PLANNER_SHAPES),
        }
    }
}

/// The planner genuinely plans on realistic sizes: a point lookup over
/// an indexed column becomes an `IndexLookup`, and the result still
/// matches the naive engine. (The property tests above use tiny
/// tables, where the cost model may legitimately prefer a scan.)
#[test]
fn point_lookups_use_the_index_and_agree() {
    let cfg = JoinConfig {
        left_rows: 200,
        right_rows: 200,
        key_cardinality: 50,
        payload_values: 5,
    };
    let db = chain_tables(0xF1A7, &cfg);
    let stats = DbStats::analyze(&db);
    let indexes = workload_indexes(&db);
    for q in [
        point_lookup_query(7),
        RaExpr::ScanAs("R".into(), "r".into()).select(Pred::col_eq_const("r.K", 7)),
        RaExpr::scan("R")
            .select(Pred::col_eq_const("K", 7))
            .natural_join(RaExpr::scan("S")),
    ] {
        let p = plan(&db, &stats, &indexes, &q);
        assert!(
            p.ops()
                .iter()
                .any(|op| matches!(op, PlanOp::IndexLookup { col, .. } if col == "K")),
            "expected an index lookup in:\n{p}"
        );
        let planned = eval_planned(&db, &stats, &indexes, &q, &ExecConfig::default()).unwrap();
        assert_eq!(planned, eval(&db, &q).unwrap().canonical());
    }
}

// ---------------------------------------------------------------------------
// Recognizer edge suite over handcrafted K-databases (Nat / Polynomial)
// ---------------------------------------------------------------------------

/// Small tables with deliberate key collisions plus an empty relation,
/// so edge shapes have non-trivial multiplicities on both engines.
fn edge_tables() -> Database {
    let r = Relation::table(
        ["K", "A"],
        vec![
            vec![Atom::Int(1), Atom::Int(1)],
            vec![Atom::Int(1), Atom::Int(2)],
            vec![Atom::Int(2), Atom::Int(2)],
            vec![Atom::Int(3), Atom::Int(5)],
        ],
    )
    .unwrap();
    let s = Relation::table(
        ["K", "B"],
        vec![
            vec![Atom::Int(1), Atom::Int(10)],
            vec![Atom::Int(2), Atom::Int(20)],
            vec![Atom::Int(2), Atom::Int(21)],
        ],
    )
    .unwrap();
    let e = Relation::table(["K", "C"], Vec::<Vec<Atom>>::new()).unwrap();
    Database::new().with("R", r).with("S", s).with("E", e)
}

/// The recognizer edges, named for failure messages.
fn edge_queries() -> Vec<(&'static str, RaExpr)> {
    let rs =
        || RaExpr::ScanAs("R".into(), "r".into()).product(RaExpr::ScanAs("S".into(), "s".into()));
    vec![
        // r.K = A compares two R columns: a filter, not a join key.
        (
            "same-side equality",
            rs().select(Pred::col_eq_col("r.K", "A")),
        ),
        (
            "duplicated conjunct",
            rs().select(Pred::col_eq_col("r.K", "s.K").and(Pred::col_eq_col("r.K", "s.K"))),
        ),
        (
            "empty build side",
            RaExpr::ScanAs("R".into(), "r".into())
                .product(RaExpr::ScanAs("E".into(), "e".into()))
                .select(Pred::col_eq_col("r.K", "e.K")),
        ),
        (
            "empty probe side",
            RaExpr::ScanAs("E".into(), "e".into())
                .product(RaExpr::ScanAs("R".into(), "r".into()))
                .select(Pred::col_eq_col("e.K", "r.K")),
        ),
        (
            "equi plus residual",
            rs().select(Pred::col_eq_col("r.K", "s.K").and(Pred::cmp(
                Operand::col("B"),
                CmpOp::Lt,
                Operand::constant(21),
            ))),
        ),
    ]
}

fn assert_edges_agree<K: Semiring>(var: impl Fn(String) -> K) {
    let db = edge_tables();
    let kdb = tagged_db(&db, &["R", "S", "E"], var);
    let indexes = IndexSet::build(&db, [("R", "K")]).unwrap();
    for (name, q) in edge_queries() {
        let naive = eval_k(&kdb, &q).unwrap();
        let planned = eval_k_via_planner(&kdb, &q, &indexes, &ExecConfig::default()).unwrap();
        assert_eq!(naive, planned, "edge shape: {name}");
    }
    // One resolvable conjunct plus an unresolvable one fails whole, on
    // both engines, with the same message.
    let bad = RaExpr::ScanAs("R".into(), "r".into())
        .product(RaExpr::ScanAs("S".into(), "s".into()))
        .select(Pred::col_eq_col("r.K", "s.K").and(Pred::col_eq_const("Z", 1)));
    let naive = eval_k(&kdb, &bad).unwrap_err();
    let planned = eval_k_via_planner(&kdb, &bad, &indexes, &ExecConfig::default()).unwrap_err();
    assert_eq!(naive.to_string(), planned.to_string());
}

#[test]
fn recognizer_edges_preserve_nat_annotations() {
    // Nat(2) per tuple: a squared conjunct would show up as 4.
    assert_edges_agree(|_| Nat(2));
}

#[test]
fn recognizer_edges_preserve_polynomial_annotations() {
    assert_edges_agree(|v| Polynomial::var(&v));
}

#[test]
fn recognizer_edges_agree_under_set_semantics() {
    let db = edge_tables();
    let stats = DbStats::analyze(&db);
    let indexes = IndexSet::build(&db, [("R", "K")]).unwrap();
    for (name, q) in edge_queries() {
        let naive = eval(&db, &q).unwrap().canonical();
        let planned = eval_planned(&db, &stats, &indexes, &q, &ExecConfig::default()).unwrap();
        assert_eq!(naive, planned, "edge shape: {name}");
    }
}

// ---------------------------------------------------------------------------
// Index crash recovery: every WAL byte cut equals a from-scratch rebuild
// ---------------------------------------------------------------------------

/// A shared in-memory WAL device the test keeps a handle on after the
/// database takes ownership, so it can capture the byte image a crash
/// would leave behind.
#[derive(Debug, Clone)]
struct SharedIo(Arc<Mutex<MemIo>>);

impl SharedIo {
    fn new() -> Self {
        SharedIo(Arc::new(Mutex::new(MemIo::new())))
    }

    fn bytes(&self) -> Vec<u8> {
        self.0.lock().unwrap().bytes().to_vec()
    }
}

impl Io for SharedIo {
    fn len(&self) -> Result<u64, StorageError> {
        self.0.lock().unwrap().len()
    }
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        self.0.lock().unwrap().read_at(offset, buf)
    }
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.0.lock().unwrap().append(bytes)
    }
    fn flush(&mut self) -> Result<(), StorageError> {
        self.0.lock().unwrap().flush()
    }
    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        self.0.lock().unwrap().truncate(len)
    }
}

/// Asserts every registered index equals a from-scratch rebuild of the
/// recovered tree, computed through the public API with the same
/// indexing rule the database uses: the key field indexes as
/// `Atom::Str(key)`, missing fields as `Atom::Unit`.
fn assert_indexes_match_rebuild(db: &CuratedDatabase, key_field: &str) {
    let keys = db.entry_keys().unwrap();
    for field in db.index_fields() {
        let idx = db.field_index(&field).expect("registered index present");
        let mut expect: BTreeMap<Atom, BTreeSet<String>> = BTreeMap::new();
        for k in &keys {
            let v = if field == key_field {
                Atom::Str(k.clone())
            } else {
                db.field(k, &field).unwrap_or(Atom::Unit)
            };
            expect.entry(v).or_default().insert(k.clone());
        }
        let got: BTreeMap<Atom, BTreeSet<String>> = idx
            .postings()
            .map(|(v, ks)| (v.clone(), ks.clone()))
            .collect();
        assert_eq!(got, expect, "index on {field:?} diverged from a rebuild");
    }
}

/// A career exercising every index-relevant WAL record: registrations,
/// drops, adds, edits, a merge, a split, a delete, and publishes — no
/// checkpoint, so every byte of state flows through the WAL tail.
fn index_career(db: &mut CuratedDatabase) {
    db.create_index("tm").unwrap();
    db.create_index("kind").unwrap();
    db.create_index("name").unwrap(); // the key field itself
    db.add_entry(
        "alice",
        1,
        "GABA-A",
        &[("kind", Atom::Str("receptor".into())), ("tm", Atom::Int(4))],
    )
    .unwrap();
    db.add_entry("bob", 2, "5-HT3", &[("kind", Atom::Str("receptor".into()))])
        .unwrap();
    db.publish("r0").unwrap();
    db.edit_field(
        "carol",
        3,
        "GABA-A",
        "kind",
        Atom::Str("ion channel".into()),
    )
    .unwrap();
    db.add_entry("erin", 4, "NMDA", &[("tm", Atom::Int(4))])
        .unwrap();
    db.merge_entries("erin", 5, "GABA-A", "5-HT3").unwrap();
    db.split_entry("erin", 6, "NMDA", &[("NMDA-1", vec![]), ("NMDA-2", vec![])])
        .unwrap();
    db.drop_index("kind").unwrap();
    db.add_entry("fred", 7, "AMPA", &[("tm", Atom::Int(3))])
        .unwrap();
    db.delete_entry("fred", 8, "AMPA").unwrap();
    db.publish("r1").unwrap();
}

fn reopen(image: Vec<u8>) -> CuratedDatabase {
    CuratedDatabase::open(
        "iuphar",
        "name",
        Box::new(MemIo::from_bytes(image)),
        CheckpointStore::mem(),
    )
    .unwrap()
}

/// The exhaustive sweep: cut the WAL at *every* byte offset, reopen,
/// and require the recovered indexes to equal a from-scratch rebuild
/// of whatever tree survived. This is the acceptance bar for index
/// durability: no prefix of the log may leave postings that disagree
/// with the data they claim to index.
#[test]
fn every_wal_byte_cut_recovers_consistent_indexes() {
    let wal = SharedIo::new();
    {
        let mut db = CuratedDatabase::open(
            "iuphar",
            "name",
            Box::new(wal.clone()),
            CheckpointStore::mem(),
        )
        .unwrap();
        index_career(&mut db);
    }
    let image = wal.bytes();
    assert!(image.len() > 100, "career should produce a non-trivial WAL");
    for cut in 0..=image.len() {
        let db = reopen(image[..cut].to_vec());
        assert_indexes_match_rebuild(&db, "name");
    }

    // At the full image the surviving registrations and postings are
    // exactly the career's end state.
    let db = reopen(image);
    let mut fields = db.index_fields();
    fields.sort();
    assert_eq!(fields, ["name", "tm"], "kind was dropped, tm/name survive");
    assert_eq!(db.index_lookup("tm", &Atom::Int(4)).unwrap(), ["GABA-A"]);
    assert_eq!(
        db.index_lookup("tm", &Atom::Int(3)).unwrap(),
        Vec::<String>::new()
    );
}

/// A tiny deterministic generator for the random-career property; the
/// proptest shim drives the seed.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Applies `ops` random curation/index operations, ignoring individual
/// failures (duplicate adds, merges of missing entries, …) — failed
/// transactions must leave both the tree and the indexes untouched,
/// which the recovery assertion will verify.
fn random_career(db: &mut CuratedDatabase, seed: u64, ops: usize) {
    let mut s = seed | 1;
    let keys = ["E0", "E1", "E2", "E3", "E4"];
    let fields = ["tm", "kind", "name"];
    for t in 0..ops as u64 {
        let time = t + 1;
        let pick = |s: &mut u64, n: usize| (xorshift(s) % n as u64) as usize;
        match xorshift(&mut s) % 10 {
            0..=2 => {
                let k = keys[pick(&mut s, keys.len())];
                let v = Atom::Int((xorshift(&mut s) % 4) as i64);
                let _ = db.add_entry("u", time, k, &[("tm", v)]);
            }
            3 => {
                let k = keys[pick(&mut s, keys.len())];
                let v = Atom::Int((xorshift(&mut s) % 4) as i64);
                let _ = db.edit_field("u", time, k, "kind", v);
            }
            4 => {
                let k = keys[pick(&mut s, keys.len())];
                let _ = db.delete_entry("u", time, k);
            }
            5 => {
                let a = keys[pick(&mut s, keys.len())];
                let b = keys[pick(&mut s, keys.len())];
                let _ = db.merge_entries("u", time, a, b);
            }
            6 => {
                let k = keys[pick(&mut s, keys.len())];
                let p1 = format!("S{time}a");
                let p2 = format!("S{time}b");
                let _ = db.split_entry("u", time, k, &[(&p1, vec![]), (&p2, vec![])]);
            }
            7 => {
                let _ = db.create_index(fields[pick(&mut s, fields.len())]);
            }
            8 => {
                let _ = db.drop_index(fields[pick(&mut s, fields.len())]);
            }
            _ => {
                let _ = db.publish(format!("v{time}"));
            }
        }
    }
}

proptest! {
    /// Random careers, random crash points: the recovered indexes are
    /// always a from-scratch rebuild of the recovered tree.
    #[test]
    fn random_careers_recover_consistent_indexes(
        seed in any::<u64>(),
        cut_sel in any::<u64>(),
    ) {
        let wal = SharedIo::new();
        {
            let mut db = CuratedDatabase::open(
                "iuphar",
                "name",
                Box::new(wal.clone()),
                CheckpointStore::mem(),
            )
            .unwrap();
            random_career(&mut db, seed, 14);
        }
        let image = wal.bytes();
        let cut = (cut_sel as usize) % (image.len() + 1);
        let db = reopen(image[..cut].to_vec());
        assert_indexes_match_rebuild(&db, "name");
    }
}
