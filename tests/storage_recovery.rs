//! Randomized crash-recovery testing: arbitrary curation sessions from
//! `cdb-workload`, crashed at arbitrary byte offsets, frame boundaries,
//! and under every injected fault class — the recovered `TreeDb` and
//! `ProvStore` must equal an in-memory reference built by applying
//! exactly the committed prefix of the log.
//!
//! Three properties × 256 cases each (PROPTEST_CASES overrides). The
//! proptest shim derives each case's inputs from a deterministic seed,
//! so any failure reproduces exactly, fault offsets included.

use std::collections::BTreeMap;

use cdb_curation::ops::CuratedTree;
use cdb_curation::provstore::StoreMode;
use cdb_curation::replay::apply_committed;
use cdb_curation::wire::{encode_transaction, Checkpoint};
use cdb_storage::{
    encode_decide, encode_prepare, read_checkpoint, recover, recover_shards, recover_with,
    scan_decisions, write_checkpoint, DecideRecord, DurableLog, FaultPlan, FaultyIo, MemIo,
    PrepareRecord, Retention, SegmentConfig, SegmentedIo, FRAME_AUX, FRAME_DECIDE, FRAME_PREPARE,
    FRAME_TXN,
};
use cdb_workload::sessions::{CurationSim, SessionConfig};
use proptest::prelude::*;

fn session(seed: u64, mode: StoreMode, txns: usize, pastes: usize, edits: usize) -> CuratedTree {
    let mut sim = CurationSim::new(
        seed,
        mode,
        SessionConfig {
            source_entries: 3,
            fields_per_entry: 2,
            transactions: txns,
            pastes_per_txn: pastes,
            edits_per_txn: edits,
            inserts_per_txn: 1,
        },
    );
    sim.run();
    sim.target
}

/// The session log as a WAL image (synced after every frame) plus each
/// frame's end offset.
fn wal_image(db: &CuratedTree) -> (Vec<u8>, Vec<u64>) {
    let mut log = DurableLog::create(MemIo::new()).unwrap();
    let mut ends = Vec::new();
    for txn in db.transactions() {
        log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
        log.sync().unwrap();
        ends.push(log.len().unwrap());
    }
    (log.into_io().bytes().to_vec(), ends)
}

/// In-memory reference: the state after the first `n` transactions,
/// built through the same committed-apply path recovery uses.
fn reference(db: &CuratedTree, mode: StoreMode, n: usize) -> CuratedTree {
    let mut r = CuratedTree::new(db.tree.name(), mode);
    for txn in &db.log[..n] {
        apply_committed(&mut r, txn).unwrap();
    }
    r
}

/// A checkpoint of the state after `k` transactions, round-tripped
/// through its on-disk encoding.
fn checkpoint_after(db: &CuratedTree, mode: StoreMode, k: usize) -> Option<Checkpoint> {
    let snap = reference(db, mode, k);
    let ck = Checkpoint::basic(snap.last_txn_id(), snap.tree.clone(), snap.prov.clone());
    let mut io = MemIo::new();
    write_checkpoint(&mut io, &ck).unwrap();
    read_checkpoint(&mut io).unwrap()
}

fn mode_of(naive: bool) -> StoreMode {
    if naive {
        StoreMode::Naive
    } else {
        StoreMode::Hereditary
    }
}

proptest! {
    /// Crash at an arbitrary byte offset, with an arbitrary checkpoint
    /// (possibly ahead of the surviving log — recovery must discard
    /// it): the recovered tree and provenance store equal the
    /// committed-prefix reference, exactly.
    #[test]
    fn arbitrary_crash_offsets_recover_the_committed_prefix(
        seed in 0u64..1_000_000,
        naive in any::<bool>(),
        txns in 1usize..6,
        pastes in 0usize..3,
        edits in 0usize..3,
        cut_sel in 0usize..100_000,
        ckpt_at in 0usize..6,
    ) {
        let mode = mode_of(naive);
        let db = session(seed, mode, txns, pastes, edits);
        let (image, ends) = wal_image(&db);
        let cut = 8 + cut_sel % (image.len() - 7);
        let committed = ends.iter().filter(|&&e| e <= cut as u64).count();

        let ckpt_at = ckpt_at.min(db.log.len());
        let ck = checkpoint_after(&db, mode, ckpt_at);
        prop_assert!(ck.is_some());

        let (_, rec) = recover(
            "curated",
            mode,
            MemIo::from_bytes(image[..cut].to_vec()),
            ck,
        )
        .unwrap();
        let expect = reference(&db, mode, committed);
        prop_assert_eq!(&rec.db.tree, &expect.tree);
        prop_assert_eq!(&rec.db.prov, &expect.prov);
        prop_assert_eq!(&rec.db, &expect);
        // The checkpoint is used exactly when the surviving log covers it.
        prop_assert_eq!(rec.stats.used_checkpoint, ckpt_at <= committed);
        prop_assert_eq!(rec.stats.frames_scanned, committed as u64);
    }

    /// Crash exactly at every frame boundary of the session (plus the
    /// bare header): each recovery yields precisely that many
    /// transactions, ids and provenance intact.
    #[test]
    fn every_frame_boundary_crash_is_exact(
        seed in 0u64..1_000_000,
        naive in any::<bool>(),
        txns in 1usize..5,
        pastes in 0usize..3,
    ) {
        let mode = mode_of(naive);
        let db = session(seed, mode, txns, pastes, 2);
        let (image, ends) = wal_image(&db);
        let mut cuts = vec![8u64];
        cuts.extend_from_slice(&ends);
        for (i, &cut) in cuts.iter().enumerate() {
            let (_, rec) = recover(
                "curated",
                mode,
                MemIo::from_bytes(image[..cut as usize].to_vec()),
                None,
            )
            .unwrap();
            let expect = reference(&db, mode, i);
            prop_assert_eq!(&rec.db, &expect, "boundary {}", i);
            prop_assert_eq!(rec.stats.frames_dropped, 0);
            prop_assert_eq!(rec.stats.bytes_dropped, 0);
        }
    }

    /// Injected fault classes — torn writes, bit rot, short reads,
    /// partial flushes — at proptest-scripted offsets: recovery always
    /// reconstructs the committed (durable, checksum-valid) prefix.
    #[test]
    fn injected_faults_never_corrupt_recovery(
        seed in 0u64..1_000_000,
        naive in any::<bool>(),
        txns in 1usize..5,
        fault in 0usize..4,
        a in 0usize..100_000,
        bit in 0u8..8,
    ) {
        let mode = mode_of(naive);
        let db = session(seed, mode, txns, 1, 2);
        let (image, ends) = wal_image(&db);

        let (crashed, committed) = match fault {
            // Torn write: the device silently drops bytes at/past a cap.
            0 => {
                let cap = (8 + a % (image.len() - 7)) as u64;
                let mut log = DurableLog::create(FaultyIo::new(FaultPlan {
                    torn_write_at: Some(cap),
                    ..FaultPlan::default()
                }))
                .unwrap();
                for txn in db.transactions() {
                    log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
                    log.sync().unwrap();
                }
                let crashed = log.into_io().crash();
                (crashed, ends.iter().filter(|&&e| e <= cap).count())
            }
            // Bit rot at a scripted offset.
            1 => {
                let offset = (8 + a % (image.len() - 8)) as u64;
                let io = FaultyIo::with_contents(
                    image.clone(),
                    FaultPlan {
                        bit_flips: vec![(offset, 1 << bit)],
                        ..FaultPlan::default()
                    },
                );
                (io.crash(), ends.iter().filter(|&&e| e <= offset).count())
            }
            // Short reads: recovery must be unaffected entirely.
            2 => (image.clone(), db.log.len()),
            // Partial flush: each sync persists at most `cap` bytes.
            _ => {
                let cap = (16 + a % 256) as u64;
                let mut log = DurableLog::create(FaultyIo::new(FaultPlan {
                    flush_cap: Some(cap),
                    ..FaultPlan::default()
                }))
                .unwrap();
                for txn in db.transactions() {
                    log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
                    log.sync().unwrap();
                }
                let crashed = log.into_io().crash();
                let durable = crashed.len() as u64;
                (crashed, ends.iter().filter(|&&e| e <= durable).count())
            }
        };

        let io = FaultyIo::with_contents(
            crashed,
            FaultPlan {
                short_read_chunk: if fault == 2 { Some(1 + a % 7) } else { None },
                ..FaultPlan::default()
            },
        );
        let (_, rec) = recover("curated", mode, io, None).unwrap();
        let expect = reference(&db, mode, committed);
        prop_assert_eq!(&rec.db.tree, &expect.tree, "fault class {}", fault);
        prop_assert_eq!(&rec.db.prov, &expect.prov, "fault class {}", fault);
        prop_assert_eq!(&rec.db, &expect, "fault class {}", fault);
    }

    /// Segmented logs crossing rotations: a checkpoint with a coverage
    /// watermark retires the covered segments (archived under KeepAll,
    /// deleted under Reclaim) and recovery over the surviving device
    /// still equals the full-replay oracle, tree and provenance alike.
    #[test]
    fn segment_retirement_preserves_the_replay_oracle(
        seed in 0u64..1_000_000,
        naive in any::<bool>(),
        txns in 4usize..10,
        pastes in 0usize..3,
        reclaim in any::<bool>(),
        ckpt_sel in 0usize..100,
    ) {
        let mode = mode_of(naive);
        let db = session(seed, mode, txns, pastes, 2);
        let cfg = SegmentConfig {
            // Tiny segments so every session crosses several rotations.
            segment_bytes: 512,
            retention: if reclaim { Retention::Reclaim } else { Retention::KeepAll },
        };
        let (io, backing) = SegmentedIo::mem(cfg).unwrap();
        let mut log = DurableLog::create(io).unwrap();
        let ckpt_at = 1 + ckpt_sel % db.log.len();
        let mut ck = None;
        for (i, txn) in db.transactions().iter().enumerate() {
            log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
            log.sync().unwrap();
            if i + 1 == ckpt_at {
                let covered = log.len().unwrap();
                let snap = reference(&db, mode, ckpt_at);
                let mut c =
                    Checkpoint::basic(snap.last_txn_id(), snap.tree.clone(), snap.prov.clone());
                c.covered_len = Some(covered);
                if !reclaim {
                    // KeepAll archives the files, so the checkpoint may
                    // carry the full log and recovery reconstructs
                    // complete history.
                    c.log = db.log[..ckpt_at].to_vec();
                }
                log.reclaim(covered).unwrap();
                ck = Some(c);
            }
        }
        let final_len = log.len().unwrap();
        drop(log);
        if final_len > 2 * cfg.segment_bytes {
            let rotated = backing.live_seqs().last().copied().unwrap_or(0) > 0
                || !backing.archived_seqs().is_empty();
            prop_assert!(rotated, "a {final_len}-byte log must have rotated");
        }
        if !reclaim {
            prop_assert!(backing.live_bytes() >= final_len.saturating_sub(cfg.segment_bytes)
                || !backing.archived_seqs().is_empty());
        }

        let io = SegmentedIo::open(Box::new(backing.crash()), cfg).unwrap();
        let (_, rec) = recover("curated", mode, io, ck).unwrap();
        let expect = reference(&db, mode, db.log.len());
        prop_assert_eq!(&rec.db.tree, &expect.tree, "retention {:?}", cfg.retention);
        prop_assert_eq!(&rec.db.prov, &expect.prov, "retention {:?}", cfg.retention);
        if !reclaim {
            // Full carried log: the recovered curated tree is
            // indistinguishable from never having truncated.
            prop_assert_eq!(&rec.db, &expect);
        } else {
            // Truncated form: history before the checkpoint is gone by
            // design, but the tail is intact and anchored.
            prop_assert_eq!(rec.db.log.len(), db.log.len() - ckpt_at);
            prop_assert_eq!(rec.db.last_txn_id(), expect.last_txn_id());
        }
    }
    /// Parallel N-shard recovery ([`recover_shards`]) is byte-identical
    /// to recovering the shards sequentially under the same merged
    /// decision context, under random torn tails per shard — healed log
    /// bytes, recovered databases, decision records, in-doubt
    /// resolutions, and gid watermarks all equal. This is the
    /// equivalence promise `recover_shards`'s docs cite.
    #[test]
    fn parallel_shard_recovery_equals_sequential(
        seed in 0u64..1_000_000,
        naive in any::<bool>(),
        nshards in 2usize..5,
        txns in 1usize..4,
        cut_seed in 0u64..1_000_000_000,
    ) {
        let mode = mode_of(naive);
        let images: Vec<Vec<u8>> = (0..nshards)
            .map(|i| {
                let db = session(seed.wrapping_add(i as u64 * 7919), mode, txns, 1, 2);
                twopc_image(&db, i, nshards)
            })
            .collect();

        // Full images resolve the 2PC fixture as built: gid 1 committed
        // everywhere, gid 2 aborted everywhere (decision on the
        // coordinator only — the others resolve through the merged
        // context).
        let full = recover_shards(
            "curated",
            mode,
            images.iter().map(|im| (MemIo::from_bytes(im.clone()), None)).collect(),
            &BTreeMap::new(),
        )
        .unwrap();
        for (i, (_, rec)) in full.iter().enumerate() {
            let committed = format!("cross-1-{i}").into_bytes();
            let aborted = format!("cross-2-{i}").into_bytes();
            prop_assert!(rec.aux.contains(&committed), "shard {} lost gid 1", i);
            prop_assert!(!rec.aux.contains(&aborted), "shard {} applied aborted gid 2", i);
        }

        // Random torn tail per shard, all derived from one seed.
        let mut r = cut_seed | 1;
        let cut_images: Vec<Vec<u8>> = images
            .iter()
            .map(|img| {
                r = r.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let cut = 8 + (r >> 33) as usize % (img.len() - 7);
                img[..cut].to_vec()
            })
            .collect();

        for imgs in [images, cut_images] {
            // The sequential oracle: the same two phases, no threads.
            let mut ctx = BTreeMap::new();
            for img in &imgs {
                let mut io = MemIo::from_bytes(img.clone());
                ctx.extend(scan_decisions(&mut io).unwrap());
            }
            let seq: Vec<_> = imgs
                .iter()
                .map(|img| {
                    let (log, rec) =
                        recover_with("curated", mode, MemIo::from_bytes(img.clone()), None, &ctx)
                            .unwrap();
                    (log.into_io().bytes().to_vec(), rec)
                })
                .collect();

            let par = recover_shards(
                "curated",
                mode,
                imgs.iter().map(|im| (MemIo::from_bytes(im.clone()), None)).collect(),
                &BTreeMap::new(),
            )
            .unwrap();

            for (i, ((sbytes, srec), (plog, prec))) in seq.iter().zip(par.into_iter()).enumerate() {
                let pbytes = plog.into_io().bytes().to_vec();
                prop_assert_eq!(&pbytes, sbytes, "shard {} healed log bytes differ", i);
                prop_assert_eq!(&prec.db, &srec.db, "shard {} databases differ", i);
                prop_assert_eq!(&prec.decisions, &srec.decisions, "shard {} decisions differ", i);
                prop_assert_eq!(&prec.resolved, &srec.resolved, "shard {} resolutions differ", i);
                prop_assert_eq!(prec.max_gid, srec.max_gid, "shard {} gid watermarks differ", i);
            }
        }
    }
}

/// One shard's WAL for the parallel-recovery equivalence test: its
/// session history, then two cross-shard transactions journaled the way
/// `ShardedDb` would — gid 1 prepared everywhere and decided commit,
/// gid 2 prepared everywhere but decided (abort) only on the
/// coordinator, leaving the rest in doubt.
fn twopc_image(db: &CuratedTree, shard: usize, nshards: usize) -> Vec<u8> {
    let mut log = DurableLog::create(MemIo::new()).unwrap();
    for txn in db.transactions() {
        log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
        log.sync().unwrap();
    }
    let parts: Vec<u32> = (0..nshards as u32).collect();
    let prep = |gid: u64| PrepareRecord {
        gid,
        coordinator: 0,
        participants: parts.clone(),
        frames: vec![(FRAME_AUX, format!("cross-{gid}-{shard}").into_bytes())],
    };
    log.append(FRAME_PREPARE, &encode_prepare(&prep(1)))
        .unwrap();
    log.sync().unwrap();
    log.append(
        FRAME_DECIDE,
        &encode_decide(&DecideRecord {
            gid: 1,
            commit: true,
        }),
    )
    .unwrap();
    log.sync().unwrap();
    log.append(FRAME_PREPARE, &encode_prepare(&prep(2)))
        .unwrap();
    log.sync().unwrap();
    if shard == 0 {
        log.append(
            FRAME_DECIDE,
            &encode_decide(&DecideRecord {
                gid: 2,
                commit: false,
            }),
        )
        .unwrap();
        log.sync().unwrap();
    }
    log.into_io().bytes().to_vec()
}

/// Regression for `Retention::Reclaim` + page-granular checkpoints:
/// once a paged checkpoint's watermark retires (deletes) the covered
/// WAL segments, the heap + anchor are the *only* record of the
/// covered history — recovery must materialize the anchor from pages,
/// replay the live tail, and reproduce the pre-crash state exactly,
/// published snapshots included.
#[test]
fn reclaim_with_paged_checkpoints_recovers_from_retired_segments() {
    use std::sync::{Arc, Mutex};

    use cdb_core::CuratedDatabase;
    use cdb_model::Atom;
    use cdb_storage::{CheckpointStore, FaultyIo, Io, StorageError};

    /// A shared device: the database owns one handle, the checker
    /// photographs the durable image after the "crash".
    #[derive(Debug, Clone)]
    struct SharedDev(Arc<Mutex<FaultyIo>>);
    impl SharedDev {
        fn new() -> Self {
            SharedDev(Arc::new(Mutex::new(FaultyIo::new(FaultPlan::default()))))
        }
        fn durable(&self) -> Vec<u8> {
            self.0.lock().unwrap().durable_image()
        }
    }
    impl Io for SharedDev {
        fn len(&self) -> Result<u64, StorageError> {
            self.0.lock().unwrap().len()
        }
        fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
            self.0.lock().unwrap().read_at(offset, buf)
        }
        fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
            self.0.lock().unwrap().append(bytes)
        }
        fn flush(&mut self) -> Result<(), StorageError> {
            self.0.lock().unwrap().flush()
        }
        fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
            self.0.lock().unwrap().truncate(len)
        }
    }

    let cfg = SegmentConfig {
        segment_bytes: 512,
        retention: Retention::Reclaim,
    };
    let (io, backing) = SegmentedIo::mem(cfg).unwrap();
    let heap = SharedDev::new();
    let (s1, s2) = (SharedDev::new(), SharedDev::new());
    let mut db = CuratedDatabase::open_paged(
        "paged-reclaim",
        "id",
        Box::new(io),
        CheckpointStore::slots(Box::new(s1.clone()), Box::new(s2.clone())),
        Box::new(heap.clone()),
        4,
    )
    .unwrap();
    db.set_retention(Retention::Reclaim);

    for i in 0..24u64 {
        db.add_entry(
            "curator",
            i + 1,
            &format!("k{i}"),
            &[("f", Atom::Int(i as i64))],
        )
        .unwrap();
    }
    db.publish("v0").unwrap();
    let stats = db.checkpoint().unwrap();
    assert!(
        stats.retired_segments >= 1,
        "the paged checkpoint must retire covered segments (got {stats:?})"
    );
    // Live history after the reclaim: only the tail below survives in
    // the WAL; everything above exists solely as pages + anchor.
    for i in 24..30u64 {
        db.add_entry(
            "curator",
            i + 1,
            &format!("k{i}"),
            &[("f", Atom::Int(i as i64))],
        )
        .unwrap();
    }
    let before_export = db.export().unwrap();
    let before_last = db.curated.last_txn_id();
    let before_keys = db.entry_keys().unwrap();
    let before_v0 = db.version(0).unwrap();
    drop(db);

    let io = SegmentedIo::open(Box::new(backing.crash()), cfg).unwrap();
    let re = CuratedDatabase::open_paged(
        "paged-reclaim",
        "id",
        Box::new(io),
        CheckpointStore::slots(
            Box::new(MemIo::from_bytes(s1.durable())),
            Box::new(MemIo::from_bytes(s2.durable())),
        ),
        Box::new(MemIo::from_bytes(heap.durable())),
        4,
    )
    .unwrap();
    assert_eq!(re.export().unwrap(), before_export);
    assert_eq!(re.curated.last_txn_id(), before_last);
    assert_eq!(re.entry_keys().unwrap(), before_keys);
    assert!(
        re.curated.base_txn_id().is_some(),
        "a reclaiming paged checkpoint recovers in truncated form"
    );
    assert_eq!(re.archive().version_count(), 1, "published snapshot lost");
    assert_eq!(re.version(0).unwrap(), before_v0);
}

/// A long history over many segments, checkpointed and truncated along
/// the way: recovery must scan only the live tail — strictly fewer
/// bytes than two segments — and still land on the oracle state. This
/// is the bounded-recovery guarantee `scripts/check.sh` smokes.
#[test]
fn long_history_recovery_scans_a_bounded_tail() {
    let mode = StoreMode::Hereditary;
    let db = session(42, mode, 48, 2, 2);
    let cfg = SegmentConfig {
        segment_bytes: 1024,
        retention: Retention::Reclaim,
    };
    let (io, backing) = SegmentedIo::mem(cfg).unwrap();
    let mut log = DurableLog::create(io).unwrap();
    let mut ck = None;
    for (i, txn) in db.transactions().iter().enumerate() {
        log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
        log.sync().unwrap();
        if (i + 1) % 8 == 0 {
            let covered = log.len().unwrap();
            let snap = reference(&db, mode, i + 1);
            let mut c = Checkpoint::basic(snap.last_txn_id(), snap.tree.clone(), snap.prov.clone());
            c.covered_len = Some(covered);
            log.reclaim(covered).unwrap();
            ck = Some(c);
        }
    }
    let total = log.len().unwrap();
    assert!(
        total > 4 * cfg.segment_bytes,
        "history must span many segments (got {total} logical bytes)"
    );
    drop(log);

    let io = SegmentedIo::open(Box::new(backing.crash()), cfg).unwrap();
    let (_, rec) = recover("curated", mode, io, ck).unwrap();
    let expect = reference(&db, mode, db.log.len());
    assert_eq!(rec.db.tree, expect.tree);
    assert_eq!(rec.db.prov, expect.prov);
    assert!(
        rec.stats.bytes_scanned < 2 * cfg.segment_bytes,
        "recovery scanned {} bytes, expected < {} (2 segments)",
        rec.stats.bytes_scanned,
        2 * cfg.segment_bytes
    );
    assert!(
        rec.stats.live_segments < 4,
        "retirement must bound live segments (got {})",
        rec.stats.live_segments
    );
}
