//! Concurrent serving layer: snapshot-isolation and crash checking for
//! [`SharedDb`] over WAL group commit (DESIGN.md §S23).
//!
//! Three layers of testing:
//!
//! 1. **Deterministic interleaving driver** — 256 seeded histories of
//!    4 logical writers × 4 logical readers, scheduled one step at a
//!    time by a seeded [`StdRng`]. Because the schedule is a pure
//!    function of the case seed, a failing history replays
//!    byte-for-byte. Every snapshot a reader takes is fed through the
//!    checker below.
//! 2. **Real threads** — the same scripts on OS threads (writer count
//!    from `CDB_TEST_THREADS`, default 4), readers sampling
//!    concurrently; plus an `#[ignore]`d stress target sized for
//!    `--release --features stress -- --ignored` (the `stress` feature
//!    arms extra epoch-ordering assertions inside `cdb-core`).
//! 3. **Crash under concurrency** — writers race over group commit on
//!    a fault-injected device; after the scripted crash, recovery must
//!    restore a gap-free prefix of the append order, and (for honest
//!    devices) a superset of everything that was acknowledged.
//!
//! The snapshot checker (applied to every observed snapshot):
//!
//! - **Committed prefix** — the snapshot's transaction log is exactly a
//!   prefix of the final log: no torn entries, no holes, no reordering.
//! - **Replay oracle** — [`replay_and_verify`]: the snapshot's tree
//!   equals a from-scratch replay of its own log.
//! - **Lifecycle consistency** — every visible entry key is an active
//!   identifier; ids retired by merge/split/delete are never visible
//!   (no time-travel across lifecycle events).
//! - **Epoch coherence** — one epoch maps to one log length, and later
//!   epochs never expose shorter logs. Per reader, epochs and log
//!   lengths are monotone.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use cdb_core::{CuratedDatabase, SharedDb, Snapshot};
use cdb_curation::ops::Transaction;
use cdb_curation::replay::replay_and_verify;
use cdb_model::Atom;
use cdb_storage::{FaultPlan, FaultyIo, Io, MemIo, StorageError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ------------------------------------------------------------ scripts

/// One scripted curation step. Writers run disjoint key namespaces so
/// any interleaving of their scripts is conflict-free: the checker then
/// verifies what the *serving layer* interleaved, not what the scripts
/// happened to collide on.
#[derive(Debug, Clone)]
enum Op {
    Add(String),
    Edit(String, i64),
    Annotate(String),
    Merge(String, String),
    Split(String, String, String),
    Delete(String),
    Publish(String),
}

/// A writer's script over namespace `ns`: create entries, edit them,
/// annotate, then exercise every lifecycle transition (merge, split,
/// delete) and publish a version.
fn writer_script(ns: &str) -> Vec<Op> {
    let k = |n: usize| format!("{ns}k{n}");
    vec![
        Op::Add(k(0)),
        Op::Add(k(1)),
        Op::Add(k(2)),
        Op::Add(k(3)),
        Op::Edit(k(0), 7),
        Op::Annotate(k(1)),
        Op::Edit(k(0), 8),
        Op::Merge(k(0), k(1)),
        Op::Split(k(2), k(4), k(5)),
        Op::Edit(k(4), 9),
        Op::Delete(k(3)),
        Op::Publish(format!("{ns}-v1")),
    ]
}

/// Applies one scripted step. `w`/`step` make the logical time unique
/// across the whole history (the engine never reads wall-clock time).
fn apply_op(db: &SharedDb, w: u64, step: u64, op: &Op) {
    let curator = format!("c{w}");
    let time = (w + 1) * 100_000 + step;
    match op {
        Op::Add(key) => {
            db.add_entry(&curator, time, key, &[("v", Atom::Int(time as i64))])
                .unwrap();
        }
        Op::Edit(key, v) => db
            .edit_field(&curator, time, key, "v", Atom::Int(*v))
            .unwrap(),
        Op::Annotate(key) => db
            .annotate(key, Some("v"), &curator, "checked", time)
            .unwrap(),
        Op::Merge(kept, absorbed) => db.merge_entries(&curator, time, kept, absorbed).unwrap(),
        Op::Split(orig, a, b) => db
            .split_entry(
                &curator,
                time,
                orig,
                &[
                    (a, vec![("v", Atom::Int(1))]),
                    (b, vec![("v", Atom::Int(2))]),
                ],
            )
            .unwrap(),
        Op::Delete(key) => db.delete_entry(&curator, time, key).unwrap(),
        Op::Publish(label) => {
            db.publish(label.clone()).unwrap();
        }
    }
}

// ------------------------------------------------------------ checker

/// The identity of a transaction for prefix comparison.
fn ids(log: &[Transaction]) -> Vec<(u64, String, u64)> {
    log.iter()
        .map(|t| (t.id.0, t.curator.clone(), t.time))
        .collect()
}

/// Checks one observed snapshot against the final history (see module
/// docs). Returns an error message rather than panicking so proptest
/// cases report the failing seed.
fn check_snapshot(s: &Snapshot, final_ids: &[(u64, String, u64)]) -> Result<(), String> {
    let sids = ids(&s.curated.log);
    if sids.len() > final_ids.len() {
        return Err(format!(
            "snapshot log ({} txns) is longer than the final log ({})",
            sids.len(),
            final_ids.len()
        ));
    }
    if sids[..] != final_ids[..sids.len()] {
        return Err(format!(
            "snapshot log is not a prefix of the final log (epoch {})",
            s.epoch()
        ));
    }
    replay_and_verify(&s.curated).map_err(|e| format!("snapshot != replay of its log: {e}"))?;
    for key in s.entry_keys().map_err(|e| format!("entry_keys: {e}"))? {
        if !s.lifecycle.is_active(&key) {
            return Err(format!("entry {key} visible but its id is not active"));
        }
    }
    Ok(())
}

/// Cross-snapshot epoch coherence: one epoch ⇒ one log length, and the
/// epoch order never shrinks the log.
fn check_epochs<'a>(snaps: impl Iterator<Item = &'a Snapshot>) -> Result<(), String> {
    let mut by_epoch: BTreeMap<u64, usize> = BTreeMap::new();
    for s in snaps {
        let len = s.curated.log.len();
        let entry = by_epoch.entry(s.epoch()).or_insert(len);
        if *entry != len {
            return Err(format!(
                "epoch {} observed with log lengths {} and {len}",
                s.epoch(),
                *entry
            ));
        }
    }
    let mut prev = 0usize;
    for (epoch, len) in by_epoch {
        if len < prev {
            return Err(format!(
                "epoch {epoch} exposes a shorter log ({len} < {prev})"
            ));
        }
        prev = len;
    }
    Ok(())
}

// ---------------------------------------- deterministic interleavings

proptest! {
    /// 256 seeded histories of 4 writers × 4 readers under a
    /// deterministic scheduler: every snapshot any reader ever took is
    /// a committed prefix of the final log, replays to itself, and
    /// respects lifecycle retirement. Failures replay byte-for-byte
    /// from the case seed.
    #[test]
    fn seeded_scheduler_histories_are_snapshot_consistent(seed in 0u64..1_000_000) {
        const WRITERS: usize = 4;
        const READERS: usize = 4;
        let db = SharedDb::new("conc", "id");
        let mut rng = StdRng::seed_from_u64(seed);
        let scripts: Vec<Vec<Op>> =
            (0..WRITERS).map(|w| writer_script(&format!("w{w}"))).collect();
        let mut cursor = [0usize; WRITERS];
        let mut reader_state = [(0u64, 0usize); READERS];
        let mut observed: Vec<Snapshot> = Vec::new();

        while cursor.iter().zip(&scripts).any(|(c, s)| *c < s.len()) {
            let actor = rng.gen_range(0..WRITERS + READERS);
            if actor < WRITERS {
                let w = actor;
                if cursor[w] < scripts[w].len() {
                    apply_op(&db, w as u64, cursor[w] as u64, &scripts[w][cursor[w]]);
                    cursor[w] += 1;
                }
            } else {
                let r = actor - WRITERS;
                let snap = db.snapshot();
                let (prev_epoch, prev_len) = reader_state[r];
                prop_assert!(
                    snap.epoch() >= prev_epoch,
                    "reader {r} saw epoch go backwards: {} < {prev_epoch}",
                    snap.epoch()
                );
                prop_assert!(
                    snap.curated.log.len() >= prev_len,
                    "reader {r} saw the log shrink"
                );
                reader_state[r] = (snap.epoch(), snap.curated.log.len());
                observed.push(snap);
            }
        }

        let fin = db.snapshot();
        let final_ids = ids(&fin.curated.log);
        for snap in observed.iter().chain(std::iter::once(&fin)) {
            if let Err(msg) = check_snapshot(snap, &final_ids) {
                return Err(TestCaseError::fail(msg));
            }
        }
        if let Err(msg) = check_epochs(observed.iter().chain(std::iter::once(&fin))) {
            return Err(TestCaseError::fail(msg));
        }
    }
}

// ----------------------------------------------------- real threads

fn env_threads() -> Option<usize> {
    std::env::var("CDB_TEST_THREADS").ok()?.parse().ok()
}

/// N writer threads × M reader threads over one `SharedDb`; each
/// reader checks monotonicity inline (previous snapshot's log must be
/// a prefix of the next one's) and retains a sample of snapshots for
/// the full checker after the writers join.
fn real_thread_history(writers: usize, readers: usize, rounds: usize) {
    let db = SharedDb::new("conc-mt", "id");
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let reader_handles: Vec<_> = (0..readers)
        .map(|r| {
            let db = db.clone();
            let done = done.clone();
            thread::spawn(move || {
                let mut prev: Option<Snapshot> = None;
                let mut kept: Vec<Snapshot> = Vec::new();
                let mut samples = 0usize;
                while !done.load(std::sync::atomic::Ordering::Acquire) {
                    let snap = db.snapshot();
                    if let Some(p) = &prev {
                        assert!(
                            snap.epoch() >= p.epoch(),
                            "reader {r}: epoch went backwards"
                        );
                        let pids = ids(&p.curated.log);
                        let nids = ids(&snap.curated.log);
                        assert!(
                            pids.len() <= nids.len() && pids[..] == nids[..pids.len()],
                            "reader {r}: earlier snapshot is not a prefix of a later one"
                        );
                    }
                    samples += 1;
                    if samples.is_multiple_of(7) {
                        kept.push(snap.clone());
                    }
                    prev = Some(snap);
                    thread::yield_now();
                }
                kept.extend(prev);
                kept
            })
        })
        .collect();

    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let db = db.clone();
            thread::spawn(move || {
                for round in 0..rounds {
                    let script = writer_script(&format!("w{w}r{round}"));
                    for (step, op) in script.iter().enumerate() {
                        let time = (round * script.len() + step) as u64;
                        apply_op(&db, w as u64, time, op);
                    }
                }
            })
        })
        .collect();

    for h in writer_handles {
        h.join().unwrap();
    }
    done.store(true, std::sync::atomic::Ordering::Release);

    let fin = db.snapshot();
    let final_ids = ids(&fin.curated.log);
    // Each script round commits 10 transactions (4 adds, 3 edits,
    // merge, split, delete — annotate and publish are aux-only).
    assert_eq!(
        final_ids.len(),
        writers * rounds * 10,
        "missing transactions"
    );
    let mut all: Vec<Snapshot> = vec![fin];
    for h in reader_handles {
        all.extend(h.join().unwrap());
    }
    for snap in &all {
        if let Err(msg) = check_snapshot(snap, &final_ids) {
            panic!("real-thread history violated snapshot isolation: {msg}");
        }
    }
    check_epochs(all.iter()).unwrap_or_else(|msg| panic!("epoch coherence: {msg}"));
}

/// Real OS threads, writer count from `CDB_TEST_THREADS` (default 4) —
/// `scripts/check.sh` runs this under a 1/4/num_cpus matrix.
#[test]
fn real_thread_history_is_snapshot_consistent() {
    real_thread_history(env_threads().unwrap_or(4), 4, 2);
}

/// Stress target (not part of the default run):
///
/// ```text
/// cargo test --release --features stress --test concurrent_serving -- --ignored
/// ```
///
/// The `stress` feature arms `cdb-core`'s internal assertion that each
/// published epoch's log extends the previous epoch's (checked inside
/// the publish path itself, under the cache lock).
#[test]
#[ignore = "stress target: cargo test --release --features stress -- --ignored"]
fn stress_history_with_many_threads() {
    real_thread_history(8, 8, 6);
}

// ------------------------------------------- crash under concurrency

/// A fault-injected device shared between the `SharedDb` under test
/// and the checker (which photographs the durable image post-crash).
#[derive(Debug, Clone)]
struct SharedFaulty(Arc<Mutex<FaultyIo>>);

impl Io for SharedFaulty {
    fn len(&self) -> Result<u64, StorageError> {
        self.0.lock().unwrap().len()
    }
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        self.0.lock().unwrap().read_at(offset, buf)
    }
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.0.lock().unwrap().append(bytes)
    }
    fn flush(&mut self) -> Result<(), StorageError> {
        self.0.lock().unwrap().flush()
    }
    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        self.0.lock().unwrap().truncate(len)
    }
}

proptest! {
    /// Writers race over group commit on a faulty device; after the
    /// crash, recovery restores exactly a gap-free prefix of the
    /// append order — never a subset with holes — and on devices that
    /// never lie about a flush, every acknowledged commit survives.
    ///
    /// Fault classes: `fail_flush` (one sync errors, honestly — the
    /// next leader retries), `flush_cap` (partial flushes that report
    /// success — a lying disk), `torn_write_at` (a hard durability
    /// ceiling). `DurableLog::create` flushes the 8-byte WAL header
    /// first, so flush #1 is the header sync and the fault offsets
    /// below start past it.
    #[test]
    fn crash_mid_batch_recovers_an_acknowledged_prefix(
        writers in 1usize..5,
        per_writer in 1u64..6,
        window_us in 0u64..300,
        fault_sel in 0usize..3,
        fault_n in 0u64..24,
    ) {
        let plan = match fault_sel {
            0 => FaultPlan { fail_flush: Some(fault_n as u32 % 6 + 2), ..Default::default() },
            1 => FaultPlan { flush_cap: Some(32 + fault_n * 24), ..Default::default() },
            _ => FaultPlan { torn_write_at: Some(16 + fault_n * 16), ..Default::default() },
        };
        let honest = fault_sel == 0;
        let dev = SharedFaulty(Arc::new(Mutex::new(FaultyIo::new(plan))));
        let db = SharedDb::open(
            "crash",
            "id",
            Box::new(dev.clone()),
            cdb_storage::CheckpointStore::mem(),
            Duration::from_micros(window_us),
        )
        .map_err(|e| TestCaseError::fail(format!("open: {e}")))?;

        // Writers race; each records the commits that were ACKED (the
        // write returned Ok, i.e. a sync covering its frames claimed
        // success). Failed commits stay in memory and may or may not
        // reach disk — that's allowed either way.
        let acked = Arc::new(Mutex::new(Vec::<u64>::new()));
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let db = db.clone();
                let acked = acked.clone();
                thread::spawn(move || {
                    for i in 0..per_writer {
                        let time = (w as u64 + 1) * 1_000_000 + i;
                        let res = db.add_entry(
                            &format!("c{w}"),
                            time,
                            &format!("w{w}k{i}"),
                            &[("v", Atom::Int(time as i64))],
                        );
                        if res.is_ok() {
                            acked.lock().unwrap().push(time);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // Crash: photograph what actually reached durable storage and
        // recover from it into a fresh database.
        let fin = db.snapshot();
        let final_ids = ids(&fin.curated.log);
        let image = dev.0.lock().unwrap().durable_image();
        let reopened = CuratedDatabase::open(
            "crash",
            "id",
            Box::new(MemIo::from_bytes(image)),
            cdb_storage::CheckpointStore::mem(),
        )
        .map_err(|e| TestCaseError::fail(format!("recovery failed outright: {e}")))?;

        let rids = ids(&reopened.curated.log);
        prop_assert!(
            rids.len() <= final_ids.len(),
            "recovered more transactions than were ever appended"
        );
        prop_assert_eq!(
            &rids[..],
            &final_ids[..rids.len()],
            "recovered log is not a gap-free prefix of the append order"
        );
        if honest {
            let durable: BTreeSet<u64> =
                reopened.curated.log.iter().map(|t| t.time).collect();
            for t in acked.lock().unwrap().iter() {
                prop_assert!(
                    durable.contains(t),
                    "commit t={t} was acknowledged but lost by an honest device"
                );
            }
        }
    }
}

// --------------------------------------- satellite 1: replay oracle

proptest! {
    /// Differential test: every snapshot equals replaying the final
    /// curation log up to the snapshot's last transaction id
    /// ([`cdb_curation::replay::replay`] as the oracle).
    #[test]
    fn snapshot_state_equals_log_replay_to_its_txn_id(seed in 0u64..1_000_000) {
        let db = SharedDb::new("diff", "id");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut live: Vec<String> = Vec::new();
        let mut next_key = 0u64;
        let mut taken: Vec<Snapshot> = Vec::new();
        let steps = rng.gen_range(5..40);
        for step in 0..steps {
            let time = 1_000 + step as u64;
            match rng.gen_range(0..10) {
                0..=3 => {
                    let key = format!("k{next_key}");
                    next_key += 1;
                    db.add_entry("c", time, &key, &[("v", Atom::Int(time as i64))]).unwrap();
                    live.push(key);
                }
                4..=6 if !live.is_empty() => {
                    let key = &live[rng.gen_range(0..live.len())];
                    db.edit_field("c", time, key, "v", Atom::Int(step as i64)).unwrap();
                }
                7 if !live.is_empty() => {
                    let key = live.remove(rng.gen_range(0..live.len()));
                    db.delete_entry("c", time, &key).unwrap();
                }
                8 if !live.is_empty() => {
                    let key = &live[rng.gen_range(0..live.len())];
                    db.annotate(key, None, "c", "note", time).unwrap();
                }
                _ => {}
            }
            if rng.gen_range(0..3) == 0 {
                taken.push(db.snapshot());
            }
        }

        let fin = db.snapshot();
        let final_log = &fin.curated.log;
        for snap in taken.iter().chain(std::iter::once(&fin)) {
            // `upto: None` means "the whole log" to `replay`, so an
            // empty snapshot replays an empty slice instead.
            let oracle = match snap.curated.log.last().map(|t| t.id) {
                Some(upto) => cdb_curation::replay::replay("diff", final_log, Some(upto)),
                None => cdb_curation::replay::replay("diff", &[], None),
            }
            .map_err(|e| TestCaseError::fail(format!("oracle replay: {e}")))?;
            // The oracle tree and the snapshot tree must agree on every
            // live node (ids are stable across replay).
            for id in snap.curated.tree.live_nodes() {
                prop_assert!(oracle.is_alive(id), "node {id} in snapshot, not in oracle");
                prop_assert_eq!(
                    snap.curated.tree.value(id).unwrap(),
                    oracle.value(id).unwrap(),
                    "node {} differs from the replay oracle", id
                );
            }
            prop_assert_eq!(
                snap.curated.tree.size(),
                oracle.size(),
                "snapshot and oracle disagree on live-node count"
            );
        }
    }
}

// ----------------------------- satellite: over-the-wire histories
//
// The same seeded-scheduler discipline, but each actor is now a full
// network client: requests are encoded to frames, pushed through the
// deterministic in-memory transport, served by the production
// `cdb_server::Session` code (snapshot-pinned reads, group-committed
// writes), and the responses decoded back. The checkers then apply to
// what the *protocol* exposed: every pinned snapshot any session ever
// served from must be a committed prefix that replays to itself, the
// epochs carried inside `Value`/`Keys` responses must match the pins,
// and after a scripted crash the durable log must cover every commit
// any client was ever acknowledged — including when one client
// disconnects halfway through writing a request frame.

use cdb_server::admission::Admission;
use cdb_server::proto::{read_frame, write_frame, Request, Response, PROTOCOL_VERSION};
use cdb_server::session::{Session, Turn};
use cdb_server::transport::{mem_pair, MemTransport, Transport};

/// One scripted protocol request with its expected-success shape.
#[derive(Debug, Clone)]
enum WireOp {
    Write(Request),
    GetOwn(String, i64),
    Entries,
    Refresh,
    Epoch,
}

/// A client's script over namespace `ns`: adds, an edit, read-your-
/// writes probes, lifecycle ops, a refresh, and a publish.
fn wire_script(c: usize) -> Vec<WireOp> {
    let ns = format!("c{c}");
    let k = |n: usize| format!("{ns}k{n}");
    let curator = ns.clone();
    let time = |step: usize| (c as u64 + 1) * 100_000 + step as u64;
    let mut steps = Vec::new();
    for n in 0..3 {
        steps.push(WireOp::Write(Request::Add {
            curator: curator.clone(),
            time: time(n),
            key: k(n),
            fields: vec![("v".to_string(), Atom::Int(n as i64))],
        }));
    }
    steps.push(WireOp::Write(Request::Edit {
        curator: curator.clone(),
        time: time(3),
        key: k(0),
        field: "v".to_string(),
        value: Atom::Int(7),
    }));
    steps.push(WireOp::GetOwn(k(0), 7));
    steps.push(WireOp::Entries);
    steps.push(WireOp::Write(Request::Annotate {
        key: k(1),
        field: Some("v".to_string()),
        author: curator.clone(),
        text: "checked".to_string(),
        time: time(4),
    }));
    steps.push(WireOp::Write(Request::Merge {
        curator: curator.clone(),
        time: time(5),
        kept: k(0),
        absorbed: k(1),
    }));
    steps.push(WireOp::Write(Request::Delete {
        curator: curator.clone(),
        time: time(6),
        key: k(2),
    }));
    steps.push(WireOp::Refresh);
    steps.push(WireOp::Epoch);
    steps.push(WireOp::Write(Request::Publish {
        label: format!("{ns}-v1"),
    }));
    steps
}

/// One client session riding the deterministic transport.
struct WireClient {
    transport: MemTransport,
    session: Session<MemTransport>,
    script: Vec<WireOp>,
    cursor: usize,
    /// `time` of every write this client was ACKED (an Ok/Node/Version
    /// response arrived).
    acked: Vec<u64>,
    /// The last epoch any response exposed to this client.
    last_epoch: u64,
    alive: bool,
}

impl WireClient {
    fn exchange(&mut self, req: &Request) -> Result<Response, String> {
        write_frame(&mut self.transport, &req.encode()).map_err(|e| format!("send: {e}"))?;
        let turn = self.session.serve_one();
        if turn != Turn::Continue {
            return Err(format!("session closed on {req:?}"));
        }
        let payload = read_frame(&mut self.transport)
            .map_err(|e| format!("recv: {e}"))?
            .ok_or("server hung up mid-conversation")?;
        Response::decode(&payload).map_err(|e| format!("bad response frame: {e}"))
    }

    /// Runs one scripted step; records acks and response epochs, and
    /// cross-checks every exposed epoch against the session's actual
    /// pin (end-to-end epoch coherence).
    fn step(&mut self) -> Result<(), String> {
        let op = self.script[self.cursor].clone();
        self.cursor += 1;
        match op {
            WireOp::Write(req) => {
                // Only ops that append to the curation log are tracked
                // for the acked ⊆ recovered check (annotations and
                // publishes are aux structures with no log entry).
                let time = match &req {
                    Request::Add { time, .. }
                    | Request::Edit { time, .. }
                    | Request::Delete { time, .. }
                    | Request::Merge { time, .. } => Some(*time),
                    _ => None,
                };
                match self.exchange(&req)? {
                    Response::Ok | Response::Node { .. } | Response::Version { .. } => {
                        self.acked.extend(time);
                        Ok(())
                    }
                    other => Err(format!("write {req:?} answered {other:?}")),
                }
            }
            WireOp::GetOwn(key, expect) => match self.exchange(&Request::GetField {
                key: key.clone(),
                field: "v".to_string(),
            })? {
                Response::Value { epoch, value } => {
                    if value != Atom::Int(expect) {
                        return Err(format!(
                            "read-your-writes violated: {key} = {value:?}, wanted {expect}"
                        ));
                    }
                    self.note_epoch(epoch)
                }
                other => Err(format!("get {key} answered {other:?}")),
            },
            WireOp::Entries => match self.exchange(&Request::Entries)? {
                Response::Keys { epoch, .. } => self.note_epoch(epoch),
                other => Err(format!("entries answered {other:?}")),
            },
            WireOp::Refresh => match self.exchange(&Request::Refresh)? {
                Response::Epoch { epoch } => self.note_epoch(epoch),
                other => Err(format!("refresh answered {other:?}")),
            },
            WireOp::Epoch => match self.exchange(&Request::Epoch)? {
                Response::Epoch { epoch } => self.note_epoch(epoch),
                other => Err(format!("epoch answered {other:?}")),
            },
        }
    }

    fn note_epoch(&mut self, epoch: u64) -> Result<(), String> {
        let pin = self.session.pinned().epoch();
        if epoch != pin {
            return Err(format!(
                "response epoch {epoch} disagrees with the session pin {pin}"
            ));
        }
        if epoch < self.last_epoch {
            return Err(format!(
                "client-visible epoch went backwards: {epoch} < {}",
                self.last_epoch
            ));
        }
        self.last_epoch = epoch;
        Ok(())
    }
}

proptest! {
    /// 256 seeded multi-client histories through the in-memory
    /// transport against a durable database (group window zero):
    /// committed-prefix, replay-oracle, and epoch-coherence hold end
    /// to end, one client disconnects in the middle of writing a
    /// frame, and after a crash the recovered log covers every ack
    /// any client received (acked ⊆ recovered).
    #[test]
    fn over_the_wire_histories_are_linearizable(seed in 0u64..1_000_000) {
        const CLIENTS: usize = 3;
        let dev = SharedFaulty(Arc::new(Mutex::new(FaultyIo::new(FaultPlan::default()))));
        let db = SharedDb::open(
            "wire",
            "id",
            Box::new(dev.clone()),
            cdb_storage::CheckpointStore::mem(),
            Duration::ZERO,
        )
        .map_err(|e| TestCaseError::fail(format!("open: {e}")))?;
        let admission = Admission::new(CLIENTS + 1, 1, db.metrics());
        let mut rng = StdRng::seed_from_u64(seed);

        let mut clients: Vec<WireClient> = (0..CLIENTS)
            .map(|c| {
                let (transport, server_end) = mem_pair();
                let mut wc = WireClient {
                    transport,
                    session: Session::new(server_end, db.clone(), admission.clone()),
                    script: wire_script(c),
                    cursor: 0,
                    acked: Vec::new(),
                    last_epoch: 0,
                    alive: true,
                };
                let hello = wc
                    .exchange(&Request::Hello {
                        version: PROTOCOL_VERSION,
                        client: format!("c{c}"),
                    })
                    .expect("hello");
                assert!(matches!(hello, Response::Hello { .. }));
                wc
            })
            .collect();

        // One client is doomed: after a seed-chosen number of steps it
        // will disconnect midway through writing its next frame.
        let doomed = rng.gen_range(0..CLIENTS);
        let doom_at = rng.gen_range(0..clients[doomed].script.len());

        let mut observed: Vec<Snapshot> = Vec::new();
        loop {
            let runnable: Vec<usize> = clients
                .iter()
                .enumerate()
                .filter(|(_, c)| c.alive && c.cursor < c.script.len())
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                break;
            }
            let pick = runnable[rng.gen_range(0..runnable.len())];
            let wc = &mut clients[pick];
            if pick == doomed && wc.cursor == doom_at {
                // Write a strict prefix of a valid Add frame, then
                // hang up: the torn request must not be applied.
                let payload = Request::Add {
                    curator: "doomed".to_string(),
                    time: 999_999,
                    key: "torn-key".to_string(),
                    fields: vec![("v".to_string(), Atom::Int(13))],
                }
                .encode();
                let mut frame = Vec::new();
                frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                frame.extend_from_slice(&payload);
                let cut = rng.gen_range(1..frame.len());
                wc.transport
                    .write_all(&frame[..cut])
                    .map_err(|e| TestCaseError::fail(format!("partial write: {e}")))?;
                wc.transport.shutdown_write();
                let turn = wc.session.serve_one();
                prop_assert_eq!(turn, Turn::Closed, "torn frame must close the session");
                wc.alive = false;
            } else {
                wc.step().map_err(TestCaseError::fail)?;
            }
            observed.push(
                clients[pick]
                    .session
                    .pinned()
                    .as_single()
                    .expect("single-db harness")
                    .clone(),
            );
        }

        // The torn request never reached the database.
        let fin = db.snapshot();
        prop_assert!(
            !fin.entry_keys().unwrap().contains(&"torn-key".to_string()),
            "a torn frame was half-applied"
        );

        // Snapshot checkers over every pinned view any session served.
        let final_ids = ids(&fin.curated.log);
        for snap in observed.iter().chain(std::iter::once(&fin)) {
            if let Err(msg) = check_snapshot(snap, &final_ids) {
                return Err(TestCaseError::fail(msg));
            }
        }
        if let Err(msg) = check_epochs(observed.iter().chain(std::iter::once(&fin))) {
            return Err(TestCaseError::fail(msg));
        }

        // Crash: every ack any client (including the doomed one, for
        // its pre-disconnect writes) ever saw must be recovered.
        let image = dev.0.lock().unwrap().durable_image();
        let reopened = CuratedDatabase::open(
            "wire",
            "id",
            Box::new(MemIo::from_bytes(image)),
            cdb_storage::CheckpointStore::mem(),
        )
        .map_err(|e| TestCaseError::fail(format!("recovery: {e}")))?;
        let rids = ids(&reopened.curated.log);
        prop_assert_eq!(
            &rids[..],
            &final_ids[..rids.len()],
            "recovered log is not a prefix of the served history"
        );
        let durable: BTreeSet<u64> = reopened.curated.log.iter().map(|t| t.time).collect();
        for wc in &clients {
            for t in &wc.acked {
                prop_assert!(
                    durable.contains(t),
                    "acked commit t={t} lost across sessions (acked ⊄ recovered)"
                );
            }
        }
    }
}
