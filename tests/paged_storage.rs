//! Differential harness for the paged storage layer: the page heap +
//! buffer pool must be *byte-equivalent* to the resident state across
//! random curation workloads, eviction schedules (tiny pools churn the
//! clock constantly), crash offsets, and recovery — the headline test
//! of the larger-than-memory milestone.
//!
//! Two proptest properties × 256 cases each (PROPTEST_CASES
//! overrides), plus directed smokes:
//!
//! * `paged_store_is_byte_equivalent_to_resident` — storage-level:
//!   random sessions recaptured transaction-by-transaction into a
//!   `PagedState` (so the heap accumulates superseded page versions
//!   and stranded chunk tails), then every object read, path
//!   resolution, subtree fold, and full materialization must equal the
//!   resident `TreeDb`/`ProvStore` exactly — hot cache and cold
//!   reopen alike, at pool sizes {2, 8, 64}.
//! * `paged_database_matches_classic_and_recovery` — database-level:
//!   the same scripted session driven through a classic
//!   `CuratedDatabase` and a paged one (page-granular checkpoints)
//!   must produce identical WAL bytes, identical live state and query
//!   results, and — after a crash cut at an arbitrary WAL byte offset
//!   — identical recovery outcomes, whether or not the surviving log
//!   still covers the paged anchor.
//!
//! The pool size respects `CDB_TEST_POOL_PAGES` so the check.sh
//! small-pool matrix leg squeezes every test through a 4-frame pool.

use std::sync::{Arc, Mutex};

use cdb_core::CuratedDatabase;
use cdb_curation::ops::CuratedTree;
use cdb_curation::provstore::StoreMode;
use cdb_curation::replay::apply_committed;
use cdb_curation::wire;
use cdb_model::Atom;
use cdb_obs::Metrics;
use cdb_storage::{
    pool_pages_from_env, CheckpointStore, FaultPlan, FaultyIo, Io, MemIo, PagedState, StorageError,
    KIND_NODE,
};
use cdb_workload::sessions::{CurationSim, SessionConfig};
use proptest::prelude::*;

fn session(seed: u64, mode: StoreMode, txns: usize, pastes: usize, edits: usize) -> CuratedTree {
    let mut sim = CurationSim::new(
        seed,
        mode,
        SessionConfig {
            source_entries: 3,
            fields_per_entry: 2,
            transactions: txns,
            pastes_per_txn: pastes,
            edits_per_txn: edits,
            inserts_per_txn: 1,
        },
    );
    sim.run();
    sim.target
}

fn mode_of(naive: bool) -> StoreMode {
    if naive {
        StoreMode::Naive
    } else {
        StoreMode::Hereditary
    }
}

/// Live preorder of the resident tree, computed through the wire codec
/// (decode of encode) — the same node representation the paged store
/// serves, so the comparison isolates the heap/pool/chunking layer.
fn resident_preorder(tree: &cdb_curation::TreeDb) -> Vec<(String, Option<Atom>)> {
    let nodes: Vec<wire::PagedNode> = (0..wire::arena_len(tree))
        .map(|i| wire::decode_tree_node(&wire::encode_tree_node(tree, i).unwrap()).unwrap())
        .collect();
    let mut out = Vec::new();
    let mut stack = vec![tree.root().index()];
    while let Some(i) = stack.pop() {
        let node = &nodes[i];
        if !node.alive {
            continue;
        }
        out.push((node.label.clone(), node.value.clone()));
        for c in node.children.iter().rev() {
            stack.push(*c as usize);
        }
    }
    out
}

proptest! {
    /// Storage-level byte equivalence under eviction churn: every
    /// object read from the paged store — through a pool far smaller
    /// than the working set — equals the resident encoding, and full
    /// materialization reproduces the resident `TreeDb` and
    /// `ProvStore` exactly, before and after a cold reopen.
    #[test]
    fn paged_store_is_byte_equivalent_to_resident(
        seed in 0u64..1_000_000,
        naive in any::<bool>(),
        txns in 1usize..6,
        pastes in 0usize..3,
        edits in 0usize..3,
        pool_sel in 0usize..3,
    ) {
        let mode = mode_of(naive);
        let db = session(seed, mode, txns, pastes, edits);
        let pool = pool_pages_from_env([2usize, 8, 64][pool_sel]);
        let metrics = Metrics::new();
        let mut state = PagedState::open(MemIo::new(), pool, None, &metrics).unwrap();

        // Recapture every node after every transaction: the heap
        // accumulates superseded page versions and stranded tails,
        // newest-wins must still hold for each object.
        let mut r = CuratedTree::new(db.tree.name(), mode);
        for txn in &db.log {
            apply_committed(&mut r, txn).unwrap();
            for i in 0..wire::arena_len(&r.tree) {
                state.capture_node(&r.tree, i).unwrap();
                state.capture_prov(&r.prov, i).unwrap();
            }
        }
        state.flush().unwrap();

        let arena = wire::arena_len(&db.tree);
        let root = db.tree.root().index() as u64;
        for i in 0..arena {
            // Byte-for-byte object equivalence, tombstones included.
            prop_assert_eq!(
                state.get_object(KIND_NODE, i as u64).unwrap(),
                wire::encode_tree_node(&db.tree, i),
                "node object {} diverged", i
            );
            let prov = state.node_prov(i as u64).unwrap();
            prop_assert_eq!(
                prov.as_slice(),
                wire::direct_prov_records(&db.prov, i),
                "prov records of node {} diverged", i
            );
        }
        let mt = state.materialize_tree(db.tree.name(), root, arena as u64).unwrap();
        prop_assert_eq!(&mt, &db.tree);
        let mp = state.materialize_prov(mode, arena as u64).unwrap();
        prop_assert_eq!(&mp, &db.prov);

        // Pool invariants: never more resident frames than capacity,
        // and a working set past the pool must actually evict.
        prop_assert!(state.pool_mut().resident() <= pool);
        let stats = state.stats();
        prop_assert!(stats.hits + stats.misses > 0);
        if arena > pool {
            prop_assert!(stats.evictions > 0, "no evictions with {} objects in {} frames", arena, pool);
        }

        // Cold reopen from the durable device at the flushed
        // watermark: same answers with an empty cache.
        let heap_len = state.heap_len();
        let io = state.into_store().into_io();
        let mut re = PagedState::open(io, pool, Some(heap_len), &metrics).unwrap();
        let mt = re.materialize_tree(db.tree.name(), root, arena as u64).unwrap();
        prop_assert_eq!(&mt, &db.tree);
        prop_assert_eq!(re.subtree_atoms(root).unwrap(), resident_preorder(&db.tree));

        // Path resolution through node pages agrees with the resident
        // child order (first live match per label, depth 2).
        let root_node = re.node(root).unwrap().unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for c in &root_node.children {
            let child = re.node(*c).unwrap().unwrap();
            if !child.alive || !seen.insert(child.label.clone()) {
                continue;
            }
            prop_assert_eq!(
                re.resolve_path(root, &child.label).unwrap(),
                Some(*c),
                "path /{} resolved to the wrong node", child.label
            );
        }
    }
}

// ------------------------------------------ database-level differential

/// A shared fault-injectable device: the database owns one handle, the
/// checker keeps another to photograph the durable image post-crash.
#[derive(Debug, Clone)]
struct SharedDev(Arc<Mutex<FaultyIo>>);

impl SharedDev {
    fn new() -> Self {
        SharedDev(Arc::new(Mutex::new(FaultyIo::new(FaultPlan::default()))))
    }
    fn durable(&self) -> Vec<u8> {
        self.0.lock().unwrap().durable_image()
    }
}

impl Io for SharedDev {
    fn len(&self) -> Result<u64, StorageError> {
        self.0.lock().unwrap().len()
    }
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        self.0.lock().unwrap().read_at(offset, buf)
    }
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.0.lock().unwrap().append(bytes)
    }
    fn flush(&mut self) -> Result<(), StorageError> {
        self.0.lock().unwrap().flush()
    }
    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        self.0.lock().unwrap().truncate(len)
    }
}

fn lcg(r: &mut u64) -> u64 {
    *r = r
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *r >> 33
}

/// Drives a deterministic scripted session: adds, edits, deletes, and
/// publishes, with a checkpoint every `ckpt_every` steps. Identical
/// seeds produce byte-identical WALs on any database.
fn drive(db: &mut CuratedDatabase, seed: u64, ops: usize, ckpt_every: usize) {
    let mut r = seed | 1;
    let mut keys: Vec<String> = Vec::new();
    for i in 0..ops {
        let t = (i + 1) as u64;
        let sel = if i == 0 { 0 } else { lcg(&mut r) % 10 };
        match sel {
            0..=3 => {
                let key = format!("k{i}");
                let f = Atom::Int((lcg(&mut r) % 100) as i64);
                let g = Atom::Str(format!("v{}", lcg(&mut r) % 50));
                db.add_entry("curator", t, &key, &[("f", f), ("g", g)])
                    .unwrap();
                keys.push(key);
            }
            4..=6 if !keys.is_empty() => {
                let k = keys[lcg(&mut r) as usize % keys.len()].clone();
                let v = Atom::Int((lcg(&mut r) % 100) as i64);
                db.edit_field("curator", t, &k, "f", v).unwrap();
            }
            7 if !keys.is_empty() => {
                let k = keys.remove(lcg(&mut r) as usize % keys.len());
                db.delete_entry("curator", t, &k).unwrap();
            }
            8 => {
                db.publish(format!("v{i}")).unwrap();
            }
            _ => {}
        }
        if (i + 1) % ckpt_every == 0 {
            db.checkpoint().unwrap();
        }
    }
}

proptest! {
    /// Database-level differential: the same scripted session through
    /// a classic database and a paged one yields identical WAL bytes,
    /// identical live state and queries, and identical recovery
    /// outcomes after a crash cut at an arbitrary WAL byte offset.
    #[test]
    fn paged_database_matches_classic_and_recovery(
        seed in 0u64..1_000_000,
        ops in 4usize..16,
        ckpt_every in 1usize..5,
        pool in 2usize..9,
        cut_sel in 0usize..100_000,
    ) {
        let pool = pool_pages_from_env(pool);
        let wal_a = SharedDev::new();
        let mut classic = CuratedDatabase::open(
            "diff",
            "id",
            Box::new(wal_a.clone()),
            CheckpointStore::mem(),
        )
        .unwrap();

        let wal_b = SharedDev::new();
        let heap = SharedDev::new();
        let (s1, s2) = (SharedDev::new(), SharedDev::new());
        let mut paged = CuratedDatabase::open_paged(
            "diff",
            "id",
            Box::new(wal_b.clone()),
            CheckpointStore::slots(Box::new(s1.clone()), Box::new(s2.clone())),
            Box::new(heap.clone()),
            pool,
        )
        .unwrap();
        prop_assert!(paged.is_paged());
        prop_assert!(!classic.is_paged());

        drive(&mut classic, seed, ops, ckpt_every);
        drive(&mut paged, seed, ops, ckpt_every);

        // Identical live state, queries, and provenance annotations.
        prop_assert_eq!(&classic.curated, &paged.curated);
        prop_assert_eq!(classic.export().unwrap(), paged.export().unwrap());
        prop_assert_eq!(classic.entry_keys().unwrap(), paged.entry_keys().unwrap());
        prop_assert_eq!(
            classic.archive().version_count(),
            paged.archive().version_count()
        );

        // The paged pool actually served the checkpoint captures, and
        // its counters surfaced through the metrics registry.
        let stats = paged.paged_stats().unwrap();
        prop_assert!(stats.hits + stats.misses > 0);
        let snap = paged.metrics_snapshot();
        prop_assert!(snap.counters.contains_key("storage.buffer.miss"));

        // The WAL protocol is untouched by paging: byte-identical logs.
        drop(classic);
        drop(paged);
        let img_a = wal_a.durable();
        let img_b = wal_b.durable();
        prop_assert_eq!(&img_a, &img_b, "paged database diverged on the WAL");

        // Crash at an arbitrary byte offset: both recoveries land on
        // the same state, whether the surviving log still covers the
        // paged anchor (page-granular load + tail replay) or not
        // (anchor discarded, full replay).
        let cut = 8 + cut_sel % (img_b.len() - 7);
        let re_classic = CuratedDatabase::open(
            "diff",
            "id",
            Box::new(MemIo::from_bytes(img_a[..cut].to_vec())),
            CheckpointStore::mem(),
        )
        .unwrap();
        let re_paged = CuratedDatabase::open_paged(
            "diff",
            "id",
            Box::new(MemIo::from_bytes(img_b[..cut].to_vec())),
            CheckpointStore::slots(
                Box::new(MemIo::from_bytes(s1.durable())),
                Box::new(MemIo::from_bytes(s2.durable())),
            ),
            Box::new(MemIo::from_bytes(heap.durable())),
            pool,
        )
        .unwrap();
        prop_assert_eq!(&re_classic.curated, &re_paged.curated, "recovery outcomes diverged at cut {}", cut);
        prop_assert_eq!(re_classic.export().unwrap(), re_paged.export().unwrap());
        prop_assert_eq!(
            re_classic.entry_keys().unwrap(),
            re_paged.entry_keys().unwrap()
        );
    }
}

/// The shared serving layer rides the same machinery: a paged
/// `SharedDb` checkpoints page-granularly and reopens to the same
/// state.
#[test]
fn shared_db_opens_and_recovers_paged() {
    use cdb_core::SharedDb;
    use std::time::Duration;

    let wal = SharedDev::new();
    let heap = SharedDev::new();
    let (s1, s2) = (SharedDev::new(), SharedDev::new());
    let db = SharedDb::open_paged(
        "shared-paged",
        "id",
        Box::new(wal.clone()),
        CheckpointStore::slots(Box::new(s1.clone()), Box::new(s2.clone())),
        Box::new(heap.clone()),
        pool_pages_from_env(4),
        Duration::from_millis(0),
    )
    .unwrap();
    for i in 0..6 {
        db.add_entry(
            "curator",
            i + 1,
            &format!("k{i}"),
            &[("f", Atom::Int(i as i64))],
        )
        .unwrap();
    }
    db.checkpoint().unwrap();
    db.add_entry("curator", 7, "tail", &[("f", Atom::Int(7))])
        .unwrap();
    let before = db.snapshot().export().unwrap();
    drop(db);

    let re = SharedDb::open_paged(
        "shared-paged",
        "id",
        Box::new(MemIo::from_bytes(wal.durable())),
        CheckpointStore::slots(
            Box::new(MemIo::from_bytes(s1.durable())),
            Box::new(MemIo::from_bytes(s2.durable())),
        ),
        Box::new(MemIo::from_bytes(heap.durable())),
        pool_pages_from_env(4),
        Duration::from_millis(0),
    )
    .unwrap();
    assert_eq!(re.snapshot().export().unwrap(), before);
}
