//! Integration tests regenerating every worked example in the paper —
//! the executable versions of EXPERIMENTS.md entries E1–E5 and E11.
//! Every exact-output check with a relational plan runs through both
//! physical engines (nested-loop reference and hash joins, sequential
//! and partitioned — see [`engine_configs`]).

use std::collections::BTreeMap;

use curated_db::annotation::colored::{
    eval_colored, eval_colored_with, ColoredDatabase, ColoredRelation, ColoredTuple, Scheme,
};
use curated_db::annotation::nested::{check_copying, check_kind_preservation, ColoredTable};
use curated_db::curation::update_lang::{figure3_query, sql_delete, sql_insert, sql_update};
use curated_db::relalg::eval::paper_q;
use curated_db::relalg::{ExecConfig, Pred, ProjItem, Schema};
use curated_db::semiring::eval::{eval_k, eval_k_with, figure4_database, figure4_query};
use curated_db::semiring::hom::{poly_to_nat, poly_to_why, why_to_minwhy};
use curated_db::semiring::{Nat, Polynomial};
use curated_db::Atom;

fn int(i: i64) -> Atom {
    Atom::Int(i)
}

/// The physical-engine configurations every exact-output check also runs
/// under: sequential hash joins and a forced 4-way partitioned probe.
/// (E2 and E3 exercise the *nested* annotation model, which has no
/// relational plan, so they have no engine dimension.)
fn engine_configs() -> Vec<ExecConfig> {
    let mut partitioned = ExecConfig::with_partitions(4);
    partitioned.parallel_threshold = 1;
    vec![ExecConfig::sequential(), partitioned]
}

/// E1 — the §2.1 Q1/Q2 tables, exactly as printed.
#[test]
fn e1_q1_q2_annotated_tables() {
    let r = ColoredRelation::from_tuples(
        Schema::new(["A", "B"]).unwrap(),
        [
            ColoredTuple::with_colors(vec![int(10), int(49)], vec!["b1", "b2"]),
            ColoredTuple::with_colors(vec![int(12), int(50)], vec!["b3", "b4"]),
        ],
    )
    .unwrap();
    let s = ColoredRelation::from_tuples(
        Schema::new(["A", "B"]).unwrap(),
        [
            ColoredTuple::with_colors(vec![int(11), int(49)], vec!["b5", "b6"]),
            ColoredTuple::with_colors(vec![int(12), int(50)], vec!["b7", "b8"]),
        ],
    )
    .unwrap();
    let db = ColoredDatabase::new().with("R", r).with("S", s);
    let q1 = paper_q(vec![ProjItem::col("R.A", "A"), ProjItem::col("R.B", "B")]);
    let q2 = paper_q(vec![ProjItem::col("S.A", "A"), ProjItem::constant(50, "B")]);

    let o1 = eval_colored(&db, &q1, &Scheme::Default).unwrap();
    let o2 = eval_colored(&db, &q2, &Scheme::Default).unwrap();
    // The paper's printed outputs: Q1 → 12♭3 50♭4; Q2 → 12♭7 50⊥.
    assert_eq!(format!("{o1}"), "(A, B)\n  12b3 | 50b4\n");
    assert_eq!(format!("{o2}"), "(A, B)\n  12b7 | 50⊥\n");

    // The hash-join engine prints the same tables, sequentially and
    // partitioned.
    for cfg in engine_configs() {
        let h1 = eval_colored_with(&db, &q1, &Scheme::Default, &cfg).unwrap();
        let h2 = eval_colored_with(&db, &q2, &Scheme::Default, &cfg).unwrap();
        assert_eq!(format!("{h1}"), "(A, B)\n  12b3 | 50b4\n");
        assert_eq!(format!("{h2}"), "(A, B)\n  12b7 | 50⊥\n");
    }
}

/// E2 — Figure 2's provenance annotation under σ and π.
#[test]
fn e2_figure2_provenance_annotation() {
    let table = ColoredTable::figure2_style(
        Schema::new(["A", "B"]).unwrap(),
        &[vec![int(10), int(50)], vec![int(12), int(50)]],
    );
    // R: tuples colored t1/t2, cells b1..b4, table "tab".
    assert_eq!(
        table.table.to_string(),
        "{(A: 10^b1, B: 50^b2)^t1, (A: 12^b3, B: 50^b4)^t2}^tab"
    );
    let sel = table.select(&Pred::col_eq_const("A", 10)).unwrap();
    assert_eq!(sel.table.to_string(), "{(A: 10^b1, B: 50^b2)^t1}^⊥");
    let proj = table.project(&["B"]).unwrap();
    assert_eq!(proj.table.to_string(), "{(B: 50^b2)^⊥, (B: 50^b4)^⊥}^⊥");
    // Both queries satisfy the copying condition of §2.3.
    check_copying(&table.table, &sel.table).unwrap();
    check_copying(&table.table, &proj.table).unwrap();
}

/// E3 — Figure 3's three programs: same result, different provenance.
#[test]
fn e3_figure3_updates_and_provenance() {
    let r = ColoredTable::figure2_style(
        Schema::new(["A", "B"]).unwrap(),
        &[vec![int(10), int(49)], vec![int(12), int(50)]],
    );
    let p1 = figure3_query(&r).unwrap();
    let p2 = sql_insert(
        &sql_delete(&r, &Pred::col_eq_const("A", 10)).unwrap(),
        vec![int(10), int(55)],
    )
    .unwrap();
    let p3 = sql_update(&r, &[("B", int(55))], &Pred::col_eq_const("A", 10)).unwrap();

    // "Although they all have the same 'result'…"
    assert_eq!(p1.table.strip(), p2.table.strip());
    assert_eq!(p2.table.strip(), p3.table.strip());

    // "…the way they carry provenance is different."
    assert_eq!(p1.table.color, None, "query constructs a fresh table");
    assert_eq!(p2.table.color.as_deref(), Some("tab"));
    assert_eq!(p3.table.color.as_deref(), Some("tab"));

    // P1 is copying; P2 and P3 are only kind-preserving.
    check_copying(&r.table, &p1.table).unwrap();
    assert!(check_copying(&r.table, &p2.table).is_err());
    assert!(check_copying(&r.table, &p3.table).is_err());
    check_kind_preservation(&r.table, &p2.table).unwrap();
    check_kind_preservation(&r.table, &p3.table).unwrap();

    // P3 keeps the updated tuple's color; P2 invents its tuple.
    assert_eq!(
        p3.table.to_string(),
        "{(A: 10^b1, B: 55^⊥)^t1, (A: 12^b3, B: 50^b4)^t2}^tab"
    );
    assert_eq!(
        p2.table.to_string(),
        "{(A: 12^b3, B: 50^b4)^t2, (A: 10^⊥, B: 55^⊥)^⊥}^tab"
    );
}

/// E4 — Figure 4's semiring provenance polynomials, with the printed
/// forms, plus the specialization chain.
#[test]
fn e4_figure4_semiring_provenance() {
    let s = |x: &str| Atom::Str(x.into());
    let db = figure4_database(|v| Polynomial::var(v));
    let v = eval_k(&db, &figure4_query()).unwrap();
    assert_eq!(v.len(), 5);
    // Both physical engine configurations derive the same polynomials.
    for cfg in engine_configs() {
        assert_eq!(v, eval_k_with(&db, &figure4_query(), &cfg).unwrap());
    }
    let poly = |x: &str, z: &str| v.annotation(&vec![s(x), s(z)]);
    // Figure 4's polynomials (· is commutative, so r·p prints p·r).
    assert_eq!(poly("a", "c").to_string(), "p + p·p");
    assert_eq!(poly("a", "e").to_string(), "p·r");
    assert_eq!(poly("d", "c").to_string(), "p·r");
    assert_eq!(poly("d", "e").to_string(), "r + r·r + r·s");
    assert_eq!(poly("f", "e").to_string(), "s + r·s + s·s");

    // Specializations: why-provenance keeps alternative witnesses,
    // minimal-why drops non-minimal ones, bag counts derivations.
    let de = poly("d", "e");
    assert_eq!(poly_to_why(&de).to_string(), "{{r}, {r,s}}");
    assert_eq!(why_to_minwhy(&poly_to_why(&de)).to_string(), "r");
    assert_eq!(poly_to_nat(&de), Nat(3));
}

/// The SQL front end runs the paper's statements verbatim (Figure 3's
/// program texts) against a plain database.
#[test]
fn figure3_sql_texts_execute() {
    use curated_db::relalg::sql::execute;
    use curated_db::relalg::{Database, Relation};
    let base = Database::new().with(
        "R",
        Relation::table(["A", "B"], [vec![int(10), int(49)], vec![int(12), int(50)]]).unwrap(),
    );
    let expected: std::collections::BTreeSet<Vec<Atom>> =
        [vec![int(10), int(55)], vec![int(12), int(50)]]
            .into_iter()
            .collect();

    let mut db1 = base.clone();
    let out = execute(
        &mut db1,
        "SELECT R.A, 55 AS B FROM R WHERE A = 10 UNION SELECT * FROM R WHERE A <> 10",
    )
    .unwrap();
    assert_eq!(out.tuple_set(), expected);

    let mut db2 = base.clone();
    execute(&mut db2, "DELETE FROM R WHERE A = 10").unwrap();
    execute(&mut db2, "INSERT INTO R VALUES (10, 55)").unwrap();
    assert_eq!(db2.get("R").unwrap().tuple_set(), expected);

    let mut db3 = base.clone();
    execute(&mut db3, "UPDATE R WHERE A = 10; SET B = 55").unwrap();
    assert_eq!(db3.get("R").unwrap().tuple_set(), expected);
}

/// E5 — §2.2: reverse propagation. On a join+projection view the
/// general search finds the unique side-effect-free placement by
/// forward-probing every candidate source cell, the key-preserving
/// fast path finds the same placement in a single evaluation, and the
/// placement verifies forward identically on both physical engines.
#[test]
fn e5_reverse_propagation_placements() {
    use curated_db::annotation::reverse::{find_placement_key_preserving, find_placements, Target};
    use curated_db::relalg::eval::eval;
    use curated_db::relalg::{eval_hash, Database, RaExpr, Relation};

    let db = Database::new()
        .with(
            "R",
            Relation::table(["A", "B"], [vec![int(1), int(10)], vec![int(2), int(20)]]).unwrap(),
        )
        .with(
            "S",
            Relation::table(
                ["B", "C"],
                [vec![int(10), int(100)], vec![int(20), int(100)]],
            )
            .unwrap(),
        );
    // The key-preserving view π_{A,C}(R ⋈ S) — R's key A survives.
    let q = RaExpr::scan("R")
        .natural_join(RaExpr::scan("S"))
        .project(vec![ProjItem::col("A", "A"), ProjItem::col("C", "C")]);

    // The view itself, exactly, on every engine.
    let expected =
        Relation::table(["A", "C"], [vec![int(1), int(100)], vec![int(2), int(100)]]).unwrap();
    assert_eq!(eval(&db, &q).unwrap(), expected);
    for cfg in engine_configs() {
        assert_eq!(eval_hash(&db, &q, &cfg).unwrap(), expected);
    }

    let target = Target {
        tuple: vec![int(1), int(100)],
        attr: "A".into(),
    };
    let (slow, slow_stats) = find_placements(&db, &q, &target).unwrap();
    assert_eq!(slow.len(), 1, "the placement is unique");
    assert_eq!(slow[0].relation, "R");
    assert_eq!(slow[0].tuple, vec![int(1), int(10)]);
    assert_eq!(slow[0].attr, "A");

    let (fast, fast_stats) = find_placement_key_preserving(&db, &q, "R", &["A"], &target).unwrap();
    assert_eq!(fast.as_ref(), Some(&slow[0]));
    // E5's complexity split: one forward evaluation for the
    // key-preserving path vs one per candidate source cell (2 relations
    // × 2 tuples × 2 attrs = 8) for the general search.
    assert_eq!(fast_stats.evaluations, 1);
    assert_eq!(slow_stats.candidates_tested, 8);
    assert_eq!(slow_stats.evaluations, 8);

    // Forward verification on both engines: a probe color on R(1,10).A
    // lands exactly on the target cell and nowhere else.
    let mut probed = ColoredTuple::plain(vec![int(1), int(10)]);
    probed.colors[0].insert("probe".to_string());
    let cdb = ColoredDatabase::new()
        .with(
            "R",
            ColoredRelation::from_tuples(
                Schema::new(["A", "B"]).unwrap(),
                [probed, ColoredTuple::plain(vec![int(2), int(20)])],
            )
            .unwrap(),
        )
        .with(
            "S",
            ColoredRelation::from_tuples(
                Schema::new(["B", "C"]).unwrap(),
                [
                    ColoredTuple::plain(vec![int(10), int(100)]),
                    ColoredTuple::plain(vec![int(20), int(100)]),
                ],
            )
            .unwrap(),
        );
    let landing = vec![(vec![int(1), int(100)], "A".to_string())];
    assert_eq!(
        eval_colored(&cdb, &q, &Scheme::Default)
            .unwrap()
            .occurrences("probe"),
        landing
    );
    for cfg in engine_configs() {
        assert_eq!(
            eval_colored_with(&cdb, &q, &Scheme::Default, &cfg)
                .unwrap()
                .occurrences("probe"),
            landing
        );
    }
}

/// E11 — §2.1: block annotations (MONDRIAN). A color-algebra query
/// equals a positive-RA query over the explicit representation
/// (indicator columns + color column) — the form in which \[40, 41\]
/// state expressive completeness — and that RA query runs identically
/// on both physical engines.
#[test]
fn e11_block_annotations_equal_ra_over_explicit() {
    use curated_db::annotation::blocks::{Block, BlockRelation, BlockTuple};
    use curated_db::relalg::eval::eval;
    use curated_db::relalg::{eval_hash, Database, RaExpr};

    let s = |x: &str| Atom::Str(x.into());
    let genes = BlockRelation::from_tuples(
        Schema::new(["gene", "organism"]).unwrap(),
        [
            BlockTuple {
                values: vec![s("adh1"), s("yeast")],
                blocks: vec![
                    Block::new(["gene"], "verified"),
                    Block::new(["gene", "organism"], "curated"),
                ],
            },
            BlockTuple {
                values: vec![s("adh2"), s("yeast")],
                blocks: vec![Block::new(["organism"], "verified")],
            },
            BlockTuple {
                values: vec![s("gpd1"), s("fly")],
                blocks: vec![],
            },
        ],
    )
    .unwrap();

    // The explicit representation round-trips exactly.
    let explicit = genes.to_explicit().unwrap();
    assert_eq!(
        explicit.schema().attrs(),
        ["gene", "organism", "in_gene", "in_organism", "color"]
    );
    assert_eq!(explicit.len(), 4, "one row per (tuple, block)");
    assert_eq!(BlockRelation::from_explicit(&explicit, 2).unwrap(), genes);

    // σ_color("verified" on gene) ≡ π_values(σ_{color ∧ in_gene}(E)).
    let db = Database::new().with("E", explicit);
    let q = RaExpr::scan("E")
        .select(Pred::col_eq_const("color", "verified").and(Pred::col_eq_const("in_gene", true)))
        .project_cols(["gene", "organism"]);
    let direct: std::collections::BTreeSet<Vec<Atom>> = genes
        .select_color(Some("verified"), Some("gene"))
        .unwrap()
        .tuples()
        .iter()
        .map(|t| t.values.clone())
        .collect();
    assert_eq!(direct.len(), 1, "only adh1's block covers gene");
    assert_eq!(eval(&db, &q).unwrap().tuple_set(), direct);
    for cfg in engine_configs() {
        assert_eq!(eval_hash(&db, &q, &cfg).unwrap().tuple_set(), direct);
    }
}

/// DEFAULT-ALL makes the equivalent queries Q1/Q2 agree — and custom
/// propagation can steer annotations anywhere.
#[test]
fn e1_schemes_cover_the_design_space() {
    let rel = |rows: [(i64, i64, [&str; 2]); 2]| {
        ColoredRelation::from_tuples(
            Schema::new(["A", "B"]).unwrap(),
            rows.map(|(a, b, cs)| ColoredTuple::with_colors(vec![int(a), int(b)], cs.to_vec())),
        )
        .unwrap()
    };
    let db = ColoredDatabase::new()
        .with("R", rel([(10, 49, ["b1", "b2"]), (12, 50, ["b3", "b4"])]))
        .with("S", rel([(11, 49, ["b5", "b6"]), (12, 50, ["b7", "b8"])]));
    let q1 = paper_q(vec![ProjItem::col("R.A", "A"), ProjItem::col("R.B", "B")]);
    let q2 = paper_q(vec![ProjItem::col("S.A", "A"), ProjItem::constant(50, "B")]);
    let a1 = eval_colored(&db, &q1, &Scheme::DefaultAll).unwrap();
    let a2 = eval_colored(&db, &q2, &Scheme::DefaultAll).unwrap();
    assert_eq!(a1, a2);
    let steer: BTreeMap<String, Vec<String>> = [("A".to_string(), vec!["S.B".to_string()])]
        .into_iter()
        .collect();
    let scheme = Scheme::Custom(steer);
    let c = eval_colored(&db, &q2, &scheme).unwrap();
    let colors = c.cell_colors(&vec![int(12), int(50)], "A").unwrap();
    assert_eq!(colors.iter().cloned().collect::<Vec<_>>(), vec!["b8"]);
    // Scheme behaviour is engine-independent.
    for cfg in engine_configs() {
        assert_eq!(
            a1,
            eval_colored_with(&db, &q1, &Scheme::DefaultAll, &cfg).unwrap()
        );
        assert_eq!(c, eval_colored_with(&db, &q2, &scheme, &cfg).unwrap());
    }
}
