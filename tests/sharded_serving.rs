//! Sharded serving layer: linearizability and crash checking for
//! [`ShardedDb`] — per-shard WALs, routed writes, and 2PC cross-shard
//! curation (DESIGN.md §S27).
//!
//! The harness generalizes `tests/concurrent_serving.rs` to sharded
//! histories. Three layers:
//!
//! 1. **Deterministic interleaving driver** — 256 seeded histories of
//!    4 logical writers × 4 logical readers over 4 shards, scheduled
//!    one step at a time by a seeded [`StdRng`]. Each writer's script
//!    mixes single-shard writes on its home shard with *cross-shard*
//!    transactions (a merge whose absorbed entry lives on another
//!    shard, a split whose parts land on two shards).
//! 2. **Real threads** — the same scripts on OS threads, with the
//!    shard count taken from `CDB_TEST_SHARDS` (default 4) so
//!    `scripts/check.sh` can run the 1/2/num_cpus matrix. Shard count
//!    1 degenerates every cross-shard op into the single-shard
//!    delegate path — the oracles hold identically.
//! 3. **Crash under faults** — scripted cross-shard merges over
//!    fault-injected per-shard devices; after the crash, each shard
//!    recovers a gap-free prefix, and on honest devices the shards
//!    always *agree* about every cross-shard transaction (committed on
//!    both sides or on neither) and every acknowledged commit
//!    survives.
//!
//! Per-shard, every observed snapshot passes the §S23 checkers
//! (committed prefix, replay oracle, lifecycle retirement, epoch
//! coherence). On top of those, the sharded-specific oracle:
//!
//! - **Cross-shard atomicity** — an acked cross-shard merge is visible
//!   *atomically*: the absorbed id is retired on its shard **iff** the
//!   carried field has appeared on the kept entry's shard **iff** both
//!   registries record the fusion. A snapshot never contains one
//!   shard's half. Same for splits: the original is retired iff every
//!   part (each on its own shard) exists.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use cdb_core::{Fate, ShardMap, ShardedDb, ShardedSnapshot, Snapshot};
use cdb_curation::ops::Transaction;
use cdb_curation::replay::replay_and_verify;
use cdb_model::Atom;
use cdb_storage::{CheckpointStore, FaultPlan, FaultyIo, Io, MemIo, StorageError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ------------------------------------------------------------ scripts

/// Key prefixes that land on distinct shards under the 4-shard map
/// used by the deterministic driver (bounds `h`, `p`, `x`).
const PFX: [&str; 4] = ["a", "h", "p", "x"];

/// One scripted curation step against a [`ShardedDb`].
#[derive(Debug, Clone)]
enum SOp {
    Add(String, Vec<(String, Atom)>),
    Edit(String, i64),
    Annotate(String),
    /// Cross-shard under the 4-shard map: `kept` on the writer's home
    /// prefix, `absorbed` on the next one.
    Merge(String, String),
    /// Cross-shard under the 4-shard map: parts on two prefixes.
    Split(String, String, String),
    Delete(String),
    Publish(String),
}

/// An acked cross-shard merge to hold the atomicity oracle against:
/// `absorbed` carried `field`, which `kept` lacked.
#[derive(Debug, Clone)]
struct MergeMark {
    kept: String,
    absorbed: String,
    field: String,
}

/// An acked cross-shard split: `orig` fissioned into `a` and `b`.
#[derive(Debug, Clone)]
struct SplitMark {
    orig: String,
    a: String,
    b: String,
}

/// Writer `w`'s script for one `round`: single-shard ops on its home
/// prefix interleaved with a cross-shard merge and a cross-shard
/// split. Key namespaces are disjoint per (writer, round) so any
/// interleaving is conflict-free.
fn shard_script(w: usize, round: usize) -> (Vec<SOp>, MergeMark, SplitMark) {
    let home = PFX[w % PFX.len()];
    let other = PFX[(w + 1) % PFX.len()];
    let k = |p: &str, n: usize| format!("{p}{w}r{round}n{n}");
    let (h0, h1, h2) = (k(home, 0), k(home, 1), k(home, 2));
    let (o0, o1, o2) = (k(other, 3), k(other, 4), k(other, 5));
    let mfield = format!("m{w}r{round}");
    let v = |n: i64| ("v".to_string(), Atom::Int(n));
    let ops = vec![
        SOp::Add(h0.clone(), vec![v(0)]),
        SOp::Add(h1.clone(), vec![v(0)]),
        SOp::Add(
            o0.clone(),
            vec![v(0), (mfield.clone(), Atom::Int(w as i64))],
        ),
        SOp::Edit(h0.clone(), 7),
        SOp::Annotate(h1.clone()),
        SOp::Merge(h0.clone(), o0.clone()),
        SOp::Add(o1.clone(), vec![v(0)]),
        SOp::Split(o1.clone(), h2.clone(), o2.clone()),
        SOp::Edit(h2.clone(), 9),
        SOp::Delete(h1),
        SOp::Publish(format!("w{w}r{round}")),
    ];
    (
        ops,
        MergeMark {
            kept: h0,
            absorbed: o0,
            field: mfield,
        },
        SplitMark {
            orig: o1,
            a: h2,
            b: o2,
        },
    )
}

/// Applies one scripted step; logical times are unique across the
/// whole history.
fn apply_sop(db: &ShardedDb, w: u64, time: u64, op: &SOp) {
    let curator = format!("c{w}");
    match op {
        SOp::Add(key, fields) => {
            let fields: Vec<(&str, Atom)> = fields
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            db.add_entry(&curator, time, key, &fields).unwrap();
        }
        SOp::Edit(key, v) => db
            .edit_field(&curator, time, key, "v", Atom::Int(*v))
            .unwrap(),
        SOp::Annotate(key) => db
            .annotate(key, Some("v"), &curator, "checked", time)
            .unwrap(),
        SOp::Merge(kept, absorbed) => db.merge_entries(&curator, time, kept, absorbed).unwrap(),
        SOp::Split(orig, a, b) => db
            .split_entry(
                &curator,
                time,
                orig,
                &[
                    (a, vec![("v", Atom::Int(1))]),
                    (b, vec![("v", Atom::Int(2))]),
                ],
            )
            .unwrap(),
        SOp::Delete(key) => db.delete_entry(&curator, time, key).unwrap(),
        SOp::Publish(label) => {
            db.publish(label.clone()).unwrap();
        }
    }
}

// ------------------------------------------------------------ oracles

/// The identity of a transaction for prefix comparison.
fn ids(log: &[Transaction]) -> Vec<(u64, String, u64)> {
    log.iter()
        .map(|t| (t.id.0, t.curator.clone(), t.time))
        .collect()
}

/// The §S23 single-shard checker, applied to each shard of each
/// observed sharded snapshot: committed prefix of that shard's final
/// log, replay oracle, lifecycle retirement.
fn check_shard_snapshot(s: &Snapshot, final_ids: &[(u64, String, u64)]) -> Result<(), String> {
    let sids = ids(&s.curated.log);
    if sids.len() > final_ids.len() {
        return Err(format!(
            "shard log ({} txns) is longer than its final log ({})",
            sids.len(),
            final_ids.len()
        ));
    }
    if sids[..] != final_ids[..sids.len()] {
        return Err(format!(
            "shard log is not a prefix of its final log (epoch {})",
            s.epoch()
        ));
    }
    replay_and_verify(&s.curated).map_err(|e| format!("shard snapshot != replay: {e}"))?;
    for key in s.entry_keys().map_err(|e| format!("entry_keys: {e}"))? {
        if !s.lifecycle.is_active(&key) {
            return Err(format!("entry {key} visible but its id is not active"));
        }
    }
    Ok(())
}

/// The sharded-specific oracle: no snapshot ever contains one half of
/// a cross-shard transaction. Holds at *every* point in the history —
/// before the transaction both sides show nothing, after it both show
/// everything.
fn check_cross_atomicity(
    s: &ShardedSnapshot,
    merges: &[MergeMark],
    splits: &[SplitMark],
) -> Result<(), String> {
    for m in merges {
        let retired = matches!(
            s.for_key(&m.absorbed).lifecycle.fate(&m.absorbed),
            Ok(Fate::MergedInto(_))
        );
        let carried = s.for_key(&m.kept).field(&m.kept, &m.field).is_ok();
        if retired != carried {
            return Err(format!(
                "half a merge visible: {} retired={retired} but {}.{} carried={carried}",
                m.absorbed, m.kept, m.field
            ));
        }
        let kept_side_knows = matches!(
            s.for_key(&m.kept).lifecycle.fate(&m.absorbed),
            Ok(Fate::MergedInto(_))
        );
        if kept_side_knows != retired {
            return Err(format!(
                "registries disagree about merge of {}: absorbed side {retired}, kept side {kept_side_knows}",
                m.absorbed
            ));
        }
    }
    for sp in splits {
        let retired = matches!(
            s.for_key(&sp.orig).lifecycle.fate(&sp.orig),
            Ok(Fate::SplitInto(_))
        );
        let a = s.for_key(&sp.a).field(&sp.a, "v").is_ok();
        let b = s.for_key(&sp.b).field(&sp.b, "v").is_ok();
        if a != retired || b != retired {
            return Err(format!(
                "half a split visible: {} retired={retired} but parts exist ({}={a}, {}={b})",
                sp.orig, sp.a, sp.b
            ));
        }
    }
    Ok(())
}

/// Per-shard epoch coherence: one epoch ⇒ one log length, never a
/// shorter log at a later epoch.
fn check_shard_epochs<'a>(snaps: impl Iterator<Item = &'a Snapshot>) -> Result<(), String> {
    let mut by_epoch: std::collections::BTreeMap<u64, usize> = Default::default();
    for s in snaps {
        let len = s.curated.log.len();
        let entry = by_epoch.entry(s.epoch()).or_insert(len);
        if *entry != len {
            return Err(format!(
                "epoch {} observed with log lengths {} and {len}",
                s.epoch(),
                *entry
            ));
        }
    }
    let mut prev = 0usize;
    for (epoch, len) in by_epoch {
        if len < prev {
            return Err(format!(
                "epoch {epoch} exposes a shorter log ({len} < {prev})"
            ));
        }
        prev = len;
    }
    Ok(())
}

fn total_len(s: &ShardedSnapshot) -> usize {
    s.shards().iter().map(|x| x.curated.log.len()).sum()
}

// ---------------------------------------- deterministic interleavings

proptest! {
    /// 256 seeded histories of 4 writers × 4 readers over 4 shards:
    /// every snapshot any reader ever took is per-shard a committed
    /// prefix that replays to itself, cross-shard transactions are
    /// atomically visible, per-shard epochs cohere, and the combined
    /// epoch is monotone per reader. Failures replay byte-for-byte
    /// from the case seed.
    #[test]
    fn sharded_seeded_histories_are_coherent(seed in 0u64..1_000_000) {
        const WRITERS: usize = 4;
        const READERS: usize = 4;
        const SHARDS: usize = 4;
        let map = ShardMap::with_bounds(vec!["h".into(), "p".into(), "x".into()]);
        let db = ShardedDb::new("shard-conc", "id", map);
        let mut rng = StdRng::seed_from_u64(seed);

        let mut scripts = Vec::new();
        let mut merges = Vec::new();
        let mut splits = Vec::new();
        for w in 0..WRITERS {
            let (ops, m, s) = shard_script(w, 0);
            scripts.push(ops);
            merges.push(m);
            splits.push(s);
        }
        let mut cursor = [0usize; WRITERS];
        let mut reader_state = [(0u64, 0usize); READERS];
        let mut observed: Vec<ShardedSnapshot> = Vec::new();

        while cursor.iter().zip(&scripts).any(|(c, s)| *c < s.len()) {
            let actor = rng.gen_range(0..WRITERS + READERS);
            if actor < WRITERS {
                let w = actor;
                if cursor[w] < scripts[w].len() {
                    let time = (w as u64 + 1) * 100_000 + cursor[w] as u64;
                    apply_sop(&db, w as u64, time, &scripts[w][cursor[w]]);
                    cursor[w] += 1;
                }
            } else {
                let r = actor - WRITERS;
                let snap = db.snapshot();
                let (prev_epoch, prev_len) = reader_state[r];
                prop_assert!(
                    snap.epoch() >= prev_epoch,
                    "reader {r} saw the combined epoch go backwards: {} < {prev_epoch}",
                    snap.epoch()
                );
                prop_assert!(total_len(&snap) >= prev_len, "reader {r} saw the history shrink");
                if let Err(msg) = check_cross_atomicity(&snap, &merges, &splits) {
                    return Err(TestCaseError::fail(msg));
                }
                reader_state[r] = (snap.epoch(), total_len(&snap));
                observed.push(snap);
            }
        }

        let fin = db.snapshot();
        let final_ids: Vec<Vec<_>> = fin.shards().iter().map(|s| ids(&s.curated.log)).collect();
        for snap in observed.iter().chain(std::iter::once(&fin)) {
            for (i, shard) in snap.shards().iter().enumerate() {
                if let Err(msg) = check_shard_snapshot(shard, &final_ids[i]) {
                    return Err(TestCaseError::fail(format!("shard {i}: {msg}")));
                }
            }
            if let Err(msg) = check_cross_atomicity(snap, &merges, &splits) {
                return Err(TestCaseError::fail(msg));
            }
        }
        for i in 0..SHARDS {
            let it = observed.iter().chain(std::iter::once(&fin)).map(|s| s.shard(i));
            if let Err(msg) = check_shard_epochs(it) {
                return Err(TestCaseError::fail(format!("shard {i}: {msg}")));
            }
        }

        // Every writer committed exactly one cross-shard merge and one
        // cross-shard split under this map (home ≠ other always).
        let m = db.metrics_snapshot();
        prop_assert_eq!(
            m.counters.get("core.sharded.cross.commits").copied().unwrap_or(0),
            (2 * WRITERS) as u64,
            "unexpected cross-shard commit count"
        );
        prop_assert_eq!(
            m.counters.get("core.sharded.cross.aborts").copied().unwrap_or(0),
            0u64,
            "no cross-shard transaction should have aborted"
        );
    }
}

// ----------------------------------------------------- real threads

fn env_shards() -> usize {
    std::env::var("CDB_TEST_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

/// N writer threads × M reader threads over one `ShardedDb` with a
/// configurable shard count; readers verify combined-epoch
/// monotonicity, per-shard prefix order, and cross-shard atomicity
/// *live*, then everything is re-checked against the final state.
fn sharded_real_thread_history(shards: usize, writers: usize, readers: usize, rounds: usize) {
    let db = ShardedDb::new("shard-mt", "id", ShardMap::uniform(shards));
    let mut merges = Vec::new();
    let mut splits = Vec::new();
    for w in 0..writers {
        for round in 0..rounds {
            let (_, m, s) = shard_script(w, round);
            merges.push(m);
            splits.push(s);
        }
    }
    let marks = Arc::new((merges, splits));
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let reader_handles: Vec<_> = (0..readers)
        .map(|r| {
            let db = db.clone();
            let done = done.clone();
            let marks = marks.clone();
            thread::spawn(move || {
                let mut prev: Option<ShardedSnapshot> = None;
                let mut kept: Vec<ShardedSnapshot> = Vec::new();
                let mut samples = 0usize;
                while !done.load(std::sync::atomic::Ordering::Acquire) {
                    let snap = db.snapshot();
                    if let Some(p) = &prev {
                        assert!(
                            snap.epoch() >= p.epoch(),
                            "reader {r}: combined epoch went backwards"
                        );
                        for (i, (ps, ns)) in p.shards().iter().zip(snap.shards()).enumerate() {
                            let pids = ids(&ps.curated.log);
                            let nids = ids(&ns.curated.log);
                            assert!(
                                pids.len() <= nids.len() && pids[..] == nids[..pids.len()],
                                "reader {r}: shard {i} log is not a prefix of its successor"
                            );
                        }
                    }
                    check_cross_atomicity(&snap, &marks.0, &marks.1)
                        .unwrap_or_else(|msg| panic!("reader {r}: {msg}"));
                    samples += 1;
                    if samples.is_multiple_of(7) {
                        kept.push(snap.clone());
                    }
                    prev = Some(snap);
                    thread::yield_now();
                }
                kept.extend(prev);
                kept
            })
        })
        .collect();

    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let db = db.clone();
            thread::spawn(move || {
                for round in 0..rounds {
                    let (script, _, _) = shard_script(w, round);
                    for (step, op) in script.iter().enumerate() {
                        let time =
                            (w as u64 + 1) * 1_000_000 + (round * script.len() + step) as u64;
                        apply_sop(&db, w as u64, time, op);
                    }
                }
            })
        })
        .collect();

    for h in writer_handles {
        h.join().unwrap();
    }
    done.store(true, std::sync::atomic::Ordering::Release);

    // Final-state completeness: each (writer, round) script leaves
    // exactly {kept, part a, part b} active, everything else retired.
    let fin = db.snapshot();
    let mut expect = BTreeSet::new();
    for m in &marks.0 {
        expect.insert(m.kept.clone());
    }
    for s in &marks.1 {
        expect.insert(s.a.clone());
        expect.insert(s.b.clone());
    }
    let got: BTreeSet<String> = fin.entry_keys().unwrap().into_iter().collect();
    assert_eq!(got, expect, "final entry set is wrong");

    let final_ids: Vec<Vec<_>> = fin.shards().iter().map(|s| ids(&s.curated.log)).collect();
    let mut all: Vec<ShardedSnapshot> = vec![fin];
    for h in reader_handles {
        all.extend(h.join().unwrap());
    }
    for snap in &all {
        for (i, shard) in snap.shards().iter().enumerate() {
            check_shard_snapshot(shard, &final_ids[i])
                .unwrap_or_else(|msg| panic!("shard {i}: {msg}"));
        }
        check_cross_atomicity(snap, &marks.0, &marks.1).unwrap_or_else(|msg| panic!("{msg}"));
    }
    for i in 0..shards {
        check_shard_epochs(all.iter().map(|s| s.shard(i)))
            .unwrap_or_else(|msg| panic!("shard {i} epochs: {msg}"));
    }
}

/// Real OS threads; shard count from `CDB_TEST_SHARDS` (default 4) —
/// `scripts/check.sh` runs this under a 1/2/num_cpus matrix. Shard
/// count 1 exercises the delegate (non-2PC) path of every cross op.
#[test]
fn sharded_real_thread_history_is_coherent() {
    sharded_real_thread_history(env_shards(), 4, 4, 2);
}

/// Stress target (not part of the default run):
///
/// ```text
/// cargo test --release --test sharded_serving -- --ignored
/// ```
#[test]
#[ignore = "stress target: cargo test --release --test sharded_serving -- --ignored"]
fn sharded_stress_history() {
    sharded_real_thread_history(8, 8, 8, 4);
}

// ------------------------------------------- crash under faults

/// A fault-injected device shared between a shard under test and the
/// checker (which photographs the durable image post-crash).
#[derive(Debug, Clone)]
struct SharedFaulty(Arc<Mutex<FaultyIo>>);

impl Io for SharedFaulty {
    fn len(&self) -> Result<u64, StorageError> {
        self.0.lock().unwrap().len()
    }
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        self.0.lock().unwrap().read_at(offset, buf)
    }
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.0.lock().unwrap().append(bytes)
    }
    fn flush(&mut self) -> Result<(), StorageError> {
        self.0.lock().unwrap().flush()
    }
    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        self.0.lock().unwrap().truncate(len)
    }
}

proptest! {
    /// Scripted cross-shard merges over two shards, one on a
    /// fault-injected device; after the crash each shard recovers a
    /// gap-free prefix of its own append order, and on honest devices
    /// (syncs may fail but never lie) the recovered shards *agree*
    /// about every cross-shard transaction — committed on both sides
    /// or on neither, with every acknowledged commit durable.
    #[test]
    fn sharded_crash_recovery_keeps_shards_agreeing(
        seed in 0u64..1_000_000,
        fault_sel in 0usize..3,
        fault_n in 0u64..24,
        faulty_shard in 0usize..2,
    ) {
        const SHARDS: usize = 2;
        let plan = match fault_sel {
            0 => FaultPlan { fail_flush: Some(fault_n as u32 % 8 + 2), ..Default::default() },
            1 => FaultPlan { flush_cap: Some(64 + fault_n * 48), ..Default::default() },
            _ => FaultPlan { torn_write_at: Some(32 + fault_n * 32), ..Default::default() },
        };
        let honest = fault_sel == 0;
        let devs: Vec<SharedFaulty> = (0..SHARDS)
            .map(|i| {
                let p = if i == faulty_shard { plan.clone() } else { FaultPlan::default() };
                SharedFaulty(Arc::new(Mutex::new(FaultyIo::new(p))))
            })
            .collect();
        let map = ShardMap::uniform(SHARDS);
        let db = ShardedDb::open(
            "shard-crash",
            "id",
            map.clone(),
            devs.iter()
                .map(|d| (Box::new(d.clone()) as Box<dyn Io>, CheckpointStore::mem()))
                .collect(),
            Duration::ZERO,
        )
        .map_err(|e| TestCaseError::fail(format!("open: {e}")))?;

        // Two keys guaranteed to land on different shards of the
        // uniform 2-shard map.
        let shard_key = |s: usize, n: u64| if s == 0 {
            format!("A{n}")
        } else {
            format!("z{n}")
        };
        prop_assert_eq!(map.route(&shard_key(0, 0)), 0);
        prop_assert_eq!(map.route(&shard_key(1, 0)), 1);

        let mut rng = StdRng::seed_from_u64(seed);
        let rounds = rng.gen_range(3u64..10);
        let mut acked_adds: Vec<(usize, u64)> = Vec::new(); // (shard, time)
        let mut attempted: Vec<MergeMark> = Vec::new();
        let mut acked_merges: Vec<MergeMark> = Vec::new();
        for n in 0..rounds {
            // kept on a seed-chosen shard, absorbed on the other.
            let ks = rng.gen_range(0..SHARDS);
            let kept = shard_key(ks, n);
            let absorbed = shard_key(1 - ks, n);
            let mfield = format!("m{n}");
            let t = n * 10;
            let kept_ok = db
                .add_entry("c", t, &kept, &[("v", Atom::Int(n as i64))])
                .is_ok();
            if kept_ok {
                acked_adds.push((ks, t));
            }
            let abs_ok = db
                .add_entry("c", t + 1, &absorbed, &[("v", Atom::Int(0)), (&mfield, Atom::Int(1))])
                .is_ok();
            if abs_ok {
                acked_adds.push((1 - ks, t + 1));
            }
            let mark = MergeMark { kept, absorbed, field: mfield };
            attempted.push(mark.clone());
            if kept_ok && abs_ok && db.merge_entries("c", t + 2, &mark.kept, &mark.absorbed).is_ok() {
                acked_merges.push(mark);
            }
        }

        // Crash: photograph the durable images and recover.
        let fin = db.snapshot();
        let final_ids: Vec<Vec<_>> = fin.shards().iter().map(|s| ids(&s.curated.log)).collect();
        let images: Vec<Vec<u8>> = devs.iter().map(|d| d.0.lock().unwrap().durable_image()).collect();
        let reopened = ShardedDb::open(
            "shard-crash",
            "id",
            map,
            images
                .into_iter()
                .map(|img| (Box::new(MemIo::from_bytes(img)) as Box<dyn Io>, CheckpointStore::mem()))
                .collect(),
            Duration::ZERO,
        )
        .map_err(|e| TestCaseError::fail(format!("recovery failed outright: {e}")))?;
        let rsnap = reopened.snapshot();

        // Each shard recovered a gap-free prefix of its append order.
        for (i, shard) in rsnap.shards().iter().enumerate() {
            let rids = ids(&shard.curated.log);
            prop_assert!(
                rids.len() <= final_ids[i].len(),
                "shard {i} recovered more transactions than were appended"
            );
            prop_assert_eq!(
                &rids[..],
                &final_ids[i][..rids.len()],
                "shard {i} recovered log is not a gap-free prefix"
            );
            replay_and_verify(&shard.curated)
                .map_err(|e| TestCaseError::fail(format!("shard {i} replay: {e}")))?;
        }

        if honest {
            // Never half-applied, and both registries agree, for every
            // merge that was ever *attempted* (committed ones show on
            // both sides, aborted/unreached ones on neither).
            if let Err(msg) = check_cross_atomicity(&rsnap, &attempted, &[]) {
                return Err(TestCaseError::fail(msg));
            }
            // Every ack survives: single-shard adds by (shard, time)…
            for (s, t) in &acked_adds {
                prop_assert!(
                    rsnap.shard(*s).curated.log.iter().any(|x| x.time == *t),
                    "acked add t={t} lost from shard {s} by an honest device"
                );
            }
            // …and acked cross-shard merges as committed-on-both-sides.
            for m in &acked_merges {
                let retired = matches!(
                    rsnap.for_key(&m.absorbed).lifecycle.fate(&m.absorbed),
                    Ok(Fate::MergedInto(_))
                );
                prop_assert!(
                    retired,
                    "acked cross-shard merge of {} lost by an honest device",
                    m.absorbed
                );
                prop_assert!(
                    rsnap.for_key(&m.kept).field(&m.kept, &m.field).is_ok(),
                    "acked merge committed on one shard but not the other"
                );
            }
        }
    }
}
