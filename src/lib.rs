//! # curated-db
//!
//! A curated-database management system in Rust — a full reproduction of
//! the systems surveyed in Buneman, Cheney, Tan and Vansummeren,
//! *Curated Databases* (PODS 2008).
//!
//! This is the facade crate: it re-exports the integrated engine
//! ([`CuratedDatabase`]) and every substrate. See `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for the paper-example and
//! benchmark index.
//!
//! ```
//! use curated_db::{CuratedDatabase, Atom};
//!
//! let mut db = CuratedDatabase::new("iuphar", "name");
//! db.add_entry("alice", 1, "GABA-A", &[("kind", Atom::Str("receptor".into()))])
//!     .unwrap();
//! let v0 = db.publish("2008-06").unwrap();
//! let citation = db.cite(v0, "GABA-A").unwrap();
//! assert!(citation.to_string().contains("GABA-A"));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use cdb_core::{
    CuratedDatabase, DbError, Durability, EntryEvent, EntryRegistry, Fate, Note, ShardMap,
    ShardedDb, ShardedSnapshot, SharedDb, Snapshot, DEFAULT_BATCH_WINDOW,
};

pub use cdb_annotation as annotation;
pub use cdb_archive as archive;
pub use cdb_core as core;
pub use cdb_curation as curation;
pub use cdb_model as model;
pub use cdb_obs as obs;
pub use cdb_relalg as relalg;
pub use cdb_schema as schema;
pub use cdb_semiring as semiring;
pub use cdb_server as server;
pub use cdb_storage as storage;
pub use cdb_workload as workload;

pub use cdb_model::{Atom, KeyPath, KeySpec, Value};
